// Data importance for retrieval-augmented inference (the Section 2.1 pointer
// to "methods specialized for retrieval augmented generation"): when answers
// are produced by retrieving the nearest documents from a corpus and
// aggregating them, the corpus documents ARE the training data — and
// KNN-Shapley values them directly, because retrieval *is* a nearest-
// neighbor model.
//
// Scenario: a support-ticket router retrieves the most similar resolved
// tickets and answers with their majority routing label. Some corpus tickets
// were archived with the wrong routing label; their importance against a
// validated query set exposes them.
//
// Build & run:  ./build/examples/rag_importance

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "nde/nde.h"

namespace {

struct Corpus {
  nde::Table table;           // ticket_text, routing label
  nde::MlDataset encoded;     // hashed text features + labels
};

Corpus MakeTickets(size_t n, uint64_t seed) {
  using namespace nde;
  const char* kBillingWords[] = {"invoice", "refund",  "charge",
                                 "payment", "billing", "receipt"};
  const char* kOutageWords[] = {"outage", "down",    "timeout",
                                "crash",  "latency", "unreachable"};
  const char* kFiller[] = {"customer", "reported", "issue",   "since",
                           "yesterday", "please",  "urgent",  "ticket",
                           "account",  "team",     "checked", "again"};
  Rng rng(seed);
  std::vector<std::string> texts;
  std::vector<int64_t> labels;
  for (size_t i = 0; i < n; ++i) {
    int label = rng.NextBernoulli(0.5) ? 1 : 0;
    std::vector<std::string> words;
    size_t length = static_cast<size_t>(rng.NextInt(8, 16));
    for (size_t w = 0; w < length; ++w) {
      double u = rng.NextDouble();
      if (u < 0.35) {
        words.push_back(label == 1 ? kOutageWords[rng.NextBounded(6)]
                                   : kBillingWords[rng.NextBounded(6)]);
      } else {
        words.push_back(kFiller[rng.NextBounded(12)]);
      }
    }
    texts.push_back(JoinStrings(words, " "));
    labels.push_back(label);
  }
  Corpus corpus;
  corpus.table = TableBuilder()
                     .AddStringColumn("ticket_text", std::move(texts))
                     .AddInt64Column("routing", std::move(labels))
                     .Build();
  ColumnTransformer encoder;
  encoder.Add("ticket_text", std::make_unique<HashingVectorizer>(64));
  corpus.encoded.features = encoder.FitTransform(corpus.table).value();
  for (size_t i = 0; i < n; ++i) {
    corpus.encoded.labels.push_back(
        static_cast<int>(corpus.table.At(i, 1).as_int64()));
  }
  return corpus;
}

}  // namespace

int main() {
  using namespace nde;

  Corpus corpus = MakeTickets(400, 42);   // The retrieval corpus.
  Corpus queries = MakeTickets(120, 43);  // Validated routing decisions.

  // Corrupt some archived routing labels.
  Rng rng(7);
  std::vector<size_t> corrupted =
      InjectLabelErrors(&corpus.encoded, 0.1, &rng);

  // Retrieval quality before debugging: top-5 retrieval + majority label.
  auto retrieval_accuracy = [&](const MlDataset& docs) {
    KnnClassifier retriever(5);
    Status s = retriever.Fit(docs);
    NDE_CHECK(s.ok());
    return Accuracy(queries.encoded.labels,
                    retriever.Predict(queries.encoded.features));
  };
  double dirty = retrieval_accuracy(corpus.encoded);
  std::printf("retrieval routing accuracy with corrupted corpus: %.4f\n",
              dirty);

  // Value every corpus document against the validated queries.
  std::vector<double> importance =
      KnnShapleyValues(corpus.encoded, queries.encoded, 5);
  std::vector<size_t> ranking = AscendingOrder(importance);
  std::printf("precision@%zu of document valuation vs corrupted set: %.2f\n",
              corrupted.size(),
              PrecisionAtK(ranking, corrupted, corrupted.size()));

  std::printf("\nworst-valued corpus documents:\n");
  for (size_t i = 0; i < 5; ++i) {
    size_t doc = ranking[i];
    std::printf("  #%zu (phi=%+.5f, label=%d): %.60s...\n", doc,
                importance[doc], corpus.encoded.labels[doc],
                corpus.table.At(doc, 0).as_string().c_str());
  }

  // Drop the flagged documents from the corpus (no retraining needed — the
  // corpus IS the model).
  std::vector<size_t> flagged(ranking.begin(),
                              ranking.begin() + static_cast<ptrdiff_t>(
                                                    corrupted.size()));
  MlDataset repaired = corpus.encoded.Without(flagged);
  double cleaned = retrieval_accuracy(repaired);
  std::printf("\nretrieval routing accuracy after dropping flagged docs: %.4f"
              " (was %.4f)\n",
              cleaned, dirty);
  return 0;
}
