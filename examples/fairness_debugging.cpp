// Fairness debugging end to end: find the training-data pattern responsible
// for an equalized-odds violation (Gopher-style, Section 2.1), then ask
// whether the fairness of the fixed model can be *certified* under bounded
// selection bias (consistent range approximation, Section 2.3).
//
// Build & run:  ./build/examples/fairness_debugging

#include <cstdio>
#include <memory>

#include "nde/nde.h"

int main() {
  using namespace nde;

  // Synthetic hiring data where group "b" applicants had most of their
  // positive outcomes recorded as negative — systematic label bias.
  Rng rng(42);
  auto make_dataset = [&rng](size_t n, bool biased,
                             std::vector<std::string>* group_names,
                             std::vector<int>* groups) {
    MlDataset data;
    data.features = Matrix(n, 3);
    data.labels.resize(n);
    for (size_t i = 0; i < n; ++i) {
      int group = rng.NextBernoulli(0.5) ? 1 : 0;
      int label = rng.NextBernoulli(0.5) ? 1 : 0;
      data.features(i, 0) = static_cast<double>(group);
      double direction = label == 1 ? 1.5 : -1.5;
      data.features(i, 1) = direction + 0.5 * rng.NextGaussian();
      data.features(i, 2) = direction + 0.5 * rng.NextGaussian();
      if (biased && group == 1 && label == 1 && rng.NextBernoulli(0.8)) {
        label = 0;
      }
      data.labels[i] = label;
      if (group_names != nullptr) {
        group_names->push_back(group == 1 ? "b" : "a");
      }
      if (groups != nullptr) groups->push_back(group);
    }
    return data;
  };

  std::vector<std::string> train_groups;
  MlDataset train = make_dataset(300, /*biased=*/true, &train_groups, nullptr);
  std::vector<int> val_groups;
  MlDataset validation = make_dataset(150, /*biased=*/false, nullptr,
                                      &val_groups);

  auto factory = []() { return std::make_unique<KnnClassifier>(5); };

  // Step 1: measure the damage.
  std::unique_ptr<Classifier> model = factory();
  if (!model->Fit(train).ok()) return 1;
  std::vector<int> predictions = model->Predict(validation.features);
  std::printf("validation accuracy: %.4f\n",
              Accuracy(validation.labels, predictions));
  std::printf("equalized-odds difference: %.4f\n",
              EqualizedOddsDifference(validation.labels, predictions,
                                      val_groups));
  std::printf("demographic-parity difference: %.4f\n\n",
              DemographicParityDifference(predictions, val_groups));

  // Step 2: Gopher-style explanation — which training pattern, when removed,
  // most improves fairness?
  Table attributes = TableBuilder().AddStringColumn("g", train_groups).Build();
  GopherOptions gopher;
  gopher.max_conditions = 1;
  gopher.top_k = 4;
  std::printf("top fairness-debugging patterns (remove-and-retrain):\n");
  std::vector<FairnessPattern> patterns =
      ExplainFairness(factory, train, attributes, validation, val_groups,
                      gopher)
          .value();
  for (const FairnessPattern& pattern : patterns) {
    std::printf("  %s\n", pattern.ToString().c_str());
  }

  // Step 3: certification under selection bias — even if the *observed*
  // fairness gap is small, how robust is that conclusion if each group's
  // examples were sampled with up-to-r-fold unknown propensity skew?
  std::printf("\nfairness certification under bounded selection bias:\n");
  for (double r : {1.0, 1.5, 2.0, 4.0}) {
    Interval range =
        DemographicParityRange(predictions, val_groups, r).value();
    bool certified =
        CertifyFairnessUnderBias(predictions, val_groups, r, 0.3).value();
    std::printf("  bias bound %.1f: DP range %s -> %s\n", r,
                range.ToString().c_str(),
                certified ? "certified fair (<= 0.3)" : "cannot certify");
  }
  return 0;
}
