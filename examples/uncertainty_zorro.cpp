// Learning from imperfect data: symbolically propagate missing-value
// uncertainty through model training (the paper's Figure 4).
//
// The Python sketch this mirrors:
//
//   for percentage in [5, 10, 15, 20, 25]:
//     X_train_symb = nde.encode_symbolic(train_df,
//         uncertain_feature="employer_rating",
//         missing_percentage=percentage, missingness="MNAR")
//     max_losses[percentage] = nde.estimate_with_zorro(X_train_symb, test_df)
//   nde.visualize_uncertainty(max_losses, feature)
//
// Build & run:  ./build/examples/uncertainty_zorro

#include <cstdio>
#include <vector>

#include "nde/nde.h"

namespace {

/// Renders a value as a crude horizontal bar (the "visualization" of the
/// hands-on notebook, terminal edition).
void Bar(double value, double max_value) {
  int width = max_value > 0.0 ? static_cast<int>(40.0 * value / max_value) : 0;
  for (int i = 0; i < width; ++i) std::printf("#");
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace nde;

  // A small regression task: predict an offer score from four numeric
  // features; employer_rating (feature 2) will lose values MNAR-style.
  Rng rng(42);
  RegressionDataset train;
  train.features = Matrix(150, 4);
  train.targets.resize(150);
  auto fill = [&rng](RegressionDataset* data) {
    for (size_t i = 0; i < data->size(); ++i) {
      double experience = rng.NextGaussian();
      double education = rng.NextGaussian();
      double rating = rng.NextUniform(-1.0, 1.0);
      double followers = rng.NextGaussian();
      data->features(i, 0) = experience;
      data->features(i, 1) = education;
      data->features(i, 2) = rating;
      data->features(i, 3) = followers;
      data->targets[i] = 0.8 * experience + 0.5 * education + 0.6 * rating +
                         0.1 * followers + 0.05 * rng.NextGaussian();
    }
  };
  fill(&train);
  RegressionDataset test;
  test.features = Matrix(60, 4);
  test.targets.resize(60);
  fill(&test);

  ZorroOptions options;
  options.epochs = 12;

  std::printf("Maximum worst-case loss vs %% missing in employer_rating:\n\n");
  std::vector<double> losses;
  for (int percentage : {5, 10, 15, 20, 25}) {
    std::printf("Evaluating %d%% of missing values in employer_rating...\n",
                percentage);
    size_t count = train.size() * static_cast<size_t>(percentage) / 100;
    std::vector<size_t> missing =
        rng.SampleWithoutReplacement(train.size(), count);
    SymbolicRegressionDataset symbolic =
        EncodeSymbolicMissing(train, missing, /*column=*/2, -1.0, 1.0).value();
    ZorroModel model = TrainZorro(symbolic, options).value();
    losses.push_back(MaxWorstCaseLoss(model, test));
  }

  std::printf("\n%10s %22s\n", "missing %", "max worst-case loss");
  double max_loss = losses.back();
  int percentages[] = {5, 10, 15, 20, 25};
  for (size_t i = 0; i < losses.size(); ++i) {
    std::printf("%9d%% %22.4f  ", percentages[i], losses[i]);
    Bar(losses[i], max_loss);
  }

  // Compare the uncertainty-aware prediction ranges against a baseline
  // trained with naive zero imputation for a few test points.
  std::printf("\nprediction ranges vs imputation baseline (first 5 test rows):\n");
  std::vector<size_t> missing =
      rng.SampleWithoutReplacement(train.size(), train.size() / 5);
  SymbolicRegressionDataset symbolic =
      EncodeSymbolicMissing(train, missing, 2, -1.0, 1.0).value();
  ZorroModel model = TrainZorro(symbolic, options).value();
  RegressionDataset imputed = train;
  for (size_t i : missing) imputed.features(i, 2) = 0.0;
  RidgeRegression baseline(1e-3);
  if (!baseline.Fit(imputed).ok()) return 1;
  std::printf("%6s %24s %16s %12s\n", "row", "Zorro range", "baseline", "target");
  for (size_t i = 0; i < 5; ++i) {
    std::vector<double> x = test.features.Row(i);
    Interval range = model.Predict(x);
    std::printf("%6zu %24s %16.3f %12.3f\n", i, range.ToString().c_str(),
                baseline.PredictOne(x), test.targets[i]);
  }
  std::printf(
      "\nthe ranges expose how unreliable individual predictions become —\n"
      "information the single-number imputation baseline silently hides.\n");
  return 0;
}
