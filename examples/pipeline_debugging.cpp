// Pipeline debugging: trace data errors to the *source* tables of a real
// preprocessing pipeline via fine-grained provenance (the paper's Figure 3).
//
// The pipeline joins the recommendation letters with job details and social
// media side tables, filters to the healthcare sector, derives a has_twitter
// column with a UDF, and encodes text + categorical + numeric features —
// then data importance is computed for the rows of the *source* train table,
// not the already-encoded feature matrix.
//
// Build & run:  ./build/examples/pipeline_debugging

#include <cstdio>
#include <memory>

#include "nde/nde.h"

int main() {
  using namespace nde;

  // --- Source tables (three heterogeneous inputs) --------------------------
  HiringScenarioOptions options;
  options.num_applicants = 500;
  HiringScenario scenario = MakeHiringScenario(options);

  // Corrupt the SOURCE data: flip 10% of the sentiment labels in train_df.
  Rng rng(7);
  std::vector<size_t> corrupted =
      InjectLabelErrorsTable(&scenario.train, "sentiment", 0.1, &rng).value();
  std::printf("injected %zu label errors into the source train table\n\n",
              corrupted.size());

  // --- def pipeline(train_df, jobdetail_df, social_df): --------------------
  std::vector<NamedTable> sources = {{"train_df", scenario.train},
                                     {"jobdetail_df", scenario.jobdetail},
                                     {"social_df", scenario.social}};
  PlanBuilder builder = [](const std::vector<PlanNodePtr>& s) -> PlanNodePtr {
    PlanNodePtr plan = MakeHashJoin(s[0], s[1], "job_id", "job_id");
    plan = MakeHashJoin(plan, s[2], "person_id", "person_id");
    plan = MakeFilterEquals(plan, "sector", Value("healthcare"));
    std::vector<ComputedColumn> computed;
    computed.push_back(ComputedColumn{
        Field{"has_twitter", DataType::kInt64}, [](const RowView& row) {
          return Value(int64_t{row.GetOrDie("twitter").is_null() ? 0 : 1});
        }});
    return MakeProject(
        plan, {"letter_text", "degree", "age", "employer_rating", "sentiment"},
        std::move(computed));
  };

  ColumnTransformer feature_encoder;
  feature_encoder.Add("letter_text", std::make_unique<HashingVectorizer>(48),
                      /*weight=*/6.0);
  feature_encoder.Add("degree", std::make_unique<OneHotEncoder>());
  feature_encoder.Add("age", std::make_unique<NumericEncoder>());
  feature_encoder.Add("employer_rating", std::make_unique<NumericEncoder>());

  MlPipeline pipeline(sources, builder, feature_encoder, "sentiment");

  // nde.show_query_plan(pipeline)
  std::printf("pipeline query plan:\n%s\n",
              PlanToString(*pipeline.BuildPlan()).c_str());

  // X_train, prov = nde.with_provenance(pipeline(...))
  PipelineOutput output = pipeline.Run().value();
  std::printf("pipeline output: %zu rows x %zu features\n", output.size(),
              output.features.cols());
  std::printf("row 0 provenance: %s\n\n",
              output.provenance[0].ToString().c_str());

  // A clean validation run of the same pipeline over held-out applicants.
  HiringScenarioOptions val_options = options;
  val_options.num_applicants = 200;
  val_options.seed = 43;
  HiringScenario val_scenario = MakeHiringScenario(val_options);
  val_scenario.jobdetail = scenario.jobdetail;
  MlPipeline val_pipeline({{"train_df", val_scenario.train},
                           {"jobdetail_df", val_scenario.jobdetail},
                           {"social_df", val_scenario.social}},
                          builder, feature_encoder, "sentiment");
  Table val_processed = val_pipeline.Run().value().processed;
  MlDataset validation =
      EncodeValidation(output, val_processed, "sentiment").value();

  // importances = nde.datascope(for=train_df, provenance=prov, ...)
  std::vector<double> importances =
      KnnShapleyOverPipeline(output, validation, /*target_table_id=*/0,
                             scenario.train.num_rows(), /*k=*/5)
          .value();
  std::vector<size_t> lowest = AscendingOrder(importances);
  lowest.resize(25);
  std::printf("precision@25 of source-tuple ranking vs injected errors: %.2f\n",
              PrecisionAtK(lowest, corrupted, 25));

  // X_train_clean = nde.remove(X_train, lowest, prov)
  std::vector<SourceRef> removals;
  for (size_t row : lowest) {
    removals.push_back(SourceRef{0, static_cast<uint32_t>(row)});
  }
  RemovalImpact impact =
      EvaluateSourceRemoval(
          pipeline, output,
          []() { return std::make_unique<KnnClassifier>(5); }, validation,
          removals)
          .value();
  std::printf("Removal changed accuracy by %+.4f.\n", impact.accuracy_change);
  return 0;
}
