// Quickstart: identify and recover from label errors with data importance.
//
// The C++ rendition of the paper's Figure 2 notebook:
//
//   train_df, valid_df, test_df = nde.load_recommendation_letters()
//   train_df_err = nde.inject_labelerrors(train_df, fraction=0.1)
//   acc_dirty = nde.evaluate_model(train_df_err)
//   importances = nde.knn_shapley_values(train_df_err, validation=valid_df)
//   lowest = np.argsort(importances)[:25]
//   train_df_err.loc[lowest] = train_df.loc[lowest]
//   acc_cleaned = nde.evaluate_model(train_df_err)
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "nde/nde.h"

int main() {
  using namespace nde;

  // Load the synthetic recommendation-letters dataset (train/valid/test).
  DatasetSplits splits = LoadRecommendationLetters(/*num_examples=*/600,
                                                   /*seed=*/42);
  auto evaluate_model = [&](const MlDataset& train) {
    return TrainAndScore([]() { return std::make_unique<KnnClassifier>(1); },
                         train, splits.test)
        .value();
  };

  // Inject synthetic label errors into 10% of the training data.
  MlDataset train_err = splits.train;
  Rng rng(7);
  std::vector<size_t> corrupted = InjectLabelErrors(&train_err, 0.1, &rng);
  double acc_dirty = evaluate_model(train_err);
  std::printf("Accuracy with data errors: %.2f.\n", acc_dirty);

  // Compute KNN-Shapley importance of every training tuple against the
  // validation set; the most negative tuples are the prime suspects.
  std::vector<double> importances =
      KnnShapleyValues(train_err, splits.valid, /*k=*/5);
  std::vector<size_t> lowest = AscendingOrder(importances);
  lowest.resize(25);

  std::printf("\nmost suspicious tuples (importance | was injected?):\n");
  for (size_t i = 0; i < 5; ++i) {
    bool injected = std::find(corrupted.begin(), corrupted.end(), lowest[i]) !=
                    corrupted.end();
    std::printf("  tuple %4zu  %+.5f  %s\n", lowest[i], importances[lowest[i]],
                injected ? "yes" : "no");
  }

  // Replace the suspects with clean ground truth (the "oracle" repair).
  OracleCleaner oracle(splits.train);
  Status repaired = oracle.Repair(&train_err, lowest);
  if (!repaired.ok()) {
    std::printf("repair failed: %s\n", repaired.ToString().c_str());
    return 1;
  }
  double acc_cleaned = evaluate_model(train_err);
  std::printf("\nCleaning some records improved accuracy from %.2f to %.2f.\n",
              acc_dirty, acc_cleaned);
  return 0;
}
