// The data-debugging challenge (Section 3.2 of the paper): a hidden-error
// training set, a budget-limited cleaning oracle scoring on a hidden test
// set, and a live leaderboard. This example plays three automated
// participants with different levels of sophistication.
//
// Build & run:  ./build/examples/cleaning_challenge

#include <cstdio>
#include <memory>
#include <numeric>

#include "nde/nde.h"

int main() {
  using namespace nde;

  DatasetSplits splits = LoadRecommendationLetters(500, 42);
  ChallengeOptions options;
  options.label_error_fraction = 0.15;
  options.cleaning_budget = 40;
  options.seed = 7;
  DataDebuggingChallenge challenge(
      splits.train, splits.valid, splits.test,
      []() { return std::make_unique<KnnClassifier>(1); }, options);

  std::printf("welcome to the data debugging challenge!\n");
  std::printf("training tuples: %zu (an unknown subset is corrupted)\n",
              challenge.dirty_train().size());
  std::printf("cleaning budget per participant: %zu tuples\n",
              options.cleaning_budget);
  std::printf("baseline hidden-test accuracy: %.4f\n\n",
              challenge.BaselineScore());

  // Participant 1: cleans the first `budget` tuples (no strategy).
  {
    std::vector<size_t> ids(options.cleaning_budget);
    std::iota(ids.begin(), ids.end(), size_t{0});
    double score = challenge.SubmitCleaningRequest("naive_nelly", ids).value();
    std::printf("naive_nelly cleaned the first %zu tuples -> score %.4f\n",
                ids.size(), score);
  }

  // Participant 2: ranks with cross-validated self-confidence.
  {
    std::vector<size_t> ranking =
        SelfConfidenceStrategy()
            .rank(challenge.dirty_train(), challenge.validation(), 3)
            .value();
    ranking.resize(options.cleaning_budget);
    double score =
        challenge.SubmitCleaningRequest("confident_carla", ranking).value();
    std::printf("confident_carla used self-confidence -> score %.4f\n", score);
  }

  // Participant 3: iterates — spends half the budget, re-ranks on the
  // partially cleaned view it maintains locally, spends the rest.
  {
    MlDataset working = challenge.dirty_train();
    std::vector<size_t> ranking =
        KnnShapleyStrategy().rank(working, challenge.validation(), 5).value();
    std::vector<size_t> first_half(
        ranking.begin(),
        ranking.begin() + static_cast<ptrdiff_t>(options.cleaning_budget / 2));
    double mid_score =
        challenge.SubmitCleaningRequest("shapley_sam", first_half).value();
    std::printf("shapley_sam after half the budget -> score %.4f\n", mid_score);
    // Simulate the oracle's effect locally by flipping suspect labels, then
    // re-rank the remainder.
    for (size_t id : first_half) {
      working.labels[id] = 1 - working.labels[id];  // Best local guess.
    }
    std::vector<size_t> second_ranking =
        KnnShapleyStrategy().rank(working, challenge.validation(), 6).value();
    std::vector<size_t> second_half;
    for (size_t id : second_ranking) {
      if (second_half.size() >= options.cleaning_budget / 2) break;
      if (std::find(first_half.begin(), first_half.end(), id) ==
          first_half.end()) {
        second_half.push_back(id);
      }
    }
    double final_score =
        challenge.SubmitCleaningRequest("shapley_sam", second_half).value();
    std::printf("shapley_sam after the full budget -> score %.4f\n",
                final_score);
  }

  std::printf("\n=== leaderboard ===\n");
  for (const auto& entry : challenge.Leaderboard()) {
    std::printf("  %s\n", entry.ToString().c_str());
  }
  return 0;
}
