# Empty dependencies file for nde_cli.
# This may be replaced when dependencies are built.
