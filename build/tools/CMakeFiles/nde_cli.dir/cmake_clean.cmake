file(REMOVE_RECURSE
  "CMakeFiles/nde_cli.dir/nde_cli.cc.o"
  "CMakeFiles/nde_cli.dir/nde_cli.cc.o.d"
  "nde_cli"
  "nde_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nde_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
