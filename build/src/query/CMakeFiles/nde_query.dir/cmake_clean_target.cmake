file(REMOVE_RECURSE
  "libnde_query.a"
)
