# Empty compiler generated dependencies file for nde_query.
# This may be replaced when dependencies are built.
