file(REMOVE_RECURSE
  "CMakeFiles/nde_query.dir/calibration.cc.o"
  "CMakeFiles/nde_query.dir/calibration.cc.o.d"
  "CMakeFiles/nde_query.dir/predictive_query.cc.o"
  "CMakeFiles/nde_query.dir/predictive_query.cc.o.d"
  "libnde_query.a"
  "libnde_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nde_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
