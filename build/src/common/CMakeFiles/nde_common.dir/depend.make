# Empty dependencies file for nde_common.
# This may be replaced when dependencies are built.
