file(REMOVE_RECURSE
  "CMakeFiles/nde_common.dir/rng.cc.o"
  "CMakeFiles/nde_common.dir/rng.cc.o.d"
  "CMakeFiles/nde_common.dir/status.cc.o"
  "CMakeFiles/nde_common.dir/status.cc.o.d"
  "CMakeFiles/nde_common.dir/string_util.cc.o"
  "CMakeFiles/nde_common.dir/string_util.cc.o.d"
  "libnde_common.a"
  "libnde_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nde_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
