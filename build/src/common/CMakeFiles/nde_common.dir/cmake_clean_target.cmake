file(REMOVE_RECURSE
  "libnde_common.a"
)
