# Empty compiler generated dependencies file for nde_cleaning.
# This may be replaced when dependencies are built.
