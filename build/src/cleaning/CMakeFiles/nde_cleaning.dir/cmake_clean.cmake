file(REMOVE_RECURSE
  "CMakeFiles/nde_cleaning.dir/challenge.cc.o"
  "CMakeFiles/nde_cleaning.dir/challenge.cc.o.d"
  "CMakeFiles/nde_cleaning.dir/cleaner.cc.o"
  "CMakeFiles/nde_cleaning.dir/cleaner.cc.o.d"
  "CMakeFiles/nde_cleaning.dir/imputation.cc.o"
  "CMakeFiles/nde_cleaning.dir/imputation.cc.o.d"
  "CMakeFiles/nde_cleaning.dir/strategies.cc.o"
  "CMakeFiles/nde_cleaning.dir/strategies.cc.o.d"
  "libnde_cleaning.a"
  "libnde_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nde_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
