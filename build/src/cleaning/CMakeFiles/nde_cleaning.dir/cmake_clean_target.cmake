file(REMOVE_RECURSE
  "libnde_cleaning.a"
)
