file(REMOVE_RECURSE
  "CMakeFiles/nde_uncertain.dir/affine.cc.o"
  "CMakeFiles/nde_uncertain.dir/affine.cc.o.d"
  "CMakeFiles/nde_uncertain.dir/certain_knn.cc.o"
  "CMakeFiles/nde_uncertain.dir/certain_knn.cc.o.d"
  "CMakeFiles/nde_uncertain.dir/certain_model.cc.o"
  "CMakeFiles/nde_uncertain.dir/certain_model.cc.o.d"
  "CMakeFiles/nde_uncertain.dir/fairness_range.cc.o"
  "CMakeFiles/nde_uncertain.dir/fairness_range.cc.o.d"
  "CMakeFiles/nde_uncertain.dir/interval.cc.o"
  "CMakeFiles/nde_uncertain.dir/interval.cc.o.d"
  "CMakeFiles/nde_uncertain.dir/multiplicity.cc.o"
  "CMakeFiles/nde_uncertain.dir/multiplicity.cc.o.d"
  "CMakeFiles/nde_uncertain.dir/poisoning.cc.o"
  "CMakeFiles/nde_uncertain.dir/poisoning.cc.o.d"
  "CMakeFiles/nde_uncertain.dir/zonotope_trainer.cc.o"
  "CMakeFiles/nde_uncertain.dir/zonotope_trainer.cc.o.d"
  "CMakeFiles/nde_uncertain.dir/zorro.cc.o"
  "CMakeFiles/nde_uncertain.dir/zorro.cc.o.d"
  "libnde_uncertain.a"
  "libnde_uncertain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nde_uncertain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
