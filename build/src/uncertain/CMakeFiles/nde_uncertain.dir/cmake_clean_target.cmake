file(REMOVE_RECURSE
  "libnde_uncertain.a"
)
