# Empty dependencies file for nde_uncertain.
# This may be replaced when dependencies are built.
