
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uncertain/affine.cc" "src/uncertain/CMakeFiles/nde_uncertain.dir/affine.cc.o" "gcc" "src/uncertain/CMakeFiles/nde_uncertain.dir/affine.cc.o.d"
  "/root/repo/src/uncertain/certain_knn.cc" "src/uncertain/CMakeFiles/nde_uncertain.dir/certain_knn.cc.o" "gcc" "src/uncertain/CMakeFiles/nde_uncertain.dir/certain_knn.cc.o.d"
  "/root/repo/src/uncertain/certain_model.cc" "src/uncertain/CMakeFiles/nde_uncertain.dir/certain_model.cc.o" "gcc" "src/uncertain/CMakeFiles/nde_uncertain.dir/certain_model.cc.o.d"
  "/root/repo/src/uncertain/fairness_range.cc" "src/uncertain/CMakeFiles/nde_uncertain.dir/fairness_range.cc.o" "gcc" "src/uncertain/CMakeFiles/nde_uncertain.dir/fairness_range.cc.o.d"
  "/root/repo/src/uncertain/interval.cc" "src/uncertain/CMakeFiles/nde_uncertain.dir/interval.cc.o" "gcc" "src/uncertain/CMakeFiles/nde_uncertain.dir/interval.cc.o.d"
  "/root/repo/src/uncertain/multiplicity.cc" "src/uncertain/CMakeFiles/nde_uncertain.dir/multiplicity.cc.o" "gcc" "src/uncertain/CMakeFiles/nde_uncertain.dir/multiplicity.cc.o.d"
  "/root/repo/src/uncertain/poisoning.cc" "src/uncertain/CMakeFiles/nde_uncertain.dir/poisoning.cc.o" "gcc" "src/uncertain/CMakeFiles/nde_uncertain.dir/poisoning.cc.o.d"
  "/root/repo/src/uncertain/zonotope_trainer.cc" "src/uncertain/CMakeFiles/nde_uncertain.dir/zonotope_trainer.cc.o" "gcc" "src/uncertain/CMakeFiles/nde_uncertain.dir/zonotope_trainer.cc.o.d"
  "/root/repo/src/uncertain/zorro.cc" "src/uncertain/CMakeFiles/nde_uncertain.dir/zorro.cc.o" "gcc" "src/uncertain/CMakeFiles/nde_uncertain.dir/zorro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nde_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/nde_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nde_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
