file(REMOVE_RECURSE
  "libnde_pipeline.a"
)
