file(REMOVE_RECURSE
  "CMakeFiles/nde_pipeline.dir/encoders.cc.o"
  "CMakeFiles/nde_pipeline.dir/encoders.cc.o.d"
  "CMakeFiles/nde_pipeline.dir/inspection.cc.o"
  "CMakeFiles/nde_pipeline.dir/inspection.cc.o.d"
  "CMakeFiles/nde_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/nde_pipeline.dir/pipeline.cc.o.d"
  "CMakeFiles/nde_pipeline.dir/plan.cc.o"
  "CMakeFiles/nde_pipeline.dir/plan.cc.o.d"
  "CMakeFiles/nde_pipeline.dir/provenance.cc.o"
  "CMakeFiles/nde_pipeline.dir/provenance.cc.o.d"
  "libnde_pipeline.a"
  "libnde_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nde_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
