
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/encoders.cc" "src/pipeline/CMakeFiles/nde_pipeline.dir/encoders.cc.o" "gcc" "src/pipeline/CMakeFiles/nde_pipeline.dir/encoders.cc.o.d"
  "/root/repo/src/pipeline/inspection.cc" "src/pipeline/CMakeFiles/nde_pipeline.dir/inspection.cc.o" "gcc" "src/pipeline/CMakeFiles/nde_pipeline.dir/inspection.cc.o.d"
  "/root/repo/src/pipeline/pipeline.cc" "src/pipeline/CMakeFiles/nde_pipeline.dir/pipeline.cc.o" "gcc" "src/pipeline/CMakeFiles/nde_pipeline.dir/pipeline.cc.o.d"
  "/root/repo/src/pipeline/plan.cc" "src/pipeline/CMakeFiles/nde_pipeline.dir/plan.cc.o" "gcc" "src/pipeline/CMakeFiles/nde_pipeline.dir/plan.cc.o.d"
  "/root/repo/src/pipeline/provenance.cc" "src/pipeline/CMakeFiles/nde_pipeline.dir/provenance.cc.o" "gcc" "src/pipeline/CMakeFiles/nde_pipeline.dir/provenance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nde_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nde_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/nde_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nde_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
