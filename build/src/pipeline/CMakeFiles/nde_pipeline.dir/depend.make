# Empty dependencies file for nde_pipeline.
# This may be replaced when dependencies are built.
