file(REMOVE_RECURSE
  "CMakeFiles/nde_ml.dir/dataset.cc.o"
  "CMakeFiles/nde_ml.dir/dataset.cc.o.d"
  "CMakeFiles/nde_ml.dir/decision_tree.cc.o"
  "CMakeFiles/nde_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/nde_ml.dir/knn.cc.o"
  "CMakeFiles/nde_ml.dir/knn.cc.o.d"
  "CMakeFiles/nde_ml.dir/linear_regression.cc.o"
  "CMakeFiles/nde_ml.dir/linear_regression.cc.o.d"
  "CMakeFiles/nde_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/nde_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/nde_ml.dir/metrics.cc.o"
  "CMakeFiles/nde_ml.dir/metrics.cc.o.d"
  "CMakeFiles/nde_ml.dir/model.cc.o"
  "CMakeFiles/nde_ml.dir/model.cc.o.d"
  "CMakeFiles/nde_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/nde_ml.dir/naive_bayes.cc.o.d"
  "CMakeFiles/nde_ml.dir/svm.cc.o"
  "CMakeFiles/nde_ml.dir/svm.cc.o.d"
  "CMakeFiles/nde_ml.dir/unlearning.cc.o"
  "CMakeFiles/nde_ml.dir/unlearning.cc.o.d"
  "libnde_ml.a"
  "libnde_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nde_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
