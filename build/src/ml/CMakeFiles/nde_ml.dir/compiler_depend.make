# Empty compiler generated dependencies file for nde_ml.
# This may be replaced when dependencies are built.
