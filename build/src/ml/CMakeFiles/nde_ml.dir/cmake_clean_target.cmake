file(REMOVE_RECURSE
  "libnde_ml.a"
)
