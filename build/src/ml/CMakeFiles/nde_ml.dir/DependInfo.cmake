
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/nde_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/nde_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/nde_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/nde_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/nde_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/nde_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/linear_regression.cc" "src/ml/CMakeFiles/nde_ml.dir/linear_regression.cc.o" "gcc" "src/ml/CMakeFiles/nde_ml.dir/linear_regression.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/ml/CMakeFiles/nde_ml.dir/logistic_regression.cc.o" "gcc" "src/ml/CMakeFiles/nde_ml.dir/logistic_regression.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/nde_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/nde_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/model.cc" "src/ml/CMakeFiles/nde_ml.dir/model.cc.o" "gcc" "src/ml/CMakeFiles/nde_ml.dir/model.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/ml/CMakeFiles/nde_ml.dir/naive_bayes.cc.o" "gcc" "src/ml/CMakeFiles/nde_ml.dir/naive_bayes.cc.o.d"
  "/root/repo/src/ml/svm.cc" "src/ml/CMakeFiles/nde_ml.dir/svm.cc.o" "gcc" "src/ml/CMakeFiles/nde_ml.dir/svm.cc.o.d"
  "/root/repo/src/ml/unlearning.cc" "src/ml/CMakeFiles/nde_ml.dir/unlearning.cc.o" "gcc" "src/ml/CMakeFiles/nde_ml.dir/unlearning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nde_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nde_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
