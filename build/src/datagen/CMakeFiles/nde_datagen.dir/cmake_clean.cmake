file(REMOVE_RECURSE
  "CMakeFiles/nde_datagen.dir/synthetic.cc.o"
  "CMakeFiles/nde_datagen.dir/synthetic.cc.o.d"
  "libnde_datagen.a"
  "libnde_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nde_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
