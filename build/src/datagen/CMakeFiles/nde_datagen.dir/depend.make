# Empty dependencies file for nde_datagen.
# This may be replaced when dependencies are built.
