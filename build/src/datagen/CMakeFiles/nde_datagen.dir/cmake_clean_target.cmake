file(REMOVE_RECURSE
  "libnde_datagen.a"
)
