file(REMOVE_RECURSE
  "libnde_datascope.a"
)
