file(REMOVE_RECURSE
  "CMakeFiles/nde_datascope.dir/datascope.cc.o"
  "CMakeFiles/nde_datascope.dir/datascope.cc.o.d"
  "CMakeFiles/nde_datascope.dir/whatif.cc.o"
  "CMakeFiles/nde_datascope.dir/whatif.cc.o.d"
  "libnde_datascope.a"
  "libnde_datascope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nde_datascope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
