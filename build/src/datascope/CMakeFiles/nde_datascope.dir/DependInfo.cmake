
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datascope/datascope.cc" "src/datascope/CMakeFiles/nde_datascope.dir/datascope.cc.o" "gcc" "src/datascope/CMakeFiles/nde_datascope.dir/datascope.cc.o.d"
  "/root/repo/src/datascope/whatif.cc" "src/datascope/CMakeFiles/nde_datascope.dir/whatif.cc.o" "gcc" "src/datascope/CMakeFiles/nde_datascope.dir/whatif.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nde_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/nde_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/nde_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/importance/CMakeFiles/nde_importance.dir/DependInfo.cmake"
  "/root/repo/build/src/cleaning/CMakeFiles/nde_cleaning.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/nde_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nde_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nde_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
