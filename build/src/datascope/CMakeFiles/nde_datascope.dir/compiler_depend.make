# Empty compiler generated dependencies file for nde_datascope.
# This may be replaced when dependencies are built.
