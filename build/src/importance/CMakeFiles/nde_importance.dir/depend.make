# Empty dependencies file for nde_importance.
# This may be replaced when dependencies are built.
