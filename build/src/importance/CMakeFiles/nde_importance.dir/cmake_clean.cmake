file(REMOVE_RECURSE
  "CMakeFiles/nde_importance.dir/fairness_debugging.cc.o"
  "CMakeFiles/nde_importance.dir/fairness_debugging.cc.o.d"
  "CMakeFiles/nde_importance.dir/game_values.cc.o"
  "CMakeFiles/nde_importance.dir/game_values.cc.o.d"
  "CMakeFiles/nde_importance.dir/grouped.cc.o"
  "CMakeFiles/nde_importance.dir/grouped.cc.o.d"
  "CMakeFiles/nde_importance.dir/influence.cc.o"
  "CMakeFiles/nde_importance.dir/influence.cc.o.d"
  "CMakeFiles/nde_importance.dir/knn_shapley.cc.o"
  "CMakeFiles/nde_importance.dir/knn_shapley.cc.o.d"
  "CMakeFiles/nde_importance.dir/label_scores.cc.o"
  "CMakeFiles/nde_importance.dir/label_scores.cc.o.d"
  "CMakeFiles/nde_importance.dir/utility.cc.o"
  "CMakeFiles/nde_importance.dir/utility.cc.o.d"
  "libnde_importance.a"
  "libnde_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nde_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
