
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/importance/fairness_debugging.cc" "src/importance/CMakeFiles/nde_importance.dir/fairness_debugging.cc.o" "gcc" "src/importance/CMakeFiles/nde_importance.dir/fairness_debugging.cc.o.d"
  "/root/repo/src/importance/game_values.cc" "src/importance/CMakeFiles/nde_importance.dir/game_values.cc.o" "gcc" "src/importance/CMakeFiles/nde_importance.dir/game_values.cc.o.d"
  "/root/repo/src/importance/grouped.cc" "src/importance/CMakeFiles/nde_importance.dir/grouped.cc.o" "gcc" "src/importance/CMakeFiles/nde_importance.dir/grouped.cc.o.d"
  "/root/repo/src/importance/influence.cc" "src/importance/CMakeFiles/nde_importance.dir/influence.cc.o" "gcc" "src/importance/CMakeFiles/nde_importance.dir/influence.cc.o.d"
  "/root/repo/src/importance/knn_shapley.cc" "src/importance/CMakeFiles/nde_importance.dir/knn_shapley.cc.o" "gcc" "src/importance/CMakeFiles/nde_importance.dir/knn_shapley.cc.o.d"
  "/root/repo/src/importance/label_scores.cc" "src/importance/CMakeFiles/nde_importance.dir/label_scores.cc.o" "gcc" "src/importance/CMakeFiles/nde_importance.dir/label_scores.cc.o.d"
  "/root/repo/src/importance/utility.cc" "src/importance/CMakeFiles/nde_importance.dir/utility.cc.o" "gcc" "src/importance/CMakeFiles/nde_importance.dir/utility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nde_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/nde_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nde_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nde_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
