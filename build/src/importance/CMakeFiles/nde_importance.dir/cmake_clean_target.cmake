file(REMOVE_RECURSE
  "libnde_importance.a"
)
