# Empty compiler generated dependencies file for nde_data.
# This may be replaced when dependencies are built.
