file(REMOVE_RECURSE
  "CMakeFiles/nde_data.dir/csv.cc.o"
  "CMakeFiles/nde_data.dir/csv.cc.o.d"
  "CMakeFiles/nde_data.dir/table.cc.o"
  "CMakeFiles/nde_data.dir/table.cc.o.d"
  "CMakeFiles/nde_data.dir/value.cc.o"
  "CMakeFiles/nde_data.dir/value.cc.o.d"
  "libnde_data.a"
  "libnde_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nde_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
