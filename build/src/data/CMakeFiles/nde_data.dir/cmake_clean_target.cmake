file(REMOVE_RECURSE
  "libnde_data.a"
)
