# Empty dependencies file for nde_linalg.
# This may be replaced when dependencies are built.
