file(REMOVE_RECURSE
  "libnde_linalg.a"
)
