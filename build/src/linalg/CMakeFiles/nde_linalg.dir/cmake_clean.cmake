file(REMOVE_RECURSE
  "CMakeFiles/nde_linalg.dir/matrix.cc.o"
  "CMakeFiles/nde_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/nde_linalg.dir/solve.cc.o"
  "CMakeFiles/nde_linalg.dir/solve.cc.o.d"
  "libnde_linalg.a"
  "libnde_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nde_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
