file(REMOVE_RECURSE
  "../bench/challenge_leaderboard"
  "../bench/challenge_leaderboard.pdb"
  "CMakeFiles/challenge_leaderboard.dir/challenge_leaderboard.cc.o"
  "CMakeFiles/challenge_leaderboard.dir/challenge_leaderboard.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/challenge_leaderboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
