# Empty compiler generated dependencies file for challenge_leaderboard.
# This may be replaced when dependencies are built.
