# Empty compiler generated dependencies file for pipeline_screening.
# This may be replaced when dependencies are built.
