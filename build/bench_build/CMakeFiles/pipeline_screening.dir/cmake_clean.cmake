file(REMOVE_RECURSE
  "../bench/pipeline_screening"
  "../bench/pipeline_screening.pdb"
  "CMakeFiles/pipeline_screening.dir/pipeline_screening.cc.o"
  "CMakeFiles/pipeline_screening.dir/pipeline_screening.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
