# Empty compiler generated dependencies file for complaint_debugging.
# This may be replaced when dependencies are built.
