file(REMOVE_RECURSE
  "../bench/complaint_debugging"
  "../bench/complaint_debugging.pdb"
  "CMakeFiles/complaint_debugging.dir/complaint_debugging.cc.o"
  "CMakeFiles/complaint_debugging.dir/complaint_debugging.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complaint_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
