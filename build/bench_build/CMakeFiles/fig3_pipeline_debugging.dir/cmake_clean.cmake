file(REMOVE_RECURSE
  "../bench/fig3_pipeline_debugging"
  "../bench/fig3_pipeline_debugging.pdb"
  "CMakeFiles/fig3_pipeline_debugging.dir/fig3_pipeline_debugging.cc.o"
  "CMakeFiles/fig3_pipeline_debugging.dir/fig3_pipeline_debugging.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_pipeline_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
