# Empty dependencies file for fig3_pipeline_debugging.
# This may be replaced when dependencies are built.
