file(REMOVE_RECURSE
  "../bench/method_comparison"
  "../bench/method_comparison.pdb"
  "CMakeFiles/method_comparison.dir/method_comparison.cc.o"
  "CMakeFiles/method_comparison.dir/method_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
