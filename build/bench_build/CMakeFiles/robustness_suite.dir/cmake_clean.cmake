file(REMOVE_RECURSE
  "../bench/robustness_suite"
  "../bench/robustness_suite.pdb"
  "CMakeFiles/robustness_suite.dir/robustness_suite.cc.o"
  "CMakeFiles/robustness_suite.dir/robustness_suite.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
