# Empty dependencies file for robustness_suite.
# This may be replaced when dependencies are built.
