file(REMOVE_RECURSE
  "../bench/fig2_cleaning_recovery"
  "../bench/fig2_cleaning_recovery.pdb"
  "CMakeFiles/fig2_cleaning_recovery.dir/fig2_cleaning_recovery.cc.o"
  "CMakeFiles/fig2_cleaning_recovery.dir/fig2_cleaning_recovery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cleaning_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
