# Empty dependencies file for fig2_cleaning_recovery.
# This may be replaced when dependencies are built.
