# Empty compiler generated dependencies file for fig4_zorro_uncertainty.
# This may be replaced when dependencies are built.
