# Empty dependencies file for unlearning_latency.
# This may be replaced when dependencies are built.
