file(REMOVE_RECURSE
  "../bench/unlearning_latency"
  "../bench/unlearning_latency.pdb"
  "CMakeFiles/unlearning_latency.dir/unlearning_latency.cc.o"
  "CMakeFiles/unlearning_latency.dir/unlearning_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unlearning_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
