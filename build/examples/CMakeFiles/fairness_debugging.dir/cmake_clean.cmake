file(REMOVE_RECURSE
  "CMakeFiles/fairness_debugging.dir/fairness_debugging.cpp.o"
  "CMakeFiles/fairness_debugging.dir/fairness_debugging.cpp.o.d"
  "fairness_debugging"
  "fairness_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
