# Empty dependencies file for fairness_debugging.
# This may be replaced when dependencies are built.
