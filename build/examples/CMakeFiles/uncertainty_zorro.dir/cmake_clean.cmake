file(REMOVE_RECURSE
  "CMakeFiles/uncertainty_zorro.dir/uncertainty_zorro.cpp.o"
  "CMakeFiles/uncertainty_zorro.dir/uncertainty_zorro.cpp.o.d"
  "uncertainty_zorro"
  "uncertainty_zorro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncertainty_zorro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
