# Empty compiler generated dependencies file for uncertainty_zorro.
# This may be replaced when dependencies are built.
