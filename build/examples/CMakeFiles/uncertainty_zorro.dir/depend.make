# Empty dependencies file for uncertainty_zorro.
# This may be replaced when dependencies are built.
