# Empty compiler generated dependencies file for pipeline_debugging.
# This may be replaced when dependencies are built.
