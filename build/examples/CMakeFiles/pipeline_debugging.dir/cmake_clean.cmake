file(REMOVE_RECURSE
  "CMakeFiles/pipeline_debugging.dir/pipeline_debugging.cpp.o"
  "CMakeFiles/pipeline_debugging.dir/pipeline_debugging.cpp.o.d"
  "pipeline_debugging"
  "pipeline_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
