# Empty dependencies file for rag_importance.
# This may be replaced when dependencies are built.
