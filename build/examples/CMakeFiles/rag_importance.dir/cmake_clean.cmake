file(REMOVE_RECURSE
  "CMakeFiles/rag_importance.dir/rag_importance.cpp.o"
  "CMakeFiles/rag_importance.dir/rag_importance.cpp.o.d"
  "rag_importance"
  "rag_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rag_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
