# Empty dependencies file for cleaning_challenge.
# This may be replaced when dependencies are built.
