file(REMOVE_RECURSE
  "CMakeFiles/cleaning_challenge.dir/cleaning_challenge.cpp.o"
  "CMakeFiles/cleaning_challenge.dir/cleaning_challenge.cpp.o.d"
  "cleaning_challenge"
  "cleaning_challenge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaning_challenge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
