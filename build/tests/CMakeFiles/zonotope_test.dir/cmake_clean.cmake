file(REMOVE_RECURSE
  "CMakeFiles/zonotope_test.dir/zonotope_test.cc.o"
  "CMakeFiles/zonotope_test.dir/zonotope_test.cc.o.d"
  "zonotope_test"
  "zonotope_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zonotope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
