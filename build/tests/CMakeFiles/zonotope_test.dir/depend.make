# Empty dependencies file for zonotope_test.
# This may be replaced when dependencies are built.
