file(REMOVE_RECURSE
  "CMakeFiles/datascope_test.dir/datascope_test.cc.o"
  "CMakeFiles/datascope_test.dir/datascope_test.cc.o.d"
  "datascope_test"
  "datascope_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datascope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
