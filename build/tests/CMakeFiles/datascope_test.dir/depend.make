# Empty dependencies file for datascope_test.
# This may be replaced when dependencies are built.
