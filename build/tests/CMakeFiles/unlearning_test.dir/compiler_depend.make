# Empty compiler generated dependencies file for unlearning_test.
# This may be replaced when dependencies are built.
