file(REMOVE_RECURSE
  "CMakeFiles/unlearning_test.dir/unlearning_test.cc.o"
  "CMakeFiles/unlearning_test.dir/unlearning_test.cc.o.d"
  "unlearning_test"
  "unlearning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unlearning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
