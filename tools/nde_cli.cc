// nde_cli — command-line data debugging for CSV files.
//
// Subcommands:
//
//   nde_cli screen <table.csv> --label <col> [--max-null 0.2]
//       Runs the source-data screens (null fractions, class balance,
//       neighborhood label-error screen) on one CSV. Exit code 1 when any
//       error-severity issue fires, 0 otherwise.
//
//   nde_cli importance <train.csv> <valid.csv> --label <col>
//           [--method knn_shapley|influence|aum|self_confidence|loo]
//           [--top 25]
//       Encodes both tables with an automatic column transformer, ranks the
//       training rows by the chosen importance method (most suspect first)
//       and prints the top rows with their scores.
//
//   nde_cli impute <table.csv> --column <col>
//           [--strategy mean|median|most_frequent] [--out <out.csv>]
//       Fills the column's missing values and writes the repaired CSV.
//
//   nde_cli serve [--port 0] [--job-workers 1] [--max-queue 8]
//           [--artifact-dir <dir>]
//       Runs the async importance-job API on 127.0.0.1: POST /jobs submits a
//       CSV + algorithm + options, GET /jobs/<id> polls, DELETE /jobs/<id>
//       cancels, GET /algorithmz lists every algorithm with its typed
//       options. The observability endpoints (/healthz /metrics /varz
//       /tracez /profilez) are served on the same port. Ctrl-C stops.
//
//   nde_cli --list-algorithms
//       Prints the algorithm registry: every estimator name with its
//       options, types, defaults, and docs.
//
// Estimators are resolved through the algorithm registry
// (src/nde/registry.h); `--set name=value` (repeatable, importance and
// pipeline mode) sets any declared option by name, with typed validation.
//
// Global flags (any subcommand):
//
//   --metrics            print the telemetry metrics table after the command
//   --prometheus         print metrics in Prometheus text format instead
//   --trace <out.json>   write a Chrome trace_event JSON of the run,
//                        loadable in about:tracing or https://ui.perfetto.dev
//   --trace-parent <tp>  adopt a W3C traceparent ("00-<32 hex trace id>-
//                        <16 hex span id>-<2 hex flags>") as the run's root
//                        trace context, so spans, logs, and the --report
//                        artifact carry the caller's trace id; without it a
//                        fresh trace id is minted whenever telemetry is on
//   --threads <N>        worker threads for parallel estimators (default:
//                        hardware concurrency; results are identical for any
//                        N at a fixed seed)
//   --serve <port>       serve /healthz /metrics /varz /tracez on
//                        127.0.0.1:<port> while the command runs (0 picks an
//                        ephemeral port, announced on stderr)
//   --report <out.json>  write a JSON run report (invocation config, timing,
//                        convergence curve, metrics, top trace spans)
//   --profile <out.folded>  run the sampling profiler + allocation accounting
//                        for the whole command and write folded stacks
//                        (flamegraph input: one "frame;frame count" line per
//                        unique stack) to the file; a profile summary also
//                        lands in --report and on /profilez under --serve.
//                        Purely observational: results are bit-identical with
//                        or without it.
//   --log-level <level>  debug|info|warning|error (default warning); info
//                        enables live progress/ETA lines for estimators
//   --log-json           emit log lines as JSON objects instead of text
//
// Importance (pipeline mode) fast-path flags:
//
//   --utility-cache      memoize utility values in the sharded subset cache
//                        (bit-identical results; hit/miss/eviction counters
//                        show up under --metrics as utility_cache.*)
//   --warm-start         allow approximate warm-started prefix training for
//                        models without an exact incremental scorer (changes
//                        values slightly, like truncation; deterministic)
//   --model <name>       proxy model for the game estimators: knn (default) |
//                        gaussian_nb | logreg (knn and gaussian_nb scan
//                        prefixes exactly; logreg pairs with --warm-start)
//   --float32            float32 distance storage on the KNN prefix-scan
//                        kernel: faster, approximate (changes bits;
//                        deterministic for any thread count). The SoA kernel
//                        and arena knobs stay on by default and are exact —
//                        flip them off via --set soa_kernels=false /
//                        --set arena=false only to benchmark.
//   --retries <N>        retry budget per utility evaluation for transient
//                        (unavailable/resource_exhausted) failures (default 2)
//   --retry-backoff-ms <ms>  base retry backoff, doubled per attempt and
//                        capped at 10x (default 25)
//
// Exit codes: 0 success; 1 screen found error-severity issues; 2 bad usage or
// configuration; 3 runtime failure (I/O, pipeline, or estimator error —
// including a fault injected via NDE_FAILPOINTS). Runtime failures also land
// as a structured "error" object in the --report artifact and flip /healthz
// to 503 while --serve is up.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "nde/nde.h"

namespace nde {
namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;
  std::vector<std::string> sets;  ///< "name=value" from repeatable --set
  std::string error;  ///< Non-empty when parsing failed (e.g. missing value).
};

/// Flags that never take a value (so a following positional is not eaten).
const std::set<std::string>& BooleanFlags() {
  static const std::set<std::string>* flags =
      new std::set<std::string>{"metrics", "prometheus", "utility-cache",
                                "warm-start", "float32", "log-json"};
  return *flags;
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--")) {
      std::string key = arg.substr(2);
      if (BooleanFlags().count(key) > 0) {
        args.flags[key] = "true";
        continue;
      }
      if (i + 1 >= argc || StartsWith(argv[i + 1], "--")) {
        args.error = StrFormat("flag '--%s' requires a value", key.c_str());
        return args;
      }
      if (key == "set") {
        // Repeatable: each occurrence is one "name=value" assignment.
        args.sets.push_back(argv[++i]);
        continue;
      }
      args.flags[key] = argv[++i];
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

std::string FlagOr(const Args& args, const std::string& key,
                   const std::string& fallback) {
  auto it = args.flags.find(key);
  return it == args.flags.end() ? fallback : it->second;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 2;
}

/// Active --report sink, if any; estimator progress is mirrored into it.
telemetry::RunReport* g_report = nullptr;

/// Runtime failure (I/O, pipeline, estimator): exit code 3, distinct from
/// bad usage (2). The failure also flips /healthz to degraded and lands as a
/// structured "error" object in the --report artifact.
int FailRuntime(const Status& status) {
  telemetry::SetDegraded(status.ToString());
  if (g_report != nullptr) g_report->SetError(status, 3);
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 3;
}

/// Routes a Status to the right exit code: invalid_argument is the caller's
/// mistake (usage, 2); every other code is a runtime failure (3).
int FailStatus(const Status& status) {
  if (status.code() == StatusCode::kInvalidArgument) {
    return Fail(status.ToString());
  }
  return FailRuntime(status);
}

/// The CLI's estimator progress hook: records every update into the active
/// run report and, at --log-level info or below, prints a progress/ETA line
/// at most every 200 ms (the final update always prints). Purely
/// observational — see common/progress.h.
ProgressCallback MakeCliProgress() {
  using Clock = std::chrono::steady_clock;
  Clock::time_point start = Clock::now();
  auto last_print =
      std::make_shared<Clock::time_point>(start - std::chrono::seconds(1));
  return [start, last_print](const ProgressUpdate& update) {
    if (g_report != nullptr) g_report->RecordProgress(update);
    if (!log::IsEnabled(log::Level::kInfo)) return;
    Clock::time_point now = Clock::now();
    bool final_update = update.completed >= update.total;
    if (!final_update &&
        now - *last_print < std::chrono::milliseconds(200)) {
      return;
    }
    *last_print = now;
    std::string message = StrFormat("%s: %zu/%zu", update.phase,
                                    update.completed, update.total);
    double elapsed = std::chrono::duration<double>(now - start).count();
    if (update.completed > 0 && !final_update && elapsed > 0.0) {
      double eta = elapsed * static_cast<double>(update.total -
                                                 update.completed) /
                   static_cast<double>(update.completed);
      message += StrFormat(" eta=%.1fs", eta);
    }
    if (update.utility_evaluations > 0) {
      message += StrFormat(" evals=%zu", update.utility_evaluations);
    }
    if (update.max_std_error > 0.0) {
      message += StrFormat(" max_std_error=%.4g", update.max_std_error);
    }
    log::Emit(log::Level::kInfo, "nde_cli.cc", 0, message);
  };
}

/// Rejects flags outside `allowed` (plus the global telemetry flags) so a
/// typo like --labell fails loudly instead of silently using the default.
Status CheckFlags(const Args& args, const std::string& command,
                  const std::set<std::string>& allowed) {
  if (!args.sets.empty() && allowed.count("set") == 0) {
    return Status::InvalidArgument(
        StrFormat("unknown flag '--set' for '%s'", command.c_str()));
  }
  for (const auto& [key, value] : args.flags) {
    if (allowed.count(key) > 0 || key == "metrics" || key == "prometheus" ||
        key == "trace" || key == "trace-parent" || key == "threads" ||
        key == "serve" || key == "report" || key == "profile" ||
        key == "log-level" || key == "log-json") {
      continue;
    }
    return Status::InvalidArgument(StrFormat(
        "unknown flag '--%s' for '%s'", key.c_str(), command.c_str()));
  }
  return Status::OK();
}

/// Applies every --set name=value assignment strictly: unknown options and
/// unparsable values are usage errors, unlike the legacy flags (which land
/// only on algorithms declaring the matching option).
Status ApplySetFlags(const Args& args, AlgorithmInstance* algorithm) {
  for (const std::string& assignment : args.sets) {
    size_t eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("--set expects name=value, got '" +
                                     assignment + "'");
    }
    NDE_RETURN_IF_ERROR(algorithm->Configure(assignment.substr(0, eq),
                                             assignment.substr(eq + 1)));
  }
  return Status::OK();
}

/// Loads a CSV and extracts (features via auto transformer, labels).
Result<MlDataset> LoadDataset(const std::string& path,
                              const std::string& label,
                              ColumnTransformer* transformer,
                              bool fit_transformer) {
  NDE_ASSIGN_OR_RETURN(Table table, ReadCsvFile(path));
  NDE_ASSIGN_OR_RETURN(size_t label_col, table.schema().FieldIndex(label));
  if (table.schema().field(label_col).type != DataType::kInt64) {
    return Status::InvalidArgument("label column must be integer-typed");
  }
  MlDataset data;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.At(r, label_col);
    if (v.is_null() || v.as_int64() < 0) {
      return Status::InvalidArgument(
          StrFormat("row %zu has a null/negative label", r));
    }
    data.labels.push_back(static_cast<int>(v.as_int64()));
  }
  if (fit_transformer) {
    NDE_ASSIGN_OR_RETURN(*transformer, MakeAutoTransformer(table, {label}));
  }
  NDE_ASSIGN_OR_RETURN(data.features, transformer->Transform(table));
  return data;
}

int RunScreen(const Args& args) {
  Status flags_ok = CheckFlags(args, "screen", {"label", "max-null"});
  if (!flags_ok.ok()) return Fail(flags_ok.ToString());
  if (args.positional.size() != 1) {
    return Fail("usage: nde_cli screen <table.csv> --label <col>");
  }
  Result<Table> table = ReadCsvFile(args.positional[0]);
  if (!table.ok()) return FailStatus(table.status());
  double max_null = std::stod(FlagOr(args, "max-null", "0.2"));

  std::vector<PipelineIssue> issues = CheckNullFractions(*table, max_null);
  std::string label = FlagOr(args, "label", "");
  if (!label.empty()) {
    ColumnTransformer transformer;
    Result<MlDataset> data =
        LoadDataset(args.positional[0], label, &transformer, true);
    if (!data.ok()) return FailStatus(data.status());
    auto balance = CheckClassBalance(data->labels, 0.1);
    issues.insert(issues.end(), balance.begin(), balance.end());
    auto labels = CheckLabelErrors(*data, 5, 0.2);
    issues.insert(issues.end(), labels.begin(), labels.end());
  }

  if (issues.empty()) {
    std::printf("all screens pass (%zu rows, %zu columns)\n",
                table->num_rows(), table->num_columns());
    return 0;
  }
  bool has_error = false;
  for (const PipelineIssue& issue : issues) {
    std::printf("%s\n", issue.ToString().c_str());
    if (issue.severity == IssueSeverity::kError) has_error = true;
  }
  return has_error ? 1 : 0;
}

/// Single-CSV importance: runs the file through a real MlPipeline (source ->
/// filter -> project -> encode) under a PlanProfiler, prints the annotated
/// plan with per-operator timings, then ranks the training rows with a
/// registry-resolved estimator over an internal train/validation split (the
/// shared engine in src/nde/engine.h — the same code path the HTTP job API
/// runs, so CLI and API results are bit-identical). This is the fully
/// instrumented path: with --trace, the output JSON contains one
/// complete-event per plan operator and per Shapley iteration batch.
int RunImportancePipeline(const Args& args) {
  std::string label = FlagOr(args, "label", "");
  if (label.empty()) return Fail("--label is required");
  std::string method = FlagOr(args, "method", "tmc_shapley");
  size_t top = static_cast<size_t>(std::stoul(FlagOr(args, "top", "25")));
  size_t permutations =
      static_cast<size_t>(std::stoul(FlagOr(args, "permutations", "8")));
  uint64_t seed = std::stoull(FlagOr(args, "seed", "42"));
  bool use_cache = args.flags.count("utility-cache") > 0;
  bool warm_start = args.flags.count("warm-start") > 0;
  bool float32 = args.flags.count("float32") > 0;
  std::string model = FlagOr(args, "model", "knn");
  size_t retries =
      static_cast<size_t>(std::stoul(FlagOr(args, "retries", "2")));
  uint32_t retry_backoff_ms = static_cast<uint32_t>(
      std::stoul(FlagOr(args, "retry-backoff-ms", "25")));
  if (g_report != nullptr) {
    g_report->SetConfig("method", method);
    g_report->SetConfig("seed", static_cast<int64_t>(seed));
    g_report->SetConfig("threads",
                        static_cast<int64_t>(DefaultNumThreads()));
    g_report->SetConfig("permutations", static_cast<int64_t>(permutations));
    g_report->SetConfig("utility_cache", use_cache);
    g_report->SetConfig("warm_start", warm_start);
    g_report->SetConfig("float32", float32);
    g_report->SetConfig("model", model);
    g_report->SetConfig("retries", static_cast<int64_t>(retries));
    g_report->SetConfig("retry_backoff_ms",
                        static_cast<int64_t>(retry_backoff_ms));
  }

  Result<std::unique_ptr<AlgorithmInstance>> algorithm =
      AlgorithmRegistry::Global().Create(method);
  if (!algorithm.ok()) return Fail(algorithm.status().ToString());

  // Map the legacy flags onto registry options. Each lands only on
  // algorithms declaring the matching option, preserving the pre-registry
  // behavior where e.g. knn_shapley silently ignored --permutations; only
  // --set assignments are strict.
  auto configure = [&](const std::string& option,
                       const std::string& value) -> Status {
    if (!(*algorithm)->HasOption(option)) return Status::OK();
    return (*algorithm)->Configure(option, value);
  };
  Status configured = Status::OK();
  auto merge = [&configured](const Status& status) {
    if (configured.ok()) configured = status;
  };
  merge(configure("seed", FlagOr(args, "seed", "42")));
  merge(configure("num_permutations", StrFormat("%zu", permutations)));
  merge(configure("num_samples", StrFormat("%zu", permutations * 8)));
  merge(configure("samples_per_unit",
                  StrFormat("%zu", std::max<size_t>(permutations, 2))));
  merge(configure("utility_cache", use_cache ? "true" : "false"));
  merge(configure("warm_start", warm_start ? "true" : "false"));
  merge(configure("float32", float32 ? "true" : "false"));
  merge(configure("model", model));
  merge(configure("max_retries", FlagOr(args, "retries", "2")));
  merge(configure("retry_backoff_ms", FlagOr(args, "retry-backoff-ms", "25")));
  if (!configured.ok()) return Fail(configured.ToString());
  Status sets_ok = ApplySetFlags(args, algorithm->get());
  if (!sets_ok.ok()) return Fail(sets_ok.ToString());
  (*algorithm)->SetProgress(MakeCliProgress());

  Result<Table> table = ReadCsvFile(args.positional[0]);
  if (!table.ok()) return FailStatus(table.status());
  // A missing label column is a usage error (exit 2), so screen it here
  // before the engine treats it as a generic failure.
  Result<size_t> label_col = table->schema().FieldIndex(label);
  if (!label_col.ok()) return Fail(label_col.status().ToString());

  std::string annotated_plan;
  Result<TableRunResult> run =
      RunAlgorithmOnTable(**algorithm, *table, label, &annotated_plan);
  // The plan is worth printing even when the estimator then failed.
  if (!annotated_plan.empty()) {
    std::printf("pipeline plan (per-operator timings):\n%s\n",
                annotated_plan.c_str());
  }
  if (!run.ok()) return FailStatus(run.status());

  int exit_code = 0;
  const ImportanceEstimate& estimate = run->estimate;
  if (estimate.aborted_early) {
    // A partial estimate is still worth printing (completed waves are
    // exactly a smaller clean run), but the process must not pretend the
    // budget ran to completion: report the cause, mark the run degraded,
    // and exit with the runtime-failure code.
    telemetry::SetDegraded(estimate.abort_cause.ToString());
    if (g_report != nullptr) g_report->SetError(estimate.abort_cause, 3);
    std::fprintf(stderr,
                 "warning: estimator aborted early (%s); ranking below "
                 "covers the completed portion only\n",
                 estimate.abort_cause.ToString().c_str());
    exit_code = 3;
  }
  if (estimate.utility_evaluations > 0) {
    std::printf(
        "%zu utility evaluations over %zu training rows (%zu threads)\n",
        estimate.utility_evaluations, run->train_rows,
        estimate.num_threads_used);
  }

  // Most suspect first = lowest importance value; the engine already mapped
  // values back to source row ids through the pipeline's provenance.
  std::printf("top %zu cleaning candidates by %s (most suspect first):\n",
              std::min(top, run->ranked_rows.size()), method.c_str());
  for (size_t i = 0; i < std::min(top, run->ranked_rows.size()); ++i) {
    std::printf("%u\n", run->ranked_rows[i]);
  }
  return exit_code;
}

int RunImportance(const Args& args) {
  Status flags_ok =
      CheckFlags(args, "importance",
                 {"label", "method", "top", "permutations", "utility-cache",
                  "warm-start", "float32", "model", "seed", "retries",
                  "retry-backoff-ms", "set"});
  if (!flags_ok.ok()) return Fail(flags_ok.ToString());
  if (args.positional.size() == 1) return RunImportancePipeline(args);
  if (args.positional.size() != 2) {
    return Fail(
        "usage: nde_cli importance <train.csv> [<valid.csv>] --label <col>");
  }
  std::string label = FlagOr(args, "label", "");
  if (label.empty()) return Fail("--label is required");
  std::string method = FlagOr(args, "method", "knn_shapley");
  size_t top = static_cast<size_t>(std::stoul(FlagOr(args, "top", "25")));

  ColumnTransformer transformer;
  Result<MlDataset> train =
      LoadDataset(args.positional[0], label, &transformer, true);
  if (!train.ok()) {
    return FailStatus(Status(train.status().code(),
                             "train: " + train.status().message()));
  }
  Result<MlDataset> valid =
      LoadDataset(args.positional[1], label, &transformer, false);
  if (!valid.ok()) {
    return FailStatus(Status(valid.status().code(),
                             "valid: " + valid.status().message()));
  }

  Result<std::unique_ptr<AlgorithmInstance>> algorithm =
      AlgorithmRegistry::Global().Create(method);
  if (!algorithm.ok()) return Fail(algorithm.status().ToString());
  // The pre-registry strategies seeded from the dispatcher (always 42 here);
  // registry defaults already match their other knobs exactly.
  if ((*algorithm)->HasOption("seed")) {
    Status seeded = (*algorithm)->Configure("seed", "42");
    if (!seeded.ok()) return Fail(seeded.ToString());
  }
  Status sets_ok = ApplySetFlags(args, algorithm->get());
  if (!sets_ok.ok()) return Fail(sets_ok.ToString());
  (*algorithm)->SetProgress(MakeCliProgress());

  RunInput input;
  input.train = &*train;
  input.validation = &*valid;
  Result<ImportanceEstimate> estimate = (*algorithm)->Run(input);
  if (!estimate.ok()) return FailStatus(estimate.status());
  std::vector<size_t> ranking = AscendingOrder(estimate->values);

  std::printf("top %zu cleaning candidates by %s (most suspect first):\n", top,
              method.c_str());
  for (size_t i = 0; i < std::min(top, ranking.size()); ++i) {
    std::printf("%zu\n", ranking[i]);
  }
  return 0;
}

int RunImpute(const Args& args) {
  Status flags_ok = CheckFlags(args, "impute", {"column", "strategy", "out"});
  if (!flags_ok.ok()) return Fail(flags_ok.ToString());
  if (args.positional.size() != 1) {
    return Fail("usage: nde_cli impute <table.csv> --column <col>");
  }
  std::string column = FlagOr(args, "column", "");
  if (column.empty()) return Fail("--column is required");
  std::string strategy = FlagOr(args, "strategy", "mean");
  std::string out_path = FlagOr(args, "out", args.positional[0] + ".imputed");

  Result<Table> table = ReadCsvFile(args.positional[0]);
  if (!table.ok()) return FailStatus(table.status());

  std::unique_ptr<Imputer> imputer;
  if (strategy == "mean") {
    imputer = std::make_unique<MeanImputer>();
  } else if (strategy == "median") {
    imputer = std::make_unique<MedianImputer>();
  } else if (strategy == "most_frequent") {
    imputer = std::make_unique<MostFrequentImputer>();
  } else {
    return Fail("unknown strategy '" + strategy + "'");
  }
  Result<std::vector<size_t>> repaired =
      ImputeColumn(&table.value(), column, imputer.get());
  if (!repaired.ok()) return Fail(repaired.status().ToString());
  Status written = WriteCsvFile(*table, out_path);
  if (!written.ok()) return FailStatus(written);
  std::printf("repaired %zu cells in '%s' (%s); wrote %s\n", repaired->size(),
              column.c_str(), imputer->name().c_str(), out_path.c_str());
  return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;

void HandleServeSignal(int) { g_serve_stop = 1; }

/// Dedicated serving mode: keeps the embedded HTTP exporter up with the
/// async importance-job API mounted (POST /jobs, GET /jobs/<id>,
/// DELETE /jobs/<id>, GET /algorithmz) alongside the observability endpoints
/// until SIGINT/SIGTERM. Jobs run on a shared worker pool with a bounded
/// queue; an overflowing queue answers 429 so callers can back off.
int RunServe(const Args& args) {
  Status flags_ok = CheckFlags(
      args, "serve", {"port", "job-workers", "max-queue", "artifact-dir"});
  if (!flags_ok.ok()) return Fail(flags_ok.ToString());
  if (!args.positional.empty()) {
    return Fail("usage: nde_cli serve [--port 0] [--job-workers 1] "
                "[--max-queue 8] [--artifact-dir <dir>]");
  }
  auto parse_count = [&](const std::string& flag, const std::string& fallback,
                         unsigned long long max_value,
                         unsigned long long* out) -> Status {
    std::string text = FlagOr(args, flag, fallback);
    bool all_digits = !text.empty() &&
                      text.find_first_not_of("0123456789") ==
                          std::string::npos;
    unsigned long long parsed =
        all_digits ? std::strtoull(text.c_str(), nullptr, 10) : max_value + 1;
    if (!all_digits || parsed > max_value) {
      return Status::InvalidArgument(StrFormat(
          "--%s requires an integer in 0..%llu, got '%s'", flag.c_str(),
          max_value, text.c_str()));
    }
    *out = parsed;
    return Status::OK();
  };
  unsigned long long port = 0, workers = 1, max_queue = 8;
  Status parsed = parse_count("port", "0", 65535ULL, &port);
  if (parsed.ok()) parsed = parse_count("job-workers", "1", 1024ULL, &workers);
  if (parsed.ok()) parsed = parse_count("max-queue", "8", 65536ULL, &max_queue);
  if (!parsed.ok()) return Fail(parsed.ToString());
  if (workers == 0) return Fail("--job-workers requires at least 1 worker");

  // A long-lived server should always expose live metrics and traces.
  telemetry::SetEnabled(true);

  JobApiOptions job_options;
  job_options.num_workers = static_cast<size_t>(workers);
  job_options.max_queued = static_cast<size_t>(max_queue);
  job_options.artifact_dir = FlagOr(args, "artifact-dir", "");
  // Destruction order matters: the exporter (declared second) stops first,
  // so no HTTP thread can reach the manager while it drains its workers.
  JobManager manager(job_options);
  telemetry::HttpExporter exporter;
  exporter.SetHandler([&manager](const telemetry::HttpRequest& request) {
    return manager.HandleHttp(request);
  });
  Status started = exporter.Start(static_cast<uint16_t>(port));
  if (!started.ok()) return Fail(started.ToString());
  std::fprintf(stderr, "serving on http://127.0.0.1:%u\n",
               static_cast<unsigned>(exporter.port()));
  std::fprintf(stderr,
               "job api ready: POST /jobs, GET /jobs/<id>, GET /algorithmz "
               "(%zu worker%s, queue %zu)\n",
               job_options.num_workers,
               job_options.num_workers == 1 ? "" : "s",
               job_options.max_queued);
  std::fflush(stderr);

  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "shutting down\n");
  exporter.Stop();
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: nde_cli <screen|importance|impute|serve> ...\n"
               "  screen <table.csv> [--label <col>] [--max-null 0.2]\n"
               "  importance <train.csv> <valid.csv> --label <col>\n"
               "             [--method knn_shapley|influence|aum|"
               "self_confidence|loo] [--top 25]\n"
               "  importance <table.csv> --label <col>  (pipeline mode)\n"
               "             [--method tmc_shapley|banzhaf|beta_shapley|"
               "knn_shapley]\n"
               "             [--top 25] [--permutations 8] [--utility-cache] "
               "[--warm-start]\n"
               "             [--model knn|gaussian_nb|logreg] [--float32]\n"
               "             [--retries 2] [--retry-backoff-ms 25]\n"
               "  impute <table.csv> --column <col>\n"
               "         [--strategy mean|median|most_frequent] "
               "[--out <out.csv>]\n"
               "  serve [--port 0] [--job-workers 1] [--max-queue 8] "
               "[--artifact-dir <dir>]\n"
               "        (async job API: POST /jobs, GET /jobs/<id>, "
               "GET /algorithmz)\n"
               "  --list-algorithms    print every registry algorithm and "
               "its options\n"
               "importance flags: --set <option>=<value> (repeatable; see "
               "--list-algorithms)\n"
               "global flags: --metrics | --prometheus | --trace <out.json> "
               "| --threads <N>\n"
               "              --serve <port> | --report <out.json> "
               "| --profile <out.folded>\n"
               "              --trace-parent <traceparent> | "
               "--log-level <level> | --log-json\n");
  return 2;
}

/// Stops the sampling profiler and writes its folded stacks (flamegraph
/// input) to `path`. A short summary goes to stderr so the user can tell an
/// empty profile (run too short to sample) from a failed write.
int WriteProfile(const std::string& path) {
  telemetry::Profiler& profiler = telemetry::Profiler::Global();
  profiler.Stop();
  std::string folded = profiler.FoldedStacks();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Fail("cannot write profile file '" + path + "'");
  std::fwrite(folded.data(), 1, folded.size(), f);
  std::fclose(f);
  std::fprintf(stderr,
               "wrote %llu profile samples (%zu unique stacks) to %s\n",
               static_cast<unsigned long long>(profiler.samples()),
               profiler.Folded().size(), path.c_str());
  return 0;
}

/// Writes the global trace buffer as Chrome trace JSON.
int WriteTrace(const std::string& path) {
  std::string json = telemetry::TraceBuffer::Global().ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Fail("cannot write trace file '" + path + "'");
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %zu trace events to %s (open in Perfetto)\n",
               telemetry::TraceBuffer::Global().size(), path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "--list-algorithms") {
    std::printf("%s", AlgorithmRegistry::Global().DescribeText().c_str());
    return 0;
  }
  Args args = ParseArgs(argc, argv);
  if (!args.error.empty()) {
    std::fprintf(stderr, "error: %s\n", args.error.c_str());
    return 2;
  }

  std::string log_level_flag = FlagOr(args, "log-level", "");
  if (!log_level_flag.empty()) {
    log::Level level;
    if (!log::ParseLevel(log_level_flag, &level)) {
      return Fail("--log-level must be debug|info|warning|error, got '" +
                  log_level_flag + "'");
    }
    log::SetMinLevel(level);
  }
  if (args.flags.count("log-json") > 0) {
    log::Logger::Global().SetJson(true);
  }

  std::string threads_flag = FlagOr(args, "threads", "");
  if (!threads_flag.empty()) {
    char* end = nullptr;
    // strtoull silently wraps negative input, so reject any non-digit upfront.
    bool all_digits = !threads_flag.empty() &&
                      threads_flag.find_first_not_of("0123456789") ==
                          std::string::npos;
    unsigned long long parsed = std::strtoull(threads_flag.c_str(), &end, 10);
    if (!all_digits || end == threads_flag.c_str() || *end != '\0' ||
        parsed == 0) {
      return Fail("--threads requires a positive integer, got '" +
                  threads_flag + "'");
    }
    SetDefaultNumThreads(static_cast<size_t>(parsed));
  }

  bool want_metrics = args.flags.count("metrics") > 0;
  bool want_prometheus = args.flags.count("prometheus") > 0;
  std::string trace_path = FlagOr(args, "trace", "");
  std::string serve_flag = FlagOr(args, "serve", "");
  std::string report_path = FlagOr(args, "report", "");
  std::string profile_path = FlagOr(args, "profile", "");
  if (want_metrics || want_prometheus || !trace_path.empty() ||
      !serve_flag.empty() || !report_path.empty() || !profile_path.empty()) {
    telemetry::SetEnabled(true);
#if !NDE_TELEMETRY_ENABLED
    std::fprintf(stderr,
                 "note: telemetry compiled out (NDE_TELEMETRY=OFF); metrics "
                 "and traces will be empty\n");
#endif
  }
  // Root trace context for the whole run: adopt an externally supplied
  // --trace-parent (a driving system can then correlate this invocation with
  // its own trace), or mint one whenever telemetry is on so every span and
  // structured log the run emits shares one trace id. Ids never feed the
  // estimators, so results stay bit-identical either way.
  std::optional<ScopedTraceContext> trace_scope;
  TraceContext root_context;
  std::string trace_parent_flag = FlagOr(args, "trace-parent", "");
  if (!trace_parent_flag.empty()) {
    if (!ParseTraceparent(trace_parent_flag, &root_context)) {
      return Fail("--trace-parent must be a W3C traceparent "
                  "(00-<32 hex>-<16 hex>-<2 hex>), got '" +
                  trace_parent_flag + "'");
    }
    trace_scope.emplace(TraceContext(root_context));
  } else if (telemetry::Enabled()) {
    root_context = MintTraceContext();
    trace_scope.emplace(TraceContext(root_context));
  }

  if (!profile_path.empty()) {
    // Profiling needs span events, so it implies telemetry (enabled above).
    telemetry::SetAllocAccountingEnabled(true);
    telemetry::ProfilerOptions prof_options;
    // CLI invocations are often short (milliseconds); sample fast enough
    // that even a small run yields a usable profile.
    prof_options.sampling_interval_us = 250;
    Status prof = telemetry::Profiler::Global().Start(prof_options);
    if (!prof.ok()) return Fail(prof.ToString());
  }

  // `serve` runs its own exporter with the job API mounted; everything below
  // is the sidecar --serve used while another command runs.
  if (command == "serve") return RunServe(args);

  // Declared before the exporter so the exporter (and its request thread)
  // stops before the manager's workers drain.
  std::unique_ptr<JobManager> serve_jobs;
  telemetry::HttpExporter exporter;
  if (!serve_flag.empty()) {
    bool all_digits =
        serve_flag.find_first_not_of("0123456789") == std::string::npos;
    unsigned long long port = all_digits
                                  ? std::strtoull(serve_flag.c_str(),
                                                  nullptr, 10)
                                  : 65536ULL;
    if (!all_digits || port > 65535ULL) {
      return Fail("--serve requires a port in 0..65535, got '" + serve_flag +
                  "'");
    }
    // The sidecar also exposes the job API so an observing client can submit
    // follow-up importance runs against the same process.
    serve_jobs = std::make_unique<JobManager>(JobApiOptions{});
    exporter.SetHandler(
        [manager = serve_jobs.get()](const telemetry::HttpRequest& request) {
          return manager->HandleHttp(request);
        });
    Status started = exporter.Start(static_cast<uint16_t>(port));
    if (!started.ok()) return Fail(started.ToString());
    // Announced on stderr so scripts backgrounding the CLI can scrape the
    // bound port (meaningful with --serve 0).
    std::fprintf(stderr, "serving on http://127.0.0.1:%u\n",
                 static_cast<unsigned>(exporter.port()));
    std::fflush(stderr);
  }

  std::unique_ptr<telemetry::RunReport> report;
  if (!report_path.empty()) {
    report = std::make_unique<telemetry::RunReport>(command);
    report->SetConfig("command", command);
    std::string argv_line;
    for (int i = 0; i < argc; ++i) {
      if (i > 0) argv_line += " ";
      argv_line += argv[i];
    }
    report->SetConfig("argv", argv_line);
    if (root_context.has_trace()) {
      report->SetConfig("trace_id", TraceIdHex(root_context));
    }
    for (const auto& [key, value] : args.flags) {
      report->SetConfig("flag." + key, value);
    }
    g_report = report.get();
  }

  int code;
  if (command == "screen") {
    code = RunScreen(args);
  } else if (command == "importance") {
    code = RunImportance(args);
  } else if (command == "impute") {
    code = RunImpute(args);
  } else {
    std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
    return Usage();
  }

  if (!profile_path.empty()) {
    // Stopped (inside WriteProfile) before the report finishes so the
    // report's "profile" block sees the final sample aggregates.
    int profile_code = WriteProfile(profile_path);
    if (code == 0) code = profile_code;
  }
  if (want_metrics) {
    std::printf("\n=== telemetry metrics ===\n%s",
                telemetry::MetricsRegistry::Global().ToTable().c_str());
  }
  if (want_prometheus) {
    std::printf("%s",
                telemetry::MetricsRegistry::Global().ToPrometheusText().c_str());
  }
  if (!trace_path.empty()) {
    int trace_code = WriteTrace(trace_path);
    if (code == 0) code = trace_code;
  }
  if (report != nullptr) {
    g_report = nullptr;
    report->Finish();
    Status written = report->WriteFile(report_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      if (code == 0) code = 2;
    } else {
      std::fprintf(stderr, "wrote run report to %s\n", report_path.c_str());
    }
  }
  exporter.Stop();
  return code;
}

}  // namespace
}  // namespace nde

int main(int argc, char** argv) { return nde::Main(argc, argv); }
