// nde_cli — command-line data debugging for CSV files.
//
// Subcommands:
//
//   nde_cli screen <table.csv> --label <col> [--max-null 0.2]
//       Runs the source-data screens (null fractions, class balance,
//       neighborhood label-error screen) on one CSV. Exit code 1 when any
//       error-severity issue fires, 0 otherwise.
//
//   nde_cli importance <train.csv> <valid.csv> --label <col>
//           [--method knn_shapley|influence|aum|self_confidence|loo]
//           [--top 25]
//       Encodes both tables with an automatic column transformer, ranks the
//       training rows by the chosen importance method (most suspect first)
//       and prints the top rows with their scores.
//
//   nde_cli impute <table.csv> --column <col>
//           [--strategy mean|median|most_frequent] [--out <out.csv>]
//       Fills the column's missing values and writes the repaired CSV.

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nde/nde.h"

namespace nde {
namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--")) {
      std::string key = arg.substr(2);
      std::string value = "true";
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      }
      args.flags[key] = value;
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

std::string FlagOr(const Args& args, const std::string& key,
                   const std::string& fallback) {
  auto it = args.flags.find(key);
  return it == args.flags.end() ? fallback : it->second;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 2;
}

/// Loads a CSV and extracts (features via auto transformer, labels).
Result<MlDataset> LoadDataset(const std::string& path,
                              const std::string& label,
                              ColumnTransformer* transformer,
                              bool fit_transformer) {
  NDE_ASSIGN_OR_RETURN(Table table, ReadCsvFile(path));
  NDE_ASSIGN_OR_RETURN(size_t label_col, table.schema().FieldIndex(label));
  if (table.schema().field(label_col).type != DataType::kInt64) {
    return Status::InvalidArgument("label column must be integer-typed");
  }
  MlDataset data;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.At(r, label_col);
    if (v.is_null() || v.as_int64() < 0) {
      return Status::InvalidArgument(
          StrFormat("row %zu has a null/negative label", r));
    }
    data.labels.push_back(static_cast<int>(v.as_int64()));
  }
  if (fit_transformer) {
    NDE_ASSIGN_OR_RETURN(*transformer, MakeAutoTransformer(table, {label}));
  }
  NDE_ASSIGN_OR_RETURN(data.features, transformer->Transform(table));
  return data;
}

int RunScreen(const Args& args) {
  if (args.positional.size() != 1) {
    return Fail("usage: nde_cli screen <table.csv> --label <col>");
  }
  Result<Table> table = ReadCsvFile(args.positional[0]);
  if (!table.ok()) return Fail(table.status().ToString());
  double max_null = std::stod(FlagOr(args, "max-null", "0.2"));

  std::vector<PipelineIssue> issues = CheckNullFractions(*table, max_null);
  std::string label = FlagOr(args, "label", "");
  if (!label.empty()) {
    ColumnTransformer transformer;
    Result<MlDataset> data =
        LoadDataset(args.positional[0], label, &transformer, true);
    if (!data.ok()) return Fail(data.status().ToString());
    auto balance = CheckClassBalance(data->labels, 0.1);
    issues.insert(issues.end(), balance.begin(), balance.end());
    auto labels = CheckLabelErrors(*data, 5, 0.2);
    issues.insert(issues.end(), labels.begin(), labels.end());
  }

  if (issues.empty()) {
    std::printf("all screens pass (%zu rows, %zu columns)\n",
                table->num_rows(), table->num_columns());
    return 0;
  }
  bool has_error = false;
  for (const PipelineIssue& issue : issues) {
    std::printf("%s\n", issue.ToString().c_str());
    if (issue.severity == IssueSeverity::kError) has_error = true;
  }
  return has_error ? 1 : 0;
}

int RunImportance(const Args& args) {
  if (args.positional.size() != 2) {
    return Fail(
        "usage: nde_cli importance <train.csv> <valid.csv> --label <col>");
  }
  std::string label = FlagOr(args, "label", "");
  if (label.empty()) return Fail("--label is required");
  std::string method = FlagOr(args, "method", "knn_shapley");
  size_t top = static_cast<size_t>(std::stoul(FlagOr(args, "top", "25")));

  ColumnTransformer transformer;
  Result<MlDataset> train =
      LoadDataset(args.positional[0], label, &transformer, true);
  if (!train.ok()) return Fail("train: " + train.status().ToString());
  Result<MlDataset> valid =
      LoadDataset(args.positional[1], label, &transformer, false);
  if (!valid.ok()) return Fail("valid: " + valid.status().ToString());

  CleaningStrategy strategy;
  if (method == "knn_shapley") {
    strategy = KnnShapleyStrategy();
  } else if (method == "influence") {
    strategy = InfluenceStrategy();
  } else if (method == "aum") {
    strategy = AumStrategy();
  } else if (method == "self_confidence") {
    strategy = SelfConfidenceStrategy();
  } else if (method == "loo") {
    strategy = LooStrategy();
  } else {
    return Fail("unknown method '" + method + "'");
  }
  Result<std::vector<size_t>> ranking = strategy.rank(*train, *valid, 42);
  if (!ranking.ok()) return Fail(ranking.status().ToString());

  std::printf("top %zu cleaning candidates by %s (most suspect first):\n", top,
              strategy.name.c_str());
  for (size_t i = 0; i < std::min(top, ranking->size()); ++i) {
    std::printf("%zu\n", (*ranking)[i]);
  }
  return 0;
}

int RunImpute(const Args& args) {
  if (args.positional.size() != 1) {
    return Fail("usage: nde_cli impute <table.csv> --column <col>");
  }
  std::string column = FlagOr(args, "column", "");
  if (column.empty()) return Fail("--column is required");
  std::string strategy = FlagOr(args, "strategy", "mean");
  std::string out_path = FlagOr(args, "out", args.positional[0] + ".imputed");

  Result<Table> table = ReadCsvFile(args.positional[0]);
  if (!table.ok()) return Fail(table.status().ToString());

  std::unique_ptr<Imputer> imputer;
  if (strategy == "mean") {
    imputer = std::make_unique<MeanImputer>();
  } else if (strategy == "median") {
    imputer = std::make_unique<MedianImputer>();
  } else if (strategy == "most_frequent") {
    imputer = std::make_unique<MostFrequentImputer>();
  } else {
    return Fail("unknown strategy '" + strategy + "'");
  }
  Result<std::vector<size_t>> repaired =
      ImputeColumn(&table.value(), column, imputer.get());
  if (!repaired.ok()) return Fail(repaired.status().ToString());
  Status written = WriteCsvFile(*table, out_path);
  if (!written.ok()) return Fail(written.ToString());
  std::printf("repaired %zu cells in '%s' (%s); wrote %s\n", repaired->size(),
              column.c_str(), imputer->name().c_str(), out_path.c_str());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: nde_cli <screen|importance|impute> ...\n"
               "  screen <table.csv> [--label <col>] [--max-null 0.2]\n"
               "  importance <train.csv> <valid.csv> --label <col>\n"
               "             [--method knn_shapley|influence|aum|"
               "self_confidence|loo] [--top 25]\n"
               "  impute <table.csv> --column <col>\n"
               "         [--strategy mean|median|most_frequent] "
               "[--out <out.csv>]\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args = ParseArgs(argc, argv);
  if (command == "screen") return RunScreen(args);
  if (command == "importance") return RunImportance(args);
  if (command == "impute") return RunImpute(args);
  return Usage();
}

}  // namespace
}  // namespace nde

int main(int argc, char** argv) { return nde::Main(argc, argv); }
