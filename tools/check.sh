#!/usr/bin/env bash
# Sanitizer check: configure a Debug build with sanitizers, build everything,
# and run the test suite under them. Usage:
#
#   tools/check.sh [build-dir]         # ASan+UBSan, full suite
#                                      # (default build dir: build-asan)
#   tools/check.sh --tsan [build-dir]  # ThreadSanitizer, parallel-runtime and
#                                      # determinism tests only
#                                      # (default build dir: build-tsan)
#   tools/check.sh --bench-smoke [build-dir]
#                                      # Release build; runs the scalability
#                                      # bench briefly (including its startup
#                                      # fast-path bit-identity checks)
#                                      # (default build dir: build-bench)
#
# TSan is incompatible with ASan, hence the separate mode and build dir.
# A non-zero exit means a build failure, test failure, or sanitizer report.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=asan
if [ "${1:-}" = "--tsan" ]; then
  MODE=tsan
  shift
elif [ "${1:-}" = "--bench-smoke" ]; then
  MODE=bench
  shift
fi

if [ "$MODE" = "tsan" ]; then
  BUILD_DIR="${1:-build-tsan}"
  SANITIZE="thread"
elif [ "$MODE" = "bench" ]; then
  BUILD_DIR="${1:-build-bench}"
else
  BUILD_DIR="${1:-build-asan}"
  SANITIZE="address,undefined"
fi

if [ "$MODE" = "bench" ]; then
  # Smoke-run the benchmark harness: Release build, a short spin of the
  # utility fast-path sweep. The binary's startup checks assert bit-identity
  # of the fast path and of cross-thread runs before any timing happens, so
  # this doubles as a cheap perf-regression and determinism gate. Results go
  # to stdout only (NDE_BENCH_RESULTS="" disables the JSON append).
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target scalability
  NDE_BENCH_RESULTS="" "$BUILD_DIR/bench/scalability" \
    --benchmark_filter='BM_TmcUtilityFastPath|BM_BanzhafSubsetCache' \
    --benchmark_min_time=0.05
  echo "check.sh: bench smoke passed (fast-path bit-identity + timing run)"
  exit 0
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=$SANITIZE -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=$SANITIZE"

cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes UBSan reports fail the test instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export TSAN_OPTIONS="halt_on_error=1"

if [ "$MODE" = "tsan" ]; then
  # The thread-heavy suites: pool lifecycle, ParallelFor (including the
  # SubsetCache concurrency hammer), and the estimators' cross-thread
  # determinism contract over the cached/warm-started utilities.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
    -R "determinism|parallel|importance"
  echo "check.sh: parallel suites passed under TSan"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
  echo "check.sh: all tests passed under ASan+UBSan"
fi
