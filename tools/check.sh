#!/usr/bin/env bash
# Sanitizer check: configure a Debug build with ASan+UBSan, build everything,
# and run the full test suite under the sanitizers. Usage:
#
#   tools/check.sh [build-dir]       # default build dir: build-asan
#
# A non-zero exit means a build failure, test failure, or sanitizer report.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes UBSan reports fail the test instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "check.sh: all tests passed under ASan+UBSan"
