#!/usr/bin/env bash
# Sanitizer check: configure a Debug build with sanitizers, build everything,
# and run the test suite under them. Usage:
#
#   tools/check.sh [build-dir]         # ASan+UBSan, full suite
#                                      # (default build dir: build-asan)
#   tools/check.sh --tsan [build-dir]  # ThreadSanitizer, parallel-runtime and
#                                      # determinism tests only
#                                      # (default build dir: build-tsan)
#
# TSan is incompatible with ASan, hence the separate mode and build dir.
# A non-zero exit means a build failure, test failure, or sanitizer report.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=asan
if [ "${1:-}" = "--tsan" ]; then
  MODE=tsan
  shift
fi

if [ "$MODE" = "tsan" ]; then
  BUILD_DIR="${1:-build-tsan}"
  SANITIZE="thread"
else
  BUILD_DIR="${1:-build-asan}"
  SANITIZE="address,undefined"
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=$SANITIZE -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=$SANITIZE"

cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes UBSan reports fail the test instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export TSAN_OPTIONS="halt_on_error=1"

if [ "$MODE" = "tsan" ]; then
  # The thread-heavy suites: pool lifecycle, ParallelFor, and the estimators'
  # cross-thread determinism contract.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
    -R "determinism|parallel|importance"
  echo "check.sh: parallel suites passed under TSan"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
  echo "check.sh: all tests passed under ASan+UBSan"
fi
