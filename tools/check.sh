#!/usr/bin/env bash
# Sanitizer check: configure a Debug build with sanitizers, build everything,
# and run the test suite under them. Usage:
#
#   tools/check.sh [build-dir]         # ASan+UBSan, full suite
#                                      # (default build dir: build-asan)
#   tools/check.sh --tsan [build-dir]  # ThreadSanitizer, parallel-runtime and
#                                      # determinism tests only
#                                      # (default build dir: build-tsan)
#   tools/check.sh --bench-smoke [build-dir]
#                                      # Release build; runs the scalability
#                                      # bench briefly (including its startup
#                                      # fast-path bit-identity checks) and
#                                      # diffs the key counters against the
#                                      # committed baseline at a loose
#                                      # threshold suited to short runs
#                                      # (default build dir: build-bench)
#   tools/check.sh --bench-diff [build-dir]
#                                      # Release build; full run of the
#                                      # watched benchmarks, appends a
#                                      # machine-stamped entry to
#                                      # BENCH_results.json, and fails if any
#                                      # key counter regresses >15% vs
#                                      # bench/BENCH_baseline.json; also
#                                      # self-tests the gate with an injected
#                                      # regression
#                                      # (default build dir: build-bench)
#   tools/check.sh --kernel-smoke [build-dir]
#                                      # ASan+UBSan build of nde_cli; runs one
#                                      # KNN and one Gaussian-NB importance
#                                      # job with the prefix-scan kernels on
#                                      # vs off (and SoA/arena off) and
#                                      # requires identical rankings — the
#                                      # end-to-end bit-identity cross-check,
#                                      # sanitizer-clean
#                                      # (default build dir: build-kernel)
#   tools/check.sh --serve-smoke [build-dir]
#                                      # Release build; scrapes a live
#                                      # `nde_cli --serve` endpoint (/healthz,
#                                      # /metrics format check) while an
#                                      # estimator is running, then drives the
#                                      # async job API on `nde_cli serve`:
#                                      # POST /jobs, poll to done, result +
#                                      # RunReport artifact, queue-full 429,
#                                      # DELETE cancellation
#                                      # (default build dir: build-serve)
#   tools/check.sh --trace-smoke [build-dir]
#                                      # Release build; starts `nde_cli serve`
#                                      # with JSON logging, submits a job with
#                                      # an explicit W3C traceparent header,
#                                      # and requires the SAME trace id in the
#                                      # server's JSON logs, the job's
#                                      # /jobs/<id>/tracez and /eventz views,
#                                      # the RunReport artifact, and per-job
#                                      # labeled series on /metrics; then
#                                      # reruns the chaos ctest label under
#                                      # TSan with NDE_CHAOS_TRACE=1 so span
#                                      # recording and label resolution race
#                                      # the injected faults
#                                      # (default build dirs: build-trace and
#                                      # build-trace-tsan)
#   tools/check.sh --chaos [build-dir-prefix]
#                                      # Runs the fault-injection suites
#                                      # (ctest -L chaos) under ASan+UBSan AND
#                                      # under TSan, then drives the CLI with
#                                      # NDE_FAILPOINTS and checks the exit
#                                      # code and the exported failpoint
#                                      # counters
#                                      # (default build dirs: build-chaos-asan
#                                      # and build-chaos-tsan)
#   tools/check.sh --prop-smoke [build-dir]
#                                      # Release build; runs exactly the
#                                      # property-labeled generative suites
#                                      # (ctest -L property) on a fast
#                                      # NDE_PROP_CASES budget — the quick
#                                      # pre-commit tier for the invariant
#                                      # harness. Honors an exported
#                                      # NDE_PROP_CASES / NDE_PROP_SEED, so a
#                                      # failure's printed replay line works
#                                      # through this entry point too
#                                      # (default build dir: build-prop)
#
# The full ASan suite and the TSan suite also run the property label, at a
# reduced NDE_PROP_CASES so sanitizer overhead stays bounded; exported values
# win so replay commands keep working under sanitizers.
#
# TSan is incompatible with ASan, hence the separate mode and build dir.
# A non-zero exit means a build failure, test failure, or sanitizer report.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=asan
if [ "${1:-}" = "--tsan" ]; then
  MODE=tsan
  shift
elif [ "${1:-}" = "--bench-smoke" ]; then
  MODE=bench
  shift
elif [ "${1:-}" = "--bench-diff" ]; then
  MODE=benchdiff
  shift
elif [ "${1:-}" = "--kernel-smoke" ]; then
  MODE=kernel
  shift
elif [ "${1:-}" = "--serve-smoke" ]; then
  MODE=serve
  shift
elif [ "${1:-}" = "--trace-smoke" ]; then
  MODE=trace
  shift
elif [ "${1:-}" = "--chaos" ]; then
  MODE=chaos
  shift
elif [ "${1:-}" = "--prop-smoke" ]; then
  MODE=prop
  shift
fi

if [ "$MODE" = "tsan" ]; then
  BUILD_DIR="${1:-build-tsan}"
  SANITIZE="thread"
elif [ "$MODE" = "bench" ] || [ "$MODE" = "benchdiff" ]; then
  BUILD_DIR="${1:-build-bench}"
elif [ "$MODE" = "kernel" ]; then
  BUILD_DIR="${1:-build-kernel}"
elif [ "$MODE" = "serve" ]; then
  BUILD_DIR="${1:-build-serve}"
elif [ "$MODE" = "trace" ]; then
  BUILD_DIR="${1:-build-trace}"
elif [ "$MODE" = "chaos" ]; then
  BUILD_PREFIX="${1:-build-chaos}"
elif [ "$MODE" = "prop" ]; then
  BUILD_DIR="${1:-build-prop}"
else
  BUILD_DIR="${1:-build-asan}"
  SANITIZE="address,undefined"
fi

if [ "$MODE" = "bench" ] || [ "$MODE" = "benchdiff" ]; then
  # Both modes run the watched benchmarks (the counters guarded by
  # bench/BENCH_baseline.json) with a machine stamp, then gate on bench_diff.
  # --bench-smoke is the quick tier: short spins, results to a temp file, a
  # loose threshold because 0.05s timing runs are noisy. --bench-diff is the
  # trajectory tier: full-length runs appended to BENCH_results.json so the
  # perf history accumulates, gated at the real 15%, plus a self-test that
  # the gate actually fires on a fabricated regression.
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target scalability bench_diff

  WATCHED='BM_TmcUtilityFastPath|BM_BanzhafSubsetCache|BM_TmcWaveLatency|BM_KnnKernel|BM_GaussianNbPrefixScan'
  # The git revision is compiled into the binary at build time
  # (cmake/git_rev.cmake), so no NDE_GIT_REV export here: an env value frozen
  # by an old shell could stamp results with a commit the binary was never
  # built from.
  export NDE_BENCH_DATE="$(date -u +%Y-%m-%d)"

  if [ "$MODE" = "bench" ]; then
    RESULTS="$(mktemp)"
    trap 'rm -f "$RESULTS"' EXIT
    MIN_TIME=0.05
    THRESHOLD=0.5
  else
    RESULTS="BENCH_results.json"
    MIN_TIME=0.2
    THRESHOLD=0.15
  fi

  NDE_BENCH_RESULTS="$RESULTS" "$BUILD_DIR/bench/scalability" \
    --benchmark_filter="$WATCHED" \
    --benchmark_min_time="$MIN_TIME"

  "$BUILD_DIR/tools/bench_diff" --baseline bench/BENCH_baseline.json \
    --candidate "$RESULTS" --threshold "$THRESHOLD"

  if [ "$MODE" = "benchdiff" ]; then
    # Gate self-test: scale every watched counter the wrong way by 20% and
    # the diff MUST exit nonzero, otherwise the gate is decorative.
    BROKEN="$(mktemp)"
    trap 'rm -f "$BROKEN"' EXIT
    python3 - bench/BENCH_baseline.json "$BROKEN" <<'EOF'
import json, sys
worse = {"utility_evals_per_sec": 0.8, "cache_hit_rate": 0.8,
         "wave_p99_ms": 1.2}
with open(sys.argv[1]) as src, open(sys.argv[2], "w") as dst:
    for line in src:
        if not line.strip():
            continue
        record = json.loads(line)
        for key, factor in worse.items():
            if key in record:
                record[key] = record[key] * factor
        dst.write(json.dumps(record) + "\n")
EOF
    if "$BUILD_DIR/tools/bench_diff" --baseline bench/BENCH_baseline.json \
         --candidate "$BROKEN" --threshold 0.15 > /dev/null 2>&1; then
      echo "check.sh: bench_diff failed to flag an injected 20% regression" >&2
      exit 1
    fi
    echo "check.sh: bench diff passed (counters within 15%, gate self-test ok)"
  else
    echo "check.sh: bench smoke passed (bit-identity checks + baseline diff)"
  fi
  exit 0
fi

if [ "$MODE" = "kernel" ]; then
  # End-to-end kernel cross-check under ASan+UBSan: the prefix-scan kernels
  # (SoA + arena for KNN, the incremental scorer for Gaussian NB) must yield
  # the identical ranking as retraining from scratch on every prefix, and
  # every variant must be sanitizer-clean. This complements the in-process
  # determinism tests by going through the full CLI pipeline path.
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target nde_cli
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

  WORKDIR="$(mktemp -d)"
  trap 'rm -rf "$WORKDIR"' EXIT
  python3 - "$WORKDIR/train.csv" <<'EOF'
import random, sys
random.seed(11)
centers = [(-1.5, 0.0), (1.5, 1.0), (0.0, -1.5)]
with open(sys.argv[1], "w") as f:
    f.write("x0,x1,x2,label\n")
    for i in range(90):
        label = i % 3
        mx, my = centers[label]
        f.write(f"{random.gauss(mx, 1):.4f},{random.gauss(my, 1):.4f},"
                f"{random.gauss(0, 1):.4f},{label}\n")
EOF

  # Runs one importance job and keeps only the ranking block (the timing
  # lines above it legitimately differ run to run).
  run_ranking() {
    local out="$1"
    shift
    "$BUILD_DIR/tools/nde_cli" importance "$WORKDIR/train.csv" --label label \
      --method tmc_shapley --permutations 6 --top 30 --seed 5 "$@" \
      | sed -n '/cleaning candidates/,$p' > "$out"
    [ -s "$out" ] || { echo "check.sh: no ranking output for $out" >&2; exit 1; }
  }

  run_ranking "$WORKDIR/knn_kernel.txt"
  run_ranking "$WORKDIR/knn_slow.txt" --set use_prefix_scan=false
  diff -u "$WORKDIR/knn_slow.txt" "$WORKDIR/knn_kernel.txt" \
    || { echo "check.sh: KNN kernel ranking differs from slow path" >&2; exit 1; }
  run_ranking "$WORKDIR/knn_rowwise.txt" --set soa_kernels=false --set arena=false
  diff -u "$WORKDIR/knn_kernel.txt" "$WORKDIR/knn_rowwise.txt" \
    || { echo "check.sh: SoA/arena kernel ranking differs from row-wise" >&2; exit 1; }
  run_ranking "$WORKDIR/nb_kernel.txt" --model gaussian_nb
  run_ranking "$WORKDIR/nb_slow.txt" --model gaussian_nb --set use_prefix_scan=false
  diff -u "$WORKDIR/nb_slow.txt" "$WORKDIR/nb_kernel.txt" \
    || { echo "check.sh: NB kernel ranking differs from slow path" >&2; exit 1; }

  echo "check.sh: kernel smoke passed (KNN SoA/arena and NB scan rankings match the slow path under ASan+UBSan)"
  exit 0
fi

if [ "$MODE" = "serve" ]; then
  # Live-endpoint smoke: start `nde_cli --serve 0` on a workload big enough
  # that the estimator is still running when we scrape (a tiny workload
  # finishes — and stops the exporter — before the first request lands),
  # then hit /healthz and /metrics and validate the Prometheus exposition
  # format with a small awk parser.
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target nde_cli

  WORKDIR="$(mktemp -d)"
  CLI_PID=""
  cleanup() {
    if [ -n "$CLI_PID" ] && kill -0 "$CLI_PID" 2>/dev/null; then
      kill "$CLI_PID" 2>/dev/null || true
      wait "$CLI_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
  }
  trap cleanup EXIT

  # curl when present, else python3's urllib (one of the two is everywhere).
  http_get() {
    if command -v curl >/dev/null 2>&1; then
      curl -sf --max-time 5 "$1"
    else
      python3 -c 'import sys, urllib.request
sys.stdout.write(urllib.request.urlopen(sys.argv[1], timeout=5).read().decode())' "$1"
    fi
  }

  # A workload large enough to keep the server up for several seconds.
  python3 - "$WORKDIR/train.csv" <<'EOF'
import random, sys
random.seed(7)
with open(sys.argv[1], "w") as f:
    f.write("x0,x1,label\n")
    for i in range(400):
        label = i % 2
        mu = 1.0 if label else -1.0
        f.write(f"{random.gauss(mu, 1):.4f},{random.gauss(-mu, 1):.4f},{label}\n")
EOF

  "$BUILD_DIR/tools/nde_cli" importance "$WORKDIR/train.csv" --label label \
    --method tmc_shapley --permutations 2000 --top 5 --serve 0 \
    > "$WORKDIR/out.txt" 2> "$WORKDIR/err.txt" &
  CLI_PID=$!

  # Poll for the announced port instead of sleeping a fixed time.
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's#.*serving on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
      "$WORKDIR/err.txt" | head -1)"
    [ -n "$PORT" ] && break
    kill -0 "$CLI_PID" 2>/dev/null || {
      echo "check.sh: nde_cli exited before serving" >&2
      cat "$WORKDIR/err.txt" >&2
      exit 1
    }
    sleep 0.1
  done
  [ -n "$PORT" ] || { echo "check.sh: no serving line after 10s" >&2; exit 1; }

  http_get "http://127.0.0.1:$PORT/healthz" | grep -q '^ok$' \
    || { echo "check.sh: /healthz did not answer ok" >&2; exit 1; }

  http_get "http://127.0.0.1:$PORT/metrics" > "$WORKDIR/metrics.txt" \
    || { echo "check.sh: /metrics scrape failed" >&2; exit 1; }

  # Minimal Prometheus text-format parser: every non-comment line must be
  # "name value" with a legal metric name and a numeric value, and at least
  # one # TYPE line must be present.
  awk '
    /^$/ { next }
    /^# (HELP|TYPE) / { if ($2 ~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) { meta++; next }
                        print "bad meta line: " $0; bad = 1; next }
    /^#/ { print "bad comment line: " $0; bad = 1; next }
    {
      if (NF != 2 || $1 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})?$/ ||
          $2 !~ /^-?[0-9.eE+naif]+$/) { print "bad sample line: " $0; bad = 1 }
      samples++
    }
    END {
      if (bad) exit 1
      if (meta == 0) { print "no # TYPE/# HELP lines"; exit 1 }
      if (samples == 0) { print "no samples"; exit 1 }
    }
  ' "$WORKDIR/metrics.txt" \
    || { echo "check.sh: /metrics is not valid Prometheus text" >&2; exit 1; }

  kill "$CLI_PID" 2>/dev/null || true
  wait "$CLI_PID" 2>/dev/null || true
  CLI_PID=""

  # --- job-API smoke: drive a full async importance job over HTTP. ----------
  # POST with status capture: prints the body, then "HTTP <code>" last.
  http_post() {
    if command -v curl >/dev/null 2>&1; then
      curl -s --max-time 10 -X POST --data "$2" \
        -w '\nHTTP %{http_code}\n' "$1"
    else
      python3 - "$1" "$2" <<'EOF'
import sys, urllib.request, urllib.error
req = urllib.request.Request(sys.argv[1], data=sys.argv[2].encode())
try:
    resp = urllib.request.urlopen(req, timeout=10)
    body, code = resp.read().decode(), resp.status
except urllib.error.HTTPError as e:
    body, code = e.read().decode(), e.code
print(body)
print(f"HTTP {code}")
EOF
    fi
  }
  http_delete() {
    if command -v curl >/dev/null 2>&1; then
      curl -s --max-time 10 -X DELETE "$1"
    else
      python3 -c 'import sys, urllib.request
req = urllib.request.Request(sys.argv[1], method="DELETE")
sys.stdout.write(urllib.request.urlopen(req, timeout=10).read().decode())' "$1"
    fi
  }

  "$BUILD_DIR/tools/nde_cli" serve --port 0 --job-workers 1 --max-queue 1 \
    --artifact-dir "$WORKDIR/artifacts" 2> "$WORKDIR/serve_err.txt" &
  CLI_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's#.*serving on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
      "$WORKDIR/serve_err.txt" | head -1)"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  [ -n "$PORT" ] || { echo "check.sh: serve mode never announced" >&2; exit 1; }

  http_get "http://127.0.0.1:$PORT/algorithmz" | grep -q '"tmc_shapley"' \
    || { echo "check.sh: /algorithmz does not list tmc_shapley" >&2; exit 1; }

  # Submit a fast job and poll it to completion.
  http_post "http://127.0.0.1:$PORT/jobs" \
    "{\"algorithm\":\"knn_shapley\",\"label\":\"label\",\"csv_path\":\"$WORKDIR/train.csv\",\"options\":{\"k\":3}}" \
    > "$WORKDIR/submit.txt"
  grep -q '^HTTP 202$' "$WORKDIR/submit.txt" \
    || { echo "check.sh: POST /jobs not accepted" >&2; cat "$WORKDIR/submit.txt" >&2; exit 1; }
  JOB_ID="$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$WORKDIR/submit.txt" | head -1)"
  [ -n "$JOB_ID" ] || { echo "check.sh: no job id in POST response" >&2; exit 1; }

  DONE=""
  for _ in $(seq 1 100); do
    http_get "http://127.0.0.1:$PORT/jobs/$JOB_ID" > "$WORKDIR/job.txt" || true
    if grep -q '"state":"done"' "$WORKDIR/job.txt"; then DONE=1; break; fi
    if grep -q '"state":"error"' "$WORKDIR/job.txt"; then break; fi
    sleep 0.1
  done
  [ -n "$DONE" ] || { echo "check.sh: job never reached done" >&2; cat "$WORKDIR/job.txt" >&2; exit 1; }
  grep -q '"values":\[-\?[0-9]' "$WORKDIR/job.txt" \
    || { echo "check.sh: done job has no values" >&2; exit 1; }
  grep -q '"ranked_rows":\[[0-9]' "$WORKDIR/job.txt" \
    || { echo "check.sh: done job has no ranked rows" >&2; exit 1; }
  [ -s "$WORKDIR/artifacts/$JOB_ID.json" ] \
    || { echo "check.sh: job RunReport artifact missing" >&2; exit 1; }
  grep -q '"job_id"' "$WORKDIR/artifacts/$JOB_ID.json" \
    || { echo "check.sh: artifact lacks job config" >&2; exit 1; }

  # Backpressure: with 1 worker and a 1-deep queue, a long job + a queued job
  # must push the third submission to 429; then cancel the long one.
  LONG="{\"algorithm\":\"tmc_shapley\",\"label\":\"label\",\"csv_path\":\"$WORKDIR/train.csv\",\"options\":{\"num_permutations\":100000}}"
  http_post "http://127.0.0.1:$PORT/jobs" "$LONG" > "$WORKDIR/long1.txt"
  grep -q '^HTTP 202$' "$WORKDIR/long1.txt" \
    || { echo "check.sh: first long job rejected" >&2; exit 1; }
  LONG_ID="$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$WORKDIR/long1.txt" | head -1)"
  http_post "http://127.0.0.1:$PORT/jobs" "$LONG" > "$WORKDIR/long2.txt"
  grep -q '^HTTP 202$' "$WORKDIR/long2.txt" \
    || { echo "check.sh: queued long job rejected" >&2; exit 1; }
  QUEUED_ID="$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$WORKDIR/long2.txt" | head -1)"
  http_post "http://127.0.0.1:$PORT/jobs" "$LONG" > "$WORKDIR/long3.txt"
  grep -q '^HTTP 429$' "$WORKDIR/long3.txt" \
    || { echo "check.sh: full queue did not answer 429" >&2; cat "$WORKDIR/long3.txt" >&2; exit 1; }
  grep -q 'resource_exhausted' "$WORKDIR/long3.txt" \
    || { echo "check.sh: 429 body lacks the status code" >&2; exit 1; }

  http_delete "http://127.0.0.1:$PORT/jobs/$QUEUED_ID" > /dev/null
  http_delete "http://127.0.0.1:$PORT/jobs/$LONG_ID" > /dev/null
  CANCELLED=""
  for _ in $(seq 1 100); do
    if http_get "http://127.0.0.1:$PORT/jobs/$LONG_ID" \
        | grep -q '"state":"cancelled"'; then
      CANCELLED=1
      break
    fi
    sleep 0.1
  done
  [ -n "$CANCELLED" ] || { echo "check.sh: DELETE did not cancel the job" >&2; exit 1; }

  kill "$CLI_PID" 2>/dev/null || true
  wait "$CLI_PID" 2>/dev/null || true
  CLI_PID=""
  echo "check.sh: serve smoke passed (/healthz ok, /metrics well-formed, job API drove submit/poll/result/429/cancel)"
  exit 0
fi

if [ "$MODE" = "trace" ]; then
  # Trace-correlation smoke: one trace id, supplied by the CLIENT via a W3C
  # traceparent header, must come back out of every observability surface the
  # job touches — logs, span tree, wave timeline, report artifact, metrics.
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target nde_cli

  WORKDIR="$(mktemp -d)"
  CLI_PID=""
  cleanup() {
    if [ -n "$CLI_PID" ] && kill -0 "$CLI_PID" 2>/dev/null; then
      kill "$CLI_PID" 2>/dev/null || true
      wait "$CLI_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
  }
  trap cleanup EXIT

  http_get() {
    if command -v curl >/dev/null 2>&1; then
      curl -sf --max-time 5 "$1"
    else
      python3 -c 'import sys, urllib.request
sys.stdout.write(urllib.request.urlopen(sys.argv[1], timeout=5).read().decode())' "$1"
    fi
  }
  # POST with an explicit traceparent header; prints body then "HTTP <code>".
  http_post_traced() {
    if command -v curl >/dev/null 2>&1; then
      curl -s --max-time 10 -X POST -H "traceparent: $3" --data "$2" \
        -w '\nHTTP %{http_code}\n' "$1"
    else
      python3 - "$1" "$2" "$3" <<'EOF'
import sys, urllib.request, urllib.error
req = urllib.request.Request(sys.argv[1], data=sys.argv[2].encode(),
                             headers={"traceparent": sys.argv[3]})
try:
    resp = urllib.request.urlopen(req, timeout=10)
    body, code = resp.read().decode(), resp.status
except urllib.error.HTTPError as e:
    body, code = e.read().decode(), e.code
print(body)
print(f"HTTP {code}")
EOF
    fi
  }

  python3 - "$WORKDIR/train.csv" <<'EOF'
import random, sys
random.seed(7)
with open(sys.argv[1], "w") as f:
    f.write("x0,x1,label\n")
    for i in range(200):
        label = i % 2
        mu = 1.0 if label else -1.0
        f.write(f"{random.gauss(mu, 1):.4f},{random.gauss(-mu, 1):.4f},{label}\n")
EOF

  "$BUILD_DIR/tools/nde_cli" serve --port 0 --job-workers 1 \
    --artifact-dir "$WORKDIR/artifacts" --log-level info --log-json \
    2> "$WORKDIR/serve_err.txt" &
  CLI_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's#.*serving on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
      "$WORKDIR/serve_err.txt" | head -1)"
    [ -n "$PORT" ] && break
    kill -0 "$CLI_PID" 2>/dev/null || {
      echo "check.sh: nde_cli serve exited early" >&2
      cat "$WORKDIR/serve_err.txt" >&2
      exit 1
    }
    sleep 0.1
  done
  [ -n "$PORT" ] || { echo "check.sh: serve mode never announced" >&2; exit 1; }

  # A fixed, recognizable trace id proves propagation (a minted one could
  # mask an ignored header).
  TRACE_ID="4bf92f3577b34da6a3ce929d0e0e4736"
  TRACEPARENT="00-$TRACE_ID-00f067aa0ba902b7-01"

  http_post_traced "http://127.0.0.1:$PORT/jobs" \
    "{\"algorithm\":\"knn_shapley\",\"label\":\"label\",\"csv_path\":\"$WORKDIR/train.csv\",\"options\":{\"k\":3}}" \
    "$TRACEPARENT" > "$WORKDIR/submit.txt"
  grep -q '^HTTP 202$' "$WORKDIR/submit.txt" \
    || { echo "check.sh: POST /jobs not accepted" >&2; cat "$WORKDIR/submit.txt" >&2; exit 1; }
  JOB_ID="$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$WORKDIR/submit.txt" | head -1)"
  [ -n "$JOB_ID" ] || { echo "check.sh: no job id in POST response" >&2; exit 1; }

  DONE=""
  for _ in $(seq 1 100); do
    http_get "http://127.0.0.1:$PORT/jobs/$JOB_ID" > "$WORKDIR/job.txt" || true
    if grep -q '"state":"done"' "$WORKDIR/job.txt"; then DONE=1; break; fi
    if grep -q '"state":"error"' "$WORKDIR/job.txt"; then break; fi
    sleep 0.1
  done
  [ -n "$DONE" ] || { echo "check.sh: job never reached done" >&2; cat "$WORKDIR/job.txt" >&2; exit 1; }

  # (1) The job snapshot carries the client's trace id verbatim.
  grep -q "\"trace_id\":\"$TRACE_ID\"" "$WORKDIR/job.txt" \
    || { echo "check.sh: job snapshot lacks the client trace id" >&2; exit 1; }

  # (2) The span tree for the job is rooted in the same trace.
  http_get "http://127.0.0.1:$PORT/jobs/$JOB_ID/tracez" > "$WORKDIR/tracez.txt" \
    || { echo "check.sh: GET tracez failed" >&2; exit 1; }
  grep -q "\"trace_id\":\"$TRACE_ID\"" "$WORKDIR/tracez.txt" \
    || { echo "check.sh: tracez lacks the client trace id" >&2; exit 1; }
  grep -q '"spans":\[{' "$WORKDIR/tracez.txt" \
    || { echo "check.sh: tracez recorded no spans" >&2; exit 1; }
  http_get "http://127.0.0.1:$PORT/jobs/$JOB_ID/tracez?folded=1" \
    > "$WORKDIR/folded.txt" || true
  [ -s "$WORKDIR/folded.txt" ] \
    || { echo "check.sh: folded tracez view is empty" >&2; exit 1; }

  # (3) The wave timeline is attributed to the same trace.
  http_get "http://127.0.0.1:$PORT/jobs/$JOB_ID/eventz" > "$WORKDIR/eventz.txt" \
    || { echo "check.sh: GET eventz failed" >&2; exit 1; }
  grep -q "\"trace_id\":\"$TRACE_ID\"" "$WORKDIR/eventz.txt" \
    || { echo "check.sh: eventz lacks the client trace id" >&2; exit 1; }
  grep -q '"waves":\[{' "$WORKDIR/eventz.txt" \
    || { echo "check.sh: eventz recorded no waves" >&2; exit 1; }

  # (4) The persisted RunReport artifact records the trace id.
  grep -q "\"trace_id\":\"$TRACE_ID\"" "$WORKDIR/artifacts/$JOB_ID.json" \
    || { echo "check.sh: RunReport artifact lacks the trace id" >&2; exit 1; }

  # (5) The server's JSON logs stamp both the trace id and the job id.
  grep -q "\"trace_id\":\"$TRACE_ID\"" "$WORKDIR/serve_err.txt" \
    || { echo "check.sh: JSON logs lack the client trace id" >&2; exit 1; }
  grep -q "\"job_id\":\"$JOB_ID\"" "$WORKDIR/serve_err.txt" \
    || { echo "check.sh: JSON logs lack the job id" >&2; exit 1; }

  # (6) /metrics exposes per-job labeled series plus the per-endpoint
  # request-latency histogram.
  http_get "http://127.0.0.1:$PORT/metrics" > "$WORKDIR/metrics.txt" \
    || { echo "check.sh: /metrics scrape failed" >&2; exit 1; }
  grep -q "job_id=\"$JOB_ID\"" "$WORKDIR/metrics.txt" \
    || { echo "check.sh: /metrics has no series labeled with the job id" >&2; exit 1; }
  grep -q 'http_request_us_count{status="2xx",target="/jobs/<id>"}' \
    "$WORKDIR/metrics.txt" \
    || { echo "check.sh: /metrics lacks the per-endpoint latency series" >&2; exit 1; }

  kill "$CLI_PID" 2>/dev/null || true
  wait "$CLI_PID" 2>/dev/null || true
  CLI_PID=""

  # Chaos with the tracing stack live, under TSan: injected faults land on
  # worker threads while spans record and labeled series resolve.
  TSAN_DIR="$BUILD_DIR-tsan"
  cmake -B "$TSAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build "$TSAN_DIR" -j "$(nproc)"
  NDE_CHAOS_TRACE=1 TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$(nproc)" -L chaos

  echo "check.sh: trace smoke passed (one trace id across logs/tracez/eventz/artifact/metrics; chaos+tracing clean under TSan)"
  exit 0
fi

if [ "$MODE" = "prop" ]; then
  # Fast generative tier: exactly the property-labeled suites on a small
  # per-test case budget. An exported NDE_PROP_CASES/NDE_PROP_SEED wins, so
  # the one-line replay command a failing property prints reproduces the
  # same case through this entry point.
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target proptest_test property_test
  NDE_PROP_CASES="${NDE_PROP_CASES:-25}" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
      -L property
  echo "check.sh: property smoke passed (ctest -L property, NDE_PROP_CASES=${NDE_PROP_CASES:-25})"
  exit 0
fi

if [ "$MODE" = "chaos" ]; then
  # The chaos gate: the fault-injection suites (ctest label `chaos`) must be
  # clean under BOTH ASan+UBSan (no leaks or UB on any injected error path)
  # and TSan (no races when faults land on worker threads), and the CLI must
  # turn an injected fault into exit code 3 with failpoint counters visible
  # in its telemetry export.
  for SAN in address,undefined thread; do
    case "$SAN" in
      thread) DIR="$BUILD_PREFIX-tsan" ;;
      *)      DIR="$BUILD_PREFIX-asan" ;;
    esac
    cmake -B "$DIR" -S . \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_FLAGS="-fsanitize=$SAN -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=$SAN"
    cmake --build "$DIR" -j "$(nproc)"
    UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
    TSAN_OPTIONS="halt_on_error=1" \
      ctest --test-dir "$DIR" --output-on-failure -j "$(nproc)" -L chaos
    echo "check.sh: chaos suites passed under $SAN"
  done

  # End-to-end: injected utility faults exhaust their retries, the CLI exits
  # 3, and the metrics table reports the failpoint's hit/fire counters.
  WORKDIR="$(mktemp -d)"
  trap 'rm -rf "$WORKDIR"' EXIT
  {
    echo "age,score,label"
    for i in $(seq 0 59); do
      echo "$((20 + i % 30)),$((i % 7)).$((i % 10)),$((i % 2))"
    done
  } > "$WORKDIR/train.csv"
  set +e
  NDE_FAILPOINTS='utility.evaluate=error(unavailable:chaos gate)' \
    "$BUILD_PREFIX-asan/tools/nde_cli" importance "$WORKDIR/train.csv" \
    --label label --top 5 --permutations 4 --retries 1 --retry-backoff-ms 0 \
    --metrics > "$WORKDIR/out.txt" 2> "$WORKDIR/err.txt"
  CODE=$?
  set -e
  [ "$CODE" -eq 3 ] || {
    echo "check.sh: expected exit 3 from injected fault, got $CODE" >&2
    cat "$WORKDIR/err.txt" >&2
    exit 1
  }
  grep -q "chaos gate" "$WORKDIR/err.txt" || {
    echo "check.sh: injected fault message missing from stderr" >&2
    exit 1
  }
  grep -q "failpoint.utility.evaluate.hits" "$WORKDIR/out.txt" || {
    echo "check.sh: --metrics lacks failpoint hit counters" >&2
    exit 1
  }
  grep -q "failpoint.utility.evaluate.fires" "$WORKDIR/out.txt" || {
    echo "check.sh: --metrics lacks failpoint fire counters" >&2
    exit 1
  }
  echo "check.sh: chaos gate passed (ASan+UBSan, TSan, CLI exit-3 + counters)"
  exit 0
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=$SANITIZE -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=$SANITIZE"

cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes UBSan reports fail the test instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export TSAN_OPTIONS="halt_on_error=1"

if [ "$MODE" = "tsan" ]; then
  # The thread-heavy suites: pool lifecycle, ParallelFor (including the
  # SubsetCache concurrency hammer), the estimators' cross-thread
  # determinism contract over the cached/warm-started utilities, the
  # registry/job-API serving layer (worker pool + HTTP cancellation), and
  # the generative property suites (thread-sweep and fast-path-config
  # invariants fan work across pools) on a small case budget — TSan costs
  # 5-15x, so the default 100-case budgets would dominate the run.
  NDE_PROP_CASES="${NDE_PROP_CASES:-10}" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
      -R "determinism|parallel|importance|registry|job_api|proptest"
  echo "check.sh: parallel suites passed under TSan"
else
  # Full suite, including the property label at a reduced generative budget
  # (ASan+UBSan overhead makes the default case counts needlessly slow; a
  # printed replay seed still reproduces here via its NDE_PROP_* exports).
  NDE_PROP_CASES="${NDE_PROP_CASES:-25}" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
  echo "check.sh: all tests passed under ASan+UBSan"
fi
