// bench_diff — benchmark-trajectory regression gate.
//
//   bench_diff --baseline bench/BENCH_baseline.json
//              --candidate BENCH_results.json [--threshold 0.15]
//
// Both files are JSON-lines as written by bench_util::ReportJson: one flat
// object per line with a "name" field, numeric measurements, and the machine
// stamp ("git_rev", "date", "cpus", "telemetry"). The tool compares a fixed
// set of key counters — the ones the perf roadmap actually watches:
//
//   BM_TmcUtilityFastPath/fast:1   utility_evals_per_sec   higher is better
//   BM_BanzhafSubsetCache/warm:1   cache_hit_rate          higher is better
//   BM_TmcWaveLatency              wave_p99_ms             lower is better
//
// For each watched benchmark the LAST matching record in each file wins, so
// an append-only results file naturally compares its freshest run against the
// committed baseline. A watched benchmark absent from the *baseline* is
// skipped (a short smoke run may only exercise a subset); present in the
// baseline but absent from the candidate is an error — the candidate run
// silently dropped a guarded benchmark.
//
// Exit codes: 0 all watched counters within threshold; 1 at least one
// regressed beyond threshold; 2 usage or parse failure.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct WatchedCounter {
  const char* bench_name;  ///< exact "name" field of the record
  const char* counter;     ///< numeric field inside the record
  bool higher_is_better;
};

const WatchedCounter kWatched[] = {
    {"BM_TmcUtilityFastPath/fast:1", "utility_evals_per_sec", true},
    {"BM_BanzhafSubsetCache/warm:1", "cache_hit_rate", true},
    {"BM_TmcWaveLatency", "wave_p99_ms", false},
    {"BM_KnnKernel/soa:1", "utility_evals_per_sec", true},
    {"BM_GaussianNbPrefixScan/scan:1", "utility_evals_per_sec", true},
};

/// Extracts the string value of `key` from one flat JSON object line.
/// Returns false when the key is absent. Only handles the shapes ReportJson
/// emits (flat object, keys in double quotes, no escaped quotes in values).
bool ExtractRaw(const std::string& line, const std::string& key,
                std::string* out) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  while (pos < line.size() && std::isspace(static_cast<unsigned char>(
                                  line[pos]))) {
    ++pos;
  }
  if (pos >= line.size()) return false;
  size_t end = pos;
  if (line[pos] == '"') {
    end = line.find('"', pos + 1);
    if (end == std::string::npos) return false;
    *out = line.substr(pos + 1, end - pos - 1);
    return true;
  }
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(pos, end - pos);
  // Trim trailing spaces.
  while (!out->empty() && std::isspace(static_cast<unsigned char>(
                              out->back()))) {
    out->pop_back();
  }
  return !out->empty();
}

bool ExtractNumber(const std::string& line, const std::string& key,
                   double* out) {
  std::string raw;
  if (!ExtractRaw(line, key, &raw)) return false;
  char* end = nullptr;
  double value = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

struct Record {
  double value = 0.0;
  std::string git_rev;
  std::string date;
};

/// Loads the last record per watched benchmark from a JSON-lines file.
/// Returns false (with a message) when the file cannot be read or a line that
/// names a watched benchmark lacks its watched counter.
bool LoadLastRecords(const std::string& path,
                     std::map<std::string, Record>* records,
                     std::string* error) {
  std::ifstream in(path);
  if (!in.is_open()) {
    *error = "cannot open '" + path + "'";
    return false;
  }
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string name;
    if (!ExtractRaw(line, "name", &name)) {
      std::ostringstream os;
      os << path << ":" << line_number << ": record has no \"name\" field";
      *error = os.str();
      return false;
    }
    for (const WatchedCounter& watched : kWatched) {
      if (name != watched.bench_name) continue;
      Record record;
      if (!ExtractNumber(line, watched.counter, &record.value)) {
        std::ostringstream os;
        os << path << ":" << line_number << ": '" << name
           << "' lacks numeric counter '" << watched.counter << "'";
        *error = os.str();
        return false;
      }
      ExtractRaw(line, "git_rev", &record.git_rev);
      ExtractRaw(line, "date", &record.date);
      (*records)[name] = record;  // last entry per name wins
    }
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff --baseline <baseline.json> "
               "--candidate <results.json> [--threshold 0.15]\n"
               "compares the last record per watched benchmark; exit 1 when "
               "a key counter regresses beyond the threshold fraction\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, candidate_path;
  double threshold = 0.15;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string raw;
    if (arg == "--baseline" && value(&baseline_path)) continue;
    if (arg == "--candidate" && value(&candidate_path)) continue;
    if (arg == "--threshold" && value(&raw)) {
      char* end = nullptr;
      threshold = std::strtod(raw.c_str(), &end);
      if (end == raw.c_str() || threshold <= 0.0 || threshold >= 10.0) {
        std::fprintf(stderr, "error: bad --threshold '%s'\n", raw.c_str());
        return 2;
      }
      continue;
    }
    std::fprintf(stderr, "error: unknown or valueless flag '%s'\n",
                 arg.c_str());
    return Usage();
  }
  if (baseline_path.empty() || candidate_path.empty()) return Usage();

  std::map<std::string, Record> baseline, candidate;
  std::string error;
  if (!LoadLastRecords(baseline_path, &baseline, &error) ||
      !LoadLastRecords(candidate_path, &candidate, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (baseline.empty()) {
    std::fprintf(stderr, "error: baseline '%s' has no watched benchmarks\n",
                 baseline_path.c_str());
    return 2;
  }

  std::printf("%-32s %-22s %12s %12s %8s  %s\n", "benchmark", "counter",
              "baseline", "candidate", "delta", "verdict");
  int regressions = 0;
  for (const WatchedCounter& watched : kWatched) {
    auto base_it = baseline.find(watched.bench_name);
    if (base_it == baseline.end()) {
      std::printf("%-32s %-22s %12s %12s %8s  skipped (not in baseline)\n",
                  watched.bench_name, watched.counter, "-", "-", "-");
      continue;
    }
    auto cand_it = candidate.find(watched.bench_name);
    if (cand_it == candidate.end()) {
      // The baseline guards this benchmark; a candidate run that dropped it
      // must not pass silently.
      std::fprintf(stderr,
                   "error: candidate '%s' has no record for '%s' (guarded by "
                   "the baseline)\n",
                   candidate_path.c_str(), watched.bench_name);
      return 2;
    }
    double base = base_it->second.value;
    double cand = cand_it->second.value;
    // Delta is signed toward "better": positive means the candidate improved.
    double delta = base == 0.0
                       ? 0.0
                       : (watched.higher_is_better ? (cand - base) / base
                                                   : (base - cand) / base);
    bool regressed = delta < -threshold;
    if (regressed) ++regressions;
    std::printf("%-32s %-22s %12.4g %12.4g %+7.1f%%  %s\n",
                watched.bench_name, watched.counter, base, cand, delta * 100.0,
                regressed ? "REGRESSED" : "ok");
  }
  std::string base_rev, cand_rev;
  for (const auto& [name, record] : baseline) base_rev = record.git_rev;
  for (const auto& [name, record] : candidate) cand_rev = record.git_rev;
  std::printf("baseline rev: %s  candidate rev: %s  threshold: %.0f%%\n",
              base_rev.empty() ? "unknown" : base_rev.c_str(),
              cand_rev.empty() ? "unknown" : cand_rev.c_str(),
              threshold * 100.0);
  if (regressions > 0) {
    std::fprintf(stderr, "error: %d watched counter(s) regressed beyond %.0f%%\n",
                 regressions, threshold * 100.0);
    return 1;
  }
  return 0;
}
