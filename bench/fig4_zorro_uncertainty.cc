// Experiment E3 (Figure 4): learning from imperfect data with Zorro-style
// symbolic uncertainty propagation.
//
// Reproduces the hands-on sweep of Figure 4: for increasing percentages of
// MNAR missing values in the `employer_rating` feature, encode the data
// symbolically (missing cells become intervals), train a possible-models
// object by interval gradient descent, and report the maximum worst-case loss
// on the test set. The paper's figure shows this quantity rising with the
// missing percentage; soundness is verified against sampled possible worlds,
// and an imputation baseline shows what a single best-guess repair hides.
//
// Also prints the ablation DESIGN.md calls out: interval growth vs epochs.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "datagen/synthetic.h"
#include "ml/linear_regression.h"
#include "uncertain/zonotope_trainer.h"
#include "uncertain/zorro.h"

namespace nde {
namespace {

/// Regression view of the hiring data: predict a "offer score" target from
/// numeric features; employer_rating (column 2) is the uncertain feature.
RegressionDataset MakeRegressionData(size_t n, uint64_t seed) {
  Rng rng(seed);
  RegressionDataset data;
  data.features = Matrix(n, 4);
  data.targets.resize(n);
  for (size_t i = 0; i < n; ++i) {
    double experience = rng.NextGaussian();
    double education = rng.NextGaussian();
    double employer_rating = rng.NextUniform(-1.0, 1.0);
    double followers = rng.NextGaussian();
    data.features(i, 0) = experience;
    data.features(i, 1) = education;
    data.features(i, 2) = employer_rating;
    data.features(i, 3) = followers;
    data.targets[i] = 0.8 * experience + 0.5 * education +
                      0.6 * employer_rating + 0.1 * followers +
                      0.05 * rng.NextGaussian();
  }
  return data;
}

/// MNAR missing rows for the employer_rating column: above-median values are
/// three times more likely to be missing.
std::vector<size_t> MnarMissingRows(const RegressionDataset& data,
                                    size_t column, double fraction, Rng* rng) {
  size_t n = data.size();
  std::vector<std::pair<double, size_t>> keys(n);
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = data.features(i, column);
  std::vector<double> sorted = values;
  std::nth_element(sorted.begin(), sorted.begin() + n / 2, sorted.end());
  double median = sorted[n / 2];
  for (size_t i = 0; i < n; ++i) {
    double weight = values[i] > median ? 3.0 : 1.0;
    double u = std::max(rng->NextDouble(), 1e-300);
    keys[i] = {std::pow(u, 1.0 / weight), i};
  }
  size_t target = static_cast<size_t>(fraction * static_cast<double>(n));
  std::partial_sort(
      keys.begin(), keys.begin() + static_cast<ptrdiff_t>(target), keys.end(),
      [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<size_t> rows;
  rows.reserve(target);
  for (size_t i = 0; i < target; ++i) rows.push_back(keys[i].second);
  return rows;
}

void Run() {
  bench::Banner(
      "E3 / Figure 4: maximum worst-case loss vs % MNAR missing values");

  const size_t kColumn = 2;  // employer_rating
  RegressionDataset train = MakeRegressionData(200, 42);
  RegressionDataset test = MakeRegressionData(80, 43);
  Rng rng(7);

  ZorroOptions options;
  // Few enough epochs that the interval over-approximation stays readable;
  // see the ablation below for how intervals blow up with longer training.
  options.epochs = 12;
  options.learning_rate = 0.05;

  std::printf("%10s %18s %18s %16s %18s %16s\n", "missing %",
              "interval bound", "zonotope bound", "pred width",
              "sampled max", "imputed MSE");
  for (int percentage : {5, 10, 15, 20, 25}) {
    std::vector<size_t> missing =
        MnarMissingRows(train, kColumn, percentage / 100.0, &rng);
    // X_train_symb = nde.encode_symbolic(..., missingness="MNAR")
    SymbolicRegressionDataset symbolic =
        EncodeSymbolicMissing(train, missing, kColumn, -1.0, 1.0).value();
    ZorroModel model = TrainZorro(symbolic, options).value();
    ZonotopeModel zonotope = TrainZorroZonotope(symbolic, options).value();
    double worst_case = MaxWorstCaseLoss(model, test);
    double zonotope_worst_case = MaxWorstCaseLoss(zonotope, test);
    double width = MeanPredictionWidth(model, test.features);

    // Soundness spot check: the worst sampled world's max test loss must be
    // below the symbolic bound.
    double sampled_max = 0.0;
    for (int world = 0; world < 10; ++world) {
      RegressionDataset sampled = symbolic.SampleWorld(&rng);
      std::vector<double> w = TrainConcreteGd(sampled, options);
      for (size_t i = 0; i < test.size(); ++i) {
        double prediction = w.back();
        for (size_t j = 0; j < 4; ++j) {
          prediction += w[j] * test.features(i, j);
        }
        double diff = prediction - test.targets[i];
        sampled_max = std::max(sampled_max, diff * diff);
      }
    }

    // Baseline: mean-impute the missing cells, train one model.
    RegressionDataset imputed = train;
    double mean_rating = 0.0;
    size_t observed = 0;
    std::vector<bool> is_missing(train.size(), false);
    for (size_t i : missing) is_missing[i] = true;
    for (size_t i = 0; i < train.size(); ++i) {
      if (!is_missing[i]) {
        mean_rating += train.features(i, kColumn);
        ++observed;
      }
    }
    mean_rating /= static_cast<double>(observed);
    for (size_t i : missing) imputed.features(i, kColumn) = mean_rating;
    RidgeRegression baseline(1e-3);
    baseline.Fit(imputed);
    double baseline_mse = baseline.MeanSquaredError(test);

    std::printf("%9d%% %18.4f %18.4f %16.4f %18.4f %16.4f\n", percentage,
                worst_case, zonotope_worst_case, width, sampled_max,
                baseline_mse);
  }
  std::printf(
      "\nexpected shape (paper figure): worst-case loss grows monotonically\n"
      "with the missing percentage; every sampled world stays below both\n"
      "bounds; the zonotope (affine-form) domain — Zorro's actual abstract\n"
      "domain — is tighter than plain intervals; the imputed baseline\n"
      "reports one small number and hides the uncertainty entirely.\n");

  bench::Banner("E3 ablation: interval growth vs training epochs");
  std::vector<size_t> missing =
      MnarMissingRows(train, kColumn, 0.15, &rng);
  SymbolicRegressionDataset symbolic =
      EncodeSymbolicMissing(train, missing, kColumn, -1.0, 1.0).value();
  std::printf("%8s %22s %22s\n", "epochs", "interval weight width",
              "zonotope weight width");
  for (size_t epochs : {5u, 15u, 30u, 60u}) {
    ZorroOptions ablation = options;
    ablation.epochs = epochs;
    ZorroModel model = TrainZorro(symbolic, ablation).value();
    ZonotopeModel zonotope = TrainZorroZonotope(symbolic, ablation).value();
    std::printf("%8zu %22.4f %22.4f\n", epochs, model.TotalWeightWidth(),
                zonotope.TotalWeightWidth());
  }
  std::printf(
      "trade-off: more epochs fit better in every world but widen the\n"
      "bounds; the interval domain loses dependency information every step,\n"
      "so its error compounds much faster than the zonotope's.\n");
}

}  // namespace
}  // namespace nde

int main() {
  nde::Run();
  return 0;
}
