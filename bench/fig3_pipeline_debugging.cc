// Experiment E2 (Figure 3): incorporating preprocessing pipelines into data
// debugging.
//
// Builds the paper's hiring pipeline (train JOIN jobdetail JOIN social,
// sector filter, has_twitter UDF, imputing/one-hot/text feature encoders),
// prints the query plan, runs it with fine-grained provenance, identifies the
// injected source-data label errors with Datascope-style pipeline-aware
// KNN-Shapley importance, removes the 25 lowest-importance *source* tuples,
// and reports the accuracy change of the retrained model (the paper's
// `nde.evaluate_change` prints +0.027). Also compares the provenance-backed
// fast what-if path against full pipeline re-execution.

#include <cstdio>
#include <memory>
#include <unordered_set>

#include "bench/bench_util.h"
#include "cleaning/strategies.h"
#include "datagen/synthetic.h"
#include "datascope/datascope.h"
#include "datascope/whatif.h"
#include "ml/knn.h"
#include "ml/metrics.h"
#include "pipeline/encoders.h"
#include "pipeline/pipeline.h"

namespace nde {
namespace {

MlPipeline BuildHiringPipeline(const HiringScenario& scenario) {
  std::vector<NamedTable> sources;
  sources.push_back({"train_df", scenario.train});
  sources.push_back({"jobdetail_df", scenario.jobdetail});
  sources.push_back({"social_df", scenario.social});

  PlanBuilder builder = [](const std::vector<PlanNodePtr>& s) -> PlanNodePtr {
    PlanNodePtr plan = MakeHashJoin(s[0], s[1], "job_id", "job_id");
    plan = MakeHashJoin(plan, s[2], "person_id", "person_id");
    plan = MakeFilterEquals(plan, "sector", Value("healthcare"));
    std::vector<ComputedColumn> computed;
    computed.push_back(ComputedColumn{
        Field{"has_twitter", DataType::kInt64}, [](const RowView& row) {
          return Value(int64_t{row.GetOrDie("twitter").is_null() ? 0 : 1});
        }});
    return MakeProject(plan,
                       {"person_id", "letter_text", "degree", "age",
                        "employer_rating", "followers", "sentiment"},
                       std::move(computed));
  };

  ColumnTransformer transformer;
  // The text embedding carries the label signal; weight it like the wide
  // SentenceBERT block it stands in for (transformer_weights in sklearn).
  transformer.Add("letter_text", std::make_unique<HashingVectorizer>(48), 6.0);
  transformer.Add("degree", std::make_unique<OneHotEncoder>());
  transformer.Add("age", std::make_unique<NumericEncoder>());
  transformer.Add("employer_rating", std::make_unique<NumericEncoder>());
  transformer.Add("followers", std::make_unique<NumericEncoder>());
  return MlPipeline(std::move(sources), std::move(builder),
                    std::move(transformer), "sentiment");
}

void Run() {
  bench::Banner("E2 / Figure 3: data debugging over the ML pipeline");

  HiringScenarioOptions options;
  options.num_applicants = 800;
  options.seed = 42;
  HiringScenario scenario = MakeHiringScenario(options);

  // Separate applicants for the validation side of the pipeline.
  HiringScenarioOptions val_options = options;
  val_options.num_applicants = 300;
  val_options.seed = 43;
  HiringScenario val_scenario = MakeHiringScenario(val_options);
  val_scenario.jobdetail = scenario.jobdetail;  // Shared dimension table.

  // Inject label errors into the SOURCE train table (before the pipeline).
  Rng rng(7);
  std::vector<size_t> corrupted =
      InjectLabelErrorsTable(&scenario.train, "sentiment", 0.1, &rng).value();
  std::printf("injected %zu label flips into train_df source rows\n",
              corrupted.size());

  MlPipeline pipeline = BuildHiringPipeline(scenario);

  // nde.show_query_plan(pipeline)
  bench::Banner("pipeline query plan");
  std::printf("%s", PlanToString(*pipeline.BuildPlan()).c_str());

  // X_train, prov = nde.with_provenance(pipeline(...))
  bench::Stopwatch run_watch;
  PipelineOutput output = pipeline.Run().value();
  std::printf("pipeline output: %zu rows x %zu features (%.0f ms)\n",
              output.size(), output.features.cols(), run_watch.ElapsedMs());

  // Validation set through the same relational plan + fitted encoders.
  MlPipeline val_pipeline = BuildHiringPipeline(val_scenario);
  PipelineOutput val_output = val_pipeline.Run().value();
  MlDataset validation =
      EncodeValidation(output, val_output.processed, "sentiment").value();
  std::printf("validation set: %zu rows\n", validation.size());

  // importances = nde.datascope(for=train_df_err, provenance=prov, ...)
  bench::Banner("Datascope: source-tuple importance via provenance");
  bench::Stopwatch importance_watch;
  std::vector<double> importances =
      KnnShapleyOverPipeline(output, validation, /*table=*/0,
                             scenario.train.num_rows(), /*k=*/5)
          .value();
  std::printf("computed %zu source-tuple importances in %.0f ms\n",
              importances.size(), importance_watch.ElapsedMs());
  std::vector<size_t> ranking = AscendingOrder(importances);
  std::printf("precision@25 against injected errors: %.3f\n",
              PrecisionAtK(ranking, corrupted, 25));
  std::printf(
      "(note: the sector filter drops some corrupted rows from the output,\n"
      " so perfect precision is impossible by construction)\n");

  // lowest = argsort(importances)[:25]; removal what-if.
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  std::vector<SourceRef> lowest;
  for (size_t i = 0; i < 25; ++i) {
    lowest.push_back(SourceRef{0, static_cast<uint32_t>(ranking[i])});
  }
  RemovalImpact informed =
      EvaluateSourceRemoval(pipeline, output, factory, validation, lowest,
                            /*fast_path=*/true)
          .value();
  std::printf("\nRemoval changed accuracy by %+.4f (%.4f -> %.4f).\n",
              informed.accuracy_change, informed.baseline_accuracy,
              informed.new_accuracy);
  std::printf("(paper figure: removal changed accuracy by +0.027)\n");

  Rng random_rng(11);
  std::vector<SourceRef> random_removal;
  for (size_t i :
       random_rng.SampleWithoutReplacement(scenario.train.num_rows(), 25)) {
    random_removal.push_back(SourceRef{0, static_cast<uint32_t>(i)});
  }
  RemovalImpact random =
      EvaluateSourceRemoval(pipeline, output, factory, validation,
                            random_removal)
          .value();
  std::printf("random 25-tuple removal changed accuracy by %+.4f\n",
              random.accuracy_change);

  // Fast what-if vs full re-execution (the IVM connection of Section 2.2).
  bench::Banner("what-if removal: provenance fast path vs full re-run");
  bench::Stopwatch fast_watch;
  RemovalImpact fast = EvaluateSourceRemoval(pipeline, output, factory,
                                             validation, lowest, true)
                           .value();
  double fast_ms = fast_watch.ElapsedMs();
  bench::Stopwatch slow_watch;
  RemovalImpact slow = EvaluateSourceRemoval(pipeline, output, factory,
                                             validation, lowest, false)
                           .value();
  double slow_ms = slow_watch.ElapsedMs();
  std::printf("%-22s %12s %14s\n", "path", "time (ms)", "new accuracy");
  std::printf("%-22s %12.1f %14.4f\n", "provenance fast path", fast_ms,
              fast.new_accuracy);
  std::printf("%-22s %12.1f %14.4f\n", "full re-execution", slow_ms,
              slow.new_accuracy);
  std::printf("expected shape: fast path cheaper, near-identical accuracy.\n");

  // Data-centric what-if catalog (the mlwhatif connection, also Section 2.2):
  // evaluate a set of source-level repair interventions in one sweep.
  bench::Banner("what-if catalog: source interventions vs downstream quality");
  std::vector<WhatIfIntervention> interventions;
  interventions.push_back(WhatIfIntervention{
      "drop null-degree applicants", 0, DropNullRowsIntervention("degree")});
  interventions.push_back(WhatIfIntervention{
      "drop shortest letters", 0,
      FilterRowsIntervention([](const Table& t, size_t r) {
        size_t col = t.schema().FieldIndex("letter_text").value();
        return t.At(r, col).as_string().size() > 180;
      })});
  interventions.push_back(WhatIfIntervention{
      "drop low-rated employers", 1,
      FilterRowsIntervention([](const Table& t, size_t r) {
        size_t col = t.schema().FieldIndex("employer_rating").value();
        return t.At(r, col).as_double() > 1.5;
      })});
  Result<std::vector<WhatIfOutcome>> outcomes =
      RunWhatIfAnalysis(pipeline, factory, validation, interventions);
  if (outcomes.ok()) {
    for (const WhatIfOutcome& outcome : *outcomes) {
      std::printf("%s\n", outcome.ToString().c_str());
    }
  } else {
    std::printf("what-if analysis failed: %s\n",
                outcomes.status().ToString().c_str());
  }
}

}  // namespace
}  // namespace nde

int main() {
  nde::Run();
  return 0;
}
