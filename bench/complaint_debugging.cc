// Experiment E10 (survey Section 2.2, refs [20, 83]): complaint-driven
// training-data debugging at the predictive-query stage, plus the
// calibration half of Figure 1's "Predictive Query Processing" box.
//
// A deployed model answers the aggregate query "predicted positive rate per
// group". A user complains that one group's rate is too high (the region's
// training labels were partially corrupted upward). Complaint-driven
// debugging attributes the aggregate to individual training tuples via the
// exact KNN-Shapley recurrence and removes the strongest contributors,
// moving the query result toward the complaint's target — while a random
// removal of equal size barely moves it.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "datagen/synthetic.h"
#include "ml/knn.h"
#include "ml/svm.h"
#include "query/calibration.h"
#include "query/predictive_query.h"

namespace nde {
namespace {

void ComplaintSection() {
  bench::Banner("E10a: complaint-driven debugging of an aggregate query");
  Rng rng(42);
  // Two spatial regions; region 1's negatives were partially mislabeled as
  // positives at the source.
  size_t n = 400;
  MlDataset train;
  train.features = Matrix(n, 2);
  train.labels.resize(n);
  size_t poisoned = 0;
  for (size_t i = 0; i < n; ++i) {
    int region = rng.NextBernoulli(0.5) ? 1 : 0;
    train.features(i, 0) = (region == 1 ? 3.0 : -3.0) + 0.8 * rng.NextGaussian();
    train.features(i, 1) = rng.NextGaussian();
    int label = rng.NextBernoulli(0.3) ? 1 : 0;
    if (region == 1 && label == 0 && rng.NextBernoulli(0.4)) {
      label = 1;
      ++poisoned;
    }
    train.labels[i] = label;
  }
  size_t m = 160;
  Matrix queries(m, 2);
  std::vector<int> groups(m);
  for (size_t i = 0; i < m; ++i) {
    int region = static_cast<int>(i % 2);
    queries(i, 0) = (region == 1 ? 3.0 : -3.0) + 0.8 * rng.NextGaussian();
    queries(i, 1) = rng.NextGaussian();
    groups[i] = region;
  }

  KnnClassifier knn(5);
  Status fit = knn.Fit(train);
  NDE_CHECK(fit.ok());
  LabelDictionary dictionary({"rejected", "accepted"});
  std::printf("query: mean predicted P(%s) per group (true base rate 0.30)\n",
              dictionary.Lookup(1).c_str());
  for (const GroupAggregate& agg :
       AggregatePositiveRate(knn, queries, groups).value()) {
    std::printf("  %s\n", agg.ToString().c_str());
  }
  std::printf("(injected %zu upward label flips into group 1's region)\n",
              poisoned);

  Complaint complaint{1, ComplaintDirection::kTooHigh};
  std::printf("\ncomplaint: group 1's rate is too high. fixing...\n");
  std::printf("%10s %18s %18s %20s\n", "budget", "informed fix",
              "random removal", "group-0 side effect");
  for (size_t budget : {10u, 25u, 50u, 80u}) {
    ComplaintFixResult fix =
        ApplyComplaintFix(train, queries, groups, complaint, 5, budget)
            .value();
    // Control: random removal of the same size.
    Rng control_rng(budget);
    MlDataset random_removed = train.Without(
        control_rng.SampleWithoutReplacement(train.size(), budget));
    KnnClassifier control(5);
    Status control_fit = control.Fit(random_removed);
    NDE_CHECK(control_fit.ok());
    double random_aggregate = 0.0;
    double group0_after = 0.0;
    for (const GroupAggregate& agg :
         AggregatePositiveRate(control, queries, groups).value()) {
      if (agg.group == 1) random_aggregate = agg.positive_rate;
    }
    // Side effect of the informed fix on group 0.
    KnnClassifier fixed(5);
    Status fixed_fit = fixed.Fit(train.Without(fix.removed));
    NDE_CHECK(fixed_fit.ok());
    for (const GroupAggregate& agg :
         AggregatePositiveRate(fixed, queries, groups).value()) {
      if (agg.group == 0) group0_after = agg.positive_rate;
    }
    std::printf("%10zu %8.4f -> %.4f %18.4f %20.4f\n", budget,
                fix.aggregate_before, fix.aggregate_after, random_aggregate,
                group0_after);
  }
  std::printf(
      "expected shape: the informed fix drives group 1's rate toward the\n"
      "true base rate with a budget near the corruption count, while random\n"
      "removal barely moves it and group 0 stays untouched.\n");
}

void CalibrationSection() {
  bench::Banner("E10b: calibrating predictive-query scores (Platt scaling)");
  BlobsOptions options;
  options.num_examples = 600;
  options.num_features = 4;
  options.separation = 1.8;  // Overlapping classes: calibration matters.
  options.noise = 1.2;
  MlDataset data = MakeBlobs(options);
  Rng rng(7);
  SplitResult split = TrainTestSplit(data, 0.5, &rng);
  SplitResult holdout = TrainTestSplit(split.test, 0.5, &rng);

  LinearSvm svm;
  Status fit = svm.Fit(split.train);
  NDE_CHECK(fit.ok());
  auto decision_values = [&svm](const MlDataset& d) {
    std::vector<double> scores(d.size());
    for (size_t i = 0; i < d.size(); ++i) {
      scores[i] = svm.DecisionValue(d.features.Row(i));
    }
    return scores;
  };
  // Naive probability surrogate: clamp the decision value into [0, 1].
  auto naive_probs = [](const std::vector<double>& scores) {
    std::vector<double> p(scores.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      p[i] = std::min(1.0, std::max(0.0, 0.5 + scores[i]));
    }
    return p;
  };

  PlattCalibrator calibrator;
  Status cal = calibrator.Fit(decision_values(holdout.train),
                              holdout.train.labels);
  NDE_CHECK(cal.ok());
  std::vector<double> test_scores = decision_values(holdout.test);
  std::vector<double> calibrated = calibrator.Calibrate(test_scores);
  std::vector<double> naive = naive_probs(test_scores);

  std::printf("%24s %14s %10s\n", "scores", "Brier", "ECE");
  std::printf("%24s %14.4f %10.4f\n", "clamped decision value",
              BrierScore(naive, holdout.test.labels),
              ExpectedCalibrationError(naive, holdout.test.labels));
  std::printf("%24s %14.4f %10.4f\n", "Platt-calibrated",
              BrierScore(calibrated, holdout.test.labels),
              ExpectedCalibrationError(calibrated, holdout.test.labels));
  std::printf(
      "expected shape: calibration lowers both Brier score and ECE, making\n"
      "the aggregate query results trustworthy as probabilities.\n");
}

}  // namespace
}  // namespace nde

int main() {
  nde::ComplaintSection();
  nde::CalibrationSection();
  return 0;
}
