#ifndef NDE_BENCH_BENCH_UTIL_H_
#define NDE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/telemetry.h"

namespace nde {
namespace bench {

/// Prints a section banner so each experiment's output reads as one report.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Wall-clock stopwatch for coarse harness timings.
class Stopwatch {
 public:
  Stopwatch() { Reset(); }

  /// Milliseconds since construction or the last Reset().
  double ElapsedMs() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

  /// Milliseconds since the last LapMs()/Reset() (or construction), and
  /// starts a new lap. ElapsedMs() keeps measuring from the last Reset().
  double LapMs() {
    auto now = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(now - lap_).count();
    lap_ = now;
    return ms;
  }

  /// Restarts both the total and the current lap.
  void Reset() {
    start_ = std::chrono::steady_clock::now();
    lap_ = start_;
  }

 private:
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point lap_;
};

/// Where ReportJson appends its records. Defaults to BENCH_results.json in
/// the working directory; override with the NDE_BENCH_RESULTS environment
/// variable (set it to an empty string to disable reporting entirely).
inline std::string ResultsPath() {
  const char* env = std::getenv("NDE_BENCH_RESULTS");
  if (env != nullptr) return env;
  return "BENCH_results.json";
}

/// The machine stamp appended to every ReportJson record, so a results file
/// accumulated over weeks stays attributable: which commit, which day, which
/// machine shape, and whether telemetry was live during the run. The harness
/// passes provenance through the environment (`NDE_GIT_REV`,
/// `NDE_BENCH_DATE`) because the benchmark binary should not shell out to
/// git or read the wall clock's calendar on its own.
inline std::string MachineStamp() {
  const char* rev = std::getenv("NDE_GIT_REV");
  const char* date = std::getenv("NDE_BENCH_DATE");
  const char* telemetry_state = "off";
#if NDE_TELEMETRY_ENABLED
  if (nde::telemetry::Enabled()) telemetry_state = "on";
#else
  telemetry_state = "compiled_out";
#endif
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                ", \"git_rev\": \"%s\", \"date\": \"%s\", \"cpus\": %u, "
                "\"telemetry\": \"%s\"",
                rev != nullptr && *rev != '\0' ? rev : "unknown",
                date != nullptr && *date != '\0' ? date : "unknown",
                std::thread::hardware_concurrency(), telemetry_state);
  return buffer;
}

/// Appends one machine-readable record to ResultsPath() as a JSON line:
///
///   {"name": "...", "ms": 1.25, "key": value, ...,
///    "git_rev": "...", "date": "...", "cpus": N, "telemetry": "on|off"}
///
/// `extra` values are emitted verbatim, so pass numbers as their decimal
/// text ("500") and strings pre-quoted ("\"tmc\""). One record per line
/// (JSON-lines) so runs can be appended and parsed with any JSON reader; the
/// trailing MachineStamp() fields make each line self-describing for
/// trajectory tools like tools/bench_diff.
inline void ReportJson(
    const std::string& name, double ms,
    const std::vector<std::pair<std::string, std::string>>& extra = {}) {
  std::string path = ResultsPath();
  if (path.empty()) return;
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) return;
  std::fprintf(file, "{\"name\": \"%s\", \"ms\": %.6f", name.c_str(), ms);
  for (const auto& [key, value] : extra) {
    std::fprintf(file, ", \"%s\": %s", key.c_str(), value.c_str());
  }
  std::fprintf(file, "%s}\n", MachineStamp().c_str());
  std::fclose(file);
}

}  // namespace bench
}  // namespace nde

#endif  // NDE_BENCH_BENCH_UTIL_H_
