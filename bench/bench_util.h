#ifndef NDE_BENCH_BENCH_UTIL_H_
#define NDE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

namespace nde {
namespace bench {

/// Prints a section banner so each experiment's output reads as one report.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Wall-clock stopwatch for coarse harness timings.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bench
}  // namespace nde

#endif  // NDE_BENCH_BENCH_UTIL_H_
