// Experiment E6 (Section 3.2): the data-debugging challenge leaderboard.
//
// Simulates the final hands-on exercise: a hidden-error training set, a
// budget-limited cleaning oracle reporting hidden-test accuracy, and a set
// of automated "participants", each implementing one prioritization
// strategy. Prints the resulting leaderboard — importance-guided
// participants should top it — plus the budget-monotonicity sweep.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "cleaning/challenge.h"
#include "cleaning/strategies.h"
#include "datagen/synthetic.h"
#include "ml/knn.h"

namespace nde {
namespace {

void Run() {
  bench::Banner("E6 / Section 3.2: data debugging challenge");

  DatasetSplits splits = LoadRecommendationLetters(500, 42);
  ChallengeOptions options;
  options.label_error_fraction = 0.15;
  options.feature_noise_fraction = 0.05;
  options.cleaning_budget = 50;
  options.seed = 7;
  DataDebuggingChallenge challenge(
      splits.train, splits.valid, splits.test,
      []() { return std::make_unique<KnnClassifier>(5); }, options);

  std::printf("hidden corrupted tuples: %zu of %zu\n",
              challenge.corrupted_indices().size(),
              challenge.dirty_train().size());
  std::printf("baseline hidden-test accuracy (no cleaning): %.4f\n",
              challenge.BaselineScore());

  // Each participant ranks with one strategy and submits its top-budget ids
  // in batches, like an attendee iterating on the notebook.
  for (const CleaningStrategy& strategy : StandardStrategies()) {
    std::vector<size_t> ranking =
        strategy.rank(challenge.dirty_train(), challenge.validation(), 99)
            .value();
    size_t budget = options.cleaning_budget;
    for (size_t batch_start = 0; batch_start < budget; batch_start += 10) {
      std::vector<size_t> batch(
          ranking.begin() + static_cast<ptrdiff_t>(batch_start),
          ranking.begin() + static_cast<ptrdiff_t>(batch_start + 10));
      Result<double> score =
          challenge.SubmitCleaningRequest(strategy.name, batch);
      if (!score.ok()) {
        std::printf("%s submission failed: %s\n", strategy.name.c_str(),
                    score.status().ToString().c_str());
        break;
      }
    }
  }
  // One participant cheats with the ground truth as an upper bound.
  std::vector<size_t> truth = challenge.corrupted_indices();
  if (truth.size() > options.cleaning_budget) {
    truth.resize(options.cleaning_budget);
  }
  (void)challenge.SubmitCleaningRequest("(ground-truth bound)", truth);

  bench::Banner("leaderboard");
  std::printf("%-22s %12s %10s\n", "participant", "best score", "cleaned");
  for (const auto& entry : challenge.Leaderboard()) {
    std::printf("%-22s %12.4f %10zu\n", entry.participant.c_str(),
                entry.best_score, entry.tuples_cleaned);
  }
  std::printf(
      "expected shape: importance-guided strategies above random, below the\n"
      "ground-truth bound.\n");

  // Budget monotonicity: more oracle budget never hurts the best score.
  bench::Banner("budget sweep (knn_shapley participant)");
  std::printf("%10s %14s\n", "budget", "best score");
  for (size_t budget : {10u, 20u, 30u, 40u, 50u}) {
    ChallengeOptions sweep_options = options;
    sweep_options.cleaning_budget = budget;
    DataDebuggingChallenge sweep(
        splits.train, splits.valid, splits.test,
        []() { return std::make_unique<KnnClassifier>(5); }, sweep_options);
    std::vector<size_t> ranking =
        KnnShapleyStrategy()
            .rank(sweep.dirty_train(), sweep.validation(), 99)
            .value();
    ranking.resize(budget);
    Result<double> score = sweep.SubmitCleaningRequest("bot", ranking);
    std::printf("%10zu %14.4f\n", budget,
                score.ok() ? *score : -1.0);
  }
}

}  // namespace
}  // namespace nde

int main() {
  nde::Run();
  return 0;
}
