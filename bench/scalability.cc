// Experiment E5 (survey Section 2.1, "Overcoming Computational Challenges"):
// the cost of data-importance computation, and why the KNN proxy matters.
//
// google-benchmark microbenchmarks of the importance estimators as the
// training-set size n grows: exact KNN-Shapley (closed form, ~n log n per
// validation point) against permutation-based TMC-Shapley and leave-one-out
// with model retraining, plus the truncation-tolerance ablation. The paper's
// point — Monte-Carlo Shapley with retraining is orders of magnitude more
// expensive than the KNN closed form at equal n — should be visible directly
// in the reported times.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "datagen/synthetic.h"
#include "importance/game_values.h"
#include "importance/knn_shapley.h"
#include "importance/utility.h"
#include "ml/knn.h"
#include "ml/naive_bayes.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/telemetry.h"

namespace nde {
namespace {

MlDataset MakeTrain(size_t n) {
  BlobsOptions options;
  options.num_examples = n;
  options.num_features = 8;
  options.seed = 42;
  options.center_seed = 99;  // Shared task with the validation set.
  return MakeBlobs(options);
}

MlDataset MakeValidation() {
  BlobsOptions options;
  options.num_examples = 50;
  options.num_features = 8;
  options.seed = 43;
  options.center_seed = 99;
  return MakeBlobs(options);
}

void BM_KnnShapleyExact(benchmark::State& state) {
  MlDataset train = MakeTrain(static_cast<size_t>(state.range(0)));
  MlDataset validation = MakeValidation();
  for (auto _ : state) {
    std::vector<double> values = KnnShapleyValues(train, validation, 5);
    benchmark::DoNotOptimize(values);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KnnShapleyExact)
    ->Arg(100)
    ->Arg(200)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oNLogN);

void BM_TmcShapleyRetraining(benchmark::State& state) {
  MlDataset train = MakeTrain(static_cast<size_t>(state.range(0)));
  MlDataset validation = MakeValidation();
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  TmcShapleyOptions options;
  options.num_permutations = 3;
  options.truncation_tolerance = 0.0;
  for (auto _ : state) {
    ModelAccuracyUtility utility(factory, train, validation);
    ImportanceEstimate estimate = TmcShapleyValues(utility, options).value();
    benchmark::DoNotOptimize(estimate);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TmcShapleyRetraining)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_TmcShapleyTruncation(benchmark::State& state) {
  // Ablation: truncation tolerance vs cost at fixed n.
  MlDataset train = MakeTrain(150);
  MlDataset validation = MakeValidation();
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  TmcShapleyOptions options;
  options.num_permutations = 3;
  options.truncation_tolerance = static_cast<double>(state.range(0)) / 1000.0;
  size_t evaluations = 0;
  size_t iterations = 0;
  for (auto _ : state) {
    ModelAccuracyUtility utility(factory, train, validation);
    ImportanceEstimate estimate = TmcShapleyValues(utility, options).value();
    benchmark::DoNotOptimize(estimate);
    evaluations += estimate.utility_evaluations;
    ++iterations;
  }
  state.counters["utility_evals"] = benchmark::Counter(
      static_cast<double>(evaluations) / static_cast<double>(iterations));
}
BENCHMARK(BM_TmcShapleyTruncation)
    ->Arg(0)     // No truncation.
    ->Arg(20)    // 0.02 tolerance.
    ->Arg(100)   // 0.10 tolerance.
    ->Unit(benchmark::kMillisecond);

void BM_LeaveOneOutRetraining(benchmark::State& state) {
  MlDataset train = MakeTrain(static_cast<size_t>(state.range(0)));
  MlDataset validation = MakeValidation();
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  for (auto _ : state) {
    ModelAccuracyUtility utility(factory, train, validation);
    std::vector<double> values = LeaveOneOutValues(utility).value();
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_LeaveOneOutRetraining)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_BanzhafMsr(benchmark::State& state) {
  MlDataset train = MakeTrain(static_cast<size_t>(state.range(0)));
  MlDataset validation = MakeValidation();
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  BanzhafOptions options;
  options.num_samples = 100;
  for (auto _ : state) {
    ModelAccuracyUtility utility(factory, train, validation);
    ImportanceEstimate estimate = BanzhafValues(utility, options).value();
    benchmark::DoNotOptimize(estimate);
  }
}
BENCHMARK(BM_BanzhafMsr)->Arg(50)->Arg(100)->Arg(200)->Unit(
    benchmark::kMillisecond);

void BM_TmcShapleyThreads(benchmark::State& state) {
  // Thread-scaling sweep: same seed and sampling budget at every arg, only
  // the worker count varies. main() asserts the values are byte-identical
  // across thread counts before the timing runs.
  MlDataset train = MakeTrain(200);
  MlDataset validation = MakeValidation();
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  TmcShapleyOptions options;
  options.num_permutations = 8;
  options.truncation_tolerance = 0.0;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    ModelAccuracyUtility utility(factory, train, validation);
    ImportanceEstimate estimate = TmcShapleyValues(utility, options).value();
    benchmark::DoNotOptimize(estimate);
  }
}
BENCHMARK(BM_TmcShapleyThreads)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_TmcUtilityFastPath(benchmark::State& state) {
  // The utility fast path on the medium TMC config at one thread: arg 0 runs
  // the legacy path (materialized coalitions, per-prefix retraining), arg 1
  // the prefix scan over zero-copy views. Values are byte-identical either
  // way (asserted at startup); only evals/sec should move.
  MlDataset train = MakeTrain(200);
  MlDataset validation = MakeValidation();
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  bool fast = state.range(0) != 0;
  TmcShapleyOptions options;
  options.num_permutations = 8;
  options.truncation_tolerance = 0.0;
  options.num_threads = 1;
  options.use_prefix_scan = fast;
  UtilityFastPathOptions fast_path;
  fast_path.zero_copy_views = fast;
  size_t evaluations = 0;
  for (auto _ : state) {
    ModelAccuracyUtility utility(factory, train, validation, fast_path);
    ImportanceEstimate estimate = TmcShapleyValues(utility, options).value();
    benchmark::DoNotOptimize(estimate);
    evaluations += estimate.utility_evaluations;
  }
  state.counters["utility_evals_per_sec"] = benchmark::Counter(
      static_cast<double>(evaluations), benchmark::Counter::kIsRate);
  // Steady-state allocation rate of the fast path, measured outside the
  // timed loop: one run to warm the scorer context and arena pool, then one
  // accounted run on the same utility. Only meaningful when the allocation
  // interposer is compiled in (telemetry on, no sanitizer).
  if (fast && telemetry::AllocAccountingCompiledIn()) {
    ModelAccuracyUtility utility(factory, train, validation, fast_path);
    benchmark::DoNotOptimize(TmcShapleyValues(utility, options).value());
    telemetry::ResetAllocStats();
    telemetry::SetAllocAccountingEnabled(true);
    ImportanceEstimate accounted = TmcShapleyValues(utility, options).value();
    telemetry::SetAllocAccountingEnabled(false);
    telemetry::AllocStats stats = telemetry::GlobalAllocStats();
    state.counters["allocs_per_eval"] = benchmark::Counter(
        static_cast<double>(stats.alloc_count) /
        static_cast<double>(accounted.utility_evaluations));
  }
}
BENCHMARK(BM_TmcUtilityFastPath)
    ->ArgName("fast")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_KnnKernel(benchmark::State& state) {
  // The KNN coalition-scorer kernel in isolation: one full permutation scan
  // per iteration, straight through NewPrefixScan — no estimator, no wave
  // scheduling. Arg 0 runs the reference row-wise kernel, arg 1 the SoA
  // kernel (flat cutoff/window buffers, vectorizable candidate-mask pass).
  // Outputs are bit-identical (asserted at startup); only evals/sec moves.
  MlDataset train = MakeTrain(200);
  MlDataset validation = MakeValidation();
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  UtilityFastPathOptions fast_path;
  fast_path.soa_kernels = state.range(0) != 0;
  ModelAccuracyUtility utility(factory, train, validation, fast_path);
  std::vector<size_t> perm = Rng(7).Permutation(train.size());
  size_t evaluations = 0;
  for (auto _ : state) {
    std::unique_ptr<UtilityFunction::PrefixScan> scan =
        utility.NewPrefixScan(false);
    double last = 0.0;
    for (size_t unit : perm) last = scan->Push(unit);
    benchmark::DoNotOptimize(last);
    evaluations += perm.size();
  }
  state.counters["utility_evals_per_sec"] = benchmark::Counter(
      static_cast<double>(evaluations), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KnnKernel)
    ->ArgName("soa")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_GaussianNbPrefixScan(benchmark::State& state) {
  // TMC over the Gaussian-NB proxy utility: arg 0 retrains from scratch on
  // every prefix, arg 1 uses the exact incremental scorer (sorted member
  // lists, per-class moment recompute). Values are bit-identical either way
  // (asserted at startup).
  MlDataset train = MakeTrain(200);
  MlDataset validation = MakeValidation();
  auto factory = []() { return std::make_unique<GaussianNaiveBayes>(); };
  TmcShapleyOptions options;
  options.num_permutations = 8;
  options.truncation_tolerance = 0.0;
  options.num_threads = 1;
  options.use_prefix_scan = state.range(0) != 0;
  size_t evaluations = 0;
  for (auto _ : state) {
    ModelAccuracyUtility utility(factory, train, validation);
    ImportanceEstimate estimate = TmcShapleyValues(utility, options).value();
    benchmark::DoNotOptimize(estimate);
    evaluations += estimate.utility_evaluations;
  }
  state.counters["utility_evals_per_sec"] = benchmark::Counter(
      static_cast<double>(evaluations), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GaussianNbPrefixScan)
    ->ArgName("scan")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_BanzhafSubsetCache(benchmark::State& state) {
  // Sharded subset-memoization cache, cold vs warm. Arg 0: a fresh cache per
  // estimator run, so only within-run duplicates hit. Arg 1: one cache shared
  // across runs (the wave-replay scenario), so after the first run nearly
  // every coalition is a hit. The hit_rate counter lands in
  // BENCH_results.json alongside the timings.
  MlDataset train = MakeTrain(200);
  MlDataset validation = MakeValidation();
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  bool warm = state.range(0) != 0;
  BanzhafOptions options;
  options.num_samples = 100;
  options.num_threads = 1;
  UtilityFastPathOptions fast_path;
  fast_path.subset_cache = true;
  std::unique_ptr<ModelAccuracyUtility> shared;
  if (warm) {
    shared =
        std::make_unique<ModelAccuracyUtility>(factory, train, validation,
                                               fast_path);
    // Populate outside the timed region; the timed runs replay these subsets.
    benchmark::DoNotOptimize(BanzhafValues(*shared, options).value());
  }
  double hit_rate = 0.0;
  for (auto _ : state) {
    if (warm) {
      ImportanceEstimate estimate = BanzhafValues(*shared, options).value();
      benchmark::DoNotOptimize(estimate);
      SubsetCache::Stats stats = shared->subset_cache()->stats();
      hit_rate = static_cast<double>(stats.hits) /
                 static_cast<double>(stats.hits + stats.misses);
    } else {
      ModelAccuracyUtility utility(factory, train, validation, fast_path);
      ImportanceEstimate estimate = BanzhafValues(utility, options).value();
      benchmark::DoNotOptimize(estimate);
      SubsetCache::Stats stats = utility.subset_cache()->stats();
      hit_rate = static_cast<double>(stats.hits) /
                 static_cast<double>(stats.hits + stats.misses);
    }
  }
  state.counters["cache_hit_rate"] = benchmark::Counter(hit_rate);
}
BENCHMARK(BM_BanzhafSubsetCache)
    ->ArgName("warm")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_TmcWaveLatency(benchmark::State& state) {
  // Wave-latency tail with telemetry live: runs the same medium TMC config as
  // the fast-path sweep but with the estimator.wave_ms histogram recording,
  // and reports its p99 as a counter. This is the number tools/bench_diff
  // watches for scheduler/instrumentation regressions — it moves if waves get
  // slower *or* if the observability layer starts costing real time.
  MlDataset train = MakeTrain(200);
  MlDataset validation = MakeValidation();
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  TmcShapleyOptions options;
  options.num_permutations = 8;
  options.truncation_tolerance = 0.0;
  options.num_threads = 1;
  options.use_prefix_scan = true;
  UtilityFastPathOptions fast_path;
  fast_path.zero_copy_views = true;
  bool was_enabled = telemetry::Enabled();
  telemetry::SetEnabled(true);
  telemetry::Histogram& wave_ms =
      telemetry::MetricsRegistry::Global().GetHistogram("estimator.wave_ms");
  wave_ms.Reset();
  for (auto _ : state) {
    ModelAccuracyUtility utility(factory, train, validation, fast_path);
    ImportanceEstimate estimate = TmcShapleyValues(utility, options).value();
    benchmark::DoNotOptimize(estimate);
  }
  state.counters["wave_p99_ms"] = benchmark::Counter(wave_ms.Quantile(0.99));
  telemetry::SetEnabled(was_enabled);
}
BENCHMARK(BM_TmcWaveLatency)->Unit(benchmark::kMillisecond);

// Console output as usual, plus one JSON-lines record per benchmark run in
// BENCH_results.json (see bench_util.h) so sweeps can be plotted or diffed
// without scraping the console table.
class JsonAppendingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      double iterations = static_cast<double>(run.iterations);
      if (iterations <= 0) continue;
      double ms = run.real_accumulated_time / iterations * 1e3;
      std::vector<std::pair<std::string, std::string>> extras = {
          {"iterations", std::to_string(run.iterations)},
          {"bench", "\"scalability\""}};
      // User counters (evals/sec, cache hit rate, ...) ride along so the
      // fast-path sweep is diffable straight from BENCH_results.json. They
      // arrive already finalized (rates divided by elapsed time).
      for (const auto& [name, counter] : run.counters) {
        extras.emplace_back(name, std::to_string(counter.value));
      }
      bench::ReportJson(run.benchmark_name(), ms, extras);
    }
  }
};

/// Guards the scaling sweep's premise: a fixed seed must yield byte-identical
/// TMC-Shapley values whether the estimator runs on 1, 2, or 8 threads.
bool CheckThreadCountDeterminism() {
  MlDataset train = MakeTrain(60);
  MlDataset validation = MakeValidation();
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  TmcShapleyOptions options;
  options.num_permutations = 8;
  options.truncation_tolerance = 0.0;
  std::vector<std::vector<double>> runs;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    options.num_threads = threads;
    ModelAccuracyUtility utility(factory, train, validation);
    runs.push_back(TmcShapleyValues(utility, options).value().values);
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].size() != runs[0].size() ||
        std::memcmp(runs[i].data(), runs[0].data(),
                    runs[0].size() * sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "FATAL: TMC-Shapley values differ across thread counts\n");
      return false;
    }
  }
  std::fprintf(stderr,
               "determinism: TMC-Shapley values byte-identical across "
               "{1, 2, 8} threads\n");
  return true;
}

/// Guards the fast-path sweep's premise: the prefix scan + zero-copy views +
/// subset cache must change only the speed of BM_TmcUtilityFastPath, never a
/// bit of its output.
bool CheckUtilityFastPathBitIdentity() {
  MlDataset train = MakeTrain(200);
  MlDataset validation = MakeValidation();
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  TmcShapleyOptions options;
  options.num_permutations = 8;
  options.truncation_tolerance = 0.0;
  options.num_threads = 1;

  options.use_prefix_scan = false;
  UtilityFastPathOptions slow_path;
  slow_path.zero_copy_views = false;
  ModelAccuracyUtility slow(factory, train, validation, slow_path);
  ImportanceEstimate baseline = TmcShapleyValues(slow, options).value();

  options.use_prefix_scan = true;
  UtilityFastPathOptions fast_path;
  fast_path.subset_cache = true;
  ModelAccuracyUtility fast(factory, train, validation, fast_path);
  ImportanceEstimate candidate = TmcShapleyValues(fast, options).value();

  if (candidate.values.size() != baseline.values.size() ||
      std::memcmp(candidate.values.data(), baseline.values.data(),
                  baseline.values.size() * sizeof(double)) != 0 ||
      candidate.utility_evaluations != baseline.utility_evaluations) {
    std::fprintf(stderr,
                 "FATAL: utility fast path changed TMC-Shapley output\n");
    return false;
  }
  std::fprintf(stderr,
               "determinism: utility fast path (views + prefix scan + cache) "
               "byte-identical to the slow path\n");
  return true;
}

/// Guards the kernel benchmarks' premise: the SoA KNN kernel (with arena
/// allocation) and the incremental Gaussian-NB scorer are pure speed knobs —
/// their TMC-Shapley output must match the reference kernels bit for bit.
bool CheckKernelVariantsBitIdentity() {
  MlDataset train = MakeTrain(200);
  MlDataset validation = MakeValidation();
  TmcShapleyOptions options;
  options.num_permutations = 8;
  options.truncation_tolerance = 0.0;
  options.num_threads = 1;
  options.use_prefix_scan = true;

  {
    auto factory = []() { return std::make_unique<KnnClassifier>(5); };
    UtilityFastPathOptions reference_path;
    reference_path.soa_kernels = false;
    reference_path.arena = false;
    ModelAccuracyUtility reference(factory, train, validation, reference_path);
    ImportanceEstimate baseline = TmcShapleyValues(reference, options).value();
    ModelAccuracyUtility soa(factory, train, validation);  // Defaults: SoA on.
    ImportanceEstimate candidate = TmcShapleyValues(soa, options).value();
    if (candidate.values.size() != baseline.values.size() ||
        std::memcmp(candidate.values.data(), baseline.values.data(),
                    baseline.values.size() * sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "FATAL: SoA KNN kernel changed TMC-Shapley output\n");
      return false;
    }
  }
  {
    auto factory = []() { return std::make_unique<GaussianNaiveBayes>(); };
    ModelAccuracyUtility utility(factory, train, validation);
    options.use_prefix_scan = false;
    ImportanceEstimate baseline = TmcShapleyValues(utility, options).value();
    options.use_prefix_scan = true;
    ImportanceEstimate candidate = TmcShapleyValues(utility, options).value();
    if (candidate.values.size() != baseline.values.size() ||
        std::memcmp(candidate.values.data(), baseline.values.data(),
                    baseline.values.size() * sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "FATAL: Gaussian-NB prefix scan changed TMC-Shapley "
                   "output\n");
      return false;
    }
  }
  std::fprintf(stderr,
               "determinism: SoA KNN kernel and Gaussian-NB prefix scan "
               "byte-identical to reference kernels\n");
  return true;
}

}  // namespace
}  // namespace nde

int main(int argc, char** argv) {
  if (!nde::CheckThreadCountDeterminism()) return 1;
  if (!nde::CheckUtilityFastPathBitIdentity()) return 1;
  if (!nde::CheckKernelVariantsBitIdentity()) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  nde::JsonAppendingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
