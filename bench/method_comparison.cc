// Experiment E4 (survey Section 2.1): which importance method finds injected
// errors best?
//
// Compares the full importance-method panel — random baseline, LOO,
// TMC-Shapley, exact KNN-Shapley, Banzhaf (MSR), Beta(16,1)-Shapley,
// influence functions, AUM, self-confidence — on two error types (label
// flips, feature noise), reporting detection precision@k (k = number of
// injected errors) plus the cleaning gain achieved by repairing the top-k
// ranked tuples. Includes the proxy-model ablation of Section 2.4: rankings
// computed with the KNN proxy evaluated by cleaning gain of a *logistic
// regression* downstream model.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cleaning/cleaner.h"
#include "cleaning/strategies.h"
#include "datagen/synthetic.h"
#include "importance/game_values.h"
#include "importance/knn_shapley.h"
#include "importance/utility.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"

namespace nde {
namespace {

struct MethodRow {
  std::string name;
  double precision_at_k = 0.0;
  double cleaning_gain_knn = 0.0;
  double cleaning_gain_logreg = 0.0;
  double milliseconds = 0.0;
};

std::vector<CleaningStrategy> Panel() {
  std::vector<CleaningStrategy> panel;
  panel.push_back(RandomStrategy());
  panel.push_back(LooStrategy());
  panel.push_back(TmcShapleyStrategy(/*permutations=*/15));
  panel.push_back(KnnShapleyStrategy());
  // Banzhaf via the generic estimator with a KNN utility.
  panel.push_back(CleaningStrategy{
      "banzhaf",
      [](const MlDataset& dirty, const MlDataset& validation,
         uint64_t seed) -> Result<std::vector<size_t>> {
        ModelAccuracyUtility utility(
            []() { return std::make_unique<KnnClassifier>(5); }, dirty,
            validation);
        BanzhafOptions options;
        options.num_samples = 400;
        options.seed = seed;
        NDE_ASSIGN_OR_RETURN(ImportanceEstimate estimate,
                             BanzhafValues(utility, options));
        return AscendingOrder(estimate.values);
      }});
  panel.push_back(CleaningStrategy{
      "beta_shapley(16,1)",
      [](const MlDataset& dirty, const MlDataset& validation,
         uint64_t seed) -> Result<std::vector<size_t>> {
        SoftKnnUtility utility(dirty, validation, 5);
        BetaShapleyOptions options;
        options.alpha = 16.0;
        options.beta = 1.0;
        options.samples_per_unit = 6;
        options.seed = seed;
        NDE_ASSIGN_OR_RETURN(ImportanceEstimate estimate,
                             BetaShapleyValues(utility, options));
        return AscendingOrder(estimate.values);
      }});
  panel.push_back(InfluenceStrategy());
  panel.push_back(AumStrategy());
  panel.push_back(SelfConfidenceStrategy());
  return panel;
}

void RunScenario(const std::string& title, const MlDataset& clean_train,
                 const MlDataset& dirty_train, const MlDataset& validation,
                 const MlDataset& test, const std::vector<size_t>& corrupted) {
  bench::Banner(title);
  OracleCleaner oracle(clean_train);
  // 1-NN as the noise-sensitive downstream model (same regime as Figure 2).
  auto knn_factory = []() { return std::make_unique<KnnClassifier>(1); };
  auto logreg_factory = []() { return std::make_unique<LogisticRegression>(); };
  double dirty_knn = TrainAndScore(knn_factory, dirty_train, test).value();
  double dirty_logreg = TrainAndScore(logreg_factory, dirty_train, test).value();
  std::printf("dirty accuracy: knn=%.4f logreg=%.4f; %zu corrupted of %zu\n",
              dirty_knn, dirty_logreg, corrupted.size(), dirty_train.size());

  size_t k = corrupted.size();
  std::vector<MethodRow> rows;
  for (const CleaningStrategy& strategy : Panel()) {
    bench::Stopwatch watch;
    Result<std::vector<size_t>> ranking =
        strategy.rank(dirty_train, validation, 13);
    MethodRow row;
    row.name = strategy.name;
    row.milliseconds = watch.ElapsedMs();
    if (!ranking.ok()) {
      std::printf("%-20s failed: %s\n", strategy.name.c_str(),
                  ranking.status().ToString().c_str());
      continue;
    }
    row.precision_at_k = PrecisionAtK(*ranking, corrupted, k);
    std::vector<size_t> top_k(ranking->begin(),
                              ranking->begin() + static_cast<ptrdiff_t>(k));
    MlDataset repaired = dirty_train;
    Status repair = oracle.Repair(&repaired, top_k);
    if (repair.ok()) {
      row.cleaning_gain_knn =
          TrainAndScore(knn_factory, repaired, test).value() - dirty_knn;
      row.cleaning_gain_logreg =
          TrainAndScore(logreg_factory, repaired, test).value() - dirty_logreg;
    }
    rows.push_back(row);
  }

  std::printf("\n%-20s %14s %16s %18s %12s\n", "method", "precision@k",
              "gain (knn)", "gain (logreg)", "time (ms)");
  for (const MethodRow& row : rows) {
    std::printf("%-20s %14.3f %+16.4f %+18.4f %12.0f\n", row.name.c_str(),
                row.precision_at_k, row.cleaning_gain_knn,
                row.cleaning_gain_logreg, row.milliseconds);
  }
  std::printf(
      "expected shape: importance methods beat random detection on label\n"
      "flips, with margin/uncertainty methods strongest; on feature noise\n"
      "the game-theoretic values only flag the harmful subset that crossed\n"
      "the class boundary (a strengths-and-weaknesses takeaway of the\n"
      "survey). The logreg column shows the proxy-model caveat of \xc2\xa7"
      "2.4.\n");
}

void Run() {
  DatasetSplits splits = LoadRecommendationLetters(400, 42);

  {
    MlDataset dirty = splits.train;
    Rng rng(7);
    std::vector<size_t> corrupted = InjectLabelErrors(&dirty, 0.1, &rng);
    RunScenario("E4a: detection of label flips (10%)", splits.train, dirty,
                splits.valid, splits.test, corrupted);
  }
  {
    MlDataset dirty = splits.train;
    Rng rng(11);
    std::vector<size_t> corrupted = InjectFeatureNoise(&dirty, 0.1, 6.0, &rng);
    RunScenario("E4b: detection of heavy feature noise (10%, 6 sigma)",
                splits.train, dirty, splits.valid, splits.test, corrupted);
  }
}

}  // namespace
}  // namespace nde

int main() {
  nde::Run();
  return 0;
}
