// Experiment E8 (survey Section 2.3 extensions): guarantees under uncertain
// and incomplete data.
//
// Four sweeps:
//   (a) certain KNN predictions: fraction of test queries with a certain
//       prediction vs number of uncertain training cells;
//   (b) dataset multiplicity: fraction of label-flip-robust predictions vs
//       flip budget;
//   (c) certain / approximately-certain models: the "do we even need to
//       debug?" decision vs the relevance of the missing feature;
//   (d) fairness certification under bounded selection bias: the
//       demographic-parity range vs the bias bound.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "datagen/synthetic.h"
#include "ml/knn.h"
#include "ml/linear_regression.h"
#include "ml/logistic_regression.h"
#include "uncertain/certain_knn.h"
#include "uncertain/certain_model.h"
#include "uncertain/fairness_range.h"
#include "uncertain/multiplicity.h"
#include "uncertain/poisoning.h"

namespace nde {
namespace {

void CertainKnnSweep() {
  bench::Banner("E8a: certain KNN predictions vs uncertain-cell count");
  BlobsOptions options;
  options.num_examples = 200;
  options.num_features = 4;
  options.separation = 3.0;
  MlDataset train = MakeBlobs(options);
  BlobsOptions query_options = options;
  query_options.num_examples = 60;
  query_options.seed = 7;
  MlDataset queries = MakeBlobs(query_options);

  std::printf("%18s %18s\n", "uncertain cells", "certain ratio");
  for (size_t cells : {0u, 20u, 80u, 200u, 400u}) {
    UncertainClassificationDataset uncertain =
        UncertainClassificationDataset::FromConcrete(train);
    Rng rng(11);
    for (size_t c = 0; c < cells; ++c) {
      uncertain.SetUncertain(rng.NextBounded(train.size()),
                             rng.NextBounded(train.num_features()), -3.0, 3.0);
    }
    std::printf("%18zu %18.3f\n", cells,
                CertainPredictionRatio(uncertain, queries.features, 5));
  }
  std::printf("expected shape: monotonically decreasing certainty.\n");
}

void MultiplicitySweep() {
  bench::Banner("E8b: label-flip robustness vs flip budget");
  Rng rng(13);
  RegressionDataset train;
  train.features = Matrix(150, 3);
  train.targets.resize(150);
  for (size_t i = 0; i < 150; ++i) {
    int label = rng.NextBernoulli(0.5) ? 1 : 0;
    for (size_t j = 0; j < 3; ++j) {
      train.features(i, j) =
          (label == 1 ? 1.0 : -1.0) + 0.7 * rng.NextGaussian();
    }
    train.targets[i] = static_cast<double>(label);
  }
  RidgeRegression model(0.1);
  Status fit = model.Fit(train);
  if (!fit.ok()) {
    std::printf("fit failed: %s\n", fit.ToString().c_str());
    return;
  }
  Matrix queries = train.features.SelectRows(
      {0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140});
  std::printf("%14s %18s\n", "flip budget", "robust ratio");
  for (size_t flips : {0u, 2u, 5u, 10u, 25u, 60u}) {
    double ratio =
        LabelFlipRobustRatio(model, train.targets, queries, flips, 0.5)
            .value();
    std::printf("%14zu %18.3f\n", flips, ratio);
  }
  std::printf("expected shape: robustness decays as the budget grows.\n");
}

void CertainModelSweep() {
  bench::Banner("E8c: certain-model checks ('do we even need to debug?')");
  Rng rng(17);
  std::printf("%28s %10s %22s %22s\n", "scenario", "certain",
              "max |w_missing|", "max |residual|");
  for (double relevance : {0.0, 0.2, 1.0}) {
    IncompleteRegressionDataset data;
    data.features = Matrix(80, 3);
    data.targets.resize(80);
    for (size_t i = 0; i < 80; ++i) {
      for (size_t j = 0; j < 3; ++j) data.features(i, j) = rng.NextGaussian();
      data.targets[i] =
          2.0 * data.features(i, 0) + relevance * data.features(i, 2);
    }
    for (uint32_t r = 0; r < 8; ++r) data.missing_cells.push_back({r, 2});
    CertainModelResult result =
        CheckCertainLinearModel(data, 1e-9, 1e-4).value();
    std::printf("%21s=%5.2f %10s %22.5f %22.5f\n", "feature2 weight",
                relevance, result.certain ? "yes" : "no",
                result.max_missing_feature_weight,
                result.max_incomplete_residual);
  }

  std::printf("\napproximately-certain sweep (missing cell bounds widen):\n");
  IncompleteRegressionDataset data;
  data.features = Matrix(60, 2);
  data.targets.resize(60);
  for (size_t i = 0; i < 60; ++i) {
    data.features(i, 0) = rng.NextGaussian();
    data.features(i, 1) = rng.NextGaussian();
    data.targets[i] = data.features(i, 0) + 0.3 * data.features(i, 1);
  }
  data.missing_cells = {{0, 1}, {5, 1}, {9, 1}};
  std::printf("%14s %18s %22s\n", "bound", "worst-case MSE",
              "approx certain (eps=0.1)");
  for (double bound : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    ApproxCertainResult result =
        CheckApproximatelyCertainModel(data, -bound, bound, 0.1).value();
    std::printf("%14.1f %18.4f %22s\n", bound, result.worst_case_mse,
                result.approximately_certain ? "yes" : "no");
  }
  std::printf("expected shape: certainty only while bounds stay tight.\n");
}

void FairnessRangeSweep() {
  bench::Banner("E8d: demographic-parity range under bounded selection bias");
  // A fixed classifier's predictions over two groups with a modest gap.
  Rng rng(19);
  std::vector<int> predictions;
  std::vector<int> groups;
  for (int i = 0; i < 400; ++i) {
    int group = i % 2;
    groups.push_back(group);
    double rate = group == 0 ? 0.55 : 0.45;
    predictions.push_back(rng.NextBernoulli(rate) ? 1 : 0);
  }
  double observed = 0.0;
  {
    Interval point = DemographicParityRange(predictions, groups, 1.0).value();
    observed = point.hi();
  }
  std::printf("observed demographic parity difference: %.4f\n", observed);
  std::printf("%16s %14s %14s %22s\n", "bias bound r", "range lo", "range hi",
              "certified fair @0.25");
  for (double r : {1.0, 1.5, 2.0, 3.0, 5.0}) {
    Interval range = DemographicParityRange(predictions, groups, r).value();
    bool certified =
        CertifyFairnessUnderBias(predictions, groups, r, 0.25).value();
    std::printf("%16.1f %14.4f %14.4f %22s\n", r, range.lo(), range.hi(),
                certified ? "yes" : "no");
  }
  std::printf(
      "expected shape: the range widens with the bias bound until the\n"
      "fairness certificate can no longer be issued.\n");
}

void PoisoningSweep() {
  bench::Banner("E8e: certified K-NN robustness to training-data poisoning");
  BlobsOptions options;
  options.num_examples = 300;
  options.num_features = 4;
  options.separation = 3.0;
  MlDataset train = MakeBlobs(options);
  BlobsOptions query_options = options;
  query_options.num_examples = 80;
  query_options.seed = 9;
  query_options.center_seed = 42;  // Same task as the training set.
  MlDataset queries = MakeBlobs(query_options);

  std::printf("%16s %24s\n", "deletion budget", "certified prediction ratio");
  for (size_t budget : {0u, 1u, 2u, 5u, 10u, 25u, 60u}) {
    std::printf("%16zu %24.3f\n", budget,
                CertifiedRemovalRatio(train, queries.features, 5, budget));
  }
  double mean_insertion = 0.0;
  for (size_t q = 0; q < queries.size(); ++q) {
    mean_insertion += static_cast<double>(
        CertifiedInsertionRadius(train, queries.features.Row(q), 5));
  }
  mean_insertion /= static_cast<double>(queries.size());
  std::printf("mean certified insertion radius (k=5): %.2f (max possible 4)\n",
              mean_insertion);
  std::printf(
      "expected shape: the certified ratio decays with the deletion budget;\n"
      "confidently-classified regions tolerate large budgets.\n");
}

}  // namespace
}  // namespace nde

int main() {
  nde::CertainKnnSweep();
  nde::MultiplicitySweep();
  nde::CertainModelSweep();
  nde::FairnessRangeSweep();
  nde::PoisoningSweep();
  return 0;
}
