// Experiment E9 (survey Section 2.4): the data-debugging <-> machine
// unlearning connection.
//
// Debugging identifies harmful tuples by (conceptually) removing them over
// and over; regulation wants those removals to *actually happen* fast. This
// bench measures exact decremental removal (sufficient-statistics updates)
// against full retraining for Gaussian naive Bayes, across training-set
// sizes, and then plays the combined workflow: debug with KNN-Shapley,
// forget the flagged tuples, measure the accuracy recovery without a single
// retrain.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "cleaning/strategies.h"
#include "datagen/synthetic.h"
#include "importance/knn_shapley.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/unlearning.h"

namespace nde {
namespace {

void LatencySweep() {
  bench::Banner("E9a: unlearning latency vs full retraining (Gaussian NB)");
  std::printf("%8s %10s %22s %22s %10s\n", "n", "removals",
              "forget total (ms)", "retrain total (ms)", "speedup");
  for (size_t n : {500u, 2000u, 8000u}) {
    BlobsOptions options;
    options.num_examples = n;
    options.num_features = 16;
    MlDataset data = MakeBlobs(options);
    size_t removals = 50;

    DecrementalGaussianNb decremental;
    Status fit = decremental.Fit(data);
    NDE_CHECK(fit.ok());
    bench::Stopwatch forget_watch;
    for (size_t i = 0; i < removals; ++i) {
      Status forgotten = decremental.Forget(i);
      NDE_CHECK(forgotten.ok());
    }
    // Force the derived-state refresh into the measured time.
    Matrix probe(1, options.num_features);
    (void)decremental.Predict(probe);
    double forget_ms = forget_watch.ElapsedMs();

    bench::Stopwatch retrain_watch;
    std::vector<size_t> removed;
    for (size_t i = 0; i < removals; ++i) {
      removed.push_back(i);
      GaussianNaiveBayes fresh;
      Status refit = fresh.FitWithClasses(data.Without(removed),
                                          data.NumClasses());
      NDE_CHECK(refit.ok());
    }
    double retrain_ms = retrain_watch.ElapsedMs();

    std::printf("%8zu %10zu %22.2f %22.2f %9.1fx\n", n, removals, forget_ms,
                retrain_ms, retrain_ms / std::max(forget_ms, 1e-6));
    bench::ReportJson("unlearning.forget", forget_ms,
                      {{"n", std::to_string(n)},
                       {"removals", std::to_string(removals)}});
    bench::ReportJson("unlearning.retrain", retrain_ms,
                      {{"n", std::to_string(n)},
                       {"removals", std::to_string(removals)}});
  }
  std::printf("expected shape: speedup grows with n (O(d) vs O(n d) work).\n");
}

void DebugThenForget() {
  bench::Banner("E9b: debug with importance, then *forget* instead of retrain");
  DatasetSplits splits = LoadRecommendationLetters(500, 42);
  MlDataset dirty = splits.train;
  Rng rng(7);
  std::vector<size_t> corrupted = InjectLabelErrors(&dirty, 0.12, &rng);

  DecrementalKnn model(1);
  Status fit = model.Fit(dirty);
  NDE_CHECK(fit.ok());
  double dirty_accuracy =
      Accuracy(splits.test.labels, model.Predict(splits.test.features));
  std::printf("dirty accuracy: %.4f (%zu hidden label flips)\n",
              dirty_accuracy, corrupted.size());

  std::vector<double> importance = KnnShapleyValues(dirty, splits.valid, 5);
  std::vector<size_t> ranking = AscendingOrder(importance);
  std::printf("%16s %14s %16s\n", "tuples forgotten", "accuracy",
              "forget time (ms)");
  bench::Stopwatch watch;
  size_t forgotten = 0;
  for (size_t batch_end : {10u, 20u, 30u, 40u, 60u}) {
    while (forgotten < batch_end) {
      Status s = model.Forget(ranking[forgotten]);
      NDE_CHECK(s.ok());
      ++forgotten;
    }
    double batch_ms = watch.LapMs();
    double accuracy =
        Accuracy(splits.test.labels, model.Predict(splits.test.features));
    std::printf("%16zu %14.4f %16.2f\n", forgotten, accuracy,
                watch.ElapsedMs());
    char accuracy_text[32];
    std::snprintf(accuracy_text, sizeof(accuracy_text), "%.4f", accuracy);
    bench::ReportJson("unlearning.debug_then_forget", batch_ms,
                      {{"forgotten", std::to_string(forgotten)},
                       {"accuracy", accuracy_text}});
  }
  std::printf(
      "expected shape: forgetting the flagged tuples recovers accuracy with\n"
      "zero retraining — the GDPR-style deletion path doubles as a repair.\n");
}

}  // namespace
}  // namespace nde

int main() {
  nde::LatencySweep();
  nde::DebugThenForget();
  return 0;
}
