// Experiment E7 (survey Section 2.2): mlinspect/ArgusEyes-style pipeline
// screening.
//
// Builds four variants of the hiring pipeline — clean, demographic-filter
// bug, train/test leakage, source label errors — runs the full screening
// suite on each, and prints which screens fire. Every planted issue must be
// flagged and the clean pipeline must pass.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "datagen/synthetic.h"
#include "pipeline/encoders.h"
#include "pipeline/inspection.h"
#include "pipeline/pipeline.h"

namespace nde {
namespace {

MlPipeline BuildPipeline(const HiringScenario& scenario, bool biased_filter) {
  std::vector<NamedTable> sources;
  sources.push_back({"train_df", scenario.train});
  sources.push_back({"jobdetail_df", scenario.jobdetail});

  PlanBuilder builder =
      [biased_filter](const std::vector<PlanNodePtr>& s) -> PlanNodePtr {
    PlanNodePtr plan = MakeHashJoin(s[0], s[1], "job_id", "job_id");
    plan = MakeFilterEquals(plan, "sector", Value("healthcare"));
    if (biased_filter) {
      // The classic bug mlinspect demonstrates: an innocent-looking filter
      // that silently drops most of one demographic group.
      plan = MakeFilter(plan, "age < 40 or sex == m", [](const RowView& row) {
        return row.GetOrDie("age").as_int64() < 40 ||
               row.GetOrDie("sex").as_string() == "m";
      });
    }
    return MakeProject(plan, {"letter_text", "age", "sex", "sentiment"});
  };

  ColumnTransformer transformer;
  transformer.Add("letter_text", std::make_unique<HashingVectorizer>(32), 6.0);
  transformer.Add("age", std::make_unique<NumericEncoder>());
  return MlPipeline(std::move(sources), std::move(builder),
                    std::move(transformer), "sentiment");
}

void PrintIssues(const std::string& name,
                 const std::vector<PipelineIssue>& issues) {
  std::printf("\n--- %s: %zu issue(s)\n", name.c_str(), issues.size());
  for (const PipelineIssue& issue : issues) {
    std::printf("  %s\n", issue.ToString().c_str());
  }
  if (issues.empty()) std::printf("  (screens pass)\n");
}

void Run() {
  bench::Banner("E7 / Section 2.2: proactive pipeline screening");

  ScreeningOptions options;
  options.sensitive_columns = {"sex"};
  options.max_suspect_fraction = 0.22;

  // 1) Clean pipeline.
  {
    HiringScenario scenario = MakeHiringScenario({});
    MlPipeline pipeline = BuildPipeline(scenario, false);
    PipelineOutput output = pipeline.Run().value();
    PrintIssues("clean pipeline",
                ScreenPipeline(pipeline, output, options).value());
  }

  // 2) Demographic filter bug -> distribution_change must fire.
  {
    HiringScenarioOptions scenario_options;
    scenario_options.num_applicants = 800;
    HiringScenario scenario = MakeHiringScenario(scenario_options);
    // Make the bug demographic: women skew older in this cut, so the
    // "age < 40 or sex == m" filter disproportionately drops sex=f.
    size_t age_col = scenario.train.schema().FieldIndex("age").value();
    size_t sex_col = scenario.train.schema().FieldIndex("sex").value();
    for (size_t r = 0; r < scenario.train.num_rows(); ++r) {
      if (scenario.train.At(r, sex_col).as_string() == "f") {
        int64_t age = scenario.train.At(r, age_col).as_int64();
        (void)scenario.train.SetCell(r, age_col, Value(age / 2 + 45));
      }
    }
    MlPipeline pipeline = BuildPipeline(scenario, true);
    PipelineOutput output = pipeline.Run().value();
    PrintIssues("pipeline with demographic filter bug",
                ScreenPipeline(pipeline, output, options).value());
  }

  // 3) Train/test leakage via overlapping source rows.
  {
    HiringScenario scenario = MakeHiringScenario({});
    MlPipeline pipeline = BuildPipeline(scenario, false);
    PipelineOutput train_output = pipeline.Run().value();
    // A "test" pipeline carelessly built over the same source rows.
    std::vector<PipelineIssue> issues = CheckDataLeakage(
        train_output.provenance,
        std::vector<RowProvenance>(train_output.provenance.begin(),
                                   train_output.provenance.begin() + 20));
    PrintIssues("train/test split with shared source rows", issues);
  }

  // 4) Source label errors -> label_errors screen must fire.
  {
    HiringScenario scenario = MakeHiringScenario({});
    Rng rng(13);
    (void)InjectLabelErrorsTable(&scenario.train, "sentiment", 0.35, &rng);
    MlPipeline pipeline = BuildPipeline(scenario, false);
    PipelineOutput output = pipeline.Run().value();
    PrintIssues("pipeline over mislabeled source data",
                ScreenPipeline(pipeline, output, options).value());
  }

  std::printf(
      "\nexpected shape: variants 2-4 are flagged by the matching screen;\n"
      "variant 1 passes every screen.\n");
}

}  // namespace
}  // namespace nde

int main() {
  nde::Run();
  return 0;
}
