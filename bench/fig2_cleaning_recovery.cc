// Experiment E1 (Figure 2): data importance for data error detection.
//
// Reproduces the hands-on workflow of Figure 2: inject synthetic label errors
// into the recommendation-letters training data, observe the accuracy drop,
// rank tuples by KNN-Shapley importance against the validation set, clean the
// lowest-ranked tuples with the ground-truth oracle, and report the recovered
// accuracy. Also prints the full prioritized-cleaning curve for several
// strategies, which is the quantitative version of the figure's story.
//
// Paper numbers (on the authors' data): accuracy 0.76 dirty -> 0.79 after
// cleaning 25 records. We reproduce the *shape*: dirty < cleaned, and
// importance-ranked cleaning beats random cleaning at equal budget.

#include <cstdio>
#include <memory>
#include <unordered_set>

#include "bench/bench_util.h"
#include "cleaning/cleaner.h"
#include "cleaning/strategies.h"
#include "datagen/synthetic.h"
#include "importance/knn_shapley.h"
#include "ml/knn.h"
#include "ml/metrics.h"

namespace nde {
namespace {

void Run() {
  bench::Banner("E1 / Figure 2: identify data errors via data importance");

  DatasetSplits splits = LoadRecommendationLetters(600, 42);
  auto factory = []() { return std::make_unique<KnnClassifier>(1); };  // 1-NN: noise-sensitive, like the figure

  double clean_accuracy =
      TrainAndScore(factory, splits.train, splits.test).value();
  std::printf("clean train accuracy on test: %.4f\n", clean_accuracy);

  // nde.inject_labelerrors(train_df, fraction=0.1)
  MlDataset dirty = splits.train;
  Rng rng(7);
  std::vector<size_t> corrupted = InjectLabelErrors(&dirty, 0.1, &rng);
  double dirty_accuracy = TrainAndScore(factory, dirty, splits.test).value();
  std::printf("Accuracy with data errors: %.4f (injected %zu label flips)\n",
              dirty_accuracy, corrupted.size());

  // importances = nde.knn_shapley_values(train_df_err, validation=valid_df)
  std::vector<double> importances = KnnShapleyValues(dirty, splits.valid, 5);
  std::vector<size_t> ranking = AscendingOrder(importances);

  std::printf("\nlowest-importance tuples (top 10 of 25 shown):\n");
  std::printf("%8s %12s %s\n", "tuple", "importance", "injected_error");
  std::unordered_set<size_t> bad(corrupted.begin(), corrupted.end());
  for (size_t i = 0; i < 10; ++i) {
    size_t idx = ranking[i];
    std::printf("%8zu %12.5f %s\n", idx, importances[idx],
                bad.count(idx) > 0 ? "yes" : "no");
  }
  std::printf("precision@25 of the Shapley ranking: %.3f\n",
              PrecisionAtK(ranking, corrupted, 25));

  // train_df_err.loc[lowest] = train_df.loc[lowest]; re-evaluate.
  OracleCleaner oracle(splits.train);
  MlDataset cleaned = dirty;
  std::vector<size_t> lowest(ranking.begin(), ranking.begin() + 25);
  Status repair = oracle.Repair(&cleaned, lowest);
  if (!repair.ok()) {
    std::printf("oracle repair failed: %s\n", repair.ToString().c_str());
    return;
  }
  double cleaned_accuracy =
      TrainAndScore(factory, cleaned, splits.test).value();
  std::printf(
      "\nCleaning some records improved accuracy from %.4f to %.4f.\n",
      dirty_accuracy, cleaned_accuracy);
  std::printf("(paper figure: 0.76 -> 0.79 after 25 cleaned records)\n");

  // Prioritized-cleaning curves: the iterative-cleaning task for attendees.
  bench::Banner("E1b: iterative prioritized cleaning curves (test accuracy)");
  IterativeCleaningOptions options;
  options.budget = 60;
  options.batch_size = 10;
  std::vector<CleaningStrategy> strategies = {
      RandomStrategy(), LooStrategy(), KnnShapleyStrategy(),
      SelfConfidenceStrategy()};
  std::printf("%-16s", "cleaned");
  for (size_t b = 0; b <= options.budget; b += options.batch_size) {
    std::printf("%8zu", b);
  }
  std::printf("\n");
  for (const CleaningStrategy& strategy : strategies) {
    bench::Stopwatch watch;
    IterativeCleaningResult result =
        IterativeClean(strategy, dirty, oracle, splits.valid, splits.test,
                       factory, options)
            .value();
    std::printf("%-16s", strategy.name.c_str());
    for (double accuracy : result.accuracy_curve) {
      std::printf("%8.4f", accuracy);
    }
    std::printf("   (%.0f ms)\n", watch.ElapsedMs());
  }
  std::printf("\nexpected shape: importance-guided rows dominate random.\n");
}

}  // namespace
}  // namespace nde

int main() {
  nde::Run();
  return 0;
}
