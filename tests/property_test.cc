// Cross-cutting property tests: parameterized sweeps of the library's
// load-bearing invariants, complementing the per-module suites.

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <numeric>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/trace_context.h"
#include "data/csv.h"
#include "datagen/synthetic.h"
#include "datascope/datascope.h"
#include "importance/game_values.h"
#include "importance/knn_shapley.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/svm.h"
#include "pipeline/encoders.h"
#include "pipeline/pipeline.h"

namespace nde {
namespace {

// --- KNN-Shapley closed form == exact enumeration, across k and seeds --------

class KnnShapleySweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(KnnShapleySweepTest, ClosedFormMatchesEnumeration) {
  auto [k, seed] = GetParam();
  BlobsOptions options;
  options.num_examples = 8;
  options.num_features = 3;
  options.num_classes = 3;
  options.seed = seed;
  MlDataset train = MakeBlobs(options);
  BlobsOptions val_options = options;
  val_options.num_examples = 5;
  val_options.seed = seed + 1000;
  MlDataset validation = MakeBlobs(val_options);

  SoftKnnUtility game(train, validation, k);
  std::vector<double> exact = ExactShapleyValues(game).value();
  std::vector<double> closed = KnnShapleyValues(train, validation, k);
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(closed[i], exact[i], 1e-9) << "k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnShapleySweepTest,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{2}, size_t{4}),
                       ::testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{3})));

// --- Shapley axioms on random games vs exact enumeration ----------------------

class RandomGameUtility : public UtilityFunction {
 public:
  /// A random monotone-ish game over n players: v(S) = f(sum of random
  /// per-player weights in S), f concave. Player n-1 is forced to be a null
  /// player (weight 0 and excluded from f's argument).
  RandomGameUtility(size_t n, uint64_t seed) : weights_(n) {
    Rng rng(seed);
    for (size_t i = 0; i + 1 < n; ++i) {
      weights_[i] = rng.NextUniform(0.1, 2.0);
    }
    weights_[n - 1] = 0.0;
  }
  double Evaluate(const std::vector<size_t>& subset) const override {
    double total = 0.0;
    for (size_t i : subset) total += weights_[i];
    return std::sqrt(total);
  }
  size_t num_units() const override { return weights_.size(); }

 private:
  std::vector<double> weights_;
};

class ShapleyAxiomsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShapleyAxiomsTest, EfficiencyNullPlayerAndEstimatorAgreement) {
  RandomGameUtility game(7, GetParam());
  std::vector<double> exact = ExactShapleyValues(game).value();

  // Efficiency.
  double total = std::accumulate(exact.begin(), exact.end(), 0.0);
  EXPECT_NEAR(total, game.FullUtility() - game.EmptyUtility(), 1e-9);
  // Null player.
  EXPECT_NEAR(exact[6], 0.0, 1e-12);
  // Monotone game -> non-negative values.
  for (double v : exact) EXPECT_GE(v, -1e-12);

  // Unbiased TMC estimator converges to the exact values.
  TmcShapleyOptions options;
  options.num_permutations = 3000;
  options.truncation_tolerance = 0.0;
  options.seed = GetParam() * 31 + 1;
  ImportanceEstimate estimate = TmcShapleyValues(game, options).value();
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(estimate.values[i], exact[i], 0.02);
  }
  // Banzhaf null player too.
  std::vector<double> banzhaf = ExactBanzhafValues(game).value();
  EXPECT_NEAR(banzhaf[6], 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapleyAxiomsTest,
                         ::testing::Values(11u, 12u, 13u, 14u));

// --- CSV round trips on randomized tables --------------------------------------

class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, RandomTableSurvivesRoundTrip) {
  Rng rng(GetParam());
  size_t rows = 1 + rng.NextBounded(40);
  const char* alphabet = "abz,\"\n x'|;";
  std::vector<Value> doubles;
  std::vector<Value> ints;
  std::vector<Value> strings;
  for (size_t r = 0; r < rows; ++r) {
    // if/else instead of ternaries: gcc-12 emits a spurious
    // maybe-uninitialized warning for variant temporaries in ?:.
    if (rng.NextBernoulli(0.15)) {
      doubles.push_back(Value::Null());
    } else {
      doubles.push_back(Value(rng.NextUniform(-1e6, 1e6)));
    }
    if (rng.NextBernoulli(0.15)) {
      ints.push_back(Value::Null());
    } else {
      ints.push_back(Value(rng.NextInt(-1000000, 1000000)));
    }
    if (rng.NextBernoulli(0.15)) {
      strings.push_back(Value::Null());
    } else {
      // Random nasty strings: delimiters, quotes and embedded newlines are
      // all quoted by the writer and parsed back by the quote-aware record
      // scanner (records may span physical lines).
      std::string s;
      size_t length = 1 + rng.NextBounded(12);
      for (size_t c = 0; c < length; ++c) {
        s.push_back(alphabet[rng.NextBounded(10)]);
      }
      // Leading/trailing spaces are trimmed by the reader; normalize.
      std::string trimmed(StripWhitespace(s));
      if (trimmed.empty()) trimmed = "x";
      strings.push_back(Value(trimmed));
    }
  }
  Table original = TableBuilder()
                       .AddValueColumn("d", DataType::kDouble, doubles)
                       .AddValueColumn("i", DataType::kInt64, ints)
                       .AddValueColumn("s", DataType::kString, strings)
                       .Build();
  Result<Table> parsed = ReadCsvString(WriteCsvString(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), original.num_rows());
  for (size_t r = 0; r < rows; ++r) {
    // Nulls survive.
    EXPECT_EQ(parsed->At(r, 0).is_null(), original.At(r, 0).is_null());
    EXPECT_EQ(parsed->At(r, 1).is_null(), original.At(r, 1).is_null());
    if (!original.At(r, 1).is_null() && parsed->At(r, 1).is_int64()) {
      EXPECT_EQ(parsed->At(r, 1).as_int64(), original.At(r, 1).as_int64());
    }
    if (!original.At(r, 0).is_null() && parsed->At(r, 0).is_double()) {
      EXPECT_NEAR(parsed->At(r, 0).as_double(), original.At(r, 0).as_double(),
                  std::fabs(original.At(r, 0).as_double()) * 1e-5 + 1e-5);
    }
    if (!original.At(r, 2).is_null()) {
      // Strings that happen to look numeric may be re-typed; compare text.
      EXPECT_EQ(parsed->At(r, 2).ToString(), original.At(r, 2).as_string());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Range(uint64_t{100}, uint64_t{112}));

// --- Model determinism across refits -------------------------------------------

class ModelDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelDeterminismTest, RefittingGivesIdenticalPredictions) {
  MlDataset data = MakeBlobs({});
  auto make = [&]() -> std::unique_ptr<Classifier> {
    switch (GetParam()) {
      case 0:
        return std::make_unique<KnnClassifier>(5);
      case 1:
        return std::make_unique<LogisticRegression>();
      case 2:
        return std::make_unique<LinearSvm>();
      case 3:
        return std::make_unique<DecisionTreeClassifier>();
      default:
        return std::make_unique<GaussianNaiveBayes>();
    }
  };
  std::unique_ptr<Classifier> a = make();
  std::unique_ptr<Classifier> b = make();
  ASSERT_TRUE(a->Fit(data).ok());
  ASSERT_TRUE(b->Fit(data).ok());
  EXPECT_EQ(a->Predict(data.features), b->Predict(data.features));
  EXPECT_EQ(a->PredictProba(data.features)
                .MaxAbsDiff(b->PredictProba(data.features)),
            0.0);
}

INSTANTIATE_TEST_SUITE_P(Models, ModelDeterminismTest, ::testing::Range(0, 5));

// --- Pipeline removal invariants across random removal sets ----------------------

class PipelineRemovalTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineRemovalTest, FastPathInvariants) {
  Rng rng(GetParam());
  size_t n = 60;
  std::vector<double> f(n);
  std::vector<int64_t> y(n);
  for (size_t i = 0; i < n; ++i) {
    f[i] = rng.NextGaussian();
    y[i] = rng.NextBernoulli(0.5) ? 1 : 0;
  }
  Table train = TableBuilder()
                    .AddDoubleColumn("f", f)
                    .AddInt64Column("y", y)
                    .Build();
  ColumnTransformer transformer;
  transformer.Add("f", std::make_unique<NumericEncoder>(false));
  MlPipeline pipeline(
      {{"train", train}},
      [](const std::vector<PlanNodePtr>& s) { return s[0]; },
      std::move(transformer), "y");
  PipelineOutput full = pipeline.Run().value();

  size_t remove_count = 1 + rng.NextBounded(20);
  std::vector<SourceRef> removed;
  for (size_t i : rng.SampleWithoutReplacement(n, remove_count)) {
    removed.push_back(SourceRef{0, static_cast<uint32_t>(i)});
  }
  PipelineOutput fast = MlPipeline::RemoveByProvenance(full, removed);
  PipelineOutput slow = pipeline.RunWithout(removed).value();
  // Row-count arithmetic.
  EXPECT_EQ(fast.size(), full.size() - remove_count);
  EXPECT_EQ(fast.size(), slow.size());
  // Identical content on a row-local pipeline.
  EXPECT_EQ(fast.labels, slow.labels);
  EXPECT_LT(fast.features.MaxAbsDiff(slow.features), 1e-12);
  // Removing nothing is the identity.
  PipelineOutput unchanged = MlPipeline::RemoveByProvenance(full, {});
  EXPECT_EQ(unchanged.size(), full.size());
  EXPECT_EQ(unchanged.features.MaxAbsDiff(full.features), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineRemovalTest,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u));

// --- W3C traceparent parser: round-trip, rejection, no-crash fuzz ------------

class TraceparentFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceparentFuzzTest, MintedContextsRoundTripExactly) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    TraceContext context;
    context.trace_id_hi = rng.NextUint64();
    context.trace_id_lo = rng.NextUint64();
    context.span_id = rng.NextUint64();
    if (!context.has_trace() || context.span_id == 0) continue;
    std::string wire = FormatTraceparent(context);
    ASSERT_EQ(wire.size(), 55u) << wire;
    TraceContext parsed;
    ASSERT_TRUE(ParseTraceparent(wire, &parsed)) << wire;
    EXPECT_EQ(parsed.trace_id_hi, context.trace_id_hi);
    EXPECT_EQ(parsed.trace_id_lo, context.trace_id_lo);
    EXPECT_EQ(parsed.span_id, context.span_id);
    // Identity on the wire form too: parse(format(x)) formats back to x.
    EXPECT_EQ(FormatTraceparent(parsed), wire);
  }
}

TEST_P(TraceparentFuzzTest, SingleByteCorruptionNeverRoundTrips) {
  Rng rng(GetParam());
  TraceContext context = MintTraceContext();
  std::string wire = FormatTraceparent(context);
  for (int i = 0; i < 300; ++i) {
    std::string corrupt = wire;
    size_t pos = static_cast<size_t>(rng.NextBounded(corrupt.size()));
    char replacement = static_cast<char>(rng.NextBounded(256));
    if (corrupt[pos] == replacement) continue;
    corrupt[pos] = replacement;
    // Layout: version(0-1) '-' trace-id(3-34) '-' span-id(36-51) '-'
    // flags(53-54). Only the id fields carry id bits.
    bool in_ids = (pos >= 3 && pos <= 34) || (pos >= 36 && pos <= 51);
    TraceContext parsed;
    if (ParseTraceparent(corrupt, &parsed)) {
      if (in_ids) {
        // A hex digit changed to a different hex digit must decode to
        // *different* ids — never silently alias the original trace.
        EXPECT_NE(FormatTraceparent(parsed), wire);
      } else {
        // A parseable version/flags corruption (any hex but version "ff")
        // must preserve the ids exactly.
        EXPECT_EQ(parsed.trace_id_hi, context.trace_id_hi);
        EXPECT_EQ(parsed.trace_id_lo, context.trace_id_lo);
        EXPECT_EQ(parsed.span_id, context.span_id);
      }
    }
  }
}

TEST_P(TraceparentFuzzTest, ArbitraryBytesNeverCrashOrFalselyParse) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    size_t length = static_cast<size_t>(rng.NextBounded(80));
    std::string junk(length, '\0');
    for (char& c : junk) c = static_cast<char>(rng.NextBounded(256));
    TraceContext parsed;
    parsed.trace_id_hi = 0xdead;
    bool ok = ParseTraceparent(junk, &parsed);
    if (!ok) {
      // Contract: a failed parse leaves the output untouched.
      EXPECT_EQ(parsed.trace_id_hi, 0xdeadu);
    } else {
      EXPECT_EQ(junk.size(), 55u);
      EXPECT_TRUE(parsed.has_trace());
      EXPECT_NE(parsed.span_id, 0u);
    }
  }
}

TEST(TraceparentTest, RejectsMalformedAndAllZeroInputs) {
  TraceContext parsed;
  // Wrong sizes, casing, separators, and forbidden values.
  EXPECT_FALSE(ParseTraceparent("", &parsed));
  EXPECT_FALSE(ParseTraceparent("00", &parsed));
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", &parsed));
  EXPECT_FALSE(ParseTraceparent(
      "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", &parsed));
  EXPECT_FALSE(ParseTraceparent(
      "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &parsed));
  // All-zero trace id and all-zero span id are invalid per W3C.
  EXPECT_FALSE(ParseTraceparent(
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01", &parsed));
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", &parsed));
  // Version ff is reserved and must be rejected.
  EXPECT_FALSE(ParseTraceparent(
      "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &parsed));
  // The canonical example parses.
  EXPECT_TRUE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &parsed));
  EXPECT_EQ(TraceIdHex(parsed), "4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_EQ(SpanIdHex(parsed.span_id), "00f067aa0ba902b7");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceparentFuzzTest,
                         ::testing::Values(uint64_t{101}, uint64_t{102},
                                           uint64_t{103}, uint64_t{104}));

}  // namespace
}  // namespace nde
