#include <cmath>
#include <memory>
#include <numeric>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "ml/knn.h"
#include "ml/svm.h"
#include "query/calibration.h"
#include "query/predictive_query.h"

namespace nde {
namespace {

// --- Platt calibration --------------------------------------------------------

TEST(PlattCalibratorTest, RecoversSigmoidRelationship) {
  // Labels generated from sigmoid(2s - 1); the calibrator should recover a
  // mapping close to the true probabilities.
  Rng rng(3);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 4000; ++i) {
    double s = rng.NextUniform(-3, 3);
    double p = 1.0 / (1.0 + std::exp(-(2.0 * s - 1.0)));
    scores.push_back(s);
    labels.push_back(rng.NextBernoulli(p) ? 1 : 0);
  }
  PlattCalibrator calibrator;
  ASSERT_TRUE(calibrator.Fit(scores, labels).ok());
  EXPECT_NEAR(calibrator.slope(), 2.0, 0.3);
  EXPECT_NEAR(calibrator.intercept(), -1.0, 0.3);
  EXPECT_NEAR(calibrator.Calibrate(0.5), 0.5, 0.05);  // 2*0.5 - 1 = 0.
}

TEST(PlattCalibratorTest, ImprovesMiscalibratedScores) {
  // Over-confident scores: raw "probabilities" are sigmoid(10 s) while the
  // truth is sigmoid(s). Calibration must reduce Brier score and ECE.
  Rng rng(5);
  std::vector<double> raw_scores;
  std::vector<double> overconfident;
  std::vector<int> labels;
  for (int i = 0; i < 4000; ++i) {
    double s = rng.NextUniform(-2.5, 2.5);
    double truth = 1.0 / (1.0 + std::exp(-s));
    raw_scores.push_back(s);
    overconfident.push_back(1.0 / (1.0 + std::exp(-10.0 * s)));
    labels.push_back(rng.NextBernoulli(truth) ? 1 : 0);
  }
  PlattCalibrator calibrator;
  ASSERT_TRUE(calibrator.Fit(raw_scores, labels).ok());
  std::vector<double> calibrated = calibrator.Calibrate(raw_scores);
  EXPECT_LT(BrierScore(calibrated, labels), BrierScore(overconfident, labels));
  EXPECT_LT(ExpectedCalibrationError(calibrated, labels),
            ExpectedCalibrationError(overconfident, labels));
}

TEST(PlattCalibratorTest, Validation) {
  PlattCalibrator calibrator;
  EXPECT_FALSE(calibrator.Fit({1.0}, {1, 0}).ok());      // Size mismatch.
  EXPECT_FALSE(calibrator.Fit({}, {}).ok());             // Empty.
  EXPECT_FALSE(calibrator.Fit({1.0, 2.0}, {1, 2}).ok()); // Non-binary.
  EXPECT_FALSE(calibrator.Fit({1.0, 2.0}, {1, 1}).ok()); // One class.
}

TEST(BrierScoreTest, HandChecked) {
  EXPECT_NEAR(BrierScore({1.0, 0.0}, {1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(BrierScore({0.5, 0.5}, {1, 0}), 0.25, 1e-12);
  EXPECT_NEAR(BrierScore({0.0, 1.0}, {1, 0}), 1.0, 1e-12);
}

TEST(EceTest, PerfectCalibrationIsZeroish) {
  // Probabilities equal to empirical frequencies per bin.
  std::vector<double> probabilities;
  std::vector<int> labels;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    double p = rng.NextUniform(0, 1);
    probabilities.push_back(p);
    labels.push_back(rng.NextBernoulli(p) ? 1 : 0);
  }
  EXPECT_LT(ExpectedCalibrationError(probabilities, labels), 0.02);
  // Systematic over-confidence scores high ECE.
  std::vector<double> shifted;
  for (double p : probabilities) shifted.push_back(p > 0.5 ? 0.99 : 0.01);
  EXPECT_GT(ExpectedCalibrationError(shifted, labels), 0.1);
}

// --- Label dictionary ----------------------------------------------------------

TEST(LabelDictionaryTest, LookupWithFallback) {
  LabelDictionary dictionary({"negative", "positive"});
  EXPECT_EQ(dictionary.Lookup(0), "negative");
  EXPECT_EQ(dictionary.Lookup(1), "positive");
  EXPECT_EQ(dictionary.Lookup(7), "class_7");
  EXPECT_EQ(dictionary.Lookup(-1), "class_-1");
}

// --- Aggregate queries -----------------------------------------------------------

struct QueryFixture {
  MlDataset train;
  Matrix queries;
  std::vector<int> groups;
  std::vector<size_t> poisoned;  ///< group-1-area tuples flipped to positive

  static QueryFixture Make(uint64_t seed, bool poison) {
    Rng rng(seed);
    QueryFixture fixture;
    size_t n = 240;
    fixture.train.features = Matrix(n, 2);
    fixture.train.labels.resize(n);
    for (size_t i = 0; i < n; ++i) {
      // Two spatial regions (groups live in different x bands).
      int region = rng.NextBernoulli(0.5) ? 1 : 0;
      double x = region == 1 ? 3.0 : -3.0;
      fixture.train.features(i, 0) = x + 0.8 * rng.NextGaussian();
      fixture.train.features(i, 1) = rng.NextGaussian();
      int label = rng.NextBernoulli(0.3) ? 1 : 0;  // True base rate 0.3.
      if (poison && region == 1 && label == 0 && rng.NextBernoulli(0.5)) {
        label = 1;  // Inflate region 1's positive rate.
        fixture.poisoned.push_back(i);
      }
      fixture.train.labels[i] = label;
    }
    size_t m = 100;
    fixture.queries = Matrix(m, 2);
    fixture.groups.resize(m);
    for (size_t i = 0; i < m; ++i) {
      int region = i % 2;
      fixture.queries(i, 0) = (region == 1 ? 3.0 : -3.0) +
                              0.8 * rng.NextGaussian();
      fixture.queries(i, 1) = rng.NextGaussian();
      fixture.groups[i] = region;
    }
    return fixture;
  }
};

TEST(AggregateQueryTest, PerGroupRatesReflectData) {
  QueryFixture fixture = QueryFixture::Make(11, /*poison=*/true);
  KnnClassifier knn(5);
  ASSERT_TRUE(knn.Fit(fixture.train).ok());
  std::vector<GroupAggregate> aggregates =
      AggregatePositiveRate(knn, fixture.queries, fixture.groups).value();
  ASSERT_EQ(aggregates.size(), 2u);
  // Region 1 was poisoned toward positive.
  EXPECT_GT(aggregates[1].positive_rate, aggregates[0].positive_rate + 0.1);
  EXPECT_EQ(aggregates[0].count + aggregates[1].count, 100u);
  EXPECT_FALSE(aggregates[0].ToString().empty());
}

TEST(AggregateQueryTest, Validation) {
  QueryFixture fixture = QueryFixture::Make(13, false);
  KnnClassifier knn(5);
  ASSERT_TRUE(knn.Fit(fixture.train).ok());
  EXPECT_FALSE(
      AggregatePositiveRate(knn, fixture.queries, {0, 1}).ok());
}

// --- Complaint-driven debugging -----------------------------------------------------

TEST(ComplaintTest, AttributionSatisfiesEfficiency) {
  QueryFixture fixture = QueryFixture::Make(17, true);
  size_t k = 5;
  std::vector<double> attribution =
      AggregateAttribution(fixture.train, fixture.queries, fixture.groups,
                           /*group=*/1, k)
          .value();
  double total =
      std::accumulate(attribution.begin(), attribution.end(), 0.0);
  // Sum of Shapley values == full-data aggregate (soft K-NN vote for class 1
  // over the group's queries).
  KnnClassifier knn(k);
  ASSERT_TRUE(knn.Fit(fixture.train).ok());
  double aggregate = 0.0;
  size_t count = 0;
  Matrix proba = knn.PredictProba(fixture.queries);
  for (size_t i = 0; i < fixture.groups.size(); ++i) {
    if (fixture.groups[i] != 1) continue;
    aggregate += proba(i, 1);
    ++count;
  }
  aggregate /= static_cast<double>(count);
  EXPECT_NEAR(total, aggregate, 1e-9);
}

TEST(ComplaintTest, RankingSurfacesPoisonedTuples) {
  QueryFixture fixture = QueryFixture::Make(19, true);
  ASSERT_FALSE(fixture.poisoned.empty());
  Complaint complaint{1, ComplaintDirection::kTooHigh};
  std::vector<size_t> ranking =
      ComplaintDrivenRanking(fixture.train, fixture.queries, fixture.groups,
                             complaint, 5)
          .value();
  // The poisoned tuples should be heavily over-represented near the top.
  std::unordered_set<size_t> poisoned(fixture.poisoned.begin(),
                                      fixture.poisoned.end());
  size_t hits = 0;
  size_t budget = fixture.poisoned.size();
  for (size_t i = 0; i < budget; ++i) {
    if (poisoned.count(ranking[i]) > 0) ++hits;
  }
  double precision = static_cast<double>(hits) / static_cast<double>(budget);
  double base_rate = static_cast<double>(budget) /
                     static_cast<double>(fixture.train.size());
  // The top ranks mix poisoned tuples with legitimately positive tuples of
  // the same region (both push the aggregate up), so we require a clear
  // enrichment over chance rather than perfect precision.
  EXPECT_GT(precision, base_rate * 2.5);
  // And every top-ranked tuple should at least carry the positive label.
  for (size_t i = 0; i < budget; ++i) {
    EXPECT_EQ(fixture.train.labels[ranking[i]], 1);
  }
}

TEST(ComplaintTest, FixMovesAggregateInRequestedDirection) {
  QueryFixture fixture = QueryFixture::Make(23, true);
  Complaint complaint{1, ComplaintDirection::kTooHigh};
  ComplaintFixResult fix =
      ApplyComplaintFix(fixture.train, fixture.queries, fixture.groups,
                        complaint, 5, /*budget=*/30)
          .value();
  EXPECT_LT(fix.aggregate_after, fix.aggregate_before);
  EXPECT_EQ(fix.removed.size(), 30u);

  // The opposite complaint moves it the other way.
  Complaint opposite{1, ComplaintDirection::kTooLow};
  ComplaintFixResult raise =
      ApplyComplaintFix(fixture.train, fixture.queries, fixture.groups,
                        opposite, 5, 30)
          .value();
  EXPECT_GT(raise.aggregate_after, raise.aggregate_before);
}

TEST(ComplaintTest, Validation) {
  QueryFixture fixture = QueryFixture::Make(29, false);
  Complaint complaint{99, ComplaintDirection::kTooHigh};  // Unknown group.
  EXPECT_FALSE(ComplaintDrivenRanking(fixture.train, fixture.queries,
                                      fixture.groups, complaint, 5)
                   .ok());
  Complaint valid{1, ComplaintDirection::kTooHigh};
  EXPECT_FALSE(ApplyComplaintFix(fixture.train, fixture.queries,
                                 fixture.groups, valid, 5,
                                 fixture.train.size())
                   .ok());
}

}  // namespace
}  // namespace nde
