#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "datascope/datascope.h"
#include "datascope/whatif.h"
#include "ml/knn.h"
#include "pipeline/encoders.h"
#include "pipeline/inspection.h"
#include "uncertain/certain_model.h"

namespace nde {
namespace {

/// A single-source pipeline over a toy table whose `signal` column is
/// predictive but partially null, plus a `noise_label` flag marking rows
/// with flipped labels.
struct WhatIfFixture {
  MlPipeline pipeline;
  MlDataset validation;
  size_t num_flipped = 0;

  static WhatIfFixture Make(uint64_t seed) {
    Rng rng(seed);
    auto make_table = [&rng](size_t n, bool with_errors, size_t* flipped) {
      std::vector<Value> signal;
      std::vector<int64_t> flags;
      std::vector<int64_t> labels;
      for (size_t i = 0; i < n; ++i) {
        int label = rng.NextBernoulli(0.5) ? 1 : 0;
        double direction = label == 1 ? 1.5 : -1.5;
        bool missing = with_errors && rng.NextBernoulli(0.15);
        signal.push_back(missing
                             ? Value::Null()
                             : Value(direction + 0.6 * rng.NextGaussian()));
        bool flip = with_errors && rng.NextBernoulli(0.1);
        flags.push_back(flip ? 1 : 0);
        if (flip) {
          label = 1 - label;
          if (flipped != nullptr) ++*flipped;
        }
        labels.push_back(label);
      }
      return TableBuilder()
          .AddValueColumn("signal", DataType::kDouble, std::move(signal))
          .AddInt64Column("suspect", std::move(flags))
          .AddInt64Column("label", std::move(labels))
          .Build();
    };

    size_t flipped = 0;
    Table train = make_table(250, /*with_errors=*/true, &flipped);
    Table validation_table = make_table(120, /*with_errors=*/false, nullptr);

    ColumnTransformer transformer;
    transformer.Add("signal", std::make_unique<NumericEncoder>());
    MlPipeline pipeline(
        {{"train", train}},
        [](const std::vector<PlanNodePtr>& s) { return s[0]; },
        std::move(transformer), "label");

    PipelineOutput output = pipeline.Run().value();
    MlDataset validation =
        EncodeValidation(output, validation_table, "label").value();
    return WhatIfFixture{std::move(pipeline), std::move(validation), flipped};
  }
};

TEST(WhatIfTest, BaselineComesFirstWithZeroDelta) {
  WhatIfFixture fixture = WhatIfFixture::Make(3);
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  std::vector<WhatIfOutcome> outcomes =
      RunWhatIfAnalysis(fixture.pipeline, factory, fixture.validation, {})
          .value();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].name, "(baseline)");
  EXPECT_EQ(outcomes[0].accuracy_delta, 0.0);
  EXPECT_GT(outcomes[0].report.accuracy, 0.5);
}

TEST(WhatIfTest, DroppingFlippedRowsImprovesAccuracy) {
  WhatIfFixture fixture = WhatIfFixture::Make(5);
  ASSERT_GT(fixture.num_flipped, 0u);
  // 1-NN: sensitive to individual poisoned neighborhoods, so the repair
  // interventions move the metric measurably.
  auto factory = []() { return std::make_unique<KnnClassifier>(1); };
  std::vector<WhatIfIntervention> interventions;
  interventions.push_back(WhatIfIntervention{
      "drop suspect rows", 0,
      FilterRowsIntervention([](const Table& t, size_t r) {
        size_t col = t.schema().FieldIndex("suspect").value();
        return t.At(r, col).as_int64() == 0;
      })});
  interventions.push_back(
      WhatIfIntervention{"impute signal", 0, MeanImputeIntervention("signal")});
  interventions.push_back(WhatIfIntervention{
      "drop rows with null signal", 0, DropNullRowsIntervention("signal")});

  std::vector<WhatIfOutcome> outcomes =
      RunWhatIfAnalysis(fixture.pipeline, factory, fixture.validation,
                        interventions)
          .value();
  ASSERT_EQ(outcomes.size(), 4u);
  // Dropping the flipped rows must help.
  EXPECT_GT(outcomes[1].accuracy_delta, 0.0);
  // The suspect-drop variant trains on fewer rows.
  EXPECT_LT(outcomes[1].output_rows, outcomes[0].output_rows);
  for (const WhatIfOutcome& outcome : outcomes) {
    EXPECT_FALSE(outcome.ToString().empty());
  }
}

TEST(WhatIfTest, SchemaChangingInterventionRejected) {
  WhatIfFixture fixture = WhatIfFixture::Make(7);
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  std::vector<WhatIfIntervention> interventions;
  interventions.push_back(WhatIfIntervention{
      "drop a column", 0, [](const Table& t) -> Result<Table> {
        Table copy = t;
        NDE_RETURN_IF_ERROR(copy.DropColumn("suspect"));
        return copy;
      }});
  EXPECT_FALSE(RunWhatIfAnalysis(fixture.pipeline, factory,
                                 fixture.validation, interventions)
                   .ok());
}

TEST(WhatIfTest, BadTargetIndexRejected) {
  WhatIfFixture fixture = WhatIfFixture::Make(9);
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  std::vector<WhatIfIntervention> interventions;
  interventions.push_back(
      WhatIfIntervention{"oops", 9, MeanImputeIntervention("signal")});
  EXPECT_FALSE(RunWhatIfAnalysis(fixture.pipeline, factory,
                                 fixture.validation, interventions)
                   .ok());
}

// --- Certain SVM -----------------------------------------------------------------

TEST(CertainSvmTest, FarFromMarginIsCertain) {
  // Widely separated classes; missing cells bounded tightly around their
  // cluster, so incomplete rows stay far outside the margin.
  Rng rng(11);
  IncompleteClassificationDataset data;
  data.features = Matrix(60, 2);
  data.labels.resize(60);
  for (size_t i = 0; i < 60; ++i) {
    int label = i % 2;
    double direction = label == 1 ? 5.0 : -5.0;
    data.features(i, 0) = direction + 0.3 * rng.NextGaussian();
    data.features(i, 1) = direction + 0.3 * rng.NextGaussian();
    data.labels[i] = label;
  }
  // Row 1 belongs to the +5 cluster and misses feature 1. When the missing
  // value could lie anywhere (even inside the other cluster), the model
  // cannot be certain; when it is known to stay in the +5 band, row 1 is
  // provably outside the margin in every world.
  data.missing_cells = {{1, 1}};
  CertainSvmResult wide =
      CheckCertainSvmModel(data, /*bound_lo=*/-6.0, /*bound_hi=*/6.0).value();
  EXPECT_FALSE(wide.certain);
  EXPECT_LT(wide.min_incomplete_margin, 1.0);

  CertainSvmResult tight = CheckCertainSvmModel(data, 4.0, 6.0).value();
  EXPECT_TRUE(tight.certain);
  EXPECT_GE(tight.min_incomplete_margin, 1.0);
}

TEST(CertainSvmTest, NoIncompleteRowsIsTriviallyCertain) {
  IncompleteClassificationDataset data;
  data.features = Matrix::FromRows({{-2.0}, {2.0}, {-2.1}, {2.1}});
  data.labels = {0, 1, 0, 1};
  CertainSvmResult result = CheckCertainSvmModel(data, -1, 1).value();
  EXPECT_TRUE(result.certain);
}

TEST(CertainSvmTest, Validation) {
  IncompleteClassificationDataset data;
  data.features = Matrix::FromRows({{0.0}, {1.0}});
  data.labels = {0, 2};
  EXPECT_FALSE(CheckCertainSvmModel(data, -1, 1).ok());  // Non-binary.
  data.labels = {0, 1};
  EXPECT_FALSE(CheckCertainSvmModel(data, 1, -1).ok());  // Bad bounds.
  data.missing_cells = {{5, 0}};
  EXPECT_FALSE(CheckCertainSvmModel(data, -1, 1).ok());  // Out of range.
}

// --- Near-duplicate screen ----------------------------------------------------------

TEST(NearDuplicatesTest, FindsTyposAndExactCopies) {
  Table t = TableBuilder()
                .AddStringColumn("name", {"acme corp", "acme corp",
                                          "acme c0rp", "globex", "initech"})
                .Build();
  std::vector<std::pair<size_t, size_t>> pairs;
  std::vector<PipelineIssue> issues =
      CheckNearDuplicates(t, "name", 1, &pairs).value();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].check, "near_duplicates");
  // (0,1) exact, (0,2) and (1,2) one substitution.
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(NearDuplicatesTest, CleanColumnPasses) {
  Table t = TableBuilder()
                .AddStringColumn("name", {"alpha", "bravo", "charlie"})
                .Build();
  EXPECT_TRUE(CheckNearDuplicates(t, "name", 1).value().empty());
}

TEST(NearDuplicatesTest, RequiresStringColumn) {
  Table t = TableBuilder().AddInt64Column("id", {1, 2}).Build();
  EXPECT_FALSE(CheckNearDuplicates(t, "id", 1).ok());
  EXPECT_FALSE(CheckNearDuplicates(t, "missing", 1).ok());
}

}  // namespace
}  // namespace nde
