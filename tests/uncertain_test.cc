#include <algorithm>
#include <cmath>
#include <optional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "ml/knn.h"
#include "ml/metrics.h"
#include "uncertain/certain_knn.h"
#include "uncertain/certain_model.h"
#include "uncertain/fairness_range.h"
#include "uncertain/interval.h"
#include "uncertain/multiplicity.h"
#include "uncertain/zorro.h"

namespace nde {
namespace {

// --- Interval arithmetic ---------------------------------------------------------

TEST(IntervalTest, Construction) {
  Interval point(3.0);
  EXPECT_TRUE(point.is_point());
  EXPECT_EQ(point.mid(), 3.0);
  Interval range(1.0, 4.0);
  EXPECT_EQ(range.width(), 3.0);
  EXPECT_TRUE(range.Contains(2.0));
  EXPECT_FALSE(range.Contains(5.0));
}

TEST(IntervalTest, ArithmeticHandChecked) {
  Interval a(1.0, 2.0);
  Interval b(-1.0, 3.0);
  EXPECT_EQ(a + b, Interval(0.0, 5.0));
  EXPECT_EQ(a - b, Interval(-2.0, 3.0));
  EXPECT_EQ(a * b, Interval(-2.0, 6.0));
  EXPECT_EQ(-a, Interval(-2.0, -1.0));
  EXPECT_EQ(2.0 * a, Interval(2.0, 4.0));
}

TEST(IntervalTest, SquareIsTight) {
  EXPECT_EQ(Interval(-2.0, 3.0).Square(), Interval(0.0, 9.0));
  EXPECT_EQ(Interval(1.0, 2.0).Square(), Interval(1.0, 4.0));
  EXPECT_EQ(Interval(-3.0, -1.0).Square(), Interval(1.0, 9.0));
}

TEST(IntervalTest, HullAndIntersect) {
  Interval a(0.0, 1.0);
  Interval b(2.0, 3.0);
  EXPECT_EQ(Interval::Hull(a, b), Interval(0.0, 3.0));
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_TRUE(a.Intersects(Interval(0.5, 2.0)));
  EXPECT_TRUE(Interval(0.0, 5.0).ContainsInterval(a));
}

/// Property: for randomly sampled concrete points inside the operand
/// intervals, the result of the concrete operation lies inside the interval
/// result (the inclusion property all soundness proofs rest on).
class IntervalInclusionTest : public ::testing::TestWithParam<int> {};

TEST_P(IntervalInclusionTest, InclusionHoldsForRandomOperands) {
  Rng rng(100 + GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    double a_lo = rng.NextUniform(-5, 5);
    double a_hi = a_lo + rng.NextUniform(0, 4);
    double b_lo = rng.NextUniform(-5, 5);
    double b_hi = b_lo + rng.NextUniform(0, 4);
    Interval a(a_lo, a_hi);
    Interval b(b_lo, b_hi);
    double x = rng.NextUniform(a_lo, a_hi);
    double y = rng.NextUniform(b_lo, b_hi);
    EXPECT_TRUE((a + b).Contains(x + y));
    EXPECT_TRUE((a - b).Contains(x - y));
    EXPECT_TRUE((a * b).Contains(x * y));
    EXPECT_TRUE(a.Square().Contains(x * x));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalInclusionTest, ::testing::Range(0, 5));

TEST(IntervalDotTest, MatchesConcreteDot) {
  std::vector<Interval> a = {Interval(1.0), Interval(2.0)};
  std::vector<double> b = {3.0, -1.0};
  Interval result = IntervalDot(a, b);
  EXPECT_TRUE(result.is_point());
  EXPECT_EQ(result.lo(), 1.0);
}

// --- Zorro -------------------------------------------------------------------------

RegressionDataset MakeLinearData(size_t n, uint64_t seed) {
  Rng rng(seed);
  RegressionDataset data;
  data.features = Matrix(n, 2);
  data.targets.resize(n);
  for (size_t i = 0; i < n; ++i) {
    data.features(i, 0) = rng.NextGaussian();
    data.features(i, 1) = rng.NextGaussian();
    data.targets[i] = 1.5 * data.features(i, 0) - 0.5 * data.features(i, 1) +
                      0.3 + 0.05 * rng.NextGaussian();
  }
  return data;
}

TEST(ZorroTest, PointIntervalsMatchConcreteGd) {
  RegressionDataset data = MakeLinearData(60, 7);
  SymbolicRegressionDataset symbolic =
      SymbolicRegressionDataset::FromConcrete(data);
  ZorroOptions options;
  ZorroModel model = TrainZorro(symbolic, options).value();
  std::vector<double> concrete = TrainConcreteGd(data, options);
  for (size_t j = 0; j < model.weights.size(); ++j) {
    EXPECT_TRUE(model.weights[j].is_point());
    EXPECT_NEAR(model.weights[j].lo(), concrete[j], 1e-9);
  }
  EXPECT_NEAR(model.bias.lo(), concrete.back(), 1e-9);
}

TEST(ZorroTest, ConvergesToUsefulModelOnCertainData) {
  RegressionDataset data = MakeLinearData(100, 9);
  SymbolicRegressionDataset symbolic =
      SymbolicRegressionDataset::FromConcrete(data);
  ZorroModel model = TrainZorro(symbolic).value();
  EXPECT_NEAR(model.weights[0].mid(), 1.5, 0.2);
  EXPECT_NEAR(model.weights[1].mid(), -0.5, 0.2);
}

class ZorroSoundnessTest : public ::testing::TestWithParam<double> {};

TEST_P(ZorroSoundnessTest, SampledWorldsStayInsideIntervals) {
  double missing_fraction = GetParam();
  RegressionDataset data = MakeLinearData(50, 11);
  Rng rng(13);
  size_t missing_count = static_cast<size_t>(missing_fraction * 50);
  std::vector<size_t> missing_rows =
      rng.SampleWithoutReplacement(50, missing_count);
  SymbolicRegressionDataset symbolic =
      EncodeSymbolicMissing(data, missing_rows, /*column=*/0, -2.0, 2.0)
          .value();
  ZorroOptions options;
  options.epochs = 25;
  ZorroModel model = TrainZorro(symbolic, options).value();

  for (int world = 0; world < 20; ++world) {
    RegressionDataset sampled = symbolic.SampleWorld(&rng);
    std::vector<double> w = TrainConcreteGd(sampled, options);
    for (size_t j = 0; j < model.weights.size(); ++j) {
      EXPECT_TRUE(model.weights[j].Contains(w[j]))
          << "weight " << j << " = " << w[j] << " outside "
          << model.weights[j].ToString();
    }
    EXPECT_TRUE(model.bias.Contains(w.back()));
    // Prediction soundness on a probe point.
    std::vector<double> probe = {0.7, -0.4};
    double concrete_pred = w.back();
    for (size_t j = 0; j < probe.size(); ++j) concrete_pred += w[j] * probe[j];
    EXPECT_TRUE(model.Predict(probe).Contains(concrete_pred));
  }
}

INSTANTIATE_TEST_SUITE_P(MissingFractions, ZorroSoundnessTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4));

TEST(ZorroTest, UncertaintyGrowsWithMissingFraction) {
  RegressionDataset data = MakeLinearData(80, 17);
  RegressionDataset test = MakeLinearData(40, 18);
  ZorroOptions options;
  options.epochs = 25;
  Rng rng(19);
  double previous_loss = 0.0;
  double previous_width = 0.0;
  for (double fraction : {0.05, 0.15, 0.3}) {
    size_t count = static_cast<size_t>(fraction * 80);
    std::vector<size_t> missing = rng.SampleWithoutReplacement(80, count);
    SymbolicRegressionDataset symbolic =
        EncodeSymbolicMissing(data, missing, 0, -2.0, 2.0).value();
    ZorroModel model = TrainZorro(symbolic, options).value();
    double loss = MaxWorstCaseLoss(model, test);
    double width = model.TotalWeightWidth();
    EXPECT_GT(loss, previous_loss);
    EXPECT_GT(width, previous_width);
    previous_loss = loss;
    previous_width = width;
  }
}

TEST(ZorroTest, EncodeSymbolicValidation) {
  RegressionDataset data = MakeLinearData(10, 21);
  EXPECT_FALSE(EncodeSymbolicMissing(data, {0}, 99, -1, 1).ok());
  EXPECT_FALSE(EncodeSymbolicMissing(data, {99}, 0, -1, 1).ok());
  EXPECT_FALSE(EncodeSymbolicMissing(data, {0}, 0, 1, -1).ok());
  SymbolicRegressionDataset symbolic =
      EncodeSymbolicMissing(data, {0, 3}, 1, -1, 1).value();
  EXPECT_EQ(symbolic.features[0][1], Interval(-1.0, 1.0));
  EXPECT_TRUE(symbolic.features[1][1].is_point());
}

TEST(ZorroTest, MeanPredictionWidthZeroWhenCertain) {
  RegressionDataset data = MakeLinearData(30, 23);
  SymbolicRegressionDataset symbolic =
      SymbolicRegressionDataset::FromConcrete(data);
  ZorroModel model = TrainZorro(symbolic).value();
  EXPECT_NEAR(MeanPredictionWidth(model, data.features), 0.0, 1e-9);
}

// --- Certain KNN predictions ----------------------------------------------------------

TEST(CertainKnnTest, FullyCertainDataAlwaysCertain) {
  MlDataset data = MakeBlobs({});
  UncertainClassificationDataset uncertain =
      UncertainClassificationDataset::FromConcrete(data);
  KnnClassifier knn(3);
  ASSERT_TRUE(knn.Fit(data).ok());
  for (size_t q = 0; q < 20; ++q) {
    std::vector<double> query = data.features.Row(q);
    std::optional<int> certain = CertainKnnPrediction(uncertain, query, 3);
    ASSERT_TRUE(certain.has_value());
    Matrix single(1, data.num_features());
    single.SetRow(0, query);
    EXPECT_EQ(*certain, knn.Predict(single)[0]);
  }
}

TEST(CertainKnnTest, MinMaxDistancesBracketSampledWorlds) {
  MlDataset data = MakeBlobs({});
  UncertainClassificationDataset uncertain =
      UncertainClassificationDataset::FromConcrete(data);
  Rng rng(29);
  for (int c = 0; c < 30; ++c) {
    uncertain.SetUncertain(rng.NextBounded(data.size()),
                           rng.NextBounded(data.num_features()), -1.5, 1.5);
  }
  std::vector<double> query = data.features.Row(0);
  for (int world = 0; world < 10; ++world) {
    MlDataset sampled = uncertain.SampleWorld(&rng);
    for (size_t i = 0; i < sampled.size(); ++i) {
      double dist = SquaredDistance(sampled.features.Row(i), query);
      EXPECT_GE(dist, uncertain.MinSquaredDistance(i, query) - 1e-9);
      EXPECT_LE(dist, uncertain.MaxSquaredDistance(i, query) + 1e-9);
    }
  }
}

TEST(CertainKnnTest, CertainDecisionsAgreeWithEverySampledWorld) {
  // Binary task: the certainty decision is exact, so certain predictions
  // must match the concrete KNN result in every sampled world.
  BlobsOptions options;
  options.num_examples = 60;
  options.num_features = 2;
  options.separation = 4.0;
  MlDataset data = MakeBlobs(options);
  UncertainClassificationDataset uncertain =
      UncertainClassificationDataset::FromConcrete(data);
  Rng rng(31);
  for (int c = 0; c < 25; ++c) {
    uncertain.SetUncertain(rng.NextBounded(60), rng.NextBounded(2), -3.0, 3.0);
  }
  BlobsOptions query_options = options;
  query_options.num_examples = 15;
  query_options.seed = 99;
  MlDataset queries = MakeBlobs(query_options);

  size_t certain_count = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<double> query = queries.features.Row(q);
    std::optional<int> certain = CertainKnnPrediction(uncertain, query, 3);
    if (!certain.has_value()) continue;
    ++certain_count;
    for (int world = 0; world < 15; ++world) {
      MlDataset sampled = uncertain.SampleWorld(&rng);
      KnnClassifier knn(3);
      ASSERT_TRUE(knn.Fit(sampled).ok());
      Matrix single(1, 2);
      single.SetRow(0, query);
      EXPECT_EQ(knn.Predict(single)[0], *certain) << "query " << q;
    }
  }
  EXPECT_GT(certain_count, 0u);  // The test must exercise the certain path.
}

TEST(CertainKnnTest, HeavyUncertaintyDestroysCertainty) {
  BlobsOptions options;
  options.num_examples = 40;
  options.num_features = 2;
  options.separation = 1.0;  // Weakly separated.
  MlDataset data = MakeBlobs(options);
  UncertainClassificationDataset uncertain =
      UncertainClassificationDataset::FromConcrete(data);
  // Make every cell wildly uncertain.
  for (size_t i = 0; i < 40; ++i) {
    for (size_t j = 0; j < 2; ++j) uncertain.SetUncertain(i, j, -50.0, 50.0);
  }
  std::optional<int> certain =
      CertainKnnPrediction(uncertain, {0.0, 0.0}, 3);
  EXPECT_FALSE(certain.has_value());
}

TEST(CertainKnnTest, CertainRatioDecreasesWithMissingness) {
  BlobsOptions options;
  options.num_examples = 100;
  options.num_features = 3;
  options.separation = 3.0;
  MlDataset data = MakeBlobs(options);
  BlobsOptions query_options = options;
  query_options.num_examples = 30;
  query_options.seed = 7;
  MlDataset queries = MakeBlobs(query_options);

  Rng rng(37);
  double previous_ratio = 1.1;
  for (size_t uncertain_cells : {5u, 40u, 150u}) {
    UncertainClassificationDataset uncertain =
        UncertainClassificationDataset::FromConcrete(data);
    Rng cell_rng(41);
    for (size_t c = 0; c < uncertain_cells; ++c) {
      uncertain.SetUncertain(cell_rng.NextBounded(100),
                             cell_rng.NextBounded(3), -4.0, 4.0);
    }
    double ratio = CertainPredictionRatio(uncertain, queries.features, 3);
    EXPECT_LE(ratio, previous_ratio);
    previous_ratio = ratio;
  }
  EXPECT_LT(previous_ratio, 1.0);
}

// --- Dataset multiplicity ---------------------------------------------------------------

TEST(MultiplicityTest, ZeroFlipsGiveDegenerateRange) {
  RegressionDataset data = MakeLinearData(40, 43);
  RidgeRegression model(0.1);
  ASSERT_TRUE(model.Fit(data).ok());
  std::vector<double> x = {0.5, 0.5};
  Interval range =
      LabelPerturbationPredictionRange(model, x, 0, 1.0).value();
  EXPECT_TRUE(range.is_point());
  EXPECT_NEAR(range.lo(), model.PredictOne(x), 1e-12);
}

TEST(MultiplicityTest, RangeGrowsWithBudget) {
  RegressionDataset data = MakeLinearData(40, 47);
  RidgeRegression model(0.1);
  ASSERT_TRUE(model.Fit(data).ok());
  std::vector<double> x = {0.5, 0.5};
  double previous_width = -1.0;
  for (size_t flips : {0u, 1u, 5u, 20u}) {
    Interval range =
        LabelPerturbationPredictionRange(model, x, flips, 0.5).value();
    EXPECT_GT(range.width(), previous_width);
    previous_width = range.width();
  }
}

TEST(MultiplicityTest, BinaryFlipRangeIsExact) {
  // Compare against brute-force enumeration of all single flips.
  Rng rng(53);
  RegressionDataset data;
  data.features = Matrix(20, 2);
  data.targets.resize(20);
  for (size_t i = 0; i < 20; ++i) {
    data.features(i, 0) = rng.NextGaussian();
    data.features(i, 1) = rng.NextGaussian();
    data.targets[i] = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
  }
  RidgeRegression model(0.1);
  ASSERT_TRUE(model.Fit(data).ok());
  std::vector<double> x = {0.3, -0.7};
  Interval range =
      LabelFlipPredictionRange(model, data.targets, x, 1).value();

  double brute_lo = model.PredictOne(x);
  double brute_hi = brute_lo;
  for (size_t i = 0; i < 20; ++i) {
    RegressionDataset flipped = data;
    flipped.targets[i] = 1.0 - flipped.targets[i];
    RidgeRegression refit(0.1);
    ASSERT_TRUE(refit.Fit(flipped).ok());
    double prediction = refit.PredictOne(x);
    brute_lo = std::min(brute_lo, prediction);
    brute_hi = std::max(brute_hi, prediction);
  }
  EXPECT_NEAR(range.lo(), brute_lo, 1e-8);
  EXPECT_NEAR(range.hi(), brute_hi, 1e-8);
}

TEST(MultiplicityTest, RobustnessChecks) {
  EXPECT_TRUE(IsRobustPrediction(Interval(0.6, 0.9), 0.5));
  EXPECT_TRUE(IsRobustPrediction(Interval(0.1, 0.4), 0.5));
  EXPECT_FALSE(IsRobustPrediction(Interval(0.4, 0.6), 0.5));
}

TEST(MultiplicityTest, RobustRatioDecreasesWithBudget) {
  Rng rng(59);
  RegressionDataset data;
  data.features = Matrix(60, 2);
  data.targets.resize(60);
  for (size_t i = 0; i < 60; ++i) {
    int label = rng.NextBernoulli(0.5) ? 1 : 0;
    data.features(i, 0) = (label == 1 ? 1.0 : -1.0) + 0.4 * rng.NextGaussian();
    data.features(i, 1) = (label == 1 ? 1.0 : -1.0) + 0.4 * rng.NextGaussian();
    data.targets[i] = static_cast<double>(label);
  }
  RidgeRegression model(0.1);
  ASSERT_TRUE(model.Fit(data).ok());
  Matrix queries = data.features.SelectRows({0, 5, 10, 15, 20, 25, 30, 35});
  double previous = 1.1;
  for (size_t flips : {0u, 3u, 15u, 40u}) {
    double ratio =
        LabelFlipRobustRatio(model, data.targets, queries, flips, 0.5)
            .value();
    EXPECT_LE(ratio, previous);
    previous = ratio;
  }
}

// --- Certain / approximately certain models ------------------------------------------------

TEST(CertainModelTest, IrrelevantMissingFeatureIsCertain) {
  // Target depends only on feature 0; feature 1 is pure noise with zero
  // weight, so missing cells in feature 1 leave the model certain.
  Rng rng(61);
  IncompleteRegressionDataset data;
  data.features = Matrix(50, 2);
  data.targets.resize(50);
  for (size_t i = 0; i < 50; ++i) {
    data.features(i, 0) = rng.NextGaussian();
    data.features(i, 1) = rng.NextGaussian();
    data.targets[i] = 2.0 * data.features(i, 0);
  }
  data.missing_cells = {{3, 1}, {7, 1}};
  // Residual condition: rows 3 and 7 must have zero residual under the
  // complete-data model; they do because the target is exactly linear in f0.
  CertainModelResult result =
      CheckCertainLinearModel(data, /*lambda=*/1e-9, /*eps=*/1e-4).value();
  EXPECT_TRUE(result.certain);
  EXPECT_NEAR(result.weights[0], 2.0, 1e-3);
  EXPECT_NEAR(result.weights[1], 0.0, 1e-3);
}

TEST(CertainModelTest, RelevantMissingFeatureIsNotCertain) {
  Rng rng(67);
  IncompleteRegressionDataset data;
  data.features = Matrix(50, 2);
  data.targets.resize(50);
  for (size_t i = 0; i < 50; ++i) {
    data.features(i, 0) = rng.NextGaussian();
    data.features(i, 1) = rng.NextGaussian();
    data.targets[i] = 2.0 * data.features(i, 0) + 1.0 * data.features(i, 1);
  }
  data.missing_cells = {{3, 1}};
  CertainModelResult result =
      CheckCertainLinearModel(data, 1e-9, 1e-4).value();
  EXPECT_FALSE(result.certain);
  EXPECT_GT(result.max_missing_feature_weight, 0.5);
}

TEST(CertainModelTest, CompleteRowsHelper) {
  IncompleteRegressionDataset data;
  data.features = Matrix(4, 2);
  data.targets = {0, 0, 0, 0};
  data.missing_cells = {{1, 0}, {3, 1}};
  EXPECT_EQ(data.CompleteRows(), (std::vector<size_t>{0, 2}));
}

TEST(CertainModelTest, NoCompleteRowsFails) {
  IncompleteRegressionDataset data;
  data.features = Matrix(2, 1);
  data.targets = {0, 0};
  data.missing_cells = {{0, 0}, {1, 0}};
  EXPECT_FALSE(CheckCertainLinearModel(data).ok());
}

TEST(ApproxCertainTest, TightBoundsYieldApproxCertainty) {
  Rng rng(71);
  IncompleteRegressionDataset data;
  data.features = Matrix(40, 2);
  data.targets.resize(40);
  for (size_t i = 0; i < 40; ++i) {
    data.features(i, 0) = rng.NextGaussian();
    data.features(i, 1) = rng.NextGaussian();
    data.targets[i] = data.features(i, 0) + 0.5 * data.features(i, 1);
  }
  data.missing_cells = {{0, 1}};
  // With the missing cell confined near its true value, the worst-case MSE
  // stays near the complete MSE.
  data.features(0, 1) = 0.0;
  ApproxCertainResult tight =
      CheckApproximatelyCertainModel(data, -0.1, 0.1, /*epsilon=*/0.05)
          .value();
  EXPECT_TRUE(tight.approximately_certain);
  ApproxCertainResult loose =
      CheckApproximatelyCertainModel(data, -50.0, 50.0, 0.05).value();
  EXPECT_FALSE(loose.approximately_certain);
  EXPECT_GT(loose.worst_case_mse, tight.worst_case_mse);
}

// --- Fairness ranges under selection bias ---------------------------------------------------

TEST(FairnessRangeTest, NoBiasGivesPointRange) {
  std::vector<int> predictions = {1, 0, 1, 0, 1};
  Interval range = PositiveRateRange(predictions, 1.0);
  EXPECT_NEAR(range.lo(), 0.6, 1e-12);
  EXPECT_NEAR(range.hi(), 0.6, 1e-12);
}

TEST(FairnessRangeTest, ClosedFormMatchesBruteForceWeighting) {
  std::vector<int> predictions = {1, 1, 0, 0, 0};
  double r = 3.0;
  Interval range = PositiveRateRange(predictions, r);
  // Brute force over a weight grid: weights in {1, r} per example (the
  // extremes of the weight polytope, which suffice for a linear-fractional
  // objective).
  double lo = 1.0;
  double hi = 0.0;
  for (int mask = 0; mask < 32; ++mask) {
    double pos = 0.0;
    double total = 0.0;
    for (int i = 0; i < 5; ++i) {
      double w = (mask & (1 << i)) ? r : 1.0;
      total += w;
      if (predictions[static_cast<size_t>(i)] == 1) pos += w;
    }
    lo = std::min(lo, pos / total);
    hi = std::max(hi, pos / total);
  }
  EXPECT_NEAR(range.lo(), lo, 1e-12);
  EXPECT_NEAR(range.hi(), hi, 1e-12);
}

TEST(FairnessRangeTest, DegenerateRates) {
  EXPECT_EQ(PositiveRateRange({1, 1, 1}, 5.0), Interval(1.0, 1.0));
  EXPECT_EQ(PositiveRateRange({0, 0}, 5.0), Interval(0.0, 0.0));
}

TEST(FairnessRangeTest, DemographicParityRangeContainsObserved) {
  std::vector<int> predictions = {1, 1, 0, 1, 0, 0, 0, 1};
  std::vector<int> groups = {0, 0, 0, 0, 1, 1, 1, 1};
  double observed = DemographicParityDifference(predictions, groups);
  Interval range = DemographicParityRange(predictions, groups, 2.0).value();
  EXPECT_LE(range.lo(), observed + 1e-12);
  EXPECT_GE(range.hi(), observed - 1e-12);
  EXPECT_GT(range.width(), 0.0);
}

TEST(FairnessRangeTest, RangeWidensWithBiasBound) {
  std::vector<int> predictions = {1, 1, 0, 1, 0, 0, 0, 1};
  std::vector<int> groups = {0, 0, 0, 0, 1, 1, 1, 1};
  double previous = -1.0;
  for (double r : {1.0, 2.0, 5.0}) {
    Interval range = DemographicParityRange(predictions, groups, r).value();
    EXPECT_GT(range.width(), previous);
    previous = range.width();
  }
}

TEST(FairnessRangeTest, CertificationLogic) {
  std::vector<int> predictions = {1, 0, 1, 0};
  std::vector<int> groups = {0, 0, 1, 1};
  // Equal observed rates; small bias bound keeps the worst case under 0.5.
  EXPECT_TRUE(
      CertifyFairnessUnderBias(predictions, groups, 1.0, 0.1).value());
  // Huge bias bound cannot be certified at a tight threshold.
  EXPECT_FALSE(
      CertifyFairnessUnderBias(predictions, groups, 50.0, 0.1).value());
}

TEST(FairnessRangeTest, InputValidation) {
  EXPECT_FALSE(DemographicParityRange({1}, {0, 1}, 2.0).ok());
  EXPECT_FALSE(DemographicParityRange({}, {}, 2.0).ok());
  EXPECT_FALSE(DemographicParityRange({1, 0}, {0, 1}, 0.5).ok());
}

}  // namespace
}  // namespace nde
