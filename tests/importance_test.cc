#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/status.h"
#include "datagen/synthetic.h"
#include "importance/fairness_debugging.h"
#include "importance/game_values.h"
#include "importance/influence.h"
#include "importance/knn_shapley.h"
#include "importance/label_scores.h"
#include "importance/subset_cache.h"
#include "importance/utility.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"
#include "proptest/check.h"
#include "proptest/gen.h"

namespace nde {
namespace {

/// A synthetic game defined by an arbitrary set function, for axiom tests.
class LambdaUtility : public UtilityFunction {
 public:
  LambdaUtility(size_t n, std::function<double(const std::vector<size_t>&)> fn)
      : n_(n), fn_(std::move(fn)) {}
  double Evaluate(const std::vector<size_t>& subset) const override {
    return fn_(subset);
  }
  size_t num_units() const override { return n_; }

 private:
  size_t n_;
  std::function<double(const std::vector<size_t>&)> fn_;
};

/// Additive game: v(S) = sum of per-unit worths. Shapley/Banzhaf/LOO must all
/// return exactly the worths.
LambdaUtility AdditiveGame(const std::vector<double>& worths) {
  return LambdaUtility(worths.size(),
                       [worths](const std::vector<size_t>& subset) {
                         double total = 0.0;
                         for (size_t i : subset) total += worths[i];
                         return total;
                       });
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  double mean_a = std::accumulate(a.begin(), a.end(), 0.0) / a.size();
  double mean_b = std::accumulate(b.begin(), b.end(), 0.0) / b.size();
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - mean_a) * (b[i] - mean_b);
    var_a += (a[i] - mean_a) * (a[i] - mean_a);
    var_b += (b[i] - mean_b) * (b[i] - mean_b);
  }
  return cov / std::sqrt(var_a * var_b + 1e-300);
}

// --- LOO ------------------------------------------------------------------------

TEST(LeaveOneOutTest, ExactOnAdditiveGame) {
  LambdaUtility game = AdditiveGame({1.0, -2.0, 0.5});
  std::vector<double> values = LeaveOneOutValues(game).value();
  EXPECT_NEAR(values[0], 1.0, 1e-12);
  EXPECT_NEAR(values[1], -2.0, 1e-12);
  EXPECT_NEAR(values[2], 0.5, 1e-12);
}

TEST(LeaveOneOutTest, ZeroForDummyPlayer) {
  // Player 2 contributes nothing.
  LambdaUtility game(3, [](const std::vector<size_t>& subset) {
    double v = 0.0;
    for (size_t i : subset) {
      if (i != 2) v += 1.0;
    }
    return v;
  });
  std::vector<double> values = LeaveOneOutValues(game).value();
  EXPECT_NEAR(values[2], 0.0, 1e-12);
}

// --- Exact Shapley / Banzhaf ------------------------------------------------------

TEST(ExactShapleyTest, AdditiveGameGivesWorths) {
  LambdaUtility game = AdditiveGame({2.0, 3.0, -1.0, 0.0});
  std::vector<double> values = ExactShapleyValues(game).value();
  EXPECT_NEAR(values[0], 2.0, 1e-12);
  EXPECT_NEAR(values[1], 3.0, 1e-12);
  EXPECT_NEAR(values[2], -1.0, 1e-12);
  EXPECT_NEAR(values[3], 0.0, 1e-12);
}

TEST(ExactShapleyTest, EfficiencyAxiom) {
  // Non-additive game: v(S) = |S|^2.
  LambdaUtility game(5, [](const std::vector<size_t>& subset) {
    return static_cast<double>(subset.size() * subset.size());
  });
  std::vector<double> values = ExactShapleyValues(game).value();
  double total = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_NEAR(total, 25.0, 1e-9);  // v(N) - v(empty) = 25 - 0.
}

TEST(ExactShapleyTest, SymmetryAxiom) {
  // Players 0 and 1 are interchangeable.
  LambdaUtility game(4, [](const std::vector<size_t>& subset) {
    bool has0 = std::find(subset.begin(), subset.end(), 0u) != subset.end();
    bool has1 = std::find(subset.begin(), subset.end(), 1u) != subset.end();
    return (has0 ? 1.0 : 0.0) + (has1 ? 1.0 : 0.0) +
           (has0 && has1 ? 3.0 : 0.0);
  });
  std::vector<double> values = ExactShapleyValues(game).value();
  EXPECT_NEAR(values[0], values[1], 1e-12);
  EXPECT_NEAR(values[2], 0.0, 1e-12);
  EXPECT_NEAR(values[3], 0.0, 1e-12);
}

TEST(ExactShapleyTest, RejectsLargeGames) {
  LambdaUtility game(30, [](const std::vector<size_t>&) { return 0.0; });
  EXPECT_FALSE(ExactShapleyValues(game).ok());
}

TEST(ExactBanzhafTest, AdditiveGameGivesWorths) {
  LambdaUtility game = AdditiveGame({1.5, -0.5});
  std::vector<double> values = ExactBanzhafValues(game).value();
  EXPECT_NEAR(values[0], 1.5, 1e-12);
  EXPECT_NEAR(values[1], -0.5, 1e-12);
}

TEST(ExactBanzhafTest, MajorityGameHandChecked) {
  // 3-player majority game: v(S) = 1 iff |S| >= 2. Banzhaf value of each
  // player: swings = subsets of others with exactly 1 member = 2 of 4.
  LambdaUtility game(3, [](const std::vector<size_t>& subset) {
    return subset.size() >= 2 ? 1.0 : 0.0;
  });
  std::vector<double> values = ExactBanzhafValues(game).value();
  for (double v : values) EXPECT_NEAR(v, 0.5, 1e-12);
}

// --- Monte-Carlo estimators ---------------------------------------------------------

TEST(TmcShapleyTest, MatchesExactOnSmallGame) {
  LambdaUtility game(6, [](const std::vector<size_t>& subset) {
    double v = 0.0;
    for (size_t i : subset) v += static_cast<double>(i + 1);
    return std::sqrt(v);  // Non-additive.
  });
  std::vector<double> exact = ExactShapleyValues(game).value();
  TmcShapleyOptions options;
  options.num_permutations = 4000;
  options.truncation_tolerance = 0.0;  // Unbiased.
  ImportanceEstimate estimate = TmcShapleyValues(game, options).value();
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(estimate.values[i], exact[i], 0.02) << "unit " << i;
  }
}

TEST(TmcShapleyTest, EfficiencyHoldsPerPermutationWithoutTruncation) {
  LambdaUtility game(5, [](const std::vector<size_t>& subset) {
    return static_cast<double>(subset.size() * subset.size());
  });
  TmcShapleyOptions options;
  options.num_permutations = 10;
  options.truncation_tolerance = 0.0;
  ImportanceEstimate estimate = TmcShapleyValues(game, options).value();
  double total =
      std::accumulate(estimate.values.begin(), estimate.values.end(), 0.0);
  EXPECT_NEAR(total, 25.0, 1e-9);  // Telescoping sum is exact per permutation.
}

TEST(TmcShapleyTest, TruncationReducesEvaluations) {
  MlDataset data = MakeBlobs({});
  Rng rng(3);
  SplitResult split = TrainTestSplit(data, 0.5, &rng);
  MlDataset small_train = split.train.Subset({0, 1, 2, 3, 4, 5, 6, 7, 8, 9,
                                              10, 11, 12, 13, 14, 15});
  auto factory = []() { return std::make_unique<KnnClassifier>(3); };
  TmcShapleyOptions no_trunc;
  no_trunc.num_permutations = 10;
  no_trunc.truncation_tolerance = 0.0;
  TmcShapleyOptions trunc = no_trunc;
  trunc.truncation_tolerance = 0.05;
  ModelAccuracyUtility u1(factory, small_train, split.test);
  ASSERT_TRUE(TmcShapleyValues(u1, no_trunc).ok());
  size_t full_evals = u1.num_evaluations();
  ModelAccuracyUtility u2(factory, small_train, split.test);
  ASSERT_TRUE(TmcShapleyValues(u2, trunc).ok());
  size_t truncated_evals = u2.num_evaluations();
  EXPECT_LT(truncated_evals, full_evals);
}

TEST(TmcShapleyTest, StdErrorsShrinkWithMorePermutations) {
  LambdaUtility game(6, [](const std::vector<size_t>& subset) {
    return subset.size() % 2 == 0 ? 0.0 : 1.0;  // High-variance marginals.
  });
  TmcShapleyOptions few;
  few.num_permutations = 50;
  few.truncation_tolerance = 0.0;
  TmcShapleyOptions many = few;
  many.num_permutations = 2000;
  double few_err = TmcShapleyValues(game, few).value().std_errors[0];
  double many_err = TmcShapleyValues(game, many).value().std_errors[0];
  EXPECT_LT(many_err, few_err);
}

TEST(BanzhafMsrTest, MatchesExactOnSmallGame) {
  LambdaUtility game(6, [](const std::vector<size_t>& subset) {
    double v = 0.0;
    for (size_t i : subset) v += static_cast<double>(i + 1);
    return v * v / 100.0;
  });
  std::vector<double> exact = ExactBanzhafValues(game).value();
  BanzhafOptions options;
  options.num_samples = 80000;
  ImportanceEstimate estimate = BanzhafValues(game, options).value();
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(estimate.values[i], exact[i], 0.02) << "unit " << i;
  }
}

// --- Beta Shapley --------------------------------------------------------------------

TEST(BetaShapleyTest, UnitParametersGiveUniformCardinalityWeights) {
  std::vector<double> weights = BetaShapleyCardinalityWeights(8, 1.0, 1.0);
  for (double w : weights) EXPECT_NEAR(w, 1.0 / 8.0, 1e-9);
}

TEST(BetaShapleyTest, LargeAlphaEmphasizesSmallCoalitions) {
  // Beta(16, 1) is the paper's noise-reduced recommendation: most of the
  // sampling mass sits on small coalitions.
  std::vector<double> weights = BetaShapleyCardinalityWeights(10, 16.0, 1.0);
  EXPECT_GT(weights.front(), weights.back());
  EXPECT_GT(weights[0], 0.2);
}

TEST(BetaShapleyTest, LargeBetaEmphasizesLargeCoalitions) {
  std::vector<double> weights = BetaShapleyCardinalityWeights(10, 1.0, 16.0);
  EXPECT_GT(weights.back(), weights.front());
}

TEST(BetaShapleyTest, Beta11MatchesExactShapley) {
  LambdaUtility game(5, [](const std::vector<size_t>& subset) {
    double v = 0.0;
    for (size_t i : subset) v += static_cast<double>(i + 1);
    return std::sqrt(v);
  });
  std::vector<double> exact = ExactShapleyValues(game).value();
  BetaShapleyOptions options;
  options.samples_per_unit = 4000;
  ImportanceEstimate estimate = BetaShapleyValues(game, options).value();
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(estimate.values[i], exact[i], 0.03) << "unit " << i;
  }
}

// --- KNN-Shapley ----------------------------------------------------------------------

TEST(KnnShapleyTest, MatchesExactEnumerationOfItsGame) {
  // Ground truth: exact Shapley values of the SoftKnnUtility game on a tiny
  // dataset, compared against the closed-form recurrence.
  BlobsOptions options;
  options.num_examples = 9;
  options.num_features = 3;
  options.seed = 5;
  MlDataset train = MakeBlobs(options);
  BlobsOptions val_options = options;
  val_options.num_examples = 6;
  val_options.seed = 6;
  MlDataset validation = MakeBlobs(val_options);

  for (size_t k : {1u, 3u}) {
    SoftKnnUtility game(train, validation, k);
    std::vector<double> exact = ExactShapleyValues(game).value();
    std::vector<double> closed_form = KnnShapleyValues(train, validation, k);
    ASSERT_EQ(exact.size(), closed_form.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_NEAR(closed_form[i], exact[i], 1e-9) << "k=" << k << " i=" << i;
    }
  }
}

TEST(KnnShapleyTest, EfficiencySumsToFullUtility) {
  MlDataset train = MakeBlobs({});
  BlobsOptions val_options;
  val_options.num_examples = 40;
  val_options.seed = 77;
  MlDataset validation = MakeBlobs(val_options);
  size_t k = 5;
  std::vector<double> values = KnnShapleyValues(train, validation, k);
  SoftKnnUtility game(train, validation, k);
  double total = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_NEAR(total, game.FullUtility(), 1e-9);
}

TEST(KnnShapleyTest, FlippedLabelsGetLowValues) {
  DatasetSplits splits = LoadRecommendationLetters(400, 11);
  MlDataset dirty = splits.train;
  Rng rng(13);
  std::vector<size_t> corrupted = InjectLabelErrors(&dirty, 0.1, &rng);
  std::vector<double> values = KnnShapleyValues(dirty, splits.valid, 5);

  double corrupted_mean = 0.0;
  double clean_mean = 0.0;
  std::unordered_set<size_t> bad(corrupted.begin(), corrupted.end());
  size_t clean_count = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (bad.count(i) > 0) {
      corrupted_mean += values[i];
    } else {
      clean_mean += values[i];
      ++clean_count;
    }
  }
  corrupted_mean /= static_cast<double>(corrupted.size());
  clean_mean /= static_cast<double>(clean_count);
  EXPECT_LT(corrupted_mean, clean_mean);
  EXPECT_LT(corrupted_mean, 0.0);
}

// --- Influence functions ----------------------------------------------------------------

TEST(InfluenceTest, ApproximatesExactRemovalEffects) {
  BlobsOptions options;
  options.num_examples = 60;
  options.num_features = 3;
  options.separation = 2.0;
  options.noise = 1.2;
  MlDataset data = MakeBlobs(options);
  Rng rng(17);
  SplitResult split = TrainTestSplit(data, 0.4, &rng);

  InfluenceOptions influence_options;
  influence_options.l2 = 0.05;  // Stronger convexity = better approximation.
  std::vector<double> approx =
      InfluenceOnValidationLoss(split.train, split.test, influence_options)
          .value();
  std::vector<double> exact =
      ExactRemovalLossChange(split.train, split.test, influence_options)
          .value();
  EXPECT_GT(PearsonCorrelation(approx, exact), 0.95);
}

TEST(InfluenceTest, FlippedLabelsGetNegativeInfluence) {
  DatasetSplits splits = LoadRecommendationLetters(300, 19);
  MlDataset dirty = splits.train;
  Rng rng(23);
  std::vector<size_t> corrupted = InjectLabelErrors(&dirty, 0.1, &rng);
  std::vector<double> values =
      InfluenceOnValidationLoss(dirty, splits.valid).value();
  double corrupted_mean = 0.0;
  for (size_t i : corrupted) corrupted_mean += values[i];
  corrupted_mean /= static_cast<double>(corrupted.size());
  double overall_mean =
      std::accumulate(values.begin(), values.end(), 0.0) / values.size();
  EXPECT_LT(corrupted_mean, overall_mean);
}

TEST(InfluenceTest, RejectsNonBinaryLabels) {
  BlobsOptions options;
  options.num_classes = 3;
  MlDataset data = MakeBlobs(options);
  EXPECT_FALSE(InfluenceOnValidationLoss(data, data).ok());
}

// --- Label scores -------------------------------------------------------------------------

TEST(AumScoresTest, FlippedLabelsGetLowMargins) {
  DatasetSplits splits = LoadRecommendationLetters(300, 29);
  MlDataset dirty = splits.train;
  Rng rng(31);
  std::vector<size_t> corrupted = InjectLabelErrors(&dirty, 0.1, &rng);
  std::vector<double> scores = AumScores(dirty).value();
  double corrupted_mean = 0.0;
  double clean_mean = 0.0;
  std::unordered_set<size_t> bad(corrupted.begin(), corrupted.end());
  size_t clean_count = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (bad.count(i) > 0) {
      corrupted_mean += scores[i];
    } else {
      clean_mean += scores[i];
      ++clean_count;
    }
  }
  corrupted_mean /= static_cast<double>(corrupted.size());
  clean_mean /= static_cast<double>(clean_count);
  EXPECT_LT(corrupted_mean, clean_mean);
}

TEST(SelfConfidenceTest, FlippedLabelsGetLowConfidence) {
  DatasetSplits splits = LoadRecommendationLetters(300, 37);
  MlDataset dirty = splits.train;
  Rng rng(41);
  std::vector<size_t> corrupted = InjectLabelErrors(&dirty, 0.1, &rng);
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  std::vector<double> scores = SelfConfidenceScores(factory, dirty).value();
  double corrupted_mean = 0.0;
  for (size_t i : corrupted) corrupted_mean += scores[i];
  corrupted_mean /= static_cast<double>(corrupted.size());
  double overall =
      std::accumulate(scores.begin(), scores.end(), 0.0) / scores.size();
  EXPECT_LT(corrupted_mean, overall);
}

TEST(SelfConfidenceTest, RejectsBadFoldConfig) {
  MlDataset data = MakeBlobs({});
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  SelfConfidenceOptions options;
  options.num_folds = 1;
  EXPECT_FALSE(SelfConfidenceScores(factory, data, options).ok());
}

TEST(ConfidentLearningTest, SuspectsAreBelowClassMean) {
  std::vector<double> confidence = {0.9, 0.2, 0.8, 0.3};
  std::vector<int> labels = {0, 0, 1, 1};
  std::vector<size_t> suspects = ConfidentLearningSuspects(confidence, labels);
  EXPECT_EQ(suspects, (std::vector<size_t>{1, 3}));
}

TEST(ConfidentLearningTest, CatchesInjectedFlipsWellAboveChance) {
  DatasetSplits splits = LoadRecommendationLetters(300, 43);
  MlDataset dirty = splits.train;
  Rng rng(47);
  std::vector<size_t> corrupted = InjectLabelErrors(&dirty, 0.1, &rng);
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  std::vector<double> scores = SelfConfidenceScores(factory, dirty).value();
  std::vector<size_t> suspects =
      ConfidentLearningSuspects(scores, dirty.labels);
  std::unordered_set<size_t> suspect_set(suspects.begin(), suspects.end());
  size_t caught = 0;
  for (size_t i : corrupted) {
    if (suspect_set.count(i) > 0) ++caught;
  }
  double recall = static_cast<double>(caught) / corrupted.size();
  EXPECT_GT(recall, 0.7);
}

// --- Fairness debugging (Gopher-style) -------------------------------------------------------

TEST(FairnessDebuggingTest, FindsPlantedBiasedGroup) {
  // Training rows of group "b" have most of their positive labels flipped to
  // negative; the protected attribute is visible as a feature, so the model
  // learns the bias and violates equalized odds on clean validation data.
  // Removing the pattern g=b should give the largest fairness improvement.
  Rng rng(59);
  auto make_dataset = [&rng](size_t n, bool biased,
                             std::vector<std::string>* group_values,
                             std::vector<int>* groups) {
    MlDataset data;
    data.features = Matrix(n, 3);
    data.labels.resize(n);
    for (size_t i = 0; i < n; ++i) {
      int group = rng.NextBernoulli(0.5) ? 1 : 0;
      int label = rng.NextBernoulli(0.5) ? 1 : 0;
      data.features(i, 0) = static_cast<double>(group);
      double direction = label == 1 ? 1.5 : -1.5;
      data.features(i, 1) = direction + 0.5 * rng.NextGaussian();
      data.features(i, 2) = direction + 0.5 * rng.NextGaussian();
      if (biased && group == 1 && label == 1 && rng.NextBernoulli(0.8)) {
        label = 0;  // Systematic label bias against group 1 ("b").
      }
      data.labels[i] = label;
      if (group_values != nullptr) {
        group_values->push_back(group == 1 ? "b" : "a");
      }
      if (groups != nullptr) groups->push_back(group);
    }
    return data;
  };

  std::vector<std::string> group_values;
  MlDataset train = make_dataset(240, /*biased=*/true, &group_values, nullptr);
  std::vector<int> val_groups;
  MlDataset validation =
      make_dataset(120, /*biased=*/false, nullptr, &val_groups);
  Table attributes = TableBuilder().AddStringColumn("g", group_values).Build();

  GopherOptions gopher;
  gopher.max_conditions = 1;
  gopher.top_k = 3;
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  std::vector<FairnessPattern> patterns =
      ExplainFairness(factory, train, attributes, validation, val_groups,
                      gopher)
          .value();
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns.front().conditions.front(), "g=b");
}

TEST(FairnessDebuggingTest, RejectsMisalignedInputs) {
  MlDataset train = MakeBlobs({});
  Table attributes = TableBuilder().AddStringColumn("g", {"a"}).Build();
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  EXPECT_FALSE(
      ExplainFairness(factory, train, attributes, train, {}).ok());
}

// --- ModelAccuracyUtility -----------------------------------------------------------------

TEST(ModelAccuracyUtilityTest, EmptySubsetIsRandomGuess) {
  MlDataset data = MakeBlobs({});
  auto factory = []() { return std::make_unique<KnnClassifier>(3); };
  ModelAccuracyUtility utility(factory, data, data);
  EXPECT_NEAR(utility.EmptyUtility(), 0.5, 1e-12);
}

TEST(ModelAccuracyUtilityTest, FullUtilityIsTrainedAccuracy) {
  MlDataset data = MakeBlobs({});
  Rng rng(61);
  SplitResult split = TrainTestSplit(data, 0.3, &rng);
  auto factory = []() { return std::make_unique<KnnClassifier>(3); };
  ModelAccuracyUtility utility(factory, split.train, split.test);
  double direct = TrainAndScore(factory, split.train, split.test).value();
  EXPECT_NEAR(utility.FullUtility(), direct, 1e-12);
  EXPECT_GE(utility.num_evaluations(), 1u);
}

TEST(ModelAccuracyUtilityTest, ZeroCopyViewsMatchMaterializedSubsets) {
  // The FitView contract: identical doubles whether the coalition is
  // materialized or trained through the index view, for models with a real
  // FitView override (KNN, logreg) and for ones using the default.
  BlobsOptions options;
  options.num_examples = 20;
  options.num_features = 3;
  options.seed = 23;
  MlDataset train = MakeBlobs(options);
  BlobsOptions val_options = options;
  val_options.num_examples = 10;
  val_options.seed = 24;
  MlDataset validation = MakeBlobs(val_options);

  std::vector<ClassifierFactory> factories = {
      []() { return std::make_unique<KnnClassifier>(3); },
      []() {
        LogisticRegressionOptions lr;
        lr.epochs = 25;
        return std::make_unique<LogisticRegression>(lr);
      }};
  UtilityFastPathOptions slow;
  slow.zero_copy_views = false;

  Rng rng(71);
  for (const ClassifierFactory& factory : factories) {
    ModelAccuracyUtility with_views(factory, train, validation);
    ModelAccuracyUtility materialized(factory, train, validation, slow);
    for (size_t trial = 0; trial < 12; ++trial) {
      size_t size = 1 + rng.NextBounded(train.size() - 1);
      std::vector<size_t> picks = rng.SampleWithoutReplacement(train.size(), size);
      std::sort(picks.begin(), picks.end());
      EXPECT_EQ(with_views.Evaluate(picks), materialized.Evaluate(picks))
          << "trial " << trial;
    }
  }
}

TEST(ModelAccuracyUtilityTest, CacheCountsHitsAndKeepsValues) {
  BlobsOptions options;
  options.num_examples = 16;
  options.seed = 33;
  MlDataset train = MakeBlobs(options);
  options.num_examples = 8;
  options.seed = 34;
  MlDataset validation = MakeBlobs(options);

  auto factory = []() { return std::make_unique<KnnClassifier>(3); };
  UtilityFastPathOptions fast;
  fast.subset_cache = true;
  ModelAccuracyUtility utility(factory, train, validation, fast);

  BanzhafOptions estimator;
  estimator.num_samples = 64;
  estimator.seed = 3;
  ImportanceEstimate first = BanzhafValues(utility, estimator).value();
  ASSERT_NE(utility.subset_cache(), nullptr);
  SubsetCache::Stats cold = utility.subset_cache()->stats();
  EXPECT_GT(cold.misses, 0u);

  // Same seed, same game: the second run replays the same subsets, so every
  // evaluation (minus empty sets, which skip the cache) must hit.
  ImportanceEstimate second = BanzhafValues(utility, estimator).value();
  SubsetCache::Stats warm = utility.subset_cache()->stats();
  EXPECT_EQ(second.values, first.values);
  EXPECT_EQ(warm.misses, cold.misses);
  EXPECT_GT(warm.hits, cold.hits);
  // Eval counts are game queries, not model trainings: both runs report the
  // same cost even though the second trained nothing.
  EXPECT_EQ(second.utility_evaluations, first.utility_evaluations);
}

// --- SubsetCache --------------------------------------------------------------------------

TEST(SubsetCacheTest, HitsAreOrderIndependent) {
  SubsetCache cache;
  size_t computes = 0;
  auto compute = [&computes] { return static_cast<double>(++computes); };
  EXPECT_EQ(cache.GetOrCompute({3, 1, 2}, compute), 1.0);
  EXPECT_EQ(cache.GetOrCompute({1, 2, 3}, compute), 1.0);
  EXPECT_EQ(cache.GetOrCompute({2, 3, 1}, compute), 1.0);
  EXPECT_EQ(computes, 1u);
  SubsetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SubsetCacheTest, EvictionBoundsSizeAndOnlyCostsRecomputation) {
  SubsetCacheOptions options;
  options.num_shards = 2;
  options.max_entries = 4;
  SubsetCache cache(options);
  auto value_of = [](const std::vector<size_t>& s) {
    return static_cast<double>(s[0] * 10);
  };
  for (size_t round = 0; round < 3; ++round) {
    for (size_t i = 0; i < 20; ++i) {
      std::vector<size_t> subset = {i};
      EXPECT_EQ(cache.GetOrCompute(subset, [&] { return value_of(subset); }),
                value_of(subset));
    }
  }
  SubsetCache::Stats stats = cache.stats();
  EXPECT_LE(stats.entries, 4u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(SubsetCacheTest, KeyViewProbeAgreesWithOwnedKeys) {
  // The hot lookup path probes the map with a non-owning SubsetKeyView
  // (precomputed hash, borrowed span) via C++20 transparent lookup. The view
  // must hash and compare exactly like the owned vector key it mirrors —
  // including against near-miss keys that share a hash, a size, or a prefix.
  std::vector<size_t> key = {1, 5, 9};
  SubsetKeyView view{key.data(), key.size(),
                     OrderIndependentSubsetHash{}(key)};
  EXPECT_EQ(SubsetKeyHash{}(view), SubsetKeyHash{}(key));
  EXPECT_TRUE(SubsetKeyEq{}(key, view));
  EXPECT_TRUE(SubsetKeyEq{}(view, key));

  // The commutative hash makes {9, 5, 1} collide with {1, 5, 9} by
  // construction; equality must still separate them (stored keys are
  // canonicalized, so a non-sorted stored key never occurs, but the
  // comparator must not rely on that).
  std::vector<size_t> permuted = {9, 5, 1};
  EXPECT_EQ(SubsetKeyHash{}(permuted), SubsetKeyHash{}(key));
  EXPECT_FALSE(SubsetKeyEq{}(permuted, view));

  std::vector<size_t> shorter = {1, 5};
  std::vector<size_t> same_size = {1, 5, 8};
  EXPECT_FALSE(SubsetKeyEq{}(shorter, view));
  EXPECT_FALSE(SubsetKeyEq{}(same_size, view));

  // End to end: a probe that misses must not plant a bad entry — the value
  // computed for {1, 5, 9} stays keyed to it alone.
  SubsetCache cache;
  EXPECT_EQ(cache.GetOrCompute({9, 5, 1}, [] { return 2.5; }), 2.5);
  EXPECT_EQ(cache.GetOrCompute({1, 5, 8}, [] { return 7.0; }), 7.0);
  EXPECT_EQ(cache.GetOrCompute({1, 5, 9}, [] { return -1.0; }), 2.5);
  SubsetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
}

// --- SoftKnnUtility fast membership -------------------------------------------------------

/// Reference re-implementation of SoftKnnUtility::Evaluate as it was before
/// the epoch-stamped membership vector: per-call unordered_set, same
/// summation order, so results must match bit for bit.
double ReferenceSoftKnnEvaluate(const MlDataset& train,
                                const MlDataset& validation, size_t k,
                                const std::vector<size_t>& subset) {
  if (subset.empty() || validation.size() == 0) return 0.0;
  std::unordered_set<size_t> members(subset.begin(), subset.end());
  double total = 0.0;
  for (size_t v = 0; v < validation.size(); ++v) {
    // Distance order with the same (distance, index) tie-break.
    size_t n = train.size();
    std::vector<double> dist(n);
    for (size_t i = 0; i < n; ++i) {
      const double* row = train.features.RowPtr(i);
      const double* query = validation.features.RowPtr(v);
      double acc = 0.0;
      for (size_t c = 0; c < train.features.cols(); ++c) {
        double diff = row[c] - query[c];
        acc += diff * diff;
      }
      dist[i] = acc;
    }
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&dist](size_t a, size_t b) {
      if (dist[a] != dist[b]) return dist[a] < dist[b];
      return a < b;
    });
    int y = validation.labels[v];
    size_t taken = 0;
    double hits = 0.0;
    for (size_t idx : order) {
      if (members.find(idx) == members.end()) continue;
      if (train.labels[idx] == y) hits += 1.0;
      if (++taken >= k) break;
    }
    total += hits / static_cast<double>(k);
  }
  return total / static_cast<double>(validation.size());
}

TEST(KnnShapleyTest, SoftKnnEpochMembershipMatchesSetReference) {
  BlobsOptions options;
  options.num_examples = 18;
  options.num_features = 3;
  options.seed = 41;
  MlDataset train = MakeBlobs(options);
  options.num_examples = 7;
  options.seed = 42;
  MlDataset validation = MakeBlobs(options);

  for (size_t k : {1u, 3u, 5u}) {
    SoftKnnUtility game(train, validation, k);
    Rng rng(55);
    for (size_t trial = 0; trial < 25; ++trial) {
      size_t size = 1 + rng.NextBounded(train.size() - 1);
      std::vector<size_t> picks =
          rng.SampleWithoutReplacement(train.size(), size);
      std::sort(picks.begin(), picks.end());
      EXPECT_EQ(game.Evaluate(picks),
                ReferenceSoftKnnEvaluate(train, validation, k, picks))
          << "k=" << k << " trial=" << trial;
    }
    EXPECT_EQ(game.Evaluate({}), 0.0);
  }
}

// --- Fault injection: abort semantics ----------------------------------------

/// RAII disarm so injection never leaks into neighboring tests.
struct FailpointGuard {
  FailpointGuard() {
    failpoint::DisarmAll();
    failpoint::ResetStats();
  }
  ~FailpointGuard() {
    failpoint::DisarmAll();
    failpoint::ResetStats();
  }
};

TEST(LeaveOneOutTest, UtilityFaultSurfacesTypedError) {
  FailpointGuard guard;
  LambdaUtility game = AdditiveGame({1.0, 2.0, 3.0});
  EstimatorOptions options;
  options.num_threads = 1;
  // Hit 1 is the full-set evaluation; hit 2 (the first leave-one-out
  // evaluation) fails with a non-retryable error.
  ASSERT_TRUE(failpoint::Arm("utility.evaluate=error(internal:dead)#2").ok());
  Result<std::vector<double>> values = LeaveOneOutValues(game, options);
  ASSERT_FALSE(values.ok());
  EXPECT_EQ(values.status().code(), StatusCode::kInternal);
  EXPECT_EQ(values.status().message(), "dead");
}

TEST(TmcShapleyTest, MidWaveAbortYieldsPartialEstimate) {
  FailpointGuard guard;
  LambdaUtility game = AdditiveGame({1.0, 2.0, 3.0, 4.0});

  // Reference: a clean run covering exactly the first 32-permutation wave.
  TmcShapleyOptions clean_options;
  clean_options.num_permutations = 32;
  clean_options.truncation_tolerance = 0.0;
  clean_options.num_threads = 1;
  clean_options.seed = 9;
  ImportanceEstimate clean =
      TmcShapleyValues(game, clean_options).value();

  // Full run: 64 permutations in two waves. Wave 1 costs 2 bookend
  // evaluations plus 32 permutations x 4 units = 130 hits; hit 140 lands
  // mid-wave-2, every later evaluation (including retries) also fails, so
  // wave 2 is discarded whole.
  TmcShapleyOptions faulty_options = clean_options;
  faulty_options.num_permutations = 64;
  faulty_options.retry_backoff_ms = 0;
  ASSERT_TRUE(
      failpoint::Arm("utility.evaluate=error(unavailable:boom)#140").ok());
  Result<ImportanceEstimate> partial = TmcShapleyValues(game, faulty_options);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(partial->aborted_early);
  EXPECT_EQ(partial->abort_cause.code(), StatusCode::kUnavailable);
  EXPECT_NE(partial->abort_cause.message().find("boom"), std::string::npos);
  // The partial estimate is exactly the clean smaller-budget run: discarded
  // waves leave no trace in the completed portion.
  EXPECT_EQ(partial->values, clean.values);
  EXPECT_EQ(partial->std_errors, clean.std_errors);
}

TEST(TmcShapleyTest, AbortBeforeAnyWaveReturnsCause) {
  FailpointGuard guard;
  LambdaUtility game = AdditiveGame({1.0, 2.0});
  TmcShapleyOptions options;
  options.num_permutations = 8;
  options.truncation_tolerance = 0.0;
  options.num_threads = 1;
  options.max_retries = 0;
  ASSERT_TRUE(
      failpoint::Arm("utility.evaluate=error(unavailable:all down)").ok());
  Result<ImportanceEstimate> estimate = TmcShapleyValues(game, options);
  // Nothing completed, so there is no partial estimate to return — the
  // cause becomes the estimator's status.
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(estimate.status().message().find("all down"), std::string::npos);
}

TEST(BanzhafMsrTest, UtilityFaultAborts) {
  FailpointGuard guard;
  LambdaUtility game = AdditiveGame({1.0, 2.0, 3.0});
  BanzhafOptions options;
  options.num_samples = 64;
  options.num_threads = 1;
  options.max_retries = 0;
  ASSERT_TRUE(failpoint::Arm("utility.evaluate=error(internal:gone)").ok());
  Result<ImportanceEstimate> estimate = BanzhafValues(game, options);
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kInternal);
}

TEST(BetaShapleyTest, UtilityFaultAborts) {
  FailpointGuard guard;
  LambdaUtility game = AdditiveGame({1.0, 2.0, 3.0});
  BetaShapleyOptions options;
  options.samples_per_unit = 16;
  options.num_threads = 1;
  options.max_retries = 0;
  ASSERT_TRUE(
      failpoint::Arm("utility.evaluate=error(unavailable:flaky)").ok());
  Result<ImportanceEstimate> estimate = BetaShapleyValues(game, options);
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kUnavailable);
}

// --- Generative SubsetCache properties (src/proptest harness) ---------------

prop::CheckConfig CacheCheckConfig(int default_cases) {
  prop::CheckConfig config;
  config.num_cases = prop::DefaultNumCases(default_cases);
  config.ctest_target = "importance_test";
  const testing::TestInfo* info =
      testing::UnitTest::GetInstance()->current_test_info();
  config.gtest_filter =
      std::string(info->test_suite_name()) + "." + info->name();
  return config;
}

/// The deterministic "utility" a cached coalition must always resolve to,
/// regardless of probe order or eviction history.
double CanonicalCacheValue(std::vector<size_t> subset) {
  std::sort(subset.begin(), subset.end());
  uint64_t h = OrderIndependentSubsetHash{}(subset);
  return static_cast<double>(h % 100003) + 0.5;
}

prop::Gen<std::vector<std::vector<size_t>>> AnyProbeSequence() {
  return prop::VectorOf(prop::SizeInRange(1, 12),
                        prop::VectorOf(prop::SizeInRange(0, 6),
                                       prop::SizeInRange(0, 19)),
                        /*min_size=*/1);
}

std::string DescribeProbeSequence(
    const std::vector<std::vector<size_t>>& probes) {
  std::ostringstream os;
  for (const std::vector<size_t>& subset : probes) {
    os << "{";
    for (size_t i = 0; i < subset.size(); ++i) {
      if (i > 0) os << ",";
      os << subset[i];
    }
    os << "} ";
  }
  return os.str();
}

TEST(SubsetCachePropertyTest, PermutedProbesHitWithoutRecompute) {
  // For any probe sequence: the first probe of a coalition computes, and a
  // reversed-order re-probe must be served from cache — a poisoned compute
  // callback on the second probe must never be invoked. This is the invariant
  // the order-independent hash + full-key equality pair exists to provide
  // (subset_cache.h); a hash that depended on order, or equality that
  // compared less than the full key, fails it within a handful of cases.
  std::string report = prop::CheckProperty<std::vector<std::vector<size_t>>>(
      "permuted probes hit the same entry", AnyProbeSequence(),
      [](const std::vector<std::vector<size_t>>& probes) -> std::string {
        SubsetCache cache;  // Default capacity: nothing evicts at this size.
        for (const std::vector<size_t>& subset : probes) {
          double expected = CanonicalCacheValue(subset);
          double first =
              cache.GetOrCompute(subset, [&] { return expected; });
          if (first != expected) {
            return "first probe returned " + std::to_string(first) +
                   ", expected " + std::to_string(expected);
          }
          std::vector<size_t> reversed(subset.rbegin(), subset.rend());
          bool poison_invoked = false;
          double second = cache.GetOrCompute(reversed, [&] {
            poison_invoked = true;
            return expected + 1e6;
          });
          if (poison_invoked) {
            return "reversed re-probe missed the cache (recompute invoked)";
          }
          if (second != expected) {
            return "reversed re-probe returned " + std::to_string(second);
          }
        }
        SubsetCache::Stats stats = cache.stats();
        if (stats.hits < probes.size()) {
          return "expected at least " + std::to_string(probes.size()) +
                 " hits, saw " + std::to_string(stats.hits);
        }
        return "";
      },
      DescribeProbeSequence, CacheCheckConfig(150));
  EXPECT_TRUE(report.empty()) << report;
}

TEST(SubsetCachePropertyTest, EvictionOnlyCostsRecomputation) {
  // A pathologically tiny cache (one shard, one entry) evicts on nearly
  // every insert. The contract (subset_cache.h): eviction may cost extra
  // compute calls but can never change a served value, and the entry count
  // must respect the bound throughout.
  std::string report = prop::CheckProperty<std::vector<std::vector<size_t>>>(
      "eviction never corrupts values", AnyProbeSequence(),
      [](const std::vector<std::vector<size_t>>& probes) -> std::string {
        SubsetCacheOptions options;
        options.num_shards = 1;
        options.max_entries = 1;
        SubsetCache cache(options);
        uint64_t total_probes = 0;
        for (int pass = 0; pass < 2; ++pass) {
          for (const std::vector<size_t>& subset : probes) {
            double expected = CanonicalCacheValue(subset);
            double got =
                cache.GetOrCompute(subset, [&] { return expected; });
            ++total_probes;
            if (got != expected) {
              return "probe returned " + std::to_string(got) +
                     ", expected " + std::to_string(expected);
            }
            SubsetCache::Stats stats = cache.stats();
            if (stats.entries > 1) {
              return "entry count " + std::to_string(stats.entries) +
                     " exceeds max_entries=1";
            }
          }
        }
        SubsetCache::Stats stats = cache.stats();
        if (stats.hits + stats.misses != total_probes) {
          return "hits+misses=" +
                 std::to_string(stats.hits + stats.misses) +
                 " != probes=" + std::to_string(total_probes);
        }
        return "";
      },
      DescribeProbeSequence, CacheCheckConfig(100));
  EXPECT_TRUE(report.empty()) << report;
}

TEST(SubsetCachePropertyTest, HashIsOrderIndependent) {
  // The commutative-fold hash must agree across every ordering of the same
  // elements (here: sorted vs reversed vs rotated), and the transparent
  // SubsetKeyView hasher must agree with the owned-key hasher — the pair of
  // contracts the heterogeneous map lookup in GetOrCompute relies on.
  std::string report = prop::CheckProperty<std::vector<size_t>>(
      "subset hash is order independent",
      prop::VectorOf(prop::SizeInRange(0, 8), prop::SizeInRange(0, 40)),
      [](const std::vector<size_t>& subset) -> std::string {
        OrderIndependentSubsetHash hasher;
        size_t baseline = hasher(subset);
        std::vector<size_t> reversed(subset.rbegin(), subset.rend());
        if (hasher(reversed) != baseline) {
          return "reversed ordering hashed differently";
        }
        if (!subset.empty()) {
          std::vector<size_t> rotated(subset.begin() + 1, subset.end());
          rotated.push_back(subset.front());
          if (hasher(rotated) != baseline) {
            return "rotated ordering hashed differently";
          }
        }
        SubsetKeyView view{subset.data(), subset.size(),
                           static_cast<uint64_t>(baseline)};
        if (SubsetKeyHash{}(view) != SubsetKeyHash{}(subset)) {
          return "view hasher disagrees with owned-key hasher";
        }
        if (!SubsetKeyEq{}(subset, view)) {
          return "view equality rejected the identical subset";
        }
        return "";
      },
      nullptr, CacheCheckConfig(200));
  EXPECT_TRUE(report.empty()) << report;
}

}  // namespace
}  // namespace nde
