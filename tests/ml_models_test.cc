#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "datagen/synthetic.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/linear_regression.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/svm.h"

namespace nde {
namespace {

MlDataset EasyBinaryBlobs(uint64_t seed = 42, size_t n = 300) {
  BlobsOptions options;
  options.num_examples = n;
  options.num_features = 4;
  options.num_classes = 2;
  options.separation = 4.0;
  options.noise = 0.8;
  options.seed = seed;
  return MakeBlobs(options);
}

// --- Dataset helpers ------------------------------------------------------------

TEST(MlDatasetTest, SubsetAndWithout) {
  MlDataset data = EasyBinaryBlobs();
  MlDataset subset = data.Subset({0, 5, 10});
  EXPECT_EQ(subset.size(), 3u);
  EXPECT_EQ(subset.labels[1], data.labels[5]);

  MlDataset without = data.Without({0, 1, 2});
  EXPECT_EQ(without.size(), data.size() - 3);
  EXPECT_EQ(without.labels[0], data.labels[3]);
}

TEST(MlDatasetTest, NumClasses) {
  MlDataset data;
  data.features = Matrix(3, 1);
  data.labels = {0, 4, 2};
  EXPECT_EQ(data.NumClasses(), 5);
  MlDataset empty;
  EXPECT_EQ(empty.NumClasses(), 0);
}

TEST(MlDatasetTest, ValidateCatchesMismatch) {
  MlDataset data;
  data.features = Matrix(3, 2);
  data.labels = {0, 1};
  EXPECT_FALSE(data.Validate().ok());
  data.labels = {0, 1, -1};
  EXPECT_FALSE(data.Validate().ok());
}

TEST(TrainTestSplitTest, PartitionsWithoutOverlap) {
  MlDataset data = EasyBinaryBlobs();
  Rng rng(3);
  SplitResult split = TrainTestSplit(data, 0.25, &rng);
  EXPECT_EQ(split.train.size() + split.test.size(), data.size());
  EXPECT_NEAR(static_cast<double>(split.test.size()), 75.0, 1.0);
  std::vector<bool> seen(data.size(), false);
  for (size_t i : split.train_indices) seen[i] = true;
  for (size_t i : split.test_indices) {
    EXPECT_FALSE(seen[i]) << "index in both splits";
    seen[i] = true;
  }
}

TEST(FeatureScalerTest, TransformsToZeroMeanUnitVariance) {
  MlDataset data = EasyBinaryBlobs();
  FeatureScaler scaler = FeatureScaler::Fit(data.features);
  Matrix z = scaler.Transform(data.features);
  FeatureScaler check = FeatureScaler::Fit(z);
  for (size_t j = 0; j < z.cols(); ++j) {
    EXPECT_NEAR(check.mean[j], 0.0, 1e-9);
    EXPECT_NEAR(check.stddev[j], 1.0, 1e-9);
  }
}

TEST(FeatureScalerTest, ConstantFeatureGetsUnitStddev) {
  Matrix m(5, 1, 3.0);
  FeatureScaler scaler = FeatureScaler::Fit(m);
  EXPECT_EQ(scaler.stddev[0], 1.0);
  Matrix z = scaler.Transform(m);
  EXPECT_EQ(z(0, 0), 0.0);
}

// --- KNN ------------------------------------------------------------------------

TEST(KnnTest, PerfectOnTrainingDataWithK1) {
  MlDataset data = EasyBinaryBlobs();
  KnnClassifier knn(1);
  ASSERT_TRUE(knn.Fit(data).ok());
  std::vector<int> predictions = knn.Predict(data.features);
  EXPECT_EQ(Accuracy(data.labels, predictions), 1.0);
}

TEST(KnnTest, NeighborsSortedByDistance) {
  MlDataset data;
  data.features = Matrix::FromRows({{0.0}, {1.0}, {2.0}, {5.0}});
  data.labels = {0, 0, 1, 1};
  KnnClassifier knn(2);
  ASSERT_TRUE(knn.Fit(data).ok());
  std::vector<size_t> neighbors = knn.Neighbors({1.9}, 3);
  EXPECT_EQ(neighbors, (std::vector<size_t>{2, 1, 0}));
}

TEST(KnnTest, ProbaSumsToOne) {
  MlDataset data = EasyBinaryBlobs();
  KnnClassifier knn(5);
  ASSERT_TRUE(knn.Fit(data).ok());
  Matrix proba = knn.PredictProba(data.features.SelectRows({0, 1, 2}));
  for (size_t r = 0; r < proba.rows(); ++r) {
    double total = 0.0;
    for (size_t c = 0; c < proba.cols(); ++c) total += proba(r, c);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(KnnTest, RejectsEmptyData) {
  KnnClassifier knn(3);
  EXPECT_FALSE(knn.Fit(MlDataset{}).ok());
}

TEST(KnnTest, CloneIsUnfittedSameConfig) {
  KnnClassifier knn(7);
  std::unique_ptr<Classifier> clone = knn.Clone();
  EXPECT_EQ(clone->name(), "knn(k=7)");
}

// --- Logistic regression ----------------------------------------------------------

TEST(LogisticRegressionTest, LearnsSeparableData) {
  MlDataset data = EasyBinaryBlobs();
  Rng rng(5);
  SplitResult split = TrainTestSplit(data, 0.3, &rng);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(split.train).ok());
  std::vector<int> predictions = model.Predict(split.test.features);
  EXPECT_GT(Accuracy(split.test.labels, predictions), 0.95);
}

TEST(LogisticRegressionTest, MulticlassBlobsTrainable) {
  BlobsOptions options;
  options.num_classes = 3;
  options.num_examples = 300;
  options.separation = 5.0;
  MlDataset data = MakeBlobs(options);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_EQ(model.num_classes(), 3);
  std::vector<int> predictions = model.Predict(data.features);
  EXPECT_GT(Accuracy(data.labels, predictions), 0.9);
}

TEST(LogisticRegressionTest, ProbaRowsAreDistributions) {
  MlDataset data = EasyBinaryBlobs();
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  Matrix proba = model.PredictProba(data.features);
  for (size_t r = 0; r < std::min<size_t>(proba.rows(), 20); ++r) {
    double total = 0.0;
    for (size_t c = 0; c < proba.cols(); ++c) {
      EXPECT_GE(proba(r, c), 0.0);
      total += proba(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(LogisticRegressionTest, LogLossDecreasesWithTraining) {
  MlDataset data = EasyBinaryBlobs();
  LogisticRegressionOptions few;
  few.epochs = 2;
  LogisticRegressionOptions many;
  many.epochs = 300;
  LogisticRegression short_model(few);
  LogisticRegression long_model(many);
  ASSERT_TRUE(short_model.Fit(data).ok());
  ASSERT_TRUE(long_model.Fit(data).ok());
  EXPECT_LT(long_model.LogLoss(data), short_model.LogLoss(data));
}

TEST(SoftmaxTest, RowsNormalizedAndStable) {
  Matrix logits = Matrix::FromRows({{1000.0, 1001.0}, {-1000.0, -1001.0}});
  SoftmaxRowsInPlace(&logits);
  EXPECT_NEAR(logits(0, 0) + logits(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(logits(1, 0) + logits(1, 1), 1.0, 1e-12);
  EXPECT_GT(logits(0, 1), logits(0, 0));
  EXPECT_GT(logits(1, 0), logits(1, 1));
}

// --- Ridge regression ---------------------------------------------------------------

TEST(RidgeRegressionTest, RecoversLinearFunction) {
  Rng rng(7);
  RegressionDataset data;
  data.features = Matrix(100, 2);
  data.targets.resize(100);
  for (size_t i = 0; i < 100; ++i) {
    data.features(i, 0) = rng.NextGaussian();
    data.features(i, 1) = rng.NextGaussian();
    data.targets[i] =
        3.0 * data.features(i, 0) - 2.0 * data.features(i, 1) + 1.0;
  }
  RidgeRegression model(1e-6);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_NEAR(model.weights()[0], 3.0, 1e-3);
  EXPECT_NEAR(model.weights()[1], -2.0, 1e-3);
  EXPECT_NEAR(model.intercept(), 1.0, 1e-3);
  EXPECT_LT(model.MeanSquaredError(data), 1e-6);
}

TEST(RidgeRegressionTest, HatRowReproducesPrediction) {
  Rng rng(11);
  RegressionDataset data;
  data.features = Matrix(50, 3);
  data.targets.resize(50);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 3; ++j) data.features(i, j) = rng.NextGaussian();
    data.targets[i] = rng.NextGaussian();
  }
  RidgeRegression model(0.1);
  ASSERT_TRUE(model.Fit(data).ok());
  std::vector<double> x = {0.5, -1.0, 2.0};
  std::vector<double> hat = model.HatRow(x);
  ASSERT_EQ(hat.size(), data.size());
  // prediction must equal hat . y exactly (linearity in targets).
  EXPECT_NEAR(Dot(hat, data.targets), model.PredictOne(x), 1e-9);
}

TEST(RidgeRegressionTest, RejectsShapeMismatch) {
  RegressionDataset data;
  data.features = Matrix(3, 1);
  data.targets = {1.0};
  RidgeRegression model;
  EXPECT_FALSE(model.Fit(data).ok());
}

// --- SVM ------------------------------------------------------------------------

TEST(LinearSvmTest, LearnsSeparableData) {
  MlDataset data = EasyBinaryBlobs();
  Rng rng(13);
  SplitResult split = TrainTestSplit(data, 0.3, &rng);
  LinearSvm model;
  ASSERT_TRUE(model.Fit(split.train).ok());
  std::vector<int> predictions = model.Predict(split.test.features);
  EXPECT_GT(Accuracy(split.test.labels, predictions), 0.92);
}

TEST(LinearSvmTest, DecisionValueSignMatchesPrediction) {
  MlDataset data = EasyBinaryBlobs();
  LinearSvm model;
  ASSERT_TRUE(model.Fit(data).ok());
  std::vector<int> predictions = model.Predict(data.features);
  for (size_t i = 0; i < 20; ++i) {
    double value = model.DecisionValue(data.features.Row(i));
    EXPECT_EQ(predictions[i], value >= 0.0 ? 1 : 0);
  }
}

TEST(LinearSvmTest, RejectsMulticlass) {
  BlobsOptions options;
  options.num_classes = 3;
  MlDataset data = MakeBlobs(options);
  LinearSvm model;
  EXPECT_FALSE(model.Fit(data).ok());
}

// --- Decision tree ------------------------------------------------------------------

TEST(DecisionTreeTest, SolvesXor) {
  // XOR is not linearly separable; a depth>=2 tree nails it.
  MlDataset data;
  data.features = Matrix::FromRows(
      {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0.1, 0.1}, {0.1, 0.9}, {0.9, 0.1},
       {0.9, 0.9}});
  data.labels = {0, 1, 1, 0, 0, 1, 1, 0};
  DecisionTreeOptions options;
  options.max_depth = 3;
  options.min_samples_leaf = 1;
  options.min_samples_split = 2;
  DecisionTreeClassifier tree(options);
  ASSERT_TRUE(tree.Fit(data).ok());
  std::vector<int> predictions = tree.Predict(data.features);
  EXPECT_EQ(Accuracy(data.labels, predictions), 1.0);
  EXPECT_GE(tree.Depth(), 2u);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  MlDataset data = EasyBinaryBlobs();
  DecisionTreeOptions options;
  options.max_depth = 1;
  DecisionTreeClassifier stump(options);
  ASSERT_TRUE(stump.Fit(data).ok());
  EXPECT_LE(stump.Depth(), 2u);
  EXPECT_LE(stump.NodeCount(), 3u);
}

TEST(DecisionTreeTest, PureLeafStopsSplitting) {
  MlDataset data;
  data.features = Matrix::FromRows({{1}, {2}, {3}});
  data.labels = {1, 1, 1};
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(data).ok());
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_EQ(tree.Predict(data.features), (std::vector<int>{1, 1, 1}));
}

TEST(DecisionTreeTest, GeneralizesOnBlobs) {
  MlDataset data = EasyBinaryBlobs();
  Rng rng(17);
  SplitResult split = TrainTestSplit(data, 0.3, &rng);
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(split.train).ok());
  EXPECT_GT(Accuracy(split.test.labels, tree.Predict(split.test.features)),
            0.85);
}

// --- Naive Bayes --------------------------------------------------------------------

TEST(GaussianNbTest, LearnsBlobs) {
  MlDataset data = EasyBinaryBlobs();
  Rng rng(19);
  SplitResult split = TrainTestSplit(data, 0.3, &rng);
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_GT(Accuracy(split.test.labels, model.Predict(split.test.features)),
            0.92);
}

TEST(GaussianNbTest, ProbaRowsNormalized) {
  MlDataset data = EasyBinaryBlobs();
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(data).ok());
  Matrix proba = model.PredictProba(data.features.SelectRows({0, 1}));
  for (size_t r = 0; r < proba.rows(); ++r) {
    double total = 0.0;
    for (size_t c = 0; c < proba.cols(); ++c) total += proba(r, c);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(GaussianNbTest, FitWithClassesHandlesAbsentClass) {
  MlDataset data;
  data.features = Matrix::FromRows({{0.0}, {0.1}, {5.0}});
  data.labels = {0, 0, 1};
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.FitWithClasses(data, 3).ok());
  EXPECT_EQ(model.num_classes(), 3);
  std::vector<int> predictions = model.Predict(data.features);
  EXPECT_EQ(predictions[0], 0);
  EXPECT_EQ(predictions[2], 1);
}

// --- Shared interface behaviors -------------------------------------------------------

class AllModelsTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Classifier> MakeModel() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<KnnClassifier>(5);
      case 1:
        return std::make_unique<LogisticRegression>();
      case 2:
        return std::make_unique<LinearSvm>();
      case 3:
        return std::make_unique<DecisionTreeClassifier>();
      default:
        return std::make_unique<GaussianNaiveBayes>();
    }
  }
};

TEST_P(AllModelsTest, BeatsChanceOnBlobs) {
  MlDataset data = EasyBinaryBlobs(GetParam() + 100);
  Rng rng(29);
  SplitResult split = TrainTestSplit(data, 0.3, &rng);
  std::unique_ptr<Classifier> model = MakeModel();
  ASSERT_TRUE(model->Fit(split.train).ok());
  EXPECT_GT(Accuracy(split.test.labels, model->Predict(split.test.features)),
            0.8)
      << model->name();
}

TEST_P(AllModelsTest, CloneProducesSameKind) {
  std::unique_ptr<Classifier> model = MakeModel();
  std::unique_ptr<Classifier> clone = model->Clone();
  EXPECT_EQ(model->name(), clone->name());
}

TEST_P(AllModelsTest, RejectsEmptyFit) {
  std::unique_ptr<Classifier> model = MakeModel();
  EXPECT_FALSE(model->Fit(MlDataset{}).ok());
}

INSTANTIATE_TEST_SUITE_P(Models, AllModelsTest, ::testing::Range(0, 5));

// --- Zero-copy view fitting ---------------------------------------------------------------

TEST(FitViewTest, LogisticRegressionViewWeightsMatchMaterializedFit) {
  MlDataset data = EasyBinaryBlobs(7, 40);
  std::vector<size_t> subset = {1, 3, 4, 8, 11, 15, 20, 21, 30, 37};

  LogisticRegressionOptions options;
  options.epochs = 40;
  LogisticRegression from_view(options);
  ASSERT_TRUE(from_view.FitView(MlDatasetView(data, subset), 2).ok());
  LogisticRegression from_copy(options);
  ASSERT_TRUE(from_copy.FitWithClasses(data.Subset(subset), 2).ok());

  ASSERT_EQ(from_view.weights().rows(), from_copy.weights().rows());
  ASSERT_EQ(from_view.weights().cols(), from_copy.weights().cols());
  for (size_t r = 0; r < from_view.weights().rows(); ++r) {
    for (size_t c = 0; c < from_view.weights().cols(); ++c) {
      EXPECT_EQ(from_view.weights().At(r, c), from_copy.weights().At(r, c))
          << "weight (" << r << ", " << c << ")";
    }
  }
}

TEST(FitViewTest, KnnViewPredictionsMatchMaterializedFit) {
  MlDataset data = EasyBinaryBlobs(9, 50);
  MlDataset eval = EasyBinaryBlobs(10, 20);
  std::vector<size_t> subset = {0, 2, 5, 7, 12, 18, 25, 33, 41, 49};

  KnnClassifier from_view(3);
  ASSERT_TRUE(from_view.FitView(MlDatasetView(data, subset), 2).ok());
  KnnClassifier from_copy(3);
  ASSERT_TRUE(from_copy.FitWithClasses(data.Subset(subset), 2).ok());

  EXPECT_EQ(from_view.Predict(eval.features), from_copy.Predict(eval.features));
}

TEST(FitViewTest, EmptyViewIsRejected) {
  MlDataset data = EasyBinaryBlobs(11, 10);
  std::vector<size_t> empty;
  KnnClassifier knn(3);
  EXPECT_FALSE(knn.FitView(MlDatasetView(data, empty), 2).ok());
  LogisticRegression logreg;
  EXPECT_FALSE(logreg.FitView(MlDatasetView(data, empty), 2).ok());
}

// --- Warm-start incremental fitting -------------------------------------------------------

TEST(FitIncrementalTest, UnfittedModelFallsBackToExactFit) {
  MlDataset data = EasyBinaryBlobs(13, 60);
  LogisticRegressionOptions options;
  options.epochs = 40;
  LogisticRegression incremental(options);
  ASSERT_TRUE(incremental.FitIncremental(data, 2).ok());
  LogisticRegression cold(options);
  ASSERT_TRUE(cold.FitWithClasses(data, 2).ok());
  // No previous state to warm-start from, so the fallback is the exact fit.
  for (size_t r = 0; r < cold.weights().rows(); ++r) {
    for (size_t c = 0; c < cold.weights().cols(); ++c) {
      EXPECT_EQ(incremental.weights().At(r, c), cold.weights().At(r, c));
    }
  }
}

TEST(FitIncrementalTest, WarmStartRefinesPreviousWeights) {
  MlDataset data = EasyBinaryBlobs(17, 80);
  LogisticRegressionOptions options;
  options.epochs = 60;
  options.warm_start_epochs = 10;
  LogisticRegression model(options);
  ASSERT_TRUE(model.FitWithClasses(data, 2).ok());
  Matrix before = model.weights();

  // Growing the dataset and warm-starting must keep the model usable and
  // actually move the weights (it runs warm_start_epochs > 0 of descent).
  MlDataset grown = EasyBinaryBlobs(17, 80);
  MlDataset extra = EasyBinaryBlobs(19, 20);
  grown.features.AppendRows(extra.features);
  grown.labels.insert(grown.labels.end(), extra.labels.begin(),
                      extra.labels.end());
  ASSERT_TRUE(model.FitIncremental(grown, 2).ok());
  bool moved = false;
  for (size_t r = 0; r < before.rows() && !moved; ++r) {
    for (size_t c = 0; c < before.cols() && !moved; ++c) {
      moved = model.weights().At(r, c) != before.At(r, c);
    }
  }
  EXPECT_TRUE(moved);
  double accuracy = Accuracy(grown.labels, model.Predict(grown.features));
  EXPECT_GT(accuracy, 0.8);
}

TEST(FitIncrementalTest, DefaultImplementationDelegatesToExactFit) {
  // Models without a warm-start override (e.g. KNN) must still satisfy the
  // FitIncremental contract by refitting exactly.
  MlDataset data = EasyBinaryBlobs(23, 40);
  MlDataset eval = EasyBinaryBlobs(24, 15);
  KnnClassifier incremental(3);
  ASSERT_TRUE(incremental.FitIncremental(data, 2).ok());
  KnnClassifier cold(3);
  ASSERT_TRUE(cold.FitWithClasses(data, 2).ok());
  EXPECT_EQ(incremental.Predict(eval.features), cold.Predict(eval.features));
}

// --- Coalition scorers ----------------------------------------------------
//
// The CoalitionScorer contract: Predict() after any sequence of Add() calls
// is bit-identical to a cold FitWithClasses on the *sorted* coalition. These
// tests drive the scorers directly (no estimator) with adversarial insertion
// orders, for every kernel variant and with and without arena placement.

MlDataset ScorerBlobs(uint64_t seed, size_t n) {
  BlobsOptions options;
  options.num_examples = n;
  options.num_features = 4;
  options.num_classes = 3;
  options.seed = seed;
  options.center_seed = 7;
  return MakeBlobs(options);
}

/// Insertion order that starts with every row of one class (so the scorer
/// spends several steps with classes absent), then drains the rest in
/// descending index order (so sorted-insert paths never get appended-only
/// input).
std::vector<size_t> AdversarialOrder(const MlDataset& train) {
  std::vector<size_t> order;
  for (size_t i = 0; i < train.size(); ++i) {
    if (train.labels[i] == 0) order.push_back(i);
  }
  for (size_t i = train.size(); i-- > 0;) {
    if (train.labels[i] != 0) order.push_back(i);
  }
  return order;
}

template <typename Model>
void CheckScorerMatchesColdFit(const Model& model, const MlDataset& train,
                               const Matrix& eval_features, int num_classes,
                               const CoalitionScorerOptions& options,
                               Arena* arena) {
  std::shared_ptr<const CoalitionScorerContext> context =
      model.NewCoalitionScorerContext(train, eval_features, num_classes,
                                      options);
  ASSERT_NE(context, nullptr);
  std::unique_ptr<CoalitionScorer> scorer = context->NewScorer(arena);
  std::vector<size_t> coalition;
  for (size_t index : AdversarialOrder(train)) {
    scorer->Add(index);
    coalition.push_back(index);
    std::vector<size_t> sorted = coalition;
    std::sort(sorted.begin(), sorted.end());
    std::unique_ptr<Classifier> cold = model.Clone();
    ASSERT_TRUE(cold->FitWithClasses(train.Subset(sorted), num_classes).ok());
    EXPECT_EQ(scorer->Predict(), cold->Predict(eval_features))
        << "after " << coalition.size() << " adds";
  }
}

TEST(CoalitionScorerTest, KnnKernelsMatchColdFitUnderAdversarialOrder) {
  MlDataset train = ScorerBlobs(31, 24);
  MlDataset eval = ScorerBlobs(32, 10);
  KnnClassifier model(3);
  for (bool soa : {false, true}) {
    for (bool use_arena : {false, true}) {
      CoalitionScorerOptions options;
      options.soa_kernels = soa;
      Arena arena;
      CheckScorerMatchesColdFit(model, train, eval.features,
                                train.NumClasses(), options,
                                use_arena ? &arena : nullptr);
    }
  }
}

TEST(CoalitionScorerTest, GaussianNbScorerMatchesColdFitUnderAdversarialOrder) {
  MlDataset train = ScorerBlobs(33, 24);
  MlDataset eval = ScorerBlobs(34, 10);
  GaussianNaiveBayes model;
  for (bool use_arena : {false, true}) {
    Arena arena;
    CheckScorerMatchesColdFit(model, train, eval.features, train.NumClasses(),
                              CoalitionScorerOptions{},
                              use_arena ? &arena : nullptr);
  }
}

TEST(CoalitionScorerTest, Float32KnnKernelIsDeterministic) {
  // float32 trades bits for speed, so it is not compared against the cold
  // double-precision fit — but two float32 scorers (heap and arena backed)
  // must agree with each other exactly at every step.
  MlDataset train = ScorerBlobs(35, 24);
  MlDataset eval = ScorerBlobs(36, 10);
  KnnClassifier model(3);
  CoalitionScorerOptions options;
  options.float32 = true;
  std::shared_ptr<const CoalitionScorerContext> context =
      model.NewCoalitionScorerContext(train, eval.features, train.NumClasses(),
                                      options);
  ASSERT_NE(context, nullptr);
  Arena arena;
  std::unique_ptr<CoalitionScorer> heap_scorer = context->NewScorer();
  std::unique_ptr<CoalitionScorer> arena_scorer = context->NewScorer(&arena);
  for (size_t index : AdversarialOrder(train)) {
    heap_scorer->Add(index);
    arena_scorer->Add(index);
    EXPECT_EQ(heap_scorer->Predict(), arena_scorer->Predict());
  }
}

}  // namespace
}  // namespace nde
