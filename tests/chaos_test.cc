/// Deterministic chaos suite: proves every registered failpoint site degrades
/// to a typed error (never a crash), that graceful-degradation sites keep
/// working, and that keyed probabilistic injection replays bit-identically
/// for any thread count. Runs under ASan and TSan via `tools/check.sh
/// --chaos` (ctest label: chaos).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/trace_context.h"
#include "data/csv.h"
#include "data/table.h"
#include "importance/game_values.h"
#include "importance/subset_cache.h"
#include "importance/utility.h"
#include "pipeline/encoders.h"
#include "pipeline/plan.h"
#include "telemetry/health.h"
#include "telemetry/http_exporter.h"
#include "telemetry/trace.h"

namespace nde {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Reset();
    // NDE_CHAOS_TRACE=1 (set by `tools/check.sh --trace-smoke`) reruns the
    // whole suite with the tracing/metrics stack live, so injected failures
    // race span recording and labeled-series resolution under TSan too.
    const char* trace_env = std::getenv("NDE_CHAOS_TRACE");
    if (trace_env != nullptr && trace_env[0] == '1') {
      telemetry::SetEnabled(true);
      TraceContext context = MintTraceContext();
      context.job_id = "chaos";
      context.algorithm = "chaos";
      trace_scope_ = std::make_unique<ScopedTraceContext>(context);
    }
  }
  void TearDown() override {
    trace_scope_.reset();
    if (telemetry::Enabled()) {
      telemetry::SetEnabled(false);
      telemetry::TraceBuffer::Global().Clear();
    }
    Reset();
  }

  static void Reset() {
    failpoint::DisarmAll();
    failpoint::ResetStats();
    telemetry::SetHealthy();
  }

  std::unique_ptr<ScopedTraceContext> trace_scope_;
};

uint64_t FiresFor(const std::string& name) {
  for (const failpoint::PointStats& point : failpoint::Stats()) {
    if (point.name == name) return point.fires;
  }
  return 0;
}

/// Additive utility with a per-unit marginal of unit+1: cheap, deterministic,
/// and exercises the estimators' generic (non-prefix-scan) evaluation path.
class SumUtility : public UtilityFunction {
 public:
  explicit SumUtility(size_t n) : n_(n) {}
  double Evaluate(const std::vector<size_t>& subset) const override {
    double total = 0.0;
    for (size_t unit : subset) total += static_cast<double>(unit + 1);
    return total;
  }
  size_t num_units() const override { return n_; }

 private:
  size_t n_;
};

/// SumUtility plus an exact additive prefix scan, so the TMC fast path —
/// where a failed Push re-runs the whole permutation against a fresh scan —
/// is the one hosting the injected faults.
class ScanSumUtility : public SumUtility {
 public:
  using SumUtility::SumUtility;

  class Scan : public PrefixScan {
   public:
    double Push(size_t unit) override {
      total_ += static_cast<double>(unit + 1);
      return total_;
    }

   private:
    double total_ = 0.0;
  };

  std::unique_ptr<PrefixScan> NewPrefixScan(
      bool /*allow_warm_start*/) const override {
    return std::make_unique<Scan>();
  }
};

/// One workload per failpoint site, exercising the real code path that hosts
/// the site. `degrades_gracefully` marks sites whose contract is "keep
/// working without the feature" (the subset cache skips the insert) rather
/// than "surface the error".
struct SiteWorkload {
  std::function<Status()> run;
  bool degrades_gracefully = false;
};

std::map<std::string, SiteWorkload> BuildWorkloads() {
  std::map<std::string, SiteWorkload> workloads;

  workloads["csv.open"] = {[] {
    std::string path = ::testing::TempDir() + "/chaos_csv_open.csv";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return Status::IOError("cannot write temp csv");
    std::fputs("a,b\n1,2\n", f);
    std::fclose(f);
    return ReadCsvFile(path).status();
  }};

  workloads["csv.record"] = {
      [] { return ReadCsvString("a,b\n1,2\n3,4\n").status(); }};

  workloads["pipeline.execute"] = {[] {
    Result<Table> table = ReadCsvString("a,b\n1,2\n3,4\n");
    NDE_RETURN_IF_ERROR(table.status());
    return MakeSource(0, "chaos_source", *table)->Execute().status();
  }};

  workloads["encoder.fit"] = {[] {
    Result<Table> table = ReadCsvString("a\n1\n2\n3\n");
    NDE_RETURN_IF_ERROR(table.status());
    ColumnTransformer transformer;
    transformer.Add("a", std::make_unique<NumericEncoder>());
    return transformer.Fit(*table);
  }};

  workloads["encoder.transform"] = {[] {
    Result<Table> table = ReadCsvString("a\n1\n2\n3\n");
    NDE_RETURN_IF_ERROR(table.status());
    ColumnTransformer transformer;
    transformer.Add("a", std::make_unique<NumericEncoder>());
    NDE_RETURN_IF_ERROR(transformer.Fit(*table));
    return transformer.Transform(*table).status();
  }};

  workloads["utility.evaluate"] = {
      [] { return SumUtility(4).TryEvaluate({0, 2}).status(); }};

  // Contract: a failed cache insert must not fail the evaluation — the value
  // is still returned, the cache just stays cold.
  workloads["subset_cache.insert"] = {[] {
    SubsetCache cache;
    double value = cache.GetOrCompute({1, 2}, [] { return 7.5; });
    if (value != 7.5) {
      return Status::Internal("cache returned wrong value under fault");
    }
    return Status();
  }, /*degrades_gracefully=*/true};

  workloads["threadpool.task"] = {[] {
    std::vector<double> out(16, 0.0);
    return TryParallelFor(
               0, out.size(),
               [&](size_t i) { out[i] = static_cast<double>(i); }, 4,
               "chaos_pool")
        .status();
  }};

  workloads["http.handle_request"] = {[] {
    std::string response =
        telemetry::HttpExporter::HandleRequest("GET /healthz HTTP/1.1");
    if (response.find("chaos injected") != std::string::npos) {
      return Status::Unavailable("chaos injected");
    }
    if (response.find("HTTP/1.1 200") != 0 &&
        response.find("HTTP/1.1 503") != 0) {
      return Status::Internal("unexpected healthz response: " + response);
    }
    return Status();
  }};

  return workloads;
}

TEST_F(ChaosTest, EveryKnownSiteDegradesToTypedError) {
  std::map<std::string, SiteWorkload> workloads = BuildWorkloads();
  for (const std::string& site : failpoint::KnownSites()) {
    ASSERT_NE(workloads.find(site), workloads.end())
        << "no chaos workload for site '" << site
        << "' — add one so the catalog stays fully exercised";
    const SiteWorkload& workload = workloads[site];

    // Clean run first: the workload itself must be healthy.
    Reset();
    Status clean = workload.run();
    EXPECT_TRUE(clean.ok()) << site << " clean run: " << clean.ToString();

    // Armed run: the site fires and the failure comes back typed.
    ASSERT_TRUE(
        failpoint::Arm(site + "=error(unavailable:chaos injected)").ok());
    Status injected = workload.run();
    if (workload.degrades_gracefully) {
      EXPECT_TRUE(injected.ok())
          << site << " should degrade gracefully: " << injected.ToString();
    } else {
      EXPECT_FALSE(injected.ok()) << site << " swallowed the injection";
      EXPECT_EQ(injected.code(), StatusCode::kUnavailable) << site;
      EXPECT_NE(injected.message().find("chaos injected"), std::string::npos)
          << site << ": " << injected.ToString();
    }
    EXPECT_GE(FiresFor(site), 1u) << site << " never fired";

    // Recovery: disarming restores clean behavior with no residue.
    failpoint::DisarmAll();
    Status recovered = workload.run();
    EXPECT_TRUE(recovered.ok())
        << site << " did not recover: " << recovered.ToString();
  }
}

TEST_F(ChaosTest, AllSitesArmedAtOnceStaysTypedAndRecovers) {
  std::map<std::string, SiteWorkload> workloads = BuildWorkloads();
  for (const std::string& site : failpoint::KnownSites()) {
    ASSERT_TRUE(
        failpoint::Arm(site + "=error(unavailable:chaos injected)").ok());
  }
  // With everything failing at once nothing may crash; every workload either
  // degrades gracefully or reports the injected unavailable error (possibly
  // from an upstream site it depends on, e.g. the CSV read inside the
  // pipeline workload).
  for (const std::string& site : failpoint::KnownSites()) {
    Status status = workloads[site].run();
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kUnavailable) << site;
      EXPECT_NE(status.message().find("chaos injected"), std::string::npos)
          << site;
    }
  }
  failpoint::DisarmAll();
  telemetry::SetHealthy();
  for (const std::string& site : failpoint::KnownSites()) {
    Status status = workloads[site].run();
    EXPECT_TRUE(status.ok()) << site << ": " << status.ToString();
  }
}

TEST_F(ChaosTest, SubsetCacheInsertFaultKeepsValuesAndStaysCold) {
  SubsetCache cache;
  ASSERT_TRUE(failpoint::Arm("subset_cache.insert=error").ok());
  EXPECT_EQ(cache.GetOrCompute({1, 2}, [] { return 3.5; }), 3.5);
  EXPECT_EQ(cache.GetOrCompute({1, 2}, [] { return 3.5; }), 3.5);
  SubsetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);   // inserts were dropped
  EXPECT_EQ(stats.misses, 2u);    // both lookups recomputed
  failpoint::DisarmAll();
  EXPECT_EQ(cache.GetOrCompute({1, 2}, [] { return 3.5; }), 3.5);
  EXPECT_EQ(cache.GetOrCompute({1, 2}, [] { return 3.5; }), 3.5);
  stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);   // insert works again
  EXPECT_EQ(stats.hits, 1u);      // and the second lookup hit
}

TEST_F(ChaosTest, NanPoisonBecomesTypedNonFiniteError) {
  SumUtility utility(4);
  ASSERT_TRUE(failpoint::Arm("utility.evaluate=nan").ok());
  // TryEvaluate itself reports the poisoned value...
  Result<double> poisoned = utility.TryEvaluate({0, 1});
  ASSERT_TRUE(poisoned.ok());
  EXPECT_TRUE(std::isnan(*poisoned));
  // ...and the estimator's finiteness check converts it into a typed error
  // instead of averaging NaNs into the estimate.
  TmcShapleyOptions options;
  options.num_permutations = 8;
  options.truncation_tolerance = 0.0;
  options.max_retries = 0;
  Result<ImportanceEstimate> estimate = TmcShapleyValues(utility, options);
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kInternal);
  EXPECT_NE(estimate.status().message().find("non-finite"),
            std::string::npos);
}

TEST_F(ChaosTest, RetryRecoversFromOneShotTransientFault) {
  SumUtility utility(4);
  TmcShapleyOptions options;
  options.num_permutations = 8;
  options.truncation_tolerance = 0.0;
  options.seed = 11;
  options.retry_backoff_ms = 0;
  Result<ImportanceEstimate> clean = TmcShapleyValues(utility, options);
  ASSERT_TRUE(clean.ok());

  // Fire exactly once, on the very first evaluation; the retry re-rolls with
  // the attempt as salt and succeeds, so the run completes with results
  // bit-identical to the clean run.
  ASSERT_TRUE(failpoint::Arm("utility.evaluate=error(unavailable:flaky)#1x1")
                  .ok());
  Result<ImportanceEstimate> retried = TmcShapleyValues(utility, options);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_FALSE(retried->aborted_early);
  EXPECT_EQ(retried->values, clean->values);
  EXPECT_EQ(retried->std_errors, clean->std_errors);
  EXPECT_EQ(FiresFor("utility.evaluate"), 1u);
  // The recovery path also restores health after the transient degradation.
  EXPECT_TRUE(telemetry::IsHealthy());
}

TEST_F(ChaosTest, RetryRecoversProbabilisticFaultsOnThePrefixScanPath) {
  ScanSumUtility utility(4);
  TmcShapleyOptions options;
  options.num_permutations = 8;
  options.truncation_tolerance = 0.0;
  options.seed = 11;
  options.max_retries = 10;
  options.retry_backoff_ms = 0;
  options.use_prefix_scan = true;
  Result<ImportanceEstimate> clean = TmcShapleyValues(utility, options);
  ASSERT_TRUE(clean.ok());

  // A scan Push cannot be retried in place, so a transient fault re-runs the
  // permutation, replaying the settled prefix silently and re-rolling only
  // the failed evaluation's decision: a flaky backend recovers instead of
  // killing the wave, and the recovered run stays bit-identical to the
  // clean one.
  ASSERT_TRUE(
      failpoint::Arm("utility.evaluate=error(unavailable:flaky)@0.2/3").ok());
  Result<ImportanceEstimate> retried = TmcShapleyValues(utility, options);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_FALSE(retried->aborted_early);
  EXPECT_EQ(retried->values, clean->values);
  EXPECT_EQ(retried->std_errors, clean->std_errors);
  EXPECT_GE(FiresFor("utility.evaluate"), 1u);
  EXPECT_TRUE(telemetry::IsHealthy());
}

TEST_F(ChaosTest, ExhaustedRetriesAbortWithCause) {
  SumUtility utility(4);
  ASSERT_TRUE(
      failpoint::Arm("utility.evaluate=error(unavailable:backend down)")
          .ok());
  TmcShapleyOptions options;
  options.num_permutations = 8;
  options.truncation_tolerance = 0.0;
  options.max_retries = 1;
  options.retry_backoff_ms = 0;
  Result<ImportanceEstimate> estimate = TmcShapleyValues(utility, options);
  // Every evaluation fails, so no wave completes and the cause surfaces as
  // the estimator's status.
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(estimate.status().message().find("backend down"),
            std::string::npos);
  EXPECT_FALSE(telemetry::IsHealthy());
}

TEST_F(ChaosTest, KeyedDecisionBitmapIsThreadScheduleInvariant) {
  ASSERT_TRUE(failpoint::Arm("chaos.bitmap=error@0.5/123").ok());
  constexpr size_t kKeys = 1000;
  std::vector<char> serial(kKeys, 0);
  for (size_t key = 0; key < kKeys; ++key) {
    serial[key] = failpoint::Fire("chaos.bitmap", key).fired() ? 1 : 0;
  }
  std::vector<char> parallel_bits(kKeys, 0);
  ParallelFor(
      0, kKeys,
      [&](size_t key) {
        parallel_bits[key] =
            failpoint::Fire("chaos.bitmap", key).fired() ? 1 : 0;
      },
      8, "chaos_bitmap");
  EXPECT_EQ(serial, parallel_bits);
}

/// Probabilistic injection into the TMC estimator replays bit-identically
/// for any thread count: the fire decision is keyed by (subset hash, attempt
/// salt), never by hit order or thread schedule.
TEST_F(ChaosTest, ProbabilisticTmcReplayIsIdenticalAcrossThreadCounts) {
  SumUtility utility(6);
  std::vector<size_t> all_units = {0, 1, 2, 3, 4, 5};

  // Pick a seed whose decisions spare the empty/full evaluations so the run
  // reaches the sampling waves; the probe uses the real site and key scheme,
  // so the choice is deterministic and survives framework changes.
  uint64_t seed = 0;
  for (; seed < 64; ++seed) {
    std::string spec = StrFormat(
        "utility.evaluate=error(unavailable:chaos)@0.05/%llu",
        static_cast<unsigned long long>(seed));
    ASSERT_TRUE(failpoint::Arm(spec).ok());
    if (utility.TryEvaluate({}).ok() && utility.TryEvaluate(all_units).ok()) {
      break;
    }
  }
  ASSERT_LT(seed, 64u) << "no usable seed found";

  TmcShapleyOptions options;
  options.num_permutations = 64;
  options.truncation_tolerance = 0.0;
  options.max_retries = 0;
  options.seed = 17;
  auto run = [&](size_t threads) {
    failpoint::ResetStats();
    options.num_threads = threads;
    return TmcShapleyValues(utility, options);
  };
  Result<ImportanceEstimate> one = run(1);
  Result<ImportanceEstimate> eight = run(8);
  ASSERT_EQ(one.ok(), eight.ok());
  if (!one.ok()) {
    // Even a fatal outcome must replay exactly.
    EXPECT_EQ(one.status().ToString(), eight.status().ToString());
    return;
  }
  EXPECT_EQ(one->values, eight->values);
  EXPECT_EQ(one->std_errors, eight->std_errors);
  EXPECT_EQ(one->utility_evaluations, eight->utility_evaluations);
  EXPECT_EQ(one->aborted_early, eight->aborted_early);
  EXPECT_EQ(one->abort_cause.ToString(), eight->abort_cause.ToString());
}

TEST_F(ChaosTest, HealthEndpointFlipsDegradedWhileMetricsStayScrapeable) {
  std::string healthy =
      telemetry::HttpExporter::HandleRequest("GET /healthz HTTP/1.1");
  EXPECT_EQ(healthy.find("HTTP/1.1 200"), 0u);
  EXPECT_NE(healthy.find("ok"), std::string::npos);

  telemetry::SetDegraded("backend flaky");
  EXPECT_FALSE(telemetry::IsHealthy());
  std::string degraded =
      telemetry::HttpExporter::HandleRequest("GET /healthz HTTP/1.1");
  EXPECT_EQ(degraded.find("HTTP/1.1 503"), 0u);
  EXPECT_NE(degraded.find("degraded: backend flaky"), std::string::npos);
  // Liveness stays intact: /metrics keeps serving while degraded, so an
  // operator can still see *why* the process is unhappy.
  std::string metrics =
      telemetry::HttpExporter::HandleRequest("GET /metrics HTTP/1.1");
  EXPECT_EQ(metrics.find("HTTP/1.1 200"), 0u);

  telemetry::SetHealthy();
  std::string recovered =
      telemetry::HttpExporter::HandleRequest("GET /healthz HTTP/1.1");
  EXPECT_EQ(recovered.find("HTTP/1.1 200"), 0u);
}

TEST_F(ChaosTest, HttpHandlerFaultReturnsWellFormed500) {
  ASSERT_TRUE(
      failpoint::Arm("http.handle_request=error(internal:scrape exploded)")
          .ok());
  std::string response =
      telemetry::HttpExporter::HandleRequest("GET /metrics HTTP/1.1");
  EXPECT_EQ(response.find("HTTP/1.1 500"), 0u);
  EXPECT_NE(response.find("scrape exploded"), std::string::npos);
  // The handler survives: the next request (after disarm) is served normally.
  failpoint::DisarmAll();
  std::string after =
      telemetry::HttpExporter::HandleRequest("GET /metrics HTTP/1.1");
  EXPECT_EQ(after.find("HTTP/1.1 200"), 0u);
}

}  // namespace
}  // namespace nde
