#include <algorithm>
#include <memory>
#include <numeric>
#include <unordered_set>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "datascope/datascope.h"
#include "importance/game_values.h"
#include "importance/knn_shapley.h"
#include "ml/knn.h"
#include "pipeline/encoders.h"

namespace nde {
namespace {

/// A tiny single-source pipeline: identity plan + numeric encoding, so
/// source-tuple importance is directly comparable to flat-dataset methods.
struct FlatPipelineFixture {
  MlPipeline pipeline;
  PipelineOutput output;
  Table validation_table;

  static FlatPipelineFixture Make(size_t n, uint64_t seed,
                                  double label_error_fraction,
                                  std::vector<size_t>* corrupted,
                                  size_t validation_rows = 60) {
    Rng rng(seed);
    auto make_table = [&rng](size_t rows) {
      std::vector<double> f0(rows);
      std::vector<double> f1(rows);
      std::vector<int64_t> labels(rows);
      for (size_t i = 0; i < rows; ++i) {
        int label = rng.NextBernoulli(0.5) ? 1 : 0;
        double direction = label == 1 ? 1.5 : -1.5;
        f0[i] = direction + 0.6 * rng.NextGaussian();
        f1[i] = direction + 0.6 * rng.NextGaussian();
        labels[i] = label;
      }
      return TableBuilder()
          .AddDoubleColumn("f0", f0)
          .AddDoubleColumn("f1", f1)
          .AddInt64Column("label", labels)
          .Build();
    };
    Table train = make_table(n);
    Table validation = make_table(validation_rows);
    if (label_error_fraction > 0.0) {
      Result<std::vector<size_t>> flipped =
          InjectLabelErrorsTable(&train, "label", label_error_fraction, &rng);
      NDE_CHECK(flipped.ok());
      if (corrupted != nullptr) *corrupted = flipped.value();
    }
    ColumnTransformer transformer;
    transformer.Add("f0", std::make_unique<NumericEncoder>(false));
    transformer.Add("f1", std::make_unique<NumericEncoder>(false));
    MlPipeline pipeline(
        {{"train", train}},
        [](const std::vector<PlanNodePtr>& s) { return s[0]; },
        std::move(transformer), "label");
    PipelineOutput output = pipeline.Run().value();
    return FlatPipelineFixture{std::move(pipeline), std::move(output),
                               std::move(validation)};
  }
};

TEST(EncodeValidationTest, UsesFittedEncoders) {
  FlatPipelineFixture fixture = FlatPipelineFixture::Make(40, 3, 0.0, nullptr);
  MlDataset validation =
      EncodeValidation(fixture.output, fixture.validation_table, "label")
          .value();
  EXPECT_EQ(validation.size(), 60u);
  EXPECT_EQ(validation.num_features(), fixture.output.features.cols());
  // NumericEncoder(false) passes values through; check a cell.
  EXPECT_NEAR(validation.features(0, 0),
              fixture.validation_table.At(0, 0).as_double(), 1e-12);
}

TEST(EncodeValidationTest, RejectsUnfittedOrBadLabel) {
  FlatPipelineFixture fixture = FlatPipelineFixture::Make(20, 5, 0.0, nullptr);
  EXPECT_FALSE(
      EncodeValidation(fixture.output, fixture.validation_table, "nope").ok());
  PipelineOutput unfitted;
  EXPECT_EQ(EncodeValidation(unfitted, fixture.validation_table, "label")
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(KnnShapleyOverPipelineTest, IdentityPipelineMatchesFlatKnnShapley) {
  FlatPipelineFixture fixture = FlatPipelineFixture::Make(50, 7, 0.1, nullptr);
  MlDataset validation =
      EncodeValidation(fixture.output, fixture.validation_table, "label")
          .value();
  std::vector<double> pipeline_values =
      KnnShapleyOverPipeline(fixture.output, validation, /*table=*/0,
                             fixture.pipeline.sources()[0].table.num_rows(),
                             /*k=*/3)
          .value();
  std::vector<double> flat_values =
      KnnShapleyValues(fixture.output.ToDataset(), validation, 3);
  ASSERT_EQ(pipeline_values.size(), flat_values.size());
  for (size_t i = 0; i < flat_values.size(); ++i) {
    EXPECT_NEAR(pipeline_values[i], flat_values[i], 1e-12);
  }
}

TEST(KnnShapleyOverPipelineTest, CorruptedSourceRowsScoreLow) {
  std::vector<size_t> corrupted;
  FlatPipelineFixture fixture =
      FlatPipelineFixture::Make(200, 11, 0.1, &corrupted);
  ASSERT_FALSE(corrupted.empty());
  MlDataset validation =
      EncodeValidation(fixture.output, fixture.validation_table, "label")
          .value();
  std::vector<double> values =
      KnnShapleyOverPipeline(fixture.output, validation, 0,
                             fixture.pipeline.sources()[0].table.num_rows(), 5)
          .value();
  double corrupted_mean = 0.0;
  for (size_t i : corrupted) corrupted_mean += values[i];
  corrupted_mean /= static_cast<double>(corrupted.size());
  double overall =
      std::accumulate(values.begin(), values.end(), 0.0) / values.size();
  EXPECT_LT(corrupted_mean, overall);
}

TEST(KnnShapleyOverPipelineTest, JoinFanOutAggregatesChildValues) {
  // One source row fans out to several output rows via a join; its
  // importance must equal the sum of its derived rows' values.
  Table left = TableBuilder()
                   .AddInt64Column("k", {1, 2})
                   .AddDoubleColumn("f", {-1.0, 1.0})
                   .AddInt64Column("label", {0, 1})
                   .Build();
  Table right = TableBuilder()
                    .AddInt64Column("k2", {1, 1, 1, 2})
                    .AddDoubleColumn("g", {-1.1, -0.9, -1.0, 1.0})
                    .Build();
  ColumnTransformer transformer;
  transformer.Add("f", std::make_unique<NumericEncoder>(false));
  transformer.Add("g", std::make_unique<NumericEncoder>(false));
  MlPipeline pipeline(
      {{"left", left}, {"right", right}},
      [](const std::vector<PlanNodePtr>& s) {
        return MakeHashJoin(s[0], s[1], "k", "k2");
      },
      std::move(transformer), "label");
  PipelineOutput output = pipeline.Run().value();
  ASSERT_EQ(output.size(), 4u);

  MlDataset validation;
  validation.features = Matrix::FromRows({{-1.0, -1.0}, {1.0, 1.0}});
  validation.labels = {0, 1};

  std::vector<double> output_values =
      KnnShapleyValues(output.ToDataset(), validation, 1);
  std::vector<double> left_values =
      KnnShapleyOverPipeline(output, validation, 0, 2, 1).value();
  // Left row 0 feeds the three join results with k=1.
  double expected_row0 = 0.0;
  for (size_t r = 0; r < output.size(); ++r) {
    const SourceRef* ref = output.provenance[r].FindTableRef(0);
    ASSERT_NE(ref, nullptr);
    if (ref->row_id == 0) expected_row0 += output_values[r];
  }
  EXPECT_NEAR(left_values[0], expected_row0, 1e-12);
}

TEST(PipelineSourceUtilityTest, FullCoalitionMatchesDirectTraining) {
  FlatPipelineFixture fixture = FlatPipelineFixture::Make(60, 13, 0.0, nullptr);
  MlDataset validation =
      EncodeValidation(fixture.output, fixture.validation_table, "label")
          .value();
  auto factory = []() { return std::make_unique<KnnClassifier>(3); };
  PipelineSourceUtility utility(&fixture.pipeline, 0, factory, validation);
  EXPECT_EQ(utility.num_units(), 60u);

  double full = utility.FullUtility();
  double direct =
      TrainAndScore(factory, fixture.output.ToDataset(), validation).value();
  EXPECT_NEAR(full, direct, 1e-12);
  EXPECT_NEAR(utility.EmptyUtility(), 0.5, 1e-12);
}

TEST(PipelineSourceUtilityTest, LooOverPipelineDetectsHarmfulSource) {
  std::vector<size_t> corrupted;
  FlatPipelineFixture fixture =
      FlatPipelineFixture::Make(40, 17, 0.15, &corrupted);
  ASSERT_FALSE(corrupted.empty());
  MlDataset validation =
      EncodeValidation(fixture.output, fixture.validation_table, "label")
          .value();
  auto factory = []() { return std::make_unique<KnnClassifier>(3); };
  PipelineSourceUtility utility(&fixture.pipeline, 0, factory, validation);
  std::vector<double> loo = LeaveOneOutValues(utility).value();
  double corrupted_mean = 0.0;
  for (size_t i : corrupted) corrupted_mean += loo[i];
  corrupted_mean /= static_cast<double>(corrupted.size());
  double overall = std::accumulate(loo.begin(), loo.end(), 0.0) / loo.size();
  EXPECT_LE(corrupted_mean, overall);
}

TEST(EvaluateSourceRemovalTest, FastAndFullPathsAgreeOnRowLocalPipeline) {
  std::vector<size_t> corrupted;
  FlatPipelineFixture fixture =
      FlatPipelineFixture::Make(120, 19, 0.15, &corrupted);
  MlDataset validation =
      EncodeValidation(fixture.output, fixture.validation_table, "label")
          .value();
  auto factory = []() { return std::make_unique<KnnClassifier>(3); };
  std::vector<SourceRef> removed;
  for (size_t i = 0; i < std::min<size_t>(corrupted.size(), 10); ++i) {
    removed.push_back(SourceRef{0, static_cast<uint32_t>(corrupted[i])});
  }
  RemovalImpact fast = EvaluateSourceRemoval(fixture.pipeline, fixture.output,
                                             factory, validation, removed,
                                             /*fast_path=*/true)
                           .value();
  RemovalImpact slow = EvaluateSourceRemoval(fixture.pipeline, fixture.output,
                                             factory, validation, removed,
                                             /*fast_path=*/false)
                           .value();
  EXPECT_EQ(fast.output_rows_removed, removed.size());
  EXPECT_NEAR(fast.new_accuracy, slow.new_accuracy, 1e-12);
  EXPECT_NEAR(fast.accuracy_change, slow.accuracy_change, 1e-12);
}

TEST(EvaluateSourceRemovalTest, RemovingCorruptedRowsBeatsRemovingCleanRows) {
  std::vector<size_t> corrupted;
  FlatPipelineFixture fixture = FlatPipelineFixture::Make(
      200, 23, 0.2, &corrupted, /*validation_rows=*/300);
  MlDataset validation =
      EncodeValidation(fixture.output, fixture.validation_table, "label")
          .value();
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };

  std::vector<SourceRef> bad_removals;
  std::unordered_set<size_t> corrupted_set(corrupted.begin(), corrupted.end());
  for (size_t i : corrupted) {
    bad_removals.push_back(SourceRef{0, static_cast<uint32_t>(i)});
  }
  // Control: remove the same number of provably clean rows.
  std::vector<SourceRef> clean_removals;
  for (size_t i = 0; i < 200 && clean_removals.size() < bad_removals.size();
       ++i) {
    if (corrupted_set.count(i) == 0) {
      clean_removals.push_back(SourceRef{0, static_cast<uint32_t>(i)});
    }
  }
  double informed = EvaluateSourceRemoval(fixture.pipeline, fixture.output,
                                          factory, validation, bad_removals)
                        .value()
                        .accuracy_change;
  double control = EvaluateSourceRemoval(fixture.pipeline, fixture.output,
                                         factory, validation, clean_removals)
                       .value()
                       .accuracy_change;
  EXPECT_GT(informed, control);
  EXPECT_GT(informed, 0.0);
}

TEST(EvaluateSourceRemovalTest, RemovingEverythingFails) {
  FlatPipelineFixture fixture = FlatPipelineFixture::Make(10, 31, 0.0, nullptr);
  MlDataset validation =
      EncodeValidation(fixture.output, fixture.validation_table, "label")
          .value();
  std::vector<SourceRef> all;
  for (uint32_t i = 0; i < 10; ++i) all.push_back(SourceRef{0, i});
  auto factory = []() { return std::make_unique<KnnClassifier>(3); };
  EXPECT_FALSE(EvaluateSourceRemoval(fixture.pipeline, fixture.output, factory,
                                     validation, all)
                   .ok());
}

}  // namespace
}  // namespace nde
