#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "uncertain/affine.h"
#include "uncertain/zonotope_trainer.h"
#include "uncertain/zorro.h"

namespace nde {
namespace {

// --- AffineForm algebra --------------------------------------------------------

TEST(AffineFormTest, ConstantsAndSymbols) {
  AffineForm c = AffineForm::Constant(3.0);
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(c.ToInterval(), Interval(3.0, 3.0));

  AffineForm s = AffineForm::Symbol(1.0, 0.5, 0);
  EXPECT_FALSE(s.is_constant());
  EXPECT_EQ(s.ToInterval(), Interval(0.5, 1.5));
  EXPECT_EQ(s.num_terms(), 1u);
}

TEST(AffineFormTest, CorrelatedSubtractionCancelsExactly) {
  // The defining advantage over intervals: x - x == 0.
  AffineForm x = AffineForm::Symbol(2.0, 1.0, 7);
  AffineForm diff = x - x;
  EXPECT_TRUE(diff.is_constant());
  EXPECT_EQ(diff.ToInterval(), Interval(0.0, 0.0));
  // Interval arithmetic cannot do this: [1,3] - [1,3] = [-2,2].
}

TEST(AffineFormTest, IndependentSymbolsDoNotCancel) {
  AffineForm x = AffineForm::Symbol(2.0, 1.0, 0);
  AffineForm y = AffineForm::Symbol(2.0, 1.0, 1);
  EXPECT_EQ((x - y).ToInterval(), Interval(-2.0, 2.0));
}

TEST(AffineFormTest, AdditionIsExact) {
  AffineForm x = AffineForm::Symbol(1.0, 0.5, 0);
  AffineForm y = AffineForm::Symbol(-1.0, 0.25, 1);
  AffineForm sum = x + y;
  EXPECT_EQ(sum.ToInterval(), Interval(-0.75, 0.75));
  EXPECT_EQ(sum.remainder(), 0.0);
}

TEST(AffineFormTest, ScalingIsExact) {
  AffineForm x = AffineForm::Symbol(1.0, 0.5, 0);
  EXPECT_EQ((2.0 * x).ToInterval(), Interval(1.0, 3.0));
  EXPECT_EQ((-x).ToInterval(), Interval(-1.5, -0.5));
  EXPECT_EQ((0.0 * x).ToInterval(), Interval(0.0, 0.0));
}

TEST(AffineFormTest, MultiplicationSoundAgainstSampling) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    double cx = rng.NextUniform(-3, 3);
    double rx = rng.NextUniform(0, 2);
    double cy = rng.NextUniform(-3, 3);
    double ry = rng.NextUniform(0, 2);
    AffineForm x = AffineForm::Symbol(cx, rx, 0);
    AffineForm y = AffineForm::Symbol(cy, ry, 1);
    AffineForm product = x * y;
    Interval hull = product.ToInterval();
    for (int sample = 0; sample < 20; ++sample) {
      double ex = rng.NextUniform(-1, 1);
      double ey = rng.NextUniform(-1, 1);
      double concrete = (cx + rx * ex) * (cy + ry * ey);
      EXPECT_TRUE(hull.Contains(concrete))
          << concrete << " outside " << hull.ToString();
    }
  }
}

TEST(AffineFormTest, CorrelatedMultiplicationSoundness) {
  // x * x through operator*: must contain all of {v^2 : v in [1,3]}.
  Rng rng(7);
  AffineForm x = AffineForm::Symbol(2.0, 1.0, 0);
  Interval hull = (x * x).ToInterval();
  for (int sample = 0; sample < 50; ++sample) {
    double eps = rng.NextUniform(-1, 1);
    double v = 2.0 + eps;
    EXPECT_TRUE(hull.Contains(v * v));
  }
}

TEST(AffineFormTest, SquareTighterThanSelfMultiplication) {
  AffineForm x = AffineForm::Symbol(2.0, 1.0, 0);
  Interval square = x.Square().ToInterval();
  Interval product = (x * x).ToInterval();
  EXPECT_LE(square.width(), product.width());
  // And still sound.
  Rng rng(9);
  for (int sample = 0; sample < 50; ++sample) {
    double v = rng.NextUniform(1.0, 3.0);
    EXPECT_TRUE(square.Contains(v * v));
  }
}

TEST(AffineFormTest, EvaluateMatchesAlgebra) {
  AffineForm x = AffineForm::Symbol(1.0, 2.0, 0);
  AffineForm y = AffineForm::Symbol(-1.0, 0.5, 1);
  AffineForm expr = 3.0 * x + y - AffineForm::Constant(2.0);
  double value = expr.Evaluate({{0, 0.5}, {1, -1.0}});
  // 3*(1 + 2*0.5) + (-1 + 0.5*(-1)) - 2 = 6 - 1.5 - 2 = 2.5.
  EXPECT_NEAR(value, 2.5, 1e-12);
}

TEST(AffineFormTest, ToStringReadable) {
  AffineForm x = AffineForm::Symbol(1.0, 2.0, 3);
  EXPECT_NE(x.ToString().find("e3"), std::string::npos);
}

// --- Zonotope trainer ------------------------------------------------------------

RegressionDataset MakeLinearData(size_t n, uint64_t seed) {
  Rng rng(seed);
  RegressionDataset data;
  data.features = Matrix(n, 2);
  data.targets.resize(n);
  for (size_t i = 0; i < n; ++i) {
    data.features(i, 0) = rng.NextGaussian();
    data.features(i, 1) = rng.NextGaussian();
    data.targets[i] = 1.5 * data.features(i, 0) - 0.5 * data.features(i, 1) +
                      0.3 + 0.05 * rng.NextGaussian();
  }
  return data;
}

TEST(ZonotopeTrainerTest, PointDataMatchesConcreteGd) {
  RegressionDataset data = MakeLinearData(50, 3);
  SymbolicRegressionDataset symbolic =
      SymbolicRegressionDataset::FromConcrete(data);
  ZorroOptions options;
  ZonotopeModel model = TrainZorroZonotope(symbolic, options).value();
  std::vector<double> concrete = TrainConcreteGd(data, options);
  std::vector<Interval> weights = model.WeightIntervals();
  for (size_t j = 0; j < concrete.size(); ++j) {
    EXPECT_NEAR(weights[j].mid(), concrete[j], 1e-9);
    EXPECT_NEAR(weights[j].width(), 0.0, 1e-9);
  }
}

class ZonotopeSoundnessTest : public ::testing::TestWithParam<double> {};

TEST_P(ZonotopeSoundnessTest, SampledWorldsInsideBounds) {
  double missing_fraction = GetParam();
  RegressionDataset data = MakeLinearData(50, 11);
  Rng rng(13);
  size_t missing_count = static_cast<size_t>(missing_fraction * 50);
  std::vector<size_t> missing =
      rng.SampleWithoutReplacement(50, missing_count);
  SymbolicRegressionDataset symbolic =
      EncodeSymbolicMissing(data, missing, 0, -2.0, 2.0).value();
  ZorroOptions options;
  options.epochs = 25;
  ZonotopeModel model = TrainZorroZonotope(symbolic, options).value();
  std::vector<Interval> weight_hulls = model.WeightIntervals();

  for (int world = 0; world < 20; ++world) {
    RegressionDataset sampled = symbolic.SampleWorld(&rng);
    std::vector<double> w = TrainConcreteGd(sampled, options);
    for (size_t j = 0; j < w.size(); ++j) {
      EXPECT_TRUE(weight_hulls[j].Contains(w[j]))
          << "weight " << j << " = " << w[j] << " outside "
          << weight_hulls[j].ToString();
    }
    std::vector<double> probe = {0.7, -0.4};
    double prediction = w.back();
    for (size_t j = 0; j < probe.size(); ++j) prediction += w[j] * probe[j];
    EXPECT_TRUE(model.Predict(probe).Contains(prediction));
  }
}

INSTANTIATE_TEST_SUITE_P(MissingFractions, ZonotopeSoundnessTest,
                         ::testing::Values(0.1, 0.2, 0.4));

TEST(ZonotopeTrainerTest, TighterThanIntervalTrainer) {
  RegressionDataset data = MakeLinearData(60, 17);
  Rng rng(19);
  std::vector<size_t> missing = rng.SampleWithoutReplacement(60, 12);
  SymbolicRegressionDataset symbolic =
      EncodeSymbolicMissing(data, missing, 0, -2.0, 2.0).value();
  ZorroOptions options;
  options.epochs = 25;
  ZorroModel interval_model = TrainZorro(symbolic, options).value();
  ZonotopeModel zonotope_model =
      TrainZorroZonotope(symbolic, options).value();
  // Dependency tracking must pay off: materially tighter weight hulls.
  EXPECT_LT(zonotope_model.TotalWeightWidth(),
            interval_model.TotalWeightWidth() / 1.5);
  // And the advantage grows with training length (interval error compounds
  // faster than the affine remainder).
  ZorroOptions longer = options;
  longer.epochs = 35;
  double interval_long =
      TrainZorro(symbolic, longer).value().TotalWeightWidth();
  double zonotope_long =
      TrainZorroZonotope(symbolic, longer).value().TotalWeightWidth();
  EXPECT_LT(zonotope_long / interval_long,
            zonotope_model.TotalWeightWidth() /
                interval_model.TotalWeightWidth());
}

TEST(ZonotopeTrainerTest, WorstCaseLossGrowsWithMissingness) {
  RegressionDataset data = MakeLinearData(80, 23);
  RegressionDataset test = MakeLinearData(30, 24);
  ZorroOptions options;
  options.epochs = 25;
  Rng rng(29);
  double previous = 0.0;
  for (double fraction : {0.05, 0.2, 0.4}) {
    size_t count = static_cast<size_t>(fraction * 80);
    std::vector<size_t> missing = rng.SampleWithoutReplacement(80, count);
    SymbolicRegressionDataset symbolic =
        EncodeSymbolicMissing(data, missing, 0, -2.0, 2.0).value();
    ZonotopeModel model = TrainZorroZonotope(symbolic, options).value();
    double loss = MaxWorstCaseLoss(model, test);
    EXPECT_GT(loss, previous);
    previous = loss;
  }
}

TEST(ZonotopeTrainerTest, TrainingRowPredictionUsesSharedSymbols) {
  // Predicting a training row with its own symbols must be at least as tight
  // as predicting the same row as an unrelated concrete point is for the
  // midpoint (correlation awareness).
  RegressionDataset data = MakeLinearData(40, 31);
  Rng rng(37);
  std::vector<size_t> missing = rng.SampleWithoutReplacement(40, 8);
  SymbolicRegressionDataset symbolic =
      EncodeSymbolicMissing(data, missing, 0, -2.0, 2.0).value();
  ZorroOptions options;
  options.epochs = 15;
  ZonotopeModel model = TrainZorroZonotope(symbolic, options).value();
  size_t uncertain_row = missing.front();
  Interval shared = model.PredictTrainingRow(symbolic, uncertain_row);
  // Sanity: both are finite and the shared-symbol prediction is an interval
  // containing the midpoint-world prediction.
  std::vector<double> midpoint_row(symbolic.num_features());
  for (size_t j = 0; j < midpoint_row.size(); ++j) {
    midpoint_row[j] = symbolic.features[uncertain_row][j].mid();
  }
  Interval concrete_mid = model.Predict(midpoint_row);
  EXPECT_TRUE(shared.Intersects(concrete_mid));
}

TEST(ZonotopeTrainerTest, RejectsEmptyData) {
  SymbolicRegressionDataset empty;
  EXPECT_FALSE(TrainZorroZonotope(empty).ok());
}

}  // namespace
}  // namespace nde
