#include "telemetry/profiler.h"

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json_checker.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace nde {
namespace {

using telemetry::AllocationScope;
using telemetry::FlatFrame;
using telemetry::FoldedStack;
using telemetry::Profiler;

/// Restores global telemetry + profiler + alloc-accounting state on exit so
/// these tests compose with the rest of the suite in any order.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::Global().Stop();
    Profiler::Global().Reset();
    telemetry::ResetAllocStats();
  }
  void TearDown() override {
    Profiler::Global().Stop();
    Profiler::Global().Reset();
    telemetry::SetAllocAccountingEnabled(false);
    telemetry::ResetAllocStats();
    telemetry::SetEnabled(false);
  }
};

TEST_F(ProfilerTest, PushPopTracksLocalDepth) {
  EXPECT_EQ(telemetry::prof::LocalDepthForTesting(), 0u);
  telemetry::prof::PushFrame("outer");
  telemetry::prof::PushFrame("inner");
  EXPECT_EQ(telemetry::prof::LocalDepthForTesting(), 2u);
  telemetry::prof::PopFrame();
  EXPECT_EQ(telemetry::prof::LocalDepthForTesting(), 1u);
  telemetry::prof::PopFrame();
  EXPECT_EQ(telemetry::prof::LocalDepthForTesting(), 0u);
}

TEST_F(ProfilerTest, SampleOnceAggregatesTheCallersStack) {
  Profiler& profiler = Profiler::Global();
  telemetry::prof::PushFrame("alpha");
  telemetry::prof::PushFrame("beta");
  profiler.SampleOnce();
  profiler.SampleOnce();
  telemetry::prof::PopFrame();
  profiler.SampleOnce();
  telemetry::prof::PopFrame();

  EXPECT_EQ(profiler.samples(), 3u);
  EXPECT_EQ(profiler.sample_passes(), 3u);
  EXPECT_EQ(profiler.torn_samples(), 0u);

  std::vector<FoldedStack> folded = profiler.Folded();
  ASSERT_EQ(folded.size(), 2u);
  // Sorted by stack text: "alpha" < "alpha;beta".
  EXPECT_EQ(folded[0].stack, "alpha");
  EXPECT_EQ(folded[0].count, 1u);
  EXPECT_EQ(folded[1].stack, "alpha;beta");
  EXPECT_EQ(folded[1].count, 2u);
  EXPECT_EQ(profiler.FoldedStacks(), "alpha 1\nalpha;beta 2\n");

  // Flat view: beta was the leaf twice; alpha was on-stack for all three
  // samples but the leaf only once.
  std::vector<FlatFrame> flat = profiler.Flat();
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_EQ(flat[0].name, "beta");
  EXPECT_EQ(flat[0].self, 2u);
  EXPECT_EQ(flat[0].total, 2u);
  EXPECT_EQ(flat[1].name, "alpha");
  EXPECT_EQ(flat[1].self, 1u);
  EXPECT_EQ(flat[1].total, 3u);
}

TEST_F(ProfilerTest, ResetDropsAggregates) {
  Profiler& profiler = Profiler::Global();
  telemetry::prof::PushFrame("gone");
  profiler.SampleOnce();
  telemetry::prof::PopFrame();
  ASSERT_GT(profiler.samples(), 0u);
  profiler.Reset();
  EXPECT_EQ(profiler.samples(), 0u);
  EXPECT_EQ(profiler.sample_passes(), 0u);
  EXPECT_TRUE(profiler.Folded().empty());
  EXPECT_EQ(profiler.FoldedStacks(), "");
}

TEST_F(ProfilerTest, FoldedOutputSanitizesDelimiterCharacters) {
  // Span names may carry spaces ("fit numeric(score)"); the folded-stack
  // grammar reserves space and semicolon, so they must come out as "_".
  Profiler& profiler = Profiler::Global();
  telemetry::prof::PushFrame("fit numeric(score)");
  telemetry::prof::PushFrame("odd;name");
  profiler.SampleOnce();
  telemetry::prof::PopFrame();
  profiler.SampleOnce();
  telemetry::prof::PopFrame();
  EXPECT_EQ(profiler.FoldedStacks(),
            "fit_numeric(score) 1\nfit_numeric(score);odd_name 1\n");
}

TEST_F(ProfilerTest, ToJsonIsValidAndCarriesTheAggregates) {
  Profiler& profiler = Profiler::Global();
  telemetry::prof::PushFrame("json_frame");
  profiler.SampleOnce();
  telemetry::prof::PopFrame();

  std::string json = profiler.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"folded\""), std::string::npos);
  EXPECT_NE(json.find("\"flat\""), std::string::npos);
  EXPECT_NE(json.find("\"alloc\""), std::string::npos);
  EXPECT_NE(json.find("json_frame"), std::string::npos);

  std::string text = profiler.ToText();
  EXPECT_NE(text.find("json_frame"), std::string::npos) << text;
}

TEST_F(ProfilerTest, StartStopLifecycle) {
  Profiler& profiler = Profiler::Global();
  EXPECT_FALSE(profiler.running());
  ASSERT_TRUE(profiler.Start({}).ok());
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.Start({}).ok()) << "double Start must fail";
  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  profiler.Stop();  // Idempotent.
  ASSERT_TRUE(profiler.Start({}).ok()) << "restart after Stop must work";
  profiler.Stop();
}

TEST_F(ProfilerTest, BackgroundSamplerTicks) {
  Profiler& profiler = Profiler::Global();
  telemetry::ProfilerOptions options;
  options.sampling_interval_us = 200;
  ASSERT_TRUE(profiler.Start(options).ok());
  // Passes tick whether or not any thread has spans open, so this cannot
  // flake on an idle machine; bound the wait to keep a loaded one honest.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (profiler.sample_passes() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  profiler.Stop();
  EXPECT_GT(profiler.sample_passes(), 0u);
}

TEST_F(ProfilerTest, ScopedSpansFeedTheSamplerWhileRunning) {
#if !NDE_TELEMETRY_ENABLED
  GTEST_SKIP() << "NDE_TRACE_SPAN compiles to nothing in this build";
#endif
  telemetry::SetEnabled(true);
  Profiler& profiler = Profiler::Global();
  telemetry::ProfilerOptions options;
  // Effectively never fires on its own: the test drives SampleOnce so the
  // observation is deterministic.
  options.sampling_interval_us = 60 * 1000 * 1000;
  ASSERT_TRUE(profiler.Start(options).ok());
  {
    NDE_TRACE_SPAN("profiled_section", "test");
    EXPECT_EQ(telemetry::prof::LocalDepthForTesting(), 1u);
    profiler.SampleOnce();
  }
  EXPECT_EQ(telemetry::prof::LocalDepthForTesting(), 0u);
  profiler.Stop();
  EXPECT_NE(profiler.FoldedStacks().find("profiled_section"),
            std::string::npos)
      << profiler.FoldedStacks();
}

TEST_F(ProfilerTest, SpansDoNotPushFramesWhileStopped) {
  telemetry::SetEnabled(true);
  {
    NDE_TRACE_SPAN("unprofiled_section", "test");
    EXPECT_EQ(telemetry::prof::LocalDepthForTesting(), 0u)
        << "spans must not pay the frame-stack cost when no profiler runs";
  }
}

// --- Allocation accounting --------------------------------------------------

/// Heap churn the optimizer cannot elide: the pointer escapes through a
/// volatile.
void ChurnHeap(size_t bytes) {
  char* block = new char[bytes];
  static volatile char sink = 0;
  sink = static_cast<char>(sink + block[bytes / 2]);
  delete[] block;
}

TEST_F(ProfilerTest, AllocAccountingCountsWhenCompiledIn) {
  if (!telemetry::AllocAccountingCompiledIn()) {
    GTEST_SKIP() << "alloc interposition compiled out (telemetry off or "
                    "sanitizer build)";
  }
  telemetry::SetAllocAccountingEnabled(true);
  telemetry::ResetAllocStats();
  ChurnHeap(1 << 16);
  telemetry::SetAllocAccountingEnabled(false);

  telemetry::AllocStats stats = telemetry::GlobalAllocStats();
  EXPECT_GT(stats.alloc_count, 0u);
  EXPECT_GE(stats.alloc_bytes, uint64_t{1} << 16);
  EXPECT_GT(stats.free_count, 0u);
  EXPECT_GE(stats.peak_live_bytes, int64_t{1} << 16);
}

TEST_F(ProfilerTest, AllocAccountingIsOffByDefault) {
  if (!telemetry::AllocAccountingCompiledIn()) {
    GTEST_SKIP() << "alloc interposition compiled out";
  }
  ASSERT_FALSE(telemetry::AllocAccountingEnabled());
  telemetry::ResetAllocStats();
  ChurnHeap(1 << 14);
  telemetry::AllocStats stats = telemetry::GlobalAllocStats();
  EXPECT_EQ(stats.alloc_count, 0u);
  EXPECT_EQ(stats.alloc_bytes, 0u);
}

TEST_F(ProfilerTest, AllocationScopeAttributesToInnermostPhase) {
  if (!telemetry::AllocAccountingCompiledIn()) {
    GTEST_SKIP() << "alloc interposition compiled out";
  }
  telemetry::SetAllocAccountingEnabled(true);
  telemetry::ResetAllocStats();
  {
    AllocationScope outer("test.outer");
    ChurnHeap(1 << 12);
    {
      AllocationScope inner("test.inner");
      ChurnHeap(1 << 15);
    }
  }
  telemetry::SetAllocAccountingEnabled(false);

  uint64_t outer_bytes = 0, inner_bytes = 0;
  for (const auto& [phase, stats] : telemetry::AllocPhaseStats()) {
    if (phase == "test.outer") outer_bytes = stats.alloc_bytes;
    if (phase == "test.inner") inner_bytes = stats.alloc_bytes;
  }
  // Self-only attribution: the inner scope's churn must not roll up into the
  // outer phase, and each phase saw at least its own block.
  EXPECT_GE(inner_bytes, uint64_t{1} << 15);
  EXPECT_GE(outer_bytes, uint64_t{1} << 12);
  EXPECT_LT(outer_bytes, uint64_t{1} << 15);
}

TEST_F(ProfilerTest, AllocationScopeIsInertWhileDisabled) {
  telemetry::ResetAllocStats();
  {
    AllocationScope scope("test.disabled");
    ChurnHeap(1 << 12);
  }
  for (const auto& [phase, stats] : telemetry::AllocPhaseStats()) {
    EXPECT_NE(phase, "test.disabled")
        << "disabled scope must not record a phase";
    (void)stats;
  }
}

TEST_F(ProfilerTest, AllocStatsTableAndJsonStayWellFormed) {
  // Works in every build mode, including compiled-out interposition.
  std::string table = telemetry::AllocStatsTable();
  EXPECT_FALSE(table.empty());
  std::string json = Profiler::Global().ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"compiled_in\""), std::string::npos);
}

}  // namespace
}  // namespace nde
