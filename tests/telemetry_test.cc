#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "common/trace_context.h"
#include "data/table.h"
#include "json_checker.h"
#include "pipeline/plan.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace nde {
namespace {

using telemetry::Counter;
using telemetry::Histogram;
using telemetry::MetricsRegistry;
using telemetry::ScopedSpan;
using telemetry::TraceBuffer;
using telemetry::TraceEvent;

// Restores the global runtime toggle and clears the global trace buffer so
// tests don't leak state into each other.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::SetEnabled(false);
    TraceBuffer::Global().Clear();
  }
  void TearDown() override {
    telemetry::SetEnabled(false);
    TraceBuffer::Global().Clear();
  }
};

// --- Histogram bucket and quantile math -------------------------------------

TEST_F(TelemetryTest, HistogramBucketAssignment) {
  // Buckets: (-inf, 1], (1, 10], (10, 100], (100, +inf).
  Histogram h({1.0, 10.0, 100.0});
  h.Record(0.5);
  h.Record(1.0);   // Upper bounds are inclusive.
  h.Record(5.0);
  h.Record(10.0);
  h.Record(50.0);
  h.Record(1000.0);  // Overflow bucket.
  ASSERT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 10.0 + 50.0 + 1000.0);
}

TEST_F(TelemetryTest, HistogramQuantileInterpolation) {
  Histogram h({10.0, 20.0, 30.0});
  // 10 values uniformly in (10, 20]: the p50 rank lands mid-bucket.
  for (int i = 0; i < 10; ++i) h.Record(15.0);
  double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  // All mass in one bucket: every quantile stays inside that bucket.
  EXPECT_GE(h.Quantile(0.01), 10.0);
  EXPECT_LE(h.Quantile(0.99), 20.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.25), h.Quantile(0.75));
}

TEST_F(TelemetryTest, HistogramQuantileEdgeCases) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // Empty histogram.
  h.Record(100.0);                  // Overflow-only mass...
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);  // ...reports the last finite bound.
}

TEST_F(TelemetryTest, HistogramEmptyQuantileIsZeroForEveryQ) {
  Histogram h({1.0, 10.0, 100.0});
  for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 0.0) << "q=" << q;
  }
}

TEST_F(TelemetryTest, HistogramValuesOnExactBucketBounds) {
  // Upper bounds are inclusive: a value exactly equal to a bound must land
  // in that bound's bucket, never the next one up.
  Histogram h({1.0, 10.0, 100.0});
  h.Record(1.0);
  h.Record(10.0);
  h.Record(100.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 0u);  // Overflow bucket stays empty.
  // Quantiles interpolate inside finite buckets and never exceed the largest
  // finite bound while all mass is finite.
  EXPECT_LE(h.Quantile(0.99), 100.0);
  EXPECT_GE(h.Quantile(0.01), 0.0);
}

TEST_F(TelemetryTest, HistogramOverflowBucketQuantilesClampToLastBound) {
  Histogram h({1.0, 10.0});
  h.Record(50.0);    // overflow
  h.Record(5000.0);  // overflow
  // With all mass above the largest finite bound, the bucketed quantile
  // cannot do better than the last finite bound — for every q.
  for (double q : {0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 10.0) << "q=" << q;
  }
  // Mixed mass: low quantiles come from finite buckets, high ones clamp.
  h.Record(0.5);
  h.Record(0.5);
  EXPECT_LE(h.Quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 10.0);
}

TEST_F(TelemetryTest, HistogramResetKeepsLayout) {
  Histogram h({1.0, 2.0});
  h.Record(0.5);
  h.Record(5.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  ASSERT_EQ(h.num_buckets(), 3u);
  for (size_t i = 0; i < h.num_buckets(); ++i) {
    EXPECT_EQ(h.bucket_count(i), 0u);
  }
}

// --- Concurrency ------------------------------------------------------------

TEST_F(TelemetryTest, ConcurrentCounterIncrements) {
  Counter& counter =
      MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  counter.Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      Counter& c =
          MetricsRegistry::Global().GetCounter("test.concurrent_counter");
      for (int i = 0; i < kIncrementsPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST_F(TelemetryTest, ConcurrentHistogramRecords) {
  Histogram h({1.0, 10.0, 100.0});
  constexpr int kThreads = 4;
  constexpr int kRecordsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        h.Record(static_cast<double>(i % 200));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kRecordsPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < h.num_buckets(); ++i) bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, h.count());
}

// --- Registry ---------------------------------------------------------------

TEST_F(TelemetryTest, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("stable");
  Counter& b = registry.GetCounter("stable");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  registry.Reset();  // Zeroes in place; references stay valid.
  EXPECT_EQ(b.value(), 0u);
}

TEST_F(TelemetryTest, RegistryExportsPrometheusText) {
  MetricsRegistry registry;
  registry.GetCounter("reqs.total").Increment(7);
  registry.GetGauge("queue.depth").Set(3.5);
  registry.GetHistogram("lat.ms", {1.0, 10.0}).Record(0.5);
  std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("reqs_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  std::string table = registry.ToTable();
  EXPECT_NE(table.find("reqs.total"), std::string::npos);
}

TEST_F(TelemetryTest, PrometheusHistogramsCarrySummaryQuantiles) {
  // Every histogram exports a companion summary block with p50/p90/p99, so a
  // scraper gets tail latencies without re-deriving them from buckets. The
  // exact exposition lines are pinned: one deterministic distribution (100
  // values in [1, 100] against decade bounds), known quantile answers.
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("wave.ms", {1.0, 10.0, 100.0});
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));

  std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE wave_ms_quantiles summary"), std::string::npos)
      << prom;
  std::string expected_p50 =
      StrFormat("wave_ms_quantiles{quantile=\"0.5\"} %.9g", h.Quantile(0.5));
  std::string expected_p90 =
      StrFormat("wave_ms_quantiles{quantile=\"0.9\"} %.9g", h.Quantile(0.9));
  std::string expected_p99 =
      StrFormat("wave_ms_quantiles{quantile=\"0.99\"} %.9g", h.Quantile(0.99));
  EXPECT_NE(prom.find(expected_p50), std::string::npos) << prom;
  EXPECT_NE(prom.find(expected_p90), std::string::npos) << prom;
  EXPECT_NE(prom.find(expected_p99), std::string::npos) << prom;
  // The summary shares the histogram's sum/count so the two blocks agree.
  EXPECT_NE(prom.find("wave_ms_quantiles_sum "), std::string::npos) << prom;
  EXPECT_NE(prom.find("wave_ms_quantiles_count 100"), std::string::npos)
      << prom;
  // Adjacency: the summary block sits right after its histogram block, i.e.
  // before the next metric would sort.
  EXPECT_LT(prom.find("# TYPE wave_ms histogram"),
            prom.find("# TYPE wave_ms_quantiles summary"));
}

TEST_F(TelemetryTest, ExportsAreSortedByNameAcrossKinds) {
  // Registration order is deliberately interleaved and unsorted across
  // metric kinds; every export must still come out name-sorted so two dumps
  // of the same state are byte-identical and diffable.
  MetricsRegistry registry;
  registry.GetGauge("zz.gauge").Set(1.0);
  registry.GetCounter("aa.counter").Increment();
  registry.GetHistogram("mm.hist", {1.0}).Record(0.5);
  registry.GetCounter("nn.counter").Increment();
  registry.GetGauge("bb.gauge").Set(2.0);

  std::string table = registry.ToTable();
  size_t aa = table.find("aa.counter");
  size_t bb = table.find("bb.gauge");
  size_t mm = table.find("mm.hist");
  size_t nn = table.find("nn.counter");
  size_t zz = table.find("zz.gauge");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, bb);
  EXPECT_LT(bb, mm);
  EXPECT_LT(mm, nn);
  EXPECT_LT(nn, zz);

  std::string prom = registry.ToPrometheusText();
  size_t paa = prom.find("# TYPE aa_counter");
  size_t pbb = prom.find("# TYPE bb_gauge");
  size_t pmm = prom.find("# TYPE mm_hist");
  size_t pnn = prom.find("# TYPE nn_counter");
  size_t pzz = prom.find("# TYPE zz_gauge");
  ASSERT_NE(paa, std::string::npos);
  ASSERT_NE(pzz, std::string::npos);
  EXPECT_LT(paa, pbb);
  EXPECT_LT(pbb, pmm);
  EXPECT_LT(pmm, pnn);
  EXPECT_LT(pnn, pzz);

  // Two consecutive exports of unchanged state are byte-identical.
  EXPECT_EQ(table, registry.ToTable());
  EXPECT_EQ(prom, registry.ToPrometheusText());
}

TEST_F(TelemetryTest, SnapshotAndJsonExportCoverEveryKind) {
  MetricsRegistry registry;
  registry.GetCounter("c.one").Increment(3);
  registry.GetGauge("g.one").Set(1.5);
  registry.GetHistogram("h.one", {1.0, 10.0}).Record(5.0);
  telemetry::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("c.one"), 3u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("g.one"), 1.5);
  ASSERT_EQ(snapshot.histograms.count("h.one"), 1u);
  EXPECT_EQ(snapshot.histograms.at("h.one").count, 1u);
  EXPECT_DOUBLE_EQ(snapshot.histograms.at("h.one").sum, 5.0);

  std::string json = registry.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"c.one\":3"), std::string::npos);
  EXPECT_NE(json.find("\"g.one\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
}

// --- Spans and the trace buffer ---------------------------------------------

TEST_F(TelemetryTest, SpanNestingRecordsInnerFirstWithIncreasingDepth) {
  telemetry::SetEnabled(true);
  {
    ScopedSpan outer("outer", "test");
    {
      ScopedSpan inner("inner", "test");
    }
  }
  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded at close, so the inner span lands first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[0].tid, events[1].tid);
  // The outer span encloses the inner one in time.
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_GE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us);
}

TEST_F(TelemetryTest, DisabledSpansRecordNothing) {
  telemetry::SetEnabled(false);
  {
    ScopedSpan span("invisible", "test");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.ElapsedMs(), 0.0);
  }
  EXPECT_EQ(TraceBuffer::Global().size(), 0u);
}

TEST_F(TelemetryTest, MacrosCompileAndRespectRuntimeToggle) {
  telemetry::SetEnabled(true);
  {
    NDE_TRACE_SPAN("macro_span", "test");
    NDE_TRACE_SPAN_VAR(named, "macro_named_span", "test");
    NDE_SPAN_ARG(named, "k", static_cast<int64_t>(42));
    NDE_METRIC_COUNT("test.macro_counter", 2);
  }
#if NDE_TELEMETRY_ENABLED
  EXPECT_EQ(TraceBuffer::Global().size(), 2u);
  EXPECT_GE(MetricsRegistry::Global().GetCounter("test.macro_counter").value(),
            2u);
#endif
}

TEST_F(TelemetryTest, BoundedBufferDropsNewestAndCounts) {
  TraceBuffer buffer(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    TraceEvent event;
    event.name = "e" + std::to_string(i);
    buffer.Record(std::move(event));
  }
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.dropped(), 2u);
  std::vector<TraceEvent> events = buffer.Snapshot();
  EXPECT_EQ(events[0].name, "e0");  // Earliest events are kept.
  EXPECT_EQ(events[2].name, "e2");
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST_F(TelemetryTest, GlobalBufferSaturationIsVisibleInMetrics) {
#if NDE_TELEMETRY_ENABLED
  TraceBuffer& buffer = TraceBuffer::Global();
  size_t original_capacity = buffer.capacity();
  uint64_t dropped_before = MetricsRegistry::Global()
                                .GetCounter("trace.dropped_spans")
                                .value();
  telemetry::SetEnabled(true);
  buffer.SetCapacity(2);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().GetGauge("trace.buffer_capacity").value(),
      2.0);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("saturating_span", "test");
  }
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.dropped(), 3u);
  // The drops are mirrored into the metrics registry, where /metrics and run
  // reports can see them.
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("trace.dropped_spans").value(),
      dropped_before + 3);
  buffer.SetCapacity(original_capacity);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().GetGauge("trace.buffer_capacity").value(),
      static_cast<double>(original_capacity));
#endif
}

TEST_F(TelemetryTest, LocalBufferDropsDoNotTouchGlobalMetrics) {
  uint64_t dropped_before = MetricsRegistry::Global()
                                .GetCounter("trace.dropped_spans")
                                .value();
  TraceBuffer local(/*capacity=*/1);
  for (int i = 0; i < 3; ++i) {
    TraceEvent event;
    event.name = "local";
    local.Record(std::move(event));
  }
  EXPECT_EQ(local.dropped(), 2u);
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("trace.dropped_spans").value(),
      dropped_before);
}

// --- Chrome trace JSON ------------------------------------------------------

TEST_F(TelemetryTest, ChromeTraceJsonIsWellFormed) {
  telemetry::SetEnabled(true);
  {
    ScopedSpan span("json \"quoted\"\nspan", "test");
    span.AddArg("rows", static_cast<int64_t>(12));
    span.AddArg("note", std::string("needs \\escaping\""));
  }
  std::string json = TraceBuffer::Global().ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"rows\":12"), std::string::npos);
}

// --- Labeled metrics ---------------------------------------------------------

TEST_F(TelemetryTest, LabeledSeriesKeySortsKeysAndEscapesValues) {
  using telemetry::LabeledSeriesName;
  using telemetry::WithLabels;
  EXPECT_EQ(LabeledSeriesName("m", {}), "m");
  // WithLabels canonicalizes order, so call-site order never forks a series.
  EXPECT_EQ(LabeledSeriesName(
                "m", WithLabels({{"job_id", "j1"}, {"algorithm", "tmc"}})),
            "m{algorithm=\"tmc\",job_id=\"j1\"}");
  EXPECT_EQ(LabeledSeriesName("m", WithLabels({{"k", "a\"b\\c"}})),
            "m{k=\"a\\\"b\\\\c\"}");
}

TEST_F(TelemetryTest, LabeledCounterFeedsBaseAndSeries) {
  MetricsRegistry registry;
  telemetry::MetricLabels labels =
      telemetry::WithLabels({{"algorithm", "tmc"}, {"job_id", "job-1"}});
  telemetry::LabeledCounter labeled =
      registry.GetCounterWithLabels("evals", labels);
  ASSERT_NE(labeled.base, nullptr);
  ASSERT_NE(labeled.series, nullptr);
  labeled.Increment(3);
  // Unlabeled resolution of the same metric shares the base counter.
  telemetry::LabeledCounter plain = registry.GetCounterWithLabels("evals", {});
  EXPECT_EQ(plain.series, nullptr);
  plain.Increment(2);

  telemetry::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("evals"), 5u);  // aggregate stays exact
  EXPECT_EQ(snapshot.counters.at("evals{algorithm=\"tmc\",job_id=\"job-1\"}"),
            3u);
}

TEST_F(TelemetryTest, PrometheusExportRendersLabeledSeries) {
  MetricsRegistry registry;
  telemetry::MetricLabels labels =
      telemetry::WithLabels({{"algorithm", "tmc"}, {"job_id", "job-1"}});
  registry.GetCounterWithLabels("evals.total", labels).Increment(3);
  registry.GetHistogramWithLabels("lat.ms", labels, {1.0, 10.0}).Record(0.5);

  std::string prom = registry.ToPrometheusText();
  EXPECT_NE(
      prom.find("evals_total{algorithm=\"tmc\",job_id=\"job-1\"} 3"),
      std::string::npos)
      << prom;
  // The labeled histogram merges its labels with le=.
  EXPECT_NE(prom.find("lat_ms_bucket{algorithm=\"tmc\",job_id=\"job-1\","
                      "le=\"+Inf\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("lat_ms_count{algorithm=\"tmc\",job_id=\"job-1\"} 1"),
            std::string::npos)
      << prom;
  // One TYPE declaration per family, even with base + labeled series present.
  size_t first = prom.find("# TYPE evals_total counter");
  ASSERT_NE(first, std::string::npos) << prom;
  EXPECT_EQ(prom.find("# TYPE evals_total counter", first + 1),
            std::string::npos)
      << prom;
  // The base (unlabeled) sample is present too and the export stays sorted.
  EXPECT_NE(prom.find("\nevals_total 3\n"), std::string::npos) << prom;
}

TEST_F(TelemetryTest, LabelCardinalityCapBoundsSeriesAcrossThreads) {
  MetricsRegistry registry;
  registry.SetLabelCardinalityCap(8);
  // Admit one known series before the stampede so we can later re-resolve a
  // set that is certainly inside the cap.
  registry
      .GetCounterWithLabels("m", telemetry::WithLabels({{"job_id", "pinned"}}))
      .Increment();
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 50;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        std::string job = "job-" + std::to_string(t * kPerThread + i);
        telemetry::LabeledCounter counter = registry.GetCounterWithLabels(
            "m", telemetry::WithLabels({{"job_id", job}}));
        counter.Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // The registry admitted at most the cap, refused the rest visibly, and the
  // unlabeled aggregate still counted every increment exactly.
  EXPECT_LE(registry.labeled_series_count(), 8u);
  telemetry::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("m"), kThreads * kPerThread + 1);
  // 1 series pre-admitted + 7 of the 200 stampeding sets; the other 193
  // resolutions were each refused and counted exactly once.
  EXPECT_EQ(snapshot.counters.at("telemetry.labels_dropped"),
            kThreads * kPerThread - 7u);
  size_t labeled_sum = 0;
  size_t labeled_count = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("m{", 0) == 0) {
      ++labeled_count;
      labeled_sum += value;
    }
  }
  EXPECT_EQ(labeled_count, 8u);
  EXPECT_EQ(labeled_sum, 8u);  // each admitted set was incremented once
  // Re-resolving an already-admitted set is not a new series: it drops
  // nothing and returns the same live labeled counter.
  telemetry::LabeledCounter pinned = registry.GetCounterWithLabels(
      "m", telemetry::WithLabels({{"job_id", "pinned"}}));
  ASSERT_NE(pinned.series, nullptr);
  pinned.Increment();
  telemetry::MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.counters.at("telemetry.labels_dropped"),
            kThreads * kPerThread - 7u);
  EXPECT_EQ(after.counters.at("m{job_id=\"pinned\"}"), 2u);
}

// --- Trace-context linkage in exports ---------------------------------------

TEST_F(TelemetryTest, ChromeTraceLinksParentsAndFlowsAcrossThreads) {
  telemetry::SetEnabled(true);
  TraceContext context;
  context.trace_id_hi = 0x1111222233334444ULL;
  context.trace_id_lo = 0x5555666677778888ULL;
  {
    ScopedTraceContext scope{TraceContext(context)};
    ScopedSpan parent("parent", "test");
    // Simulate the pool hop: capture the submitting context (which now has
    // the parent span installed) and restore it on the worker.
    TraceContext captured = CurrentTraceContext();
    std::thread worker([captured] {
      ScopedTraceContext worker_scope{TraceContext(captured)};
      ScopedSpan child("child", "test");
    });
    worker.join();
  }

  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& child = events[0];   // closed (and recorded) first
  const TraceEvent& parent = events[1];
  EXPECT_EQ(child.name, "child");
  EXPECT_EQ(parent.name, "parent");
  EXPECT_EQ(parent.parent_span_id, 0u);
  EXPECT_EQ(child.parent_span_id, parent.span_id);
  EXPECT_EQ(child.trace_id_hi, context.trace_id_hi);
  EXPECT_NE(child.tid, parent.tid);

  std::string json = TraceBuffer::Global().ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // Dense tids in first-appearance order: the child (recorded first) gets 1.
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos) << json;
  // Parent linkage args.
  EXPECT_NE(json.find("\"id\":\"" + SpanIdHex(parent.span_id) + "\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"parent\":\"" + SpanIdHex(parent.span_id) + "\""),
            std::string::npos)
      << json;
  EXPECT_NE(
      json.find("\"trace_id\":\"11112222333344445555666677778888\""),
      std::string::npos)
      << json;
  // The cross-thread edge gets a flow pair keyed by the child's span id.
  std::string flow_id = "\"id\":\"" + SpanIdHex(child.span_id) + "\"";
  EXPECT_NE(json.find("\"ph\":\"s\"," + flow_id), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\"," + flow_id),
            std::string::npos)
      << json;
}

TEST_F(TelemetryTest, FoldedStacksMergeByParentChainWithSelfTime) {
  TraceBuffer buffer(16);
  auto make_event = [](const char* name, uint64_t span, uint64_t parent,
                       int64_t dur) {
    TraceEvent event;
    event.name = name;
    event.trace_id_hi = 7;
    event.trace_id_lo = 9;
    event.span_id = span;
    event.parent_span_id = parent;
    event.dur_us = dur;
    return event;
  };
  buffer.Record(make_event("leaf", 3, 2, 10));
  buffer.Record(make_event("child", 2, 1, 60));
  buffer.Record(make_event("root", 1, 0, 100));
  // A span from another trace must be filtered out entirely.
  TraceEvent other = make_event("other", 4, 0, 50);
  other.trace_id_lo = 8;
  buffer.Record(other);

  EXPECT_EQ(buffer.FoldedForTrace(7, 9),
            "root 40\nroot;child 50\nroot;child;leaf 10\n");
  EXPECT_EQ(buffer.FoldedForTrace(1, 2), "");
}

TEST_F(TelemetryTest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(telemetry::JsonEscape("plain"), "plain");
  EXPECT_EQ(telemetry::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(telemetry::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(telemetry::JsonEscape("a\nb"), "a\\nb");
  std::string escaped = telemetry::JsonEscape(std::string(1, '\x01'));
  EXPECT_EQ(escaped, "\\u0001");
}

// --- PlanProfiler -----------------------------------------------------------

Table SmallTable() {
  return TableBuilder()
      .AddInt64Column("id", {0, 1, 2, 3})
      .AddInt64Column("x", {5, 15, 25, 35})
      .Build();
}

TEST_F(TelemetryTest, PlanProfilerCollectsPerOperatorStats) {
  PlanNodePtr plan = MakeProject(
      MakeFilter(MakeSource(0, "rows", SmallTable()), "x > 10",
                 [](const RowView& row) {
                   return row.GetOrDie("x").as_int64() > 10;
                 }),
      {"id"});
  PlanProfiler profiler;
  AnnotatedTable out = plan->Execute().value();
  ASSERT_EQ(out.table.num_rows(), 3u);

  const OperatorStats* stats = profiler.StatsFor(*plan);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->invocations, 1u);
  EXPECT_EQ(stats->rows_out, 3u);
  EXPECT_GE(stats->wall_ms, 0.0);

  std::string annotated = profiler.AnnotatedPlan(*plan);
  EXPECT_NE(annotated.find("Project"), std::string::npos);
  EXPECT_NE(annotated.find("Filter"), std::string::npos);
  EXPECT_NE(annotated.find("4 -> 3 rows"), std::string::npos);
  EXPECT_NE(annotated.find("ms total"), std::string::npos);
}

TEST_F(TelemetryTest, PlanProfilerScopesNestAndRestore) {
  PlanNodePtr plan = MakeSource(0, "rows", SmallTable());
  PlanProfiler outer;
  (void)plan->Execute().value();
  {
    PlanProfiler inner;
    (void)plan->Execute().value();
    (void)plan->Execute().value();
    const OperatorStats* stats = inner.StatsFor(*plan);
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->invocations, 2u);
  }
  // The outer profiler resumes after the inner scope closes.
  (void)plan->Execute().value();
  const OperatorStats* stats = outer.StatsFor(*plan);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->invocations, 2u);
}

}  // namespace
}  // namespace nde
