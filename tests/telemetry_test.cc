#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "data/table.h"
#include "json_checker.h"
#include "pipeline/plan.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace nde {
namespace {

using telemetry::Counter;
using telemetry::Histogram;
using telemetry::MetricsRegistry;
using telemetry::ScopedSpan;
using telemetry::TraceBuffer;
using telemetry::TraceEvent;

// Restores the global runtime toggle and clears the global trace buffer so
// tests don't leak state into each other.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::SetEnabled(false);
    TraceBuffer::Global().Clear();
  }
  void TearDown() override {
    telemetry::SetEnabled(false);
    TraceBuffer::Global().Clear();
  }
};

// --- Histogram bucket and quantile math -------------------------------------

TEST_F(TelemetryTest, HistogramBucketAssignment) {
  // Buckets: (-inf, 1], (1, 10], (10, 100], (100, +inf).
  Histogram h({1.0, 10.0, 100.0});
  h.Record(0.5);
  h.Record(1.0);   // Upper bounds are inclusive.
  h.Record(5.0);
  h.Record(10.0);
  h.Record(50.0);
  h.Record(1000.0);  // Overflow bucket.
  ASSERT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 10.0 + 50.0 + 1000.0);
}

TEST_F(TelemetryTest, HistogramQuantileInterpolation) {
  Histogram h({10.0, 20.0, 30.0});
  // 10 values uniformly in (10, 20]: the p50 rank lands mid-bucket.
  for (int i = 0; i < 10; ++i) h.Record(15.0);
  double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  // All mass in one bucket: every quantile stays inside that bucket.
  EXPECT_GE(h.Quantile(0.01), 10.0);
  EXPECT_LE(h.Quantile(0.99), 20.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.25), h.Quantile(0.75));
}

TEST_F(TelemetryTest, HistogramQuantileEdgeCases) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // Empty histogram.
  h.Record(100.0);                  // Overflow-only mass...
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);  // ...reports the last finite bound.
}

TEST_F(TelemetryTest, HistogramEmptyQuantileIsZeroForEveryQ) {
  Histogram h({1.0, 10.0, 100.0});
  for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 0.0) << "q=" << q;
  }
}

TEST_F(TelemetryTest, HistogramValuesOnExactBucketBounds) {
  // Upper bounds are inclusive: a value exactly equal to a bound must land
  // in that bound's bucket, never the next one up.
  Histogram h({1.0, 10.0, 100.0});
  h.Record(1.0);
  h.Record(10.0);
  h.Record(100.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 0u);  // Overflow bucket stays empty.
  // Quantiles interpolate inside finite buckets and never exceed the largest
  // finite bound while all mass is finite.
  EXPECT_LE(h.Quantile(0.99), 100.0);
  EXPECT_GE(h.Quantile(0.01), 0.0);
}

TEST_F(TelemetryTest, HistogramOverflowBucketQuantilesClampToLastBound) {
  Histogram h({1.0, 10.0});
  h.Record(50.0);    // overflow
  h.Record(5000.0);  // overflow
  // With all mass above the largest finite bound, the bucketed quantile
  // cannot do better than the last finite bound — for every q.
  for (double q : {0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 10.0) << "q=" << q;
  }
  // Mixed mass: low quantiles come from finite buckets, high ones clamp.
  h.Record(0.5);
  h.Record(0.5);
  EXPECT_LE(h.Quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 10.0);
}

TEST_F(TelemetryTest, HistogramResetKeepsLayout) {
  Histogram h({1.0, 2.0});
  h.Record(0.5);
  h.Record(5.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  ASSERT_EQ(h.num_buckets(), 3u);
  for (size_t i = 0; i < h.num_buckets(); ++i) {
    EXPECT_EQ(h.bucket_count(i), 0u);
  }
}

// --- Concurrency ------------------------------------------------------------

TEST_F(TelemetryTest, ConcurrentCounterIncrements) {
  Counter& counter =
      MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  counter.Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      Counter& c =
          MetricsRegistry::Global().GetCounter("test.concurrent_counter");
      for (int i = 0; i < kIncrementsPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST_F(TelemetryTest, ConcurrentHistogramRecords) {
  Histogram h({1.0, 10.0, 100.0});
  constexpr int kThreads = 4;
  constexpr int kRecordsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        h.Record(static_cast<double>(i % 200));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kRecordsPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < h.num_buckets(); ++i) bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, h.count());
}

// --- Registry ---------------------------------------------------------------

TEST_F(TelemetryTest, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("stable");
  Counter& b = registry.GetCounter("stable");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  registry.Reset();  // Zeroes in place; references stay valid.
  EXPECT_EQ(b.value(), 0u);
}

TEST_F(TelemetryTest, RegistryExportsPrometheusText) {
  MetricsRegistry registry;
  registry.GetCounter("reqs.total").Increment(7);
  registry.GetGauge("queue.depth").Set(3.5);
  registry.GetHistogram("lat.ms", {1.0, 10.0}).Record(0.5);
  std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("reqs_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  std::string table = registry.ToTable();
  EXPECT_NE(table.find("reqs.total"), std::string::npos);
}

TEST_F(TelemetryTest, PrometheusHistogramsCarrySummaryQuantiles) {
  // Every histogram exports a companion summary block with p50/p90/p99, so a
  // scraper gets tail latencies without re-deriving them from buckets. The
  // exact exposition lines are pinned: one deterministic distribution (100
  // values in [1, 100] against decade bounds), known quantile answers.
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("wave.ms", {1.0, 10.0, 100.0});
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));

  std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE wave_ms_quantiles summary"), std::string::npos)
      << prom;
  std::string expected_p50 =
      StrFormat("wave_ms_quantiles{quantile=\"0.5\"} %.9g", h.Quantile(0.5));
  std::string expected_p90 =
      StrFormat("wave_ms_quantiles{quantile=\"0.9\"} %.9g", h.Quantile(0.9));
  std::string expected_p99 =
      StrFormat("wave_ms_quantiles{quantile=\"0.99\"} %.9g", h.Quantile(0.99));
  EXPECT_NE(prom.find(expected_p50), std::string::npos) << prom;
  EXPECT_NE(prom.find(expected_p90), std::string::npos) << prom;
  EXPECT_NE(prom.find(expected_p99), std::string::npos) << prom;
  // The summary shares the histogram's sum/count so the two blocks agree.
  EXPECT_NE(prom.find("wave_ms_quantiles_sum "), std::string::npos) << prom;
  EXPECT_NE(prom.find("wave_ms_quantiles_count 100"), std::string::npos)
      << prom;
  // Adjacency: the summary block sits right after its histogram block, i.e.
  // before the next metric would sort.
  EXPECT_LT(prom.find("# TYPE wave_ms histogram"),
            prom.find("# TYPE wave_ms_quantiles summary"));
}

TEST_F(TelemetryTest, ExportsAreSortedByNameAcrossKinds) {
  // Registration order is deliberately interleaved and unsorted across
  // metric kinds; every export must still come out name-sorted so two dumps
  // of the same state are byte-identical and diffable.
  MetricsRegistry registry;
  registry.GetGauge("zz.gauge").Set(1.0);
  registry.GetCounter("aa.counter").Increment();
  registry.GetHistogram("mm.hist", {1.0}).Record(0.5);
  registry.GetCounter("nn.counter").Increment();
  registry.GetGauge("bb.gauge").Set(2.0);

  std::string table = registry.ToTable();
  size_t aa = table.find("aa.counter");
  size_t bb = table.find("bb.gauge");
  size_t mm = table.find("mm.hist");
  size_t nn = table.find("nn.counter");
  size_t zz = table.find("zz.gauge");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, bb);
  EXPECT_LT(bb, mm);
  EXPECT_LT(mm, nn);
  EXPECT_LT(nn, zz);

  std::string prom = registry.ToPrometheusText();
  size_t paa = prom.find("# TYPE aa_counter");
  size_t pbb = prom.find("# TYPE bb_gauge");
  size_t pmm = prom.find("# TYPE mm_hist");
  size_t pnn = prom.find("# TYPE nn_counter");
  size_t pzz = prom.find("# TYPE zz_gauge");
  ASSERT_NE(paa, std::string::npos);
  ASSERT_NE(pzz, std::string::npos);
  EXPECT_LT(paa, pbb);
  EXPECT_LT(pbb, pmm);
  EXPECT_LT(pmm, pnn);
  EXPECT_LT(pnn, pzz);

  // Two consecutive exports of unchanged state are byte-identical.
  EXPECT_EQ(table, registry.ToTable());
  EXPECT_EQ(prom, registry.ToPrometheusText());
}

TEST_F(TelemetryTest, SnapshotAndJsonExportCoverEveryKind) {
  MetricsRegistry registry;
  registry.GetCounter("c.one").Increment(3);
  registry.GetGauge("g.one").Set(1.5);
  registry.GetHistogram("h.one", {1.0, 10.0}).Record(5.0);
  telemetry::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("c.one"), 3u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("g.one"), 1.5);
  ASSERT_EQ(snapshot.histograms.count("h.one"), 1u);
  EXPECT_EQ(snapshot.histograms.at("h.one").count, 1u);
  EXPECT_DOUBLE_EQ(snapshot.histograms.at("h.one").sum, 5.0);

  std::string json = registry.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"c.one\":3"), std::string::npos);
  EXPECT_NE(json.find("\"g.one\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
}

// --- Spans and the trace buffer ---------------------------------------------

TEST_F(TelemetryTest, SpanNestingRecordsInnerFirstWithIncreasingDepth) {
  telemetry::SetEnabled(true);
  {
    ScopedSpan outer("outer", "test");
    {
      ScopedSpan inner("inner", "test");
    }
  }
  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded at close, so the inner span lands first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[0].tid, events[1].tid);
  // The outer span encloses the inner one in time.
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_GE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us);
}

TEST_F(TelemetryTest, DisabledSpansRecordNothing) {
  telemetry::SetEnabled(false);
  {
    ScopedSpan span("invisible", "test");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.ElapsedMs(), 0.0);
  }
  EXPECT_EQ(TraceBuffer::Global().size(), 0u);
}

TEST_F(TelemetryTest, MacrosCompileAndRespectRuntimeToggle) {
  telemetry::SetEnabled(true);
  {
    NDE_TRACE_SPAN("macro_span", "test");
    NDE_TRACE_SPAN_VAR(named, "macro_named_span", "test");
    NDE_SPAN_ARG(named, "k", static_cast<int64_t>(42));
    NDE_METRIC_COUNT("test.macro_counter", 2);
  }
#if NDE_TELEMETRY_ENABLED
  EXPECT_EQ(TraceBuffer::Global().size(), 2u);
  EXPECT_GE(MetricsRegistry::Global().GetCounter("test.macro_counter").value(),
            2u);
#endif
}

TEST_F(TelemetryTest, BoundedBufferDropsNewestAndCounts) {
  TraceBuffer buffer(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    TraceEvent event;
    event.name = "e" + std::to_string(i);
    buffer.Record(std::move(event));
  }
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.dropped(), 2u);
  std::vector<TraceEvent> events = buffer.Snapshot();
  EXPECT_EQ(events[0].name, "e0");  // Earliest events are kept.
  EXPECT_EQ(events[2].name, "e2");
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST_F(TelemetryTest, GlobalBufferSaturationIsVisibleInMetrics) {
#if NDE_TELEMETRY_ENABLED
  TraceBuffer& buffer = TraceBuffer::Global();
  size_t original_capacity = buffer.capacity();
  uint64_t dropped_before = MetricsRegistry::Global()
                                .GetCounter("trace.dropped_spans")
                                .value();
  telemetry::SetEnabled(true);
  buffer.SetCapacity(2);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().GetGauge("trace.buffer_capacity").value(),
      2.0);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("saturating_span", "test");
  }
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.dropped(), 3u);
  // The drops are mirrored into the metrics registry, where /metrics and run
  // reports can see them.
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("trace.dropped_spans").value(),
      dropped_before + 3);
  buffer.SetCapacity(original_capacity);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().GetGauge("trace.buffer_capacity").value(),
      static_cast<double>(original_capacity));
#endif
}

TEST_F(TelemetryTest, LocalBufferDropsDoNotTouchGlobalMetrics) {
  uint64_t dropped_before = MetricsRegistry::Global()
                                .GetCounter("trace.dropped_spans")
                                .value();
  TraceBuffer local(/*capacity=*/1);
  for (int i = 0; i < 3; ++i) {
    TraceEvent event;
    event.name = "local";
    local.Record(std::move(event));
  }
  EXPECT_EQ(local.dropped(), 2u);
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("trace.dropped_spans").value(),
      dropped_before);
}

// --- Chrome trace JSON ------------------------------------------------------

TEST_F(TelemetryTest, ChromeTraceJsonIsWellFormed) {
  telemetry::SetEnabled(true);
  {
    ScopedSpan span("json \"quoted\"\nspan", "test");
    span.AddArg("rows", static_cast<int64_t>(12));
    span.AddArg("note", std::string("needs \\escaping\""));
  }
  std::string json = TraceBuffer::Global().ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"rows\":12"), std::string::npos);
}

TEST_F(TelemetryTest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(telemetry::JsonEscape("plain"), "plain");
  EXPECT_EQ(telemetry::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(telemetry::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(telemetry::JsonEscape("a\nb"), "a\\nb");
  std::string escaped = telemetry::JsonEscape(std::string(1, '\x01'));
  EXPECT_EQ(escaped, "\\u0001");
}

// --- PlanProfiler -----------------------------------------------------------

Table SmallTable() {
  return TableBuilder()
      .AddInt64Column("id", {0, 1, 2, 3})
      .AddInt64Column("x", {5, 15, 25, 35})
      .Build();
}

TEST_F(TelemetryTest, PlanProfilerCollectsPerOperatorStats) {
  PlanNodePtr plan = MakeProject(
      MakeFilter(MakeSource(0, "rows", SmallTable()), "x > 10",
                 [](const RowView& row) {
                   return row.GetOrDie("x").as_int64() > 10;
                 }),
      {"id"});
  PlanProfiler profiler;
  AnnotatedTable out = plan->Execute().value();
  ASSERT_EQ(out.table.num_rows(), 3u);

  const OperatorStats* stats = profiler.StatsFor(*plan);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->invocations, 1u);
  EXPECT_EQ(stats->rows_out, 3u);
  EXPECT_GE(stats->wall_ms, 0.0);

  std::string annotated = profiler.AnnotatedPlan(*plan);
  EXPECT_NE(annotated.find("Project"), std::string::npos);
  EXPECT_NE(annotated.find("Filter"), std::string::npos);
  EXPECT_NE(annotated.find("4 -> 3 rows"), std::string::npos);
  EXPECT_NE(annotated.find("ms total"), std::string::npos);
}

TEST_F(TelemetryTest, PlanProfilerScopesNestAndRestore) {
  PlanNodePtr plan = MakeSource(0, "rows", SmallTable());
  PlanProfiler outer;
  (void)plan->Execute().value();
  {
    PlanProfiler inner;
    (void)plan->Execute().value();
    (void)plan->Execute().value();
    const OperatorStats* stats = inner.StatsFor(*plan);
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->invocations, 2u);
  }
  // The outer profiler resumes after the inner scope closes.
  (void)plan->Execute().value();
  const OperatorStats* stats = outer.StatsFor(*plan);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->invocations, 2u);
}

}  // namespace
}  // namespace nde
