#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "ml/knn.h"
#include "uncertain/poisoning.h"

namespace nde {
namespace {

/// Brute-force removal radius: tries every deletion subset up to
/// `max_budget` and reports the largest budget the prediction survives.
size_t BruteForceRemovalRadius(const MlDataset& train,
                               const std::vector<double>& query, size_t k,
                               size_t max_budget) {
  KnnClassifier knn(k);
  Status s = knn.Fit(train);
  NDE_CHECK(s.ok());
  Matrix single(1, query.size());
  single.SetRow(0, query);
  int baseline = knn.Predict(single)[0];

  size_t n = train.size();
  for (size_t budget = 1; budget <= max_budget && budget < n; ++budget) {
    // Enumerate all subsets of size `budget` via bitmasks (n small).
    for (size_t mask = 0; mask < (size_t{1} << n); ++mask) {
      if (static_cast<size_t>(__builtin_popcountll(mask)) != budget) continue;
      std::vector<size_t> removed;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (size_t{1} << i)) removed.push_back(i);
      }
      MlDataset reduced = train.Without(removed);
      if (reduced.size() == 0) continue;
      KnnClassifier refit(k);
      Status rs = refit.FitWithClasses(reduced, train.NumClasses());
      NDE_CHECK(rs.ok());
      if (refit.Predict(single)[0] != baseline) {
        return budget - 1;
      }
    }
  }
  return max_budget;
}

TEST(PoisoningTest, RemovalRadiusMatchesBruteForce) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    BlobsOptions options;
    options.num_examples = 9;
    options.num_features = 2;
    options.separation = 2.0;
    options.noise = 1.2;
    options.seed = seed;
    MlDataset train = MakeBlobs(options);
    Rng rng(seed * 7);
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<double> query = {rng.NextGaussian(), rng.NextGaussian()};
      for (size_t k : {1u, 3u}) {
        size_t exact = CertifiedRemovalRadius(train, query, k);
        size_t brute = BruteForceRemovalRadius(train, query, k, 4);
        EXPECT_EQ(std::min(exact, size_t{4}), brute)
            << "seed=" << seed << " trial=" << trial << " k=" << k;
      }
    }
  }
}

TEST(PoisoningTest, UnanimousNeighborhoodHasLargeRadius) {
  MlDataset train;
  train.features = Matrix::FromRows(
      {{0.0}, {0.1}, {0.2}, {0.3}, {0.4}, {10.0}});
  train.labels = {1, 1, 1, 1, 1, 0};
  // Query at 0: all 3 nearest are class 1; flipping needs to delete enough
  // class-1 points that the lone class-0 point enters and dominates.
  size_t radius = CertifiedRemovalRadius(train, {0.0}, 3);
  EXPECT_GE(radius, 2u);
}

TEST(PoisoningTest, KnifeEdgeVoteHasZeroRadius) {
  MlDataset train;
  train.features = Matrix::FromRows({{0.0}, {0.2}, {0.4}});
  train.labels = {1, 0, 1};
  // k=3 vote: 2-1 for class 1; deleting one class-1 point leaves 1-1 and the
  // tie-break picks class 0 -> radius 0.
  EXPECT_EQ(CertifiedRemovalRadius(train, {0.0}, 3), 0u);
}

TEST(PoisoningTest, InsertionRadiusFollowsVoteMargin) {
  MlDataset train;
  train.features = Matrix::FromRows({{0.0}, {0.1}, {0.2}, {0.3}, {0.4}});
  train.labels = {1, 1, 1, 1, 1};
  // k=5, unanimous 5-0. Inserting m zeros of class 0 gives votes
  // (m for 0) vs (5-m for 1); class 0 wins at m=3 by count (3 > 2).
  EXPECT_EQ(CertifiedInsertionRadius(train, {0.0}, 5), 2u);
}

TEST(PoisoningTest, InsertionTieBreakTowardSmallerClass) {
  MlDataset train;
  train.features = Matrix::FromRows({{0.0}, {0.1}, {0.2}});
  train.labels = {1, 1, 1};
  // k=3: m=2 gives votes 2 vs 1 -> flip at m=2, radius 1? m=1: votes 1 vs 2
  // -> class 1 holds. So radius is 1... wait: m=2 -> class0=2, class1=1,
  // flip. Radius = 1.
  EXPECT_EQ(CertifiedInsertionRadius(train, {0.0}, 3), 1u);
}

TEST(PoisoningTest, CertifiedRatioDecreasesWithBudget) {
  BlobsOptions options;
  options.num_examples = 150;
  options.num_features = 3;
  options.separation = 3.0;
  MlDataset train = MakeBlobs(options);
  BlobsOptions query_options = options;
  query_options.num_examples = 40;
  query_options.seed = 9;
  query_options.center_seed = 42;
  MlDataset queries = MakeBlobs(query_options);

  double previous = 1.1;
  for (size_t budget : {0u, 1u, 3u, 8u, 20u}) {
    double ratio = CertifiedRemovalRatio(train, queries.features, 5, budget);
    EXPECT_LE(ratio, previous);
    previous = ratio;
  }
  EXPECT_EQ(CertifiedRemovalRatio(train, queries.features, 5, 0), 1.0);
}

}  // namespace
}  // namespace nde
