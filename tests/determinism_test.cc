// The parallel runtime's central promise (DESIGN.md §8): for a fixed seed,
// every estimator returns bit-identical values no matter how many worker
// threads run it. These tests exercise the promise across num_threads
// {1, 2, 8}, including ragged chunk sizes and early stopping.

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "datagen/synthetic.h"
#include "importance/game_values.h"
#include "importance/knn_shapley.h"
#include "importance/utility.h"

namespace nde {
namespace {

class LambdaUtility : public UtilityFunction {
 public:
  LambdaUtility(size_t n, std::function<double(const std::vector<size_t>&)> fn)
      : n_(n), fn_(std::move(fn)) {}

  double Evaluate(const std::vector<size_t>& subset) const override {
    return fn_(subset);
  }
  size_t num_units() const override { return n_; }

 private:
  size_t n_;
  std::function<double(const std::vector<size_t>&)> fn_;
};

LambdaUtility NonAdditiveGame(size_t n) {
  return LambdaUtility(n, [](const std::vector<size_t>& subset) {
    double v = 0.0;
    for (size_t i : subset) v += static_cast<double>(i + 1);
    return std::sqrt(v);
  });
}

const std::vector<size_t> kThreadCounts = {1, 2, 8};

TEST(DeterminismTest, TmcShapleyIdenticalAcrossThreadCounts) {
  LambdaUtility game = NonAdditiveGame(8);
  TmcShapleyOptions options;
  options.num_permutations = 65;  // Ragged final wave (65 = 2*32 + 1).
  options.truncation_tolerance = 0.0;
  options.seed = 7;

  std::vector<ImportanceEstimate> runs;
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    runs.push_back(TmcShapleyValues(game, options).value());
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].values, runs[0].values) << kThreadCounts[r] << " threads";
    EXPECT_EQ(runs[r].std_errors, runs[0].std_errors);
    EXPECT_EQ(runs[r].utility_evaluations, runs[0].utility_evaluations);
  }
}

TEST(DeterminismTest, TmcShapleyWithTruncationIdenticalAcrossThreadCounts) {
  // Truncation decisions depend only on each permutation's own stream and the
  // utility values, so they too must be thread-count invariant.
  LambdaUtility game = NonAdditiveGame(10);
  TmcShapleyOptions options;
  options.num_permutations = 48;
  options.truncation_tolerance = 0.4;
  options.seed = 11;

  std::vector<ImportanceEstimate> runs;
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    runs.push_back(TmcShapleyValues(game, options).value());
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].values, runs[0].values);
    EXPECT_EQ(runs[r].utility_evaluations, runs[0].utility_evaluations);
  }
}

TEST(DeterminismTest, BanzhafIdenticalAcrossThreadCounts) {
  LambdaUtility game = NonAdditiveGame(6);
  BanzhafOptions options;
  options.num_samples = 333;  // Not a multiple of the 16-sample chunk.
  options.seed = 3;

  std::vector<ImportanceEstimate> runs;
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    runs.push_back(BanzhafValues(game, options).value());
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].values, runs[0].values) << kThreadCounts[r] << " threads";
    EXPECT_EQ(runs[r].std_errors, runs[0].std_errors);
    EXPECT_EQ(runs[r].utility_evaluations, runs[0].utility_evaluations);
  }
}

TEST(DeterminismTest, BetaShapleyIdenticalAcrossThreadCounts) {
  LambdaUtility game = NonAdditiveGame(7);
  BetaShapleyOptions options;
  options.alpha = 4.0;
  options.beta = 1.0;
  options.samples_per_unit = 32;
  options.seed = 5;

  std::vector<ImportanceEstimate> runs;
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    runs.push_back(BetaShapleyValues(game, options).value());
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].values, runs[0].values) << kThreadCounts[r] << " threads";
    EXPECT_EQ(runs[r].std_errors, runs[0].std_errors);
    EXPECT_EQ(runs[r].utility_evaluations, runs[0].utility_evaluations);
  }
}

TEST(DeterminismTest, LeaveOneOutIdenticalAcrossThreadCounts) {
  LambdaUtility game = NonAdditiveGame(9);
  EstimatorOptions options;
  std::vector<std::vector<double>> runs;
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    runs.push_back(LeaveOneOutValues(game, options).value());
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r], runs[0]) << kThreadCounts[r] << " threads";
  }
}

TEST(DeterminismTest, KnnShapleyIdenticalAcrossThreadCounts) {
  BlobsOptions blob;
  blob.num_examples = 40;
  blob.num_features = 4;
  blob.seed = 42;
  blob.center_seed = 99;
  MlDataset train = MakeBlobs(blob);
  blob.num_examples = 21;  // Not a multiple of the 8-point chunk.
  blob.seed = 43;
  MlDataset validation = MakeBlobs(blob);

  EstimatorOptions options;
  std::vector<std::vector<double>> runs;
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    runs.push_back(KnnShapleyValues(train, validation, 3, options));
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r], runs[0]) << kThreadCounts[r] << " threads";
  }
}

TEST(DeterminismTest, ConvergenceToleranceStopsEarlyAndStaysDeterministic) {
  LambdaUtility game = NonAdditiveGame(6);
  TmcShapleyOptions full;
  full.num_permutations = 4096;
  full.truncation_tolerance = 0.0;
  full.seed = 13;
  TmcShapleyOptions early = full;
  early.convergence_tolerance = 0.05;

  ImportanceEstimate full_run = TmcShapleyValues(game, full).value();
  std::vector<ImportanceEstimate> runs;
  for (size_t threads : kThreadCounts) {
    early.num_threads = threads;
    runs.push_back(TmcShapleyValues(game, early).value());
  }
  EXPECT_LT(runs[0].utility_evaluations, full_run.utility_evaluations);
  for (double err : runs[0].std_errors) EXPECT_LE(err, 0.05);
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].values, runs[0].values) << kThreadCounts[r] << " threads";
    EXPECT_EQ(runs[r].utility_evaluations, runs[0].utility_evaluations);
  }
}

TEST(DeterminismTest, NumThreadsUsedIsReported) {
  LambdaUtility game = NonAdditiveGame(6);
  TmcShapleyOptions options;
  options.num_permutations = 64;
  options.num_threads = 2;
  ImportanceEstimate estimate = TmcShapleyValues(game, options).value();
  EXPECT_EQ(estimate.num_threads_used, 2u);
  options.num_threads = 1;
  estimate = TmcShapleyValues(game, options).value();
  EXPECT_EQ(estimate.num_threads_used, 1u);
}

TEST(EstimatorValidationTest, ZeroUnitsIsInvalidArgument) {
  LambdaUtility empty(0, [](const std::vector<size_t>&) { return 0.0; });
  EXPECT_EQ(LeaveOneOutValues(empty).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TmcShapleyValues(empty, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BanzhafValues(empty, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BetaShapleyValues(empty, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EstimatorValidationTest, ZeroBudgetIsInvalidArgument) {
  LambdaUtility game = NonAdditiveGame(4);
  TmcShapleyOptions tmc;
  tmc.num_permutations = 0;
  EXPECT_EQ(TmcShapleyValues(game, tmc).status().code(),
            StatusCode::kInvalidArgument);
  BanzhafOptions banzhaf;
  banzhaf.num_samples = 0;
  EXPECT_EQ(BanzhafValues(game, banzhaf).status().code(),
            StatusCode::kInvalidArgument);
  BetaShapleyOptions beta;
  beta.samples_per_unit = 0;
  EXPECT_EQ(BetaShapleyValues(game, beta).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace nde
