// The parallel runtime's central promise (DESIGN.md §8): for a fixed seed,
// every estimator returns bit-identical values no matter how many worker
// threads run it. These tests exercise the promise across num_threads
// {1, 2, 8}, including ragged chunk sizes and early stopping.

#include <chrono>
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/progress.h"
#include "common/rng.h"
#include "common/trace_context.h"
#include "data/csv.h"
#include "datagen/synthetic.h"
#include "nde/engine.h"
#include "nde/job_api.h"
#include "nde/registry.h"
#include "importance/game_values.h"
#include "importance/knn_shapley.h"
#include "importance/utility.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "proptest/check.h"
#include "proptest/domain.h"
#include "proptest/gen.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/run_report.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace nde {
namespace {

class LambdaUtility : public UtilityFunction {
 public:
  LambdaUtility(size_t n, std::function<double(const std::vector<size_t>&)> fn)
      : n_(n), fn_(std::move(fn)) {}

  double Evaluate(const std::vector<size_t>& subset) const override {
    return fn_(subset);
  }
  size_t num_units() const override { return n_; }

 private:
  size_t n_;
  std::function<double(const std::vector<size_t>&)> fn_;
};

LambdaUtility NonAdditiveGame(size_t n) {
  return LambdaUtility(n, [](const std::vector<size_t>& subset) {
    double v = 0.0;
    for (size_t i : subset) v += static_cast<double>(i + 1);
    return std::sqrt(v);
  });
}

const std::vector<size_t> kThreadCounts = {1, 2, 8};

TEST(DeterminismTest, TmcShapleyIdenticalAcrossThreadCounts) {
  LambdaUtility game = NonAdditiveGame(8);
  TmcShapleyOptions options;
  options.num_permutations = 65;  // Ragged final wave (65 = 2*32 + 1).
  options.truncation_tolerance = 0.0;
  options.seed = 7;

  std::vector<ImportanceEstimate> runs;
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    runs.push_back(TmcShapleyValues(game, options).value());
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].values, runs[0].values) << kThreadCounts[r] << " threads";
    EXPECT_EQ(runs[r].std_errors, runs[0].std_errors);
    EXPECT_EQ(runs[r].utility_evaluations, runs[0].utility_evaluations);
  }
}

TEST(DeterminismTest, TmcShapleyWithTruncationIdenticalAcrossThreadCounts) {
  // Truncation decisions depend only on each permutation's own stream and the
  // utility values, so they too must be thread-count invariant.
  LambdaUtility game = NonAdditiveGame(10);
  TmcShapleyOptions options;
  options.num_permutations = 48;
  options.truncation_tolerance = 0.4;
  options.seed = 11;

  std::vector<ImportanceEstimate> runs;
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    runs.push_back(TmcShapleyValues(game, options).value());
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].values, runs[0].values);
    EXPECT_EQ(runs[r].utility_evaluations, runs[0].utility_evaluations);
  }
}

TEST(DeterminismTest, BanzhafIdenticalAcrossThreadCounts) {
  LambdaUtility game = NonAdditiveGame(6);
  BanzhafOptions options;
  options.num_samples = 333;  // Not a multiple of the 16-sample chunk.
  options.seed = 3;

  std::vector<ImportanceEstimate> runs;
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    runs.push_back(BanzhafValues(game, options).value());
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].values, runs[0].values) << kThreadCounts[r] << " threads";
    EXPECT_EQ(runs[r].std_errors, runs[0].std_errors);
    EXPECT_EQ(runs[r].utility_evaluations, runs[0].utility_evaluations);
  }
}

TEST(DeterminismTest, BetaShapleyIdenticalAcrossThreadCounts) {
  LambdaUtility game = NonAdditiveGame(7);
  BetaShapleyOptions options;
  options.alpha = 4.0;
  options.beta = 1.0;
  options.samples_per_unit = 32;
  options.seed = 5;

  std::vector<ImportanceEstimate> runs;
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    runs.push_back(BetaShapleyValues(game, options).value());
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].values, runs[0].values) << kThreadCounts[r] << " threads";
    EXPECT_EQ(runs[r].std_errors, runs[0].std_errors);
    EXPECT_EQ(runs[r].utility_evaluations, runs[0].utility_evaluations);
  }
}

TEST(DeterminismTest, LeaveOneOutIdenticalAcrossThreadCounts) {
  LambdaUtility game = NonAdditiveGame(9);
  EstimatorOptions options;
  std::vector<std::vector<double>> runs;
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    runs.push_back(LeaveOneOutValues(game, options).value());
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r], runs[0]) << kThreadCounts[r] << " threads";
  }
}

TEST(DeterminismTest, KnnShapleyIdenticalAcrossThreadCounts) {
  BlobsOptions blob;
  blob.num_examples = 40;
  blob.num_features = 4;
  blob.seed = 42;
  blob.center_seed = 99;
  MlDataset train = MakeBlobs(blob);
  blob.num_examples = 21;  // Not a multiple of the 8-point chunk.
  blob.seed = 43;
  MlDataset validation = MakeBlobs(blob);

  EstimatorOptions options;
  std::vector<std::vector<double>> runs;
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    runs.push_back(KnnShapleyValues(train, validation, 3, options));
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r], runs[0]) << kThreadCounts[r] << " threads";
  }
}

TEST(DeterminismTest, ConvergenceToleranceStopsEarlyAndStaysDeterministic) {
  LambdaUtility game = NonAdditiveGame(6);
  TmcShapleyOptions full;
  full.num_permutations = 4096;
  full.truncation_tolerance = 0.0;
  full.seed = 13;
  TmcShapleyOptions early = full;
  early.convergence_tolerance = 0.05;

  ImportanceEstimate full_run = TmcShapleyValues(game, full).value();
  std::vector<ImportanceEstimate> runs;
  for (size_t threads : kThreadCounts) {
    early.num_threads = threads;
    runs.push_back(TmcShapleyValues(game, early).value());
  }
  EXPECT_LT(runs[0].utility_evaluations, full_run.utility_evaluations);
  for (double err : runs[0].std_errors) EXPECT_LE(err, 0.05);
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].values, runs[0].values) << kThreadCounts[r] << " threads";
    EXPECT_EQ(runs[r].utility_evaluations, runs[0].utility_evaluations);
  }
}

TEST(DeterminismTest, NumThreadsUsedIsReported) {
  LambdaUtility game = NonAdditiveGame(6);
  TmcShapleyOptions options;
  options.num_permutations = 64;
  options.num_threads = 2;
  ImportanceEstimate estimate = TmcShapleyValues(game, options).value();
  EXPECT_EQ(estimate.num_threads_used, 2u);
  options.num_threads = 1;
  estimate = TmcShapleyValues(game, options).value();
  EXPECT_EQ(estimate.num_threads_used, 1u);
}

// ---------------------------------------------------------------------------
// Utility fast path (DESIGN.md §9): zero-copy views, the prefix-scan exact
// scorer, and the subset cache must leave estimates bit-identical — same
// values, same std errors, same eval counts — for every on/off combination
// and every thread count. Warm start is the one *opt-in approximate* knob;
// its results must still be identical across thread counts and cache states.
// ---------------------------------------------------------------------------

MlDataset FastPathTrain() {
  BlobsOptions blob;
  blob.num_examples = 24;
  blob.num_features = 4;
  blob.seed = 17;
  blob.center_seed = 99;
  return MakeBlobs(blob);
}

MlDataset FastPathValidation() {
  BlobsOptions blob;
  blob.num_examples = 15;
  blob.num_features = 4;
  blob.seed = 18;
  blob.center_seed = 99;
  return MakeBlobs(blob);
}

ClassifierFactory KnnFactory() {
  return []() { return std::make_unique<KnnClassifier>(3); };
}

ClassifierFactory SmallLogregFactory() {
  LogisticRegressionOptions options;
  options.epochs = 30;
  options.warm_start_epochs = 6;
  return [options]() { return std::make_unique<LogisticRegression>(options); };
}

TmcShapleyOptions FastPathTmcOptions() {
  TmcShapleyOptions options;
  options.num_permutations = 33;  // Ragged final wave.
  options.seed = 21;
  return options;
}

TEST(FastPathBitIdentityTest, TmcIdenticalAcrossAllFastPathConfigs) {
  MlDataset train = FastPathTrain();
  MlDataset validation = FastPathValidation();

  // Baseline: every fast path off, single-threaded.
  UtilityFastPathOptions slow;
  slow.zero_copy_views = false;
  ModelAccuracyUtility baseline_utility(KnnFactory(), train, validation, slow);
  TmcShapleyOptions baseline_options = FastPathTmcOptions();
  baseline_options.use_prefix_scan = false;
  baseline_options.num_threads = 1;
  ImportanceEstimate baseline =
      TmcShapleyValues(baseline_utility, baseline_options).value();

  for (bool views : {false, true}) {
    for (bool cache : {false, true}) {
      for (bool prefix_scan : {false, true}) {
        for (bool warm_start : {false, true}) {
          for (size_t threads : kThreadCounts) {
            UtilityFastPathOptions fast;
            fast.zero_copy_views = views;
            fast.subset_cache = cache;
            ModelAccuracyUtility utility(KnnFactory(), train, validation,
                                         fast);
            TmcShapleyOptions options = FastPathTmcOptions();
            options.use_prefix_scan = prefix_scan;
            // KNN has an exact scorer, so opting into warm start must be a
            // no-op for values.
            options.warm_start = warm_start;
            options.num_threads = threads;
            ImportanceEstimate run = TmcShapleyValues(utility, options).value();
            std::string config =
                "views=" + std::to_string(views) +
                " cache=" + std::to_string(cache) +
                " prefix_scan=" + std::to_string(prefix_scan) +
                " warm_start=" + std::to_string(warm_start) +
                " threads=" + std::to_string(threads);
            EXPECT_EQ(run.values, baseline.values) << config;
            EXPECT_EQ(run.std_errors, baseline.std_errors) << config;
            EXPECT_EQ(run.utility_evaluations, baseline.utility_evaluations)
                << config;
            EXPECT_EQ(utility.num_evaluations(),
                      baseline_utility.num_evaluations())
                << config;
          }
        }
      }
    }
  }
}

TEST(FastPathBitIdentityTest, BanzhafIdenticalWithCacheOnOffAcrossThreads) {
  MlDataset train = FastPathTrain();
  MlDataset validation = FastPathValidation();
  BanzhafOptions options;
  options.num_samples = 120;
  options.seed = 9;

  UtilityFastPathOptions slow;
  slow.zero_copy_views = false;
  ModelAccuracyUtility baseline_utility(KnnFactory(), train, validation, slow);
  options.num_threads = 1;
  ImportanceEstimate baseline = BanzhafValues(baseline_utility, options).value();

  for (bool cache : {false, true}) {
    for (size_t threads : kThreadCounts) {
      UtilityFastPathOptions fast;
      fast.subset_cache = cache;
      ModelAccuracyUtility utility(KnnFactory(), train, validation, fast);
      options.num_threads = threads;
      ImportanceEstimate run = BanzhafValues(utility, options).value();
      EXPECT_EQ(run.values, baseline.values)
          << "cache=" << cache << " threads=" << threads;
      EXPECT_EQ(run.std_errors, baseline.std_errors);
      EXPECT_EQ(run.utility_evaluations, baseline.utility_evaluations);
    }
  }
}

TEST(FastPathBitIdentityTest, BetaShapleyIdenticalWithCacheOnOffAcrossThreads) {
  MlDataset train = FastPathTrain();
  MlDataset validation = FastPathValidation();
  BetaShapleyOptions options;
  options.alpha = 1.0;
  options.beta = 16.0;
  options.samples_per_unit = 6;
  options.seed = 31;

  UtilityFastPathOptions slow;
  slow.zero_copy_views = false;
  ModelAccuracyUtility baseline_utility(KnnFactory(), train, validation, slow);
  options.num_threads = 1;
  ImportanceEstimate baseline =
      BetaShapleyValues(baseline_utility, options).value();

  for (bool cache : {false, true}) {
    for (size_t threads : kThreadCounts) {
      UtilityFastPathOptions fast;
      fast.subset_cache = cache;
      ModelAccuracyUtility utility(KnnFactory(), train, validation, fast);
      options.num_threads = threads;
      ImportanceEstimate run = BetaShapleyValues(utility, options).value();
      EXPECT_EQ(run.values, baseline.values)
          << "cache=" << cache << " threads=" << threads;
      EXPECT_EQ(run.std_errors, baseline.std_errors);
      EXPECT_EQ(run.utility_evaluations, baseline.utility_evaluations);
    }
  }
}

TEST(FastPathBitIdentityTest, TinyCacheEvictionPreservesIdentity) {
  // A cache far smaller than the working set evicts constantly; eviction may
  // only cost recomputation, never change a value.
  MlDataset train = FastPathTrain();
  MlDataset validation = FastPathValidation();
  BanzhafOptions options;
  options.num_samples = 96;
  options.seed = 15;
  options.num_threads = 2;

  ModelAccuracyUtility uncached(KnnFactory(), train, validation);
  ImportanceEstimate expected = BanzhafValues(uncached, options).value();

  UtilityFastPathOptions fast;
  fast.subset_cache = true;
  fast.cache.num_shards = 2;
  fast.cache.max_entries = 8;
  ModelAccuracyUtility tiny(KnnFactory(), train, validation, fast);
  ImportanceEstimate run = BanzhafValues(tiny, options).value();
  EXPECT_EQ(run.values, expected.values);
  EXPECT_EQ(run.std_errors, expected.std_errors);
  ASSERT_NE(tiny.subset_cache(), nullptr);
  EXPECT_GT(tiny.subset_cache()->stats().evictions, 0u);
  EXPECT_LE(tiny.subset_cache()->stats().entries, 8u);
}

TEST(FastPathBitIdentityTest,
     WarmStartLogregDeterministicAcrossThreadsAndCache) {
  // Logistic regression has no exact scorer, so warm_start=true switches TMC
  // to the approximate warm-started scan. The *approximation* must still be
  // bit-identical across thread counts and cache states.
  MlDataset train = FastPathTrain();
  MlDataset validation = FastPathValidation();
  TmcShapleyOptions options = FastPathTmcOptions();
  options.num_permutations = 8;
  options.warm_start = true;

  std::vector<ImportanceEstimate> runs;
  for (bool cache : {false, true}) {
    for (size_t threads : kThreadCounts) {
      UtilityFastPathOptions fast;
      fast.subset_cache = cache;
      ModelAccuracyUtility utility(SmallLogregFactory(), train, validation,
                                   fast);
      options.num_threads = threads;
      runs.push_back(TmcShapleyValues(utility, options).value());
    }
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].values, runs[0].values) << "run " << r;
    EXPECT_EQ(runs[r].std_errors, runs[0].std_errors);
    EXPECT_EQ(runs[r].utility_evaluations, runs[0].utility_evaluations);
  }
}

TEST(FastPathBitIdentityTest,
     LogregWithoutWarmStartFallsBackToExactEvaluate) {
  // warm_start off + no exact scorer: NewPrefixScan returns nullptr and the
  // scan must match the plain per-prefix Evaluate path exactly.
  MlDataset train = FastPathTrain();
  MlDataset validation = FastPathValidation();
  TmcShapleyOptions options = FastPathTmcOptions();
  options.num_permutations = 4;
  options.num_threads = 1;

  ModelAccuracyUtility scan_utility(SmallLogregFactory(), train, validation);
  options.use_prefix_scan = true;
  ImportanceEstimate with_scan = TmcShapleyValues(scan_utility, options).value();

  ModelAccuracyUtility plain_utility(SmallLogregFactory(), train, validation);
  options.use_prefix_scan = false;
  ImportanceEstimate plain = TmcShapleyValues(plain_utility, options).value();

  EXPECT_EQ(with_scan.values, plain.values);
  EXPECT_EQ(with_scan.std_errors, plain.std_errors);
  EXPECT_EQ(with_scan.utility_evaluations, plain.utility_evaluations);
}

// ---------------------------------------------------------------------------
// Raw-speed kernels (DESIGN.md §14): the SoA KNN kernel, arena allocation,
// and the incremental Gaussian-NB scorer are pure speed knobs — every on/off
// combination must be bit-identical to the reference slow path at every
// thread count. float32 is the one approximate knob and must stay opt-in.
// ---------------------------------------------------------------------------

TEST(KernelBitIdentityTest, KnnSoaAndArenaIdenticalToSlowPathAcrossThreads) {
  MlDataset train = FastPathTrain();
  MlDataset validation = FastPathValidation();

  UtilityFastPathOptions slow;
  slow.zero_copy_views = false;
  slow.soa_kernels = false;
  slow.arena = false;
  ModelAccuracyUtility baseline_utility(KnnFactory(), train, validation, slow);
  TmcShapleyOptions baseline_options = FastPathTmcOptions();
  baseline_options.use_prefix_scan = false;
  baseline_options.num_threads = 1;
  ImportanceEstimate baseline =
      TmcShapleyValues(baseline_utility, baseline_options).value();

  for (bool soa : {false, true}) {
    for (bool arena : {false, true}) {
      for (size_t threads : kThreadCounts) {
        UtilityFastPathOptions fast;
        fast.soa_kernels = soa;
        fast.arena = arena;
        ModelAccuracyUtility utility(KnnFactory(), train, validation, fast);
        TmcShapleyOptions options = FastPathTmcOptions();
        options.use_prefix_scan = true;
        options.num_threads = threads;
        ImportanceEstimate run = TmcShapleyValues(utility, options).value();
        std::string config = "soa=" + std::to_string(soa) +
                             " arena=" + std::to_string(arena) +
                             " threads=" + std::to_string(threads);
        EXPECT_EQ(run.values, baseline.values) << config;
        EXPECT_EQ(run.std_errors, baseline.std_errors) << config;
        EXPECT_EQ(run.utility_evaluations, baseline.utility_evaluations)
            << config;
      }
    }
  }
}

TEST(KernelBitIdentityTest, GaussianNbScanIdenticalToRetrainingAcrossThreads) {
  // The NB incremental scorer (sorted member lists, decremental moments) must
  // reproduce the retrain-per-prefix path exactly, for any Add order the
  // permutations induce and at any thread count.
  MlDataset train = FastPathTrain();
  MlDataset validation = FastPathValidation();
  auto factory = []() { return std::make_unique<GaussianNaiveBayes>(); };
  TmcShapleyOptions options = FastPathTmcOptions();

  options.use_prefix_scan = false;
  options.num_threads = 1;
  ModelAccuracyUtility slow_utility(factory, train, validation);
  ImportanceEstimate baseline = TmcShapleyValues(slow_utility, options).value();

  options.use_prefix_scan = true;
  for (bool arena : {false, true}) {
    for (size_t threads : kThreadCounts) {
      UtilityFastPathOptions fast;
      fast.arena = arena;
      ModelAccuracyUtility utility(factory, train, validation, fast);
      options.num_threads = threads;
      ImportanceEstimate run = TmcShapleyValues(utility, options).value();
      EXPECT_EQ(run.values, baseline.values)
          << "arena=" << arena << " threads=" << threads;
      EXPECT_EQ(run.std_errors, baseline.std_errors);
      EXPECT_EQ(run.utility_evaluations, baseline.utility_evaluations);
    }
  }
}

TEST(KernelBitIdentityTest, Float32IsOptInAndDeterministicWhenEnabled) {
  // The float32 kernel changes bits by design, so it must never be on by
  // default — and once opted in, it must still be deterministic across
  // reruns and thread counts.
  UtilityFastPathOptions defaults;
  EXPECT_FALSE(defaults.float32);

  MlDataset train = FastPathTrain();
  MlDataset validation = FastPathValidation();
  TmcShapleyOptions options = FastPathTmcOptions();
  options.use_prefix_scan = true;

  std::vector<ImportanceEstimate> runs;
  for (int repeat = 0; repeat < 2; ++repeat) {
    for (size_t threads : kThreadCounts) {
      UtilityFastPathOptions fast;
      fast.float32 = true;
      ModelAccuracyUtility utility(KnnFactory(), train, validation, fast);
      options.num_threads = threads;
      runs.push_back(TmcShapleyValues(utility, options).value());
    }
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].values, runs[0].values) << "run " << r;
    EXPECT_EQ(runs[r].std_errors, runs[0].std_errors);
    EXPECT_EQ(runs[r].utility_evaluations, runs[0].utility_evaluations);
  }
}

// ---------------------------------------------------------------------------
// Observability must not perturb results (DESIGN.md §10): running with a
// progress callback, a run report, and verbose logging enabled must produce
// the exact same estimate — and the exact same progress sequence — as a bare
// run, for every thread count.
// ---------------------------------------------------------------------------

TEST(DeterminismTest, ObservabilityHooksDoNotPerturbTmcResults) {
  LambdaUtility game = NonAdditiveGame(8);
  TmcShapleyOptions bare;
  // A budget far past convergence so the tolerance check — not the budget —
  // ends the run, exercising the early-stopping path under observation.
  bare.num_permutations = 4096;
  bare.convergence_tolerance = 0.05;
  bare.seed = 19;
  bare.num_threads = 1;
  ImportanceEstimate baseline = TmcShapleyValues(game, bare).value();

  // Capture log output in a sink so verbose logging runs its full formatting
  // path without spamming test stderr.
  log::Level original_level = log::MinLevel();
  log::SetMinLevel(log::Level::kDebug);
  std::vector<std::string> log_lines;
  log::Logger::Global().SetSink([&log_lines](const log::LogRecord& record) {
    log_lines.push_back(log::FormatText(record));
  });

  std::vector<std::vector<ProgressUpdate>> sequences;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    telemetry::RunReport report("determinism_check");
    std::vector<ProgressUpdate> updates;
    TmcShapleyOptions options = bare;
    options.num_threads = threads;
    options.progress = [&](const ProgressUpdate& update) {
      updates.push_back(update);
      report.RecordProgress(update);
    };
    ImportanceEstimate run = TmcShapleyValues(game, options).value();
    EXPECT_EQ(run.values, baseline.values) << threads << " threads";
    EXPECT_EQ(run.std_errors, baseline.std_errors) << threads << " threads";
    EXPECT_EQ(run.utility_evaluations, baseline.utility_evaluations)
        << threads << " threads";
    EXPECT_EQ(updates.size(), report.curve().size());
    sequences.push_back(std::move(updates));
  }

  log::Logger::Global().SetSink(nullptr);
  log::SetMinLevel(original_level);

  // The update sequences themselves are thread-count invariant: same wave
  // boundaries, same counts, same errors.
  ASSERT_EQ(sequences[0].size(), sequences[1].size());
  for (size_t i = 0; i < sequences[0].size(); ++i) {
    EXPECT_EQ(sequences[0][i].completed, sequences[1][i].completed) << i;
    EXPECT_EQ(sequences[0][i].total, sequences[1][i].total) << i;
    EXPECT_EQ(sequences[0][i].utility_evaluations,
              sequences[1][i].utility_evaluations)
        << i;
    EXPECT_EQ(sequences[0][i].max_std_error, sequences[1][i].max_std_error)
        << i;
  }
  // Early stopping happened and the final boundary matches the estimate.
  ASSERT_FALSE(sequences[0].empty());
  EXPECT_LT(sequences[0].back().completed, bare.num_permutations);
  EXPECT_EQ(sequences[0].back().utility_evaluations,
            baseline.utility_evaluations);
}

TEST(DeterminismTest, ProfilerAndAllocAccountingDoNotPerturbResults) {
  // The sampling profiler + allocation accounting are the most invasive
  // observers in the system (a background thread reading worker stacks, and
  // interposed operator new/delete): run every estimator with them fully on
  // and compare bit-for-bit against the plain run at 1 and 8 threads.
  LambdaUtility game = NonAdditiveGame(10);

  auto run_all = [&game](size_t threads) {
    std::vector<ImportanceEstimate> estimates;
    TmcShapleyOptions tmc;
    tmc.num_permutations = 33;
    tmc.seed = 11;
    tmc.num_threads = threads;
    estimates.push_back(TmcShapleyValues(game, tmc).value());
    BanzhafOptions banzhaf;
    banzhaf.num_samples = 64;
    banzhaf.seed = 11;
    banzhaf.num_threads = threads;
    estimates.push_back(BanzhafValues(game, banzhaf).value());
    BetaShapleyOptions beta;
    beta.samples_per_unit = 6;
    beta.seed = 11;
    beta.num_threads = threads;
    estimates.push_back(BetaShapleyValues(game, beta).value());
    return estimates;
  };

  std::vector<ImportanceEstimate> baseline = run_all(1);

  telemetry::SetEnabled(true);
  telemetry::SetAllocAccountingEnabled(true);
  telemetry::ProfilerOptions prof_options;
  prof_options.sampling_interval_us = 100;  // Aggressive: ~10 kHz.
  ASSERT_TRUE(telemetry::Profiler::Global().Start(prof_options).ok());

  for (size_t threads : {size_t{1}, size_t{8}}) {
    telemetry::AllocationScope scope("determinism.sweep");
    std::vector<ImportanceEstimate> observed = run_all(threads);
    ASSERT_EQ(observed.size(), baseline.size());
    for (size_t e = 0; e < baseline.size(); ++e) {
      EXPECT_EQ(observed[e].values, baseline[e].values)
          << "estimator " << e << " at " << threads << " threads";
      EXPECT_EQ(observed[e].std_errors, baseline[e].std_errors)
          << "estimator " << e << " at " << threads << " threads";
      EXPECT_EQ(observed[e].utility_evaluations,
                baseline[e].utility_evaluations)
          << "estimator " << e << " at " << threads << " threads";
    }
  }

  telemetry::Profiler::Global().Stop();
  telemetry::Profiler::Global().Reset();
  telemetry::SetAllocAccountingEnabled(false);
  telemetry::ResetAllocStats();
  telemetry::SetEnabled(false);
}

TEST(DeterminismTest, TraceContextAndLabeledMetricsDoNotPerturbResults) {
  // Run the estimators bare first, then rerun with the full tracing stack
  // attached — telemetry enabled (spans recording, wave histograms labeled)
  // under an installed job TraceContext, so every labeled-metric and
  // span-propagation path is live — at 1 and 8 threads. Ids are minted from
  // a side channel that never touches estimator RNG streams, so every value
  // must stay bit-identical.
  LambdaUtility game = NonAdditiveGame(10);
  auto run_all = [&game](size_t threads) {
    std::vector<ImportanceEstimate> estimates;
    TmcShapleyOptions tmc;
    tmc.num_permutations = 33;
    tmc.seed = 47;
    tmc.num_threads = threads;
    estimates.push_back(TmcShapleyValues(game, tmc).value());
    BanzhafOptions banzhaf;
    banzhaf.num_samples = 96;
    banzhaf.seed = 47;
    banzhaf.num_threads = threads;
    estimates.push_back(BanzhafValues(game, banzhaf).value());
    BetaShapleyOptions beta;
    beta.samples_per_unit = 6;
    beta.seed = 47;
    beta.num_threads = threads;
    estimates.push_back(BetaShapleyValues(game, beta).value());
    return estimates;
  };

  std::vector<ImportanceEstimate> baseline = run_all(1);

  telemetry::SetEnabled(true);
  TraceContext context = MintTraceContext();
  context.job_id = "job-determinism";
  context.algorithm = "sweep";
  {
    ScopedTraceContext scope{context};
    for (size_t threads : {size_t{1}, size_t{8}}) {
      std::vector<ImportanceEstimate> observed = run_all(threads);
      ASSERT_EQ(observed.size(), baseline.size());
      for (size_t e = 0; e < baseline.size(); ++e) {
        EXPECT_EQ(observed[e].values, baseline[e].values)
            << "estimator " << e << " at " << threads << " threads";
        EXPECT_EQ(observed[e].std_errors, baseline[e].std_errors)
            << "estimator " << e << " at " << threads << " threads";
        EXPECT_EQ(observed[e].utility_evaluations,
                  baseline[e].utility_evaluations)
            << "estimator " << e << " at " << threads << " threads";
      }
    }
  }
  telemetry::SetEnabled(false);

  // The attribution machinery really was live: the per-job labeled series
  // accumulated alongside the unlabeled aggregates.
  telemetry::MetricsSnapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  EXPECT_GT(snapshot.counters.at(
                "shapley.permutations{"
                "algorithm=\"sweep\",job_id=\"job-determinism\"}"),
            0u);
  telemetry::TraceBuffer::Global().Clear();
}

TEST(DeterminismTest, ProgressSequencesIdenticalForAllEstimators) {
  LambdaUtility game = NonAdditiveGame(20);  // > one 16-unit beta wave.
  auto collect = [](auto&& run_fn) {
    std::vector<ProgressUpdate> updates;
    run_fn([&updates](const ProgressUpdate& update) {
      updates.push_back(update);
    });
    return updates;
  };

  for (size_t threads : {size_t{1}, size_t{8}}) {
    SCOPED_TRACE(threads);
    std::vector<ProgressUpdate> banzhaf =
        collect([&](ProgressCallback progress) {
          BanzhafOptions options;
          options.num_samples = 200;
          options.seed = 23;
          options.num_threads = threads;
          options.progress = std::move(progress);
          BanzhafValues(game, options).value();
        });
    ASSERT_FALSE(banzhaf.empty());
    EXPECT_EQ(banzhaf.back().completed, 200u);
    EXPECT_STREQ(banzhaf.back().phase, "banzhaf");

    std::vector<ProgressUpdate> beta = collect([&](ProgressCallback progress) {
      BetaShapleyOptions options;
      options.samples_per_unit = 4;
      options.seed = 29;
      options.num_threads = threads;
      options.progress = std::move(progress);
      BetaShapleyValues(game, options).value();
    });
    ASSERT_EQ(beta.size(), 2u);  // 20 units = 16 + ragged 4.
    EXPECT_EQ(beta[0].completed, 16u);
    EXPECT_EQ(beta[1].completed, 20u);
    EXPECT_GT(beta.back().max_std_error, 0.0);

    std::vector<ProgressUpdate> loo = collect([&](ProgressCallback progress) {
      EstimatorOptions options;
      options.num_threads = threads;
      options.progress = std::move(progress);
      LeaveOneOutValues(game, options).value();
    });
    ASSERT_EQ(loo.size(), 1u);  // 20 units fit one 64-unit wave.
    EXPECT_EQ(loo[0].completed, 20u);
    EXPECT_EQ(loo[0].utility_evaluations, 21u);
  }
}

TEST(EstimatorValidationTest, ZeroUnitsIsInvalidArgument) {
  LambdaUtility empty(0, [](const std::vector<size_t>&) { return 0.0; });
  EXPECT_EQ(LeaveOneOutValues(empty).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TmcShapleyValues(empty, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BanzhafValues(empty, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BetaShapleyValues(empty, {}).status().code(),
            StatusCode::kInvalidArgument);
}

// --- CLI vs job API: one engine, bit-identical answers. ---------------------

TEST(DeterminismTest, JobApiMatchesDirectEngineRunBitForBit) {
  // The HTTP job API and the CLI share RunAlgorithmOnTable, so for equal
  // configuration the values must agree bit for bit — including through the
  // JSON round-trip, because doubles are serialized with their shortest
  // round-tripping spelling (ISSUE 7 acceptance).
  std::string csv = "a,b,label\n";
  Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    csv += std::to_string(rng.NextDouble()) + "," +
           std::to_string(rng.NextDouble()) + "," +
           std::to_string(i % 2) + "\n";
  }

  // Direct path: registry instance against the shared table engine.
  Table table = ReadCsvString(csv).value();
  std::unique_ptr<AlgorithmInstance> algorithm =
      AlgorithmRegistry::Global().Create("tmc_shapley").value();
  ASSERT_TRUE(algorithm
                  ->ConfigureAll({{"num_permutations", "12"},
                                  {"seed", "5"},
                                  {"k", "3"}})
                  .ok());
  TableRunResult direct =
      RunAlgorithmOnTable(*algorithm, table, "label").value();

  // API path: same CSV and options through JobManager + HTTP JSON.
  JobManager manager;
  JobRequest request;
  request.algorithm = "tmc_shapley";
  request.label = "label";
  request.csv_data = csv;
  request.options = {{"num_permutations", "12"}, {"seed", "5"}, {"k", "3"}};
  std::string id = manager.Submit(request).value();
  JobSnapshot snapshot;
  for (int i = 0; i < 5000; ++i) {
    snapshot = manager.Get(id).value();
    if (snapshot.state != JobState::kQueued &&
        snapshot.state != JobState::kRunning) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(snapshot.state, JobState::kDone)
      << snapshot.error.ToString();

  // In-memory snapshot identical to the direct run.
  EXPECT_EQ(snapshot.estimate.values, direct.estimate.values);
  EXPECT_EQ(snapshot.estimate.std_errors, direct.estimate.std_errors);
  EXPECT_EQ(snapshot.estimate.utility_evaluations,
            direct.estimate.utility_evaluations);
  EXPECT_EQ(snapshot.ranked_rows, direct.ranked_rows);

  // And the HTTP JSON reproduces every double exactly.
  telemetry::HttpRequest poll;
  poll.method = "GET";
  poll.target = "/jobs/" + id;
  std::string response = manager.HandleHttp(poll);
  size_t split = response.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  json::Value parsed = json::Parse(response.substr(split + 4)).value();
  const json::Value* result = parsed.Find("result");
  ASSERT_NE(result, nullptr);
  const std::vector<json::Value>& values = result->Find("values")->items();
  ASSERT_EQ(values.size(), direct.estimate.values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i].as_number(), direct.estimate.values[i]) << i;
  }
  const std::vector<json::Value>& ranked =
      result->Find("ranked_rows")->items();
  ASSERT_EQ(ranked.size(), direct.ranked_rows.size());
  for (size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].as_number(),
              static_cast<double>(direct.ranked_rows[i]));
  }
}

// --- Generative thread-sweep (src/proptest harness) --------------------------
//
// The hand-picked scenarios above pin specific shapes (ragged waves, tiny
// validation sets). These properties sweep the same §8 bit-identity promise
// over *generated* scenarios and option draws, so shapes nobody thought to
// pin — one-class blobs, two-row training sets, budget/thread interactions —
// get exercised every run, and any failure shrinks to a pasteable CSV.

prop::CheckConfig SweepCheckConfig(int default_cases) {
  prop::CheckConfig config;
  config.num_cases = prop::DefaultNumCases(default_cases);
  config.ctest_target = "determinism_test";
  const testing::TestInfo* info =
      testing::UnitTest::GetInstance()->current_test_info();
  config.gtest_filter =
      std::string(info->test_suite_name()) + "." + info->name();
  return config;
}

std::string CompareThreadRuns(const ImportanceEstimate& one,
                              const ImportanceEstimate& many,
                              size_t threads) {
  if (one.values != many.values) {
    return "values diverge between 1 and " + std::to_string(threads) +
           " threads";
  }
  if (one.std_errors != many.std_errors) {
    return "std_errors diverge between 1 and " + std::to_string(threads) +
           " threads";
  }
  if (one.utility_evaluations != many.utility_evaluations) {
    return "utility_evaluations diverge: " +
           std::to_string(one.utility_evaluations) + " vs " +
           std::to_string(many.utility_evaluations);
  }
  return "";
}

TEST(GenerativeThreadSweepTest, BanzhafIsThreadCountInvariant) {
  struct Case {
    prop::ImportanceScenario scenario;
    BanzhafOptions options;
  };
  prop::Gen<prop::ImportanceScenario> scenario_gen =
      prop::AnyImportanceScenario(14, 5, 3, 3);
  prop::Gen<BanzhafOptions> options_gen = prop::AnyBanzhafOptions(32);
  prop::Gen<Case> gen(
      [scenario_gen, options_gen](Rng* rng) {
        Case c;
        c.scenario = scenario_gen.Sample(rng);
        c.options = options_gen.Sample(rng);
        return c;
      },
      [scenario_gen](const Case& c) {
        std::vector<Case> candidates;
        for (prop::ImportanceScenario& smaller :
             scenario_gen.Shrink(c.scenario)) {
          Case candidate = c;
          candidate.scenario = std::move(smaller);
          candidates.push_back(std::move(candidate));
        }
        return candidates;
      });
  std::string report = prop::CheckProperty<Case>(
      "banzhaf thread-count invariance", gen,
      [](const Case& c) -> std::string {
        ClassifierFactory factory = []() {
          return std::make_unique<KnnClassifier>(3);
        };
        std::vector<ImportanceEstimate> runs;
        for (size_t threads : {size_t{1}, size_t{8}}) {
          ModelAccuracyUtility utility(factory, c.scenario.train,
                                       c.scenario.valid);
          BanzhafOptions options = c.options;
          options.num_threads = threads;
          Result<ImportanceEstimate> run = BanzhafValues(utility, options);
          if (!run.ok()) return "run failed: " + run.status().ToString();
          runs.push_back(std::move(run).value());
        }
        return CompareThreadRuns(runs[0], runs[1], 8);
      },
      [](const Case& c) { return prop::DescribeScenario(c.scenario); },
      SweepCheckConfig(15));
  EXPECT_TRUE(report.empty()) << report;
}

TEST(GenerativeThreadSweepTest, BetaShapleyIsThreadCountInvariant) {
  struct Case {
    prop::ImportanceScenario scenario;
    BetaShapleyOptions options;
  };
  prop::Gen<prop::ImportanceScenario> scenario_gen =
      prop::AnyImportanceScenario(12, 5, 3, 3);
  prop::Gen<BetaShapleyOptions> options_gen = prop::AnyBetaOptions(8);
  prop::Gen<Case> gen(
      [scenario_gen, options_gen](Rng* rng) {
        Case c;
        c.scenario = scenario_gen.Sample(rng);
        c.options = options_gen.Sample(rng);
        return c;
      },
      [scenario_gen](const Case& c) {
        std::vector<Case> candidates;
        for (prop::ImportanceScenario& smaller :
             scenario_gen.Shrink(c.scenario)) {
          Case candidate = c;
          candidate.scenario = std::move(smaller);
          candidates.push_back(std::move(candidate));
        }
        return candidates;
      });
  std::string report = prop::CheckProperty<Case>(
      "beta-shapley thread-count invariance", gen,
      [](const Case& c) -> std::string {
        ClassifierFactory factory = []() {
          return std::make_unique<KnnClassifier>(3);
        };
        std::vector<ImportanceEstimate> runs;
        for (size_t threads : {size_t{1}, size_t{8}}) {
          ModelAccuracyUtility utility(factory, c.scenario.train,
                                       c.scenario.valid);
          BetaShapleyOptions options = c.options;
          options.num_threads = threads;
          Result<ImportanceEstimate> run = BetaShapleyValues(utility, options);
          if (!run.ok()) return "run failed: " + run.status().ToString();
          runs.push_back(std::move(run).value());
        }
        return CompareThreadRuns(runs[0], runs[1], 8);
      },
      [](const Case& c) { return prop::DescribeScenario(c.scenario); },
      SweepCheckConfig(12));
  EXPECT_TRUE(report.empty()) << report;
}

TEST(EstimatorValidationTest, ZeroBudgetIsInvalidArgument) {
  LambdaUtility game = NonAdditiveGame(4);
  TmcShapleyOptions tmc;
  tmc.num_permutations = 0;
  EXPECT_EQ(TmcShapleyValues(game, tmc).status().code(),
            StatusCode::kInvalidArgument);
  BanzhafOptions banzhaf;
  banzhaf.num_samples = 0;
  EXPECT_EQ(BanzhafValues(game, banzhaf).status().code(),
            StatusCode::kInvalidArgument);
  BetaShapleyOptions beta;
  beta.samples_per_unit = 0;
  EXPECT_EQ(BetaShapleyValues(game, beta).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace nde
