// The algorithm registry (src/nde/registry.h) is the single surface the CLI,
// the HTTP job API, and tests use to pick an estimator by name and set its
// knobs from strings. These tests pin its contract: every built-in is
// enumerable with a well-formed JSON catalog, option values round-trip
// through Configure/GetOption, type mismatches and unknown names fail with
// the right Status codes without mutating the instance, and a registry-driven
// run is bit-identical to calling the estimator directly.

#include <algorithm>
#include <atomic>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "datagen/synthetic.h"
#include "importance/game_values.h"
#include "importance/knn_shapley.h"
#include "importance/utility.h"
#include "ml/knn.h"
#include "nde/registry.h"
#include "json_checker.h"

namespace nde {
namespace {

const char* kBuiltins[] = {
    "loo",        "tmc_shapley", "banzhaf",         "beta_shapley",
    "knn_shapley", "datascope",  "influence",       "aum",
    "self_confidence",
};

std::unique_ptr<AlgorithmInstance> Make(const std::string& name) {
  Result<std::unique_ptr<AlgorithmInstance>> created =
      AlgorithmRegistry::Global().Create(name);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return created.ok() ? std::move(*created) : nullptr;
}

TEST(RegistryTest, AllBuiltinsRegistered) {
  for (const char* name : kBuiltins) {
    EXPECT_TRUE(AlgorithmRegistry::Global().Has(name)) << name;
    std::unique_ptr<AlgorithmInstance> instance = Make(name);
    EXPECT_EQ(instance->name(), name);
    EXPECT_FALSE(instance->summary().empty()) << name;
  }
}

TEST(RegistryTest, NamesSorted) {
  std::vector<std::string> names = AlgorithmRegistry::Global().Names();
  EXPECT_GE(names.size(), std::size(kBuiltins));
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RegistryTest, CreateUnknownIsNotFoundListingAvailable) {
  Result<std::unique_ptr<AlgorithmInstance>> created =
      AlgorithmRegistry::Global().Create("nope");
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kNotFound);
  // The error lists the available names so a typo is self-diagnosing.
  EXPECT_NE(created.status().message().find("tmc_shapley"), std::string::npos)
      << created.status().ToString();
}

TEST(RegistryTest, DescribeJsonWellFormedAndComplete) {
  std::string json = AlgorithmRegistry::Global().DescribeJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  for (const char* name : kBuiltins) {
    EXPECT_NE(json.find("\"" + std::string(name) + "\""), std::string::npos)
        << name;
  }
  // Options carry their typed schema.
  EXPECT_NE(json.find("\"num_permutations\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"int\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"double\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"bool\""), std::string::npos);
}

TEST(RegistryTest, DescribeTextMentionsEveryAlgorithm) {
  std::string text = AlgorithmRegistry::Global().DescribeText();
  for (const char* name : kBuiltins) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

TEST(RegistryTest, ConfigureRoundTripsThroughGetOption) {
  std::unique_ptr<AlgorithmInstance> tmc = Make("tmc_shapley");
  ASSERT_TRUE(tmc->Configure("num_permutations", "64").ok());
  ASSERT_TRUE(tmc->Configure("truncation_tolerance", "0.25").ok());
  ASSERT_TRUE(tmc->Configure("warm_start", "true").ok());
  ASSERT_TRUE(tmc->Configure("seed", "9001").ok());
  EXPECT_EQ(tmc->GetOption("num_permutations").value(), "64");
  EXPECT_EQ(tmc->GetOption("truncation_tolerance").value(), "0.25");
  EXPECT_EQ(tmc->GetOption("warm_start").value(), "true");
  EXPECT_EQ(tmc->GetOption("seed").value(), "9001");
}

TEST(RegistryTest, EveryDeclaredDefaultReconfigures) {
  // The advertised default of every option must itself be a valid Configure
  // value — otherwise the /algorithmz catalog lies about the wire format.
  for (const std::string& name : AlgorithmRegistry::Global().Names()) {
    std::unique_ptr<AlgorithmInstance> instance = Make(name);
    for (const OptionSpec& spec : instance->OptionSpecs()) {
      Status set = instance->Configure(spec.name, spec.default_value);
      EXPECT_TRUE(set.ok()) << name << "." << spec.name << " = '"
                            << spec.default_value << "': " << set.ToString();
      EXPECT_EQ(instance->GetOption(spec.name).value(), spec.default_value)
          << name << "." << spec.name;
    }
  }
}

TEST(RegistryTest, TypeMismatchIsInvalidArgumentAndLeavesValue) {
  std::unique_ptr<AlgorithmInstance> tmc = Make("tmc_shapley");
  std::string before = tmc->GetOption("num_permutations").value();

  Status bad_int = tmc->Configure("num_permutations", "many");
  EXPECT_EQ(bad_int.code(), StatusCode::kInvalidArgument);
  // Context names the option and algorithm.
  EXPECT_NE(bad_int.message().find("num_permutations"), std::string::npos);
  EXPECT_NE(bad_int.message().find("tmc_shapley"), std::string::npos);

  Status bad_bool = tmc->Configure("warm_start", "maybe");
  EXPECT_EQ(bad_bool.code(), StatusCode::kInvalidArgument);
  Status bad_double = tmc->Configure("truncation_tolerance", "0.5x");
  EXPECT_EQ(bad_double.code(), StatusCode::kInvalidArgument);
  Status negative = tmc->Configure("num_permutations", "-3");
  EXPECT_EQ(negative.code(), StatusCode::kInvalidArgument);
  Status zero = tmc->Configure("num_permutations", "0");
  EXPECT_EQ(zero.code(), StatusCode::kInvalidArgument);

  // A failed Configure leaves the instance unchanged.
  EXPECT_EQ(tmc->GetOption("num_permutations").value(), before);
}

TEST(RegistryTest, UnknownOptionIsNotFound) {
  std::unique_ptr<AlgorithmInstance> knn = Make("knn_shapley");
  Status unknown = knn->Configure("num_permutations", "8");
  EXPECT_EQ(unknown.code(), StatusCode::kNotFound);
  EXPECT_EQ(knn->GetOption("bogus").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(knn->HasOption("bogus"));
  EXPECT_TRUE(knn->HasOption("k"));
}

TEST(RegistryTest, ConfigureAllStopsAtFirstError) {
  std::unique_ptr<AlgorithmInstance> banzhaf = Make("banzhaf");
  Status applied = banzhaf->ConfigureAll(
      {{"num_samples", "64"}, {"seed", "oops"}});
  EXPECT_EQ(applied.code(), StatusCode::kInvalidArgument);
  Status ok = banzhaf->ConfigureAll({{"num_samples", "64"}, {"seed", "5"}});
  EXPECT_TRUE(ok.ok()) << ok.ToString();
  EXPECT_EQ(banzhaf->GetOption("num_samples").value(), "64");
}

MlDataset RegistryTrain() {
  BlobsOptions blob;
  blob.num_examples = 36;
  blob.num_features = 4;
  blob.seed = 42;
  blob.center_seed = 99;
  return MakeBlobs(blob);
}

MlDataset RegistryValidation() {
  BlobsOptions blob;
  blob.num_examples = 15;
  blob.num_features = 4;
  blob.seed = 43;
  blob.center_seed = 99;
  return MakeBlobs(blob);
}

TEST(RegistryTest, TmcShapleyBitIdenticalToDirectCall) {
  MlDataset train = RegistryTrain();
  MlDataset validation = RegistryValidation();

  std::unique_ptr<AlgorithmInstance> algorithm = Make("tmc_shapley");
  ASSERT_TRUE(algorithm
                  ->ConfigureAll({{"num_permutations", "16"},
                                  {"seed", "7"},
                                  {"k", "3"}})
                  .ok());
  RunInput input;
  input.train = &train;
  input.validation = &validation;
  Result<ImportanceEstimate> via_registry = algorithm->Run(input);
  ASSERT_TRUE(via_registry.ok()) << via_registry.status().ToString();

  ModelAccuracyUtility utility(
      []() { return std::make_unique<KnnClassifier>(3); }, train, validation);
  TmcShapleyOptions options;
  options.num_permutations = 16;
  options.seed = 7;
  Result<ImportanceEstimate> direct = TmcShapleyValues(utility, options);
  ASSERT_TRUE(direct.ok());

  EXPECT_EQ(via_registry->values, direct->values);
  EXPECT_EQ(via_registry->std_errors, direct->std_errors);
  EXPECT_EQ(via_registry->utility_evaluations, direct->utility_evaluations);
}

TEST(RegistryTest, KnnShapleyBitIdenticalToDirectCall) {
  MlDataset train = RegistryTrain();
  MlDataset validation = RegistryValidation();

  std::unique_ptr<AlgorithmInstance> algorithm = Make("knn_shapley");
  ASSERT_TRUE(algorithm->Configure("k", "3").ok());
  RunInput input;
  input.train = &train;
  input.validation = &validation;
  Result<ImportanceEstimate> via_registry = algorithm->Run(input);
  ASSERT_TRUE(via_registry.ok()) << via_registry.status().ToString();

  EstimatorOptions options;
  EXPECT_EQ(via_registry->values,
            KnnShapleyValues(train, validation, 3, options));
}

TEST(RegistryTest, MissingValidationIsInvalidArgument) {
  MlDataset train = RegistryTrain();
  std::unique_ptr<AlgorithmInstance> loo = Make("loo");
  RunInput input;
  input.train = &train;
  Result<ImportanceEstimate> run = loo->Run(input);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, PreArmedCancelFlagCancelsBeforeStart) {
  MlDataset train = RegistryTrain();
  MlDataset validation = RegistryValidation();
  std::unique_ptr<AlgorithmInstance> tmc = Make("tmc_shapley");
  std::atomic<bool> cancel{true};
  tmc->SetCancelFlag(&cancel);
  RunInput input;
  input.train = &train;
  input.validation = &validation;
  Result<ImportanceEstimate> run = tmc->Run(input);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
}

TEST(RegistryTest, DuplicateRegistrationIsAlreadyExists) {
  class FakeLoo : public AlgorithmInstance {
   public:
    FakeLoo() : AlgorithmInstance("loo", "duplicate") {}
    Result<ImportanceEstimate> Run(const RunInput&) const override {
      return ImportanceEstimate{};
    }
  };
  Status dup = AlgorithmRegistry::Global().Register(
      []() { return std::make_unique<FakeLoo>(); });
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace nde
