// The async importance-job API (src/nde/job_api.h): submit/poll/cancel
// lifecycle, HTTP request handling, bounded-queue backpressure (429), error
// isolation (a failing job flips /healthz without poisoning later jobs), and
// RunReport artifacts. Uses a test-registered blocking algorithm to make
// queue states deterministic.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/json.h"
#include "common/status.h"
#include "common/trace_context.h"
#include "nde/job_api.h"
#include "nde/registry.h"
#include "telemetry/health.h"
#include "telemetry/http_exporter.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "json_checker.h"

namespace nde {
namespace {

/// Inline CSV small enough for fast jobs but big enough for the 1-in-5
/// validation split to be non-empty.
const char kCsv[] =
    "a,b,label\n"
    "1,2,0\n2,1,1\n3,3,0\n4,1,1\n5,2,0\n"
    "1,3,1\n2,2,0\n3,1,1\n4,4,0\n5,1,1\n"
    "1,1,0\n2,4,1\n3,2,0\n4,2,1\n5,3,0\n"
    "1,4,1\n2,3,0\n3,4,1\n4,3,0\n5,4,1\n";

JobRequest QuickRequest() {
  JobRequest request;
  request.algorithm = "knn_shapley";
  request.label = "label";
  request.csv_data = kCsv;
  request.options = {{"k", "3"}};
  return request;
}

/// Polls until the job leaves queued/running (all jobs here finish fast).
JobSnapshot AwaitDone(const JobManager& manager, const std::string& id) {
  for (int i = 0; i < 2000; ++i) {
    JobSnapshot snapshot = manager.Get(id).value();
    if (snapshot.state != JobState::kQueued &&
        snapshot.state != JobState::kRunning) {
      return snapshot;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ADD_FAILURE() << "job " << id << " never finished";
  return manager.Get(id).value();
}

TEST(JobApiTest, SubmitPollResultLifecycle) {
  JobManager manager;
  Result<std::string> id = manager.Submit(QuickRequest());
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  JobSnapshot done = AwaitDone(manager, *id);
  EXPECT_EQ(done.state, JobState::kDone);
  EXPECT_TRUE(done.error.ok());
  EXPECT_EQ(done.algorithm, "knn_shapley");
  // 20 rows -> 16 train / 4 validation under the engine's 1-in-5 split.
  EXPECT_EQ(done.train_rows, 16u);
  EXPECT_EQ(done.valid_rows, 4u);
  EXPECT_EQ(done.estimate.values.size(), 16u);
  EXPECT_EQ(done.ranked_rows.size(), 16u);
  EXPECT_EQ(done.progress_completed, done.progress_total);
}

TEST(JobApiTest, SubmitValidatesUpFront) {
  JobManager manager;

  JobRequest no_source = QuickRequest();
  no_source.csv_data.clear();
  EXPECT_EQ(manager.Submit(no_source).status().code(),
            StatusCode::kInvalidArgument);

  JobRequest both = QuickRequest();
  both.csv_path = "/tmp/x.csv";
  EXPECT_EQ(manager.Submit(both).status().code(),
            StatusCode::kInvalidArgument);

  JobRequest unknown_algorithm = QuickRequest();
  unknown_algorithm.algorithm = "nope";
  EXPECT_EQ(manager.Submit(unknown_algorithm).status().code(),
            StatusCode::kNotFound);

  JobRequest bad_option = QuickRequest();
  bad_option.options = {{"k", "zero"}};
  EXPECT_EQ(manager.Submit(bad_option).status().code(),
            StatusCode::kInvalidArgument);

  JobRequest unknown_option = QuickRequest();
  unknown_option.options = {{"num_permutations", "8"}};
  EXPECT_EQ(manager.Submit(unknown_option).status().code(),
            StatusCode::kNotFound);

  EXPECT_EQ(manager.Get("job-99").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.Cancel("job-99").code(), StatusCode::kNotFound);
}

/// A registry algorithm that blocks until its cancel flag rises — the only
/// way to hold a worker deterministically for queue/cancel tests.
class BlockingAlgorithm : public AlgorithmInstance {
 public:
  BlockingAlgorithm()
      : AlgorithmInstance("test_blocking", "blocks until cancelled") {}
  Result<ImportanceEstimate> Run(const RunInput&) const override {
    while (!cancel_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::Cancelled("cancelled mid-run");
  }
};

void EnsureBlockingRegistered() {
  static bool once = [] {
    Status registered = AlgorithmRegistry::Global().Register(
        []() { return std::make_unique<BlockingAlgorithm>(); });
    return registered.ok();
  }();
  ASSERT_TRUE(once);
}

JobRequest BlockingRequest() {
  JobRequest request = QuickRequest();
  request.algorithm = "test_blocking";
  request.options.clear();
  return request;
}

TEST(JobApiTest, FullQueueRefusesWithResourceExhausted) {
  EnsureBlockingRegistered();
  JobApiOptions options;
  options.num_workers = 1;
  options.max_queued = 1;
  JobManager manager(options);

  // First job occupies the single worker; wait until it actually runs so the
  // queue accounting is deterministic.
  std::string running = manager.Submit(BlockingRequest()).value();
  for (int i = 0; i < 2000 && manager.Get(running).value().state !=
                                  JobState::kRunning;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(manager.Get(running).value().state, JobState::kRunning);

  // Second fills the queue; third must bounce with backpressure.
  std::string queued = manager.Submit(BlockingRequest()).value();
  Result<std::string> refused = manager.Submit(BlockingRequest());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);

  // Cancel both: the queued job only advances once the worker reaches it, so
  // the runner must be released first.
  ASSERT_TRUE(manager.Cancel(queued).ok());
  ASSERT_TRUE(manager.Cancel(running).ok());
  JobSnapshot stopped = AwaitDone(manager, running);
  EXPECT_EQ(stopped.state, JobState::kCancelled);
  JobSnapshot cancelled = AwaitDone(manager, queued);
  EXPECT_EQ(cancelled.state, JobState::kCancelled);
  EXPECT_EQ(cancelled.error.code(), StatusCode::kCancelled);
  EXPECT_TRUE(cancelled.estimate.values.empty());

  // With the queue drained, a new submission is accepted again.
  Result<std::string> retried = manager.Submit(QuickRequest());
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
}

TEST(JobApiTest, DestructorCancelsOutstandingJobs) {
  EnsureBlockingRegistered();
  JobApiOptions options;
  options.num_workers = 1;
  options.max_queued = 4;
  {
    JobManager manager(options);
    manager.Submit(BlockingRequest()).value();
    manager.Submit(BlockingRequest()).value();
    // Destructor must cancel the runner and the queued job and drain.
  }
  SUCCEED();
}

TEST(JobApiTest, FailingJobDegradesHealthAndLaterSuccessRestoresIt) {
  telemetry::SetHealthy();
  failpoint::DisarmAll();
  // Every utility evaluation fails: the estimator aborts on the first wave
  // and the job must surface the injected error, not a partial result.
  ASSERT_TRUE(failpoint::Arm("utility.evaluate=error(io_error:disk gone)").ok());

  JobManager manager;
  JobRequest failing = QuickRequest();
  failing.algorithm = "loo";
  failing.options = {{"max_retries", "0"}};
  std::string id = manager.Submit(failing).value();
  JobSnapshot failed = AwaitDone(manager, id);
  failpoint::DisarmAll();

  EXPECT_EQ(failed.state, JobState::kError);
  EXPECT_FALSE(failed.error.ok());
  EXPECT_TRUE(failed.estimate.values.empty());
  EXPECT_FALSE(telemetry::IsHealthy());

  // The manager keeps serving: a clean job succeeds and restores /healthz.
  std::string clean = manager.Submit(QuickRequest()).value();
  JobSnapshot done = AwaitDone(manager, clean);
  EXPECT_EQ(done.state, JobState::kDone);
  EXPECT_TRUE(telemetry::IsHealthy());
}

TEST(JobApiTest, WritesRunReportArtifact) {
  JobApiOptions options;
  options.artifact_dir = ::testing::TempDir() + "nde_job_artifacts";
  JobManager manager(options);
  std::string id = manager.Submit(QuickRequest()).value();
  JobSnapshot done = AwaitDone(manager, id);
  ASSERT_EQ(done.state, JobState::kDone);
  ASSERT_FALSE(done.artifact_path.empty());

  std::FILE* f = std::fopen(done.artifact_path.c_str(), "r");
  ASSERT_NE(f, nullptr) << done.artifact_path;
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  JsonChecker checker(contents);
  EXPECT_TRUE(checker.Valid());
  EXPECT_NE(contents.find("knn_shapley"), std::string::npos);
}

// --- HTTP face ---------------------------------------------------------------

std::string StatusLine(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

std::string Body(const std::string& response) {
  size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

telemetry::HttpRequest Request(const std::string& method,
                               const std::string& target,
                               const std::string& body = "") {
  telemetry::HttpRequest request;
  request.method = method;
  request.target = target;
  // Mirror the wire parser: the query string arrives split off the target.
  size_t query = request.target.find('?');
  if (query != std::string::npos) {
    request.query = request.target.substr(query + 1);
    request.target.resize(query);
  }
  request.body = body;
  return request;
}

TEST(JobApiHttpTest, AlgorithmzServesTheCatalog) {
  JobManager manager;
  std::string response = manager.HandleHttp(Request("GET", "/algorithmz"));
  EXPECT_NE(StatusLine(response).find("200"), std::string::npos);
  std::string body = Body(response);
  JsonChecker checker(body);
  EXPECT_TRUE(checker.Valid());
  EXPECT_NE(body.find("\"tmc_shapley\""), std::string::npos);
  EXPECT_NE(body.find("\"num_permutations\""), std::string::npos);

  std::string post = manager.HandleHttp(Request("POST", "/algorithmz"));
  EXPECT_NE(StatusLine(post).find("405"), std::string::npos);
}

TEST(JobApiHttpTest, PostPollFetchLifecycle) {
  JobManager manager;
  std::string body =
      "{\"algorithm\":\"knn_shapley\",\"label\":\"label\",\"csv\":";
  // JSON-encode the CSV payload.
  std::string csv;
  for (char c : std::string(kCsv)) {
    if (c == '\n') {
      csv += "\\n";
    } else {
      csv += c;
    }
  }
  body += "\"" + csv + "\",\"options\":{\"k\":3}}";

  std::string response = manager.HandleHttp(Request("POST", "/jobs", body));
  ASSERT_NE(StatusLine(response).find("202"), std::string::npos) << response;
  json::Value accepted = json::Parse(Body(response)).value();
  const json::Value* id = accepted.Find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(accepted.Find("state")->as_string(), "queued");

  // Poll over HTTP until done.
  std::string job_path = "/jobs/" + id->as_string();
  json::Value snapshot = json::Value::Null();
  for (int i = 0; i < 2000; ++i) {
    std::string poll = manager.HandleHttp(Request("GET", job_path));
    ASSERT_NE(StatusLine(poll).find("200"), std::string::npos);
    snapshot = json::Parse(Body(poll)).value();
    const std::string& state = snapshot.Find("state")->as_string();
    if (state != "queued" && state != "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(snapshot.Find("state")->as_string(), "done");
  const json::Value* result = snapshot.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->Find("values")->items().size(), 16u);
  EXPECT_EQ(result->Find("ranked_rows")->items().size(), 16u);
  EXPECT_EQ(result->Find("train_rows")->as_number(), 16.0);

  // The job list mentions it; summaries omit the result payload.
  std::string list = manager.HandleHttp(Request("GET", "/jobs"));
  EXPECT_NE(Body(list).find(id->as_string()), std::string::npos);
  EXPECT_EQ(Body(list).find("\"values\""), std::string::npos);
}

TEST(JobApiHttpTest, BadRequestsGetStructuredErrors) {
  JobManager manager;

  std::string malformed = manager.HandleHttp(Request("POST", "/jobs", "{"));
  EXPECT_NE(StatusLine(malformed).find("400"), std::string::npos);
  EXPECT_NE(Body(malformed).find("\"error\""), std::string::npos);

  std::string unknown_field = manager.HandleHttp(Request(
      "POST", "/jobs",
      "{\"algorithm\":\"loo\",\"label\":\"y\",\"csv\":\"x\",\"oops\":1}"));
  EXPECT_NE(StatusLine(unknown_field).find("400"), std::string::npos);

  std::string unknown_algorithm = manager.HandleHttp(Request(
      "POST", "/jobs",
      "{\"algorithm\":\"nope\",\"label\":\"y\",\"csv\":\"a,y\\n1,0\\n\"}"));
  EXPECT_NE(StatusLine(unknown_algorithm).find("404"), std::string::npos);
  EXPECT_NE(Body(unknown_algorithm).find("not_found"), std::string::npos);

  std::string missing_job = manager.HandleHttp(Request("GET", "/jobs/job-9"));
  EXPECT_NE(StatusLine(missing_job).find("404"), std::string::npos);

  std::string bad_method = manager.HandleHttp(Request("PUT", "/jobs"));
  EXPECT_NE(StatusLine(bad_method).find("405"), std::string::npos);
}

TEST(JobApiHttpTest, FullQueueAnswers429) {
  EnsureBlockingRegistered();
  JobApiOptions options;
  options.num_workers = 1;
  options.max_queued = 1;
  JobManager manager(options);

  std::string running = manager.Submit(BlockingRequest()).value();
  for (int i = 0; i < 2000 && manager.Get(running).value().state !=
                                  JobState::kRunning;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  manager.Submit(BlockingRequest()).value();

  std::string body =
      "{\"algorithm\":\"test_blocking\",\"label\":\"label\",\"csv\":\"a\"}";
  std::string refused = manager.HandleHttp(Request("POST", "/jobs", body));
  EXPECT_NE(StatusLine(refused).find("429"), std::string::npos) << refused;
  EXPECT_NE(Body(refused).find("resource_exhausted"), std::string::npos);
}

TEST(JobApiHttpTest, DeleteCancelsARunningJob) {
  EnsureBlockingRegistered();
  JobManager manager;
  std::string id = manager.Submit(BlockingRequest()).value();
  for (int i = 0; i < 2000 &&
                  manager.Get(id).value().state != JobState::kRunning;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::string response = manager.HandleHttp(Request("DELETE", "/jobs/" + id));
  EXPECT_NE(StatusLine(response).find("200"), std::string::npos);

  JobSnapshot stopped = AwaitDone(manager, id);
  EXPECT_EQ(stopped.state, JobState::kCancelled);
  std::string poll = manager.HandleHttp(Request("GET", "/jobs/" + id));
  EXPECT_NE(Body(poll).find("\"cancelled\""), std::string::npos);
}

// --- Trace-context round-trip ------------------------------------------------

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return "";
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  return contents;
}

TEST(JobApiHttpTest, ExternalTraceparentRoundTripsThroughEveryJobView) {
  telemetry::SetEnabled(true);
  telemetry::TraceBuffer::Global().Clear();
  JobApiOptions options;
  options.artifact_dir = ::testing::TempDir() + "nde_trace_artifacts";
  JobManager manager(options);
  telemetry::HttpExporter exporter;
  exporter.SetHandler([&manager](const telemetry::HttpRequest& request) {
    return manager.HandleHttp(request);
  });

  std::string csv;
  for (char c : std::string(kCsv)) {
    csv += c == '\n' ? std::string("\\n") : std::string(1, c);
  }
  std::string body =
      "{\"algorithm\":\"knn_shapley\",\"label\":\"label\",\"csv\":\"" + csv +
      "\",\"options\":{\"k\":3}}";

  // Submit through the Dispatch ingress with an externally minted traceparent.
  const std::string kTraceId = "4bf92f3577b34da6a3ce929d0e0e4736";
  telemetry::HttpRequest post = Request("POST", "/jobs", body);
  post.traceparent = "00-" + kTraceId + "-00f067aa0ba902b7-01";
  std::string response = exporter.Dispatch(post);
  ASSERT_NE(StatusLine(response).find("202"), std::string::npos) << response;
  std::string id = json::Parse(Body(response)).value().Find("id")->as_string();

  JobSnapshot done = AwaitDone(manager, id);
  ASSERT_EQ(done.state, JobState::kDone) << done.error.ToString();
  EXPECT_EQ(TraceIdHex(done.trace), kTraceId);

  // The external id propagated verbatim into the poll JSON...
  std::string poll = Body(manager.HandleHttp(Request("GET", "/jobs/" + id)));
  EXPECT_NE(poll.find("\"trace_id\":\"" + kTraceId + "\""), std::string::npos)
      << poll;

  // ...the span view (estimator/pool spans recorded under the job's trace,
  // with parent linkage fields)...
  std::string tracez =
      manager.HandleHttp(Request("GET", "/jobs/" + id + "/tracez"));
  EXPECT_NE(StatusLine(tracez).find("200"), std::string::npos);
  std::string tracez_body = Body(tracez);
  EXPECT_TRUE(JsonChecker(tracez_body).Valid()) << tracez_body;
  EXPECT_NE(tracez_body.find("\"trace_id\":\"" + kTraceId + "\""),
            std::string::npos)
      << tracez_body;
#if NDE_TELEMETRY_ENABLED
  // Span macros compile out with NDE_TELEMETRY=OFF; the view itself (and
  // the trace id on it) must work either way.
  EXPECT_NE(tracez_body.find("\"spans\":[{"), std::string::npos)
      << "job left no spans in the trace buffer: " << tracez_body;
  EXPECT_NE(tracez_body.find("\"parent_span_id\""), std::string::npos);
#endif

  // ...the folded flamegraph view...
  std::string folded = manager.HandleHttp(
      Request("GET", "/jobs/" + id + "/tracez?folded=1"));
  EXPECT_NE(StatusLine(folded).find("200"), std::string::npos);
  EXPECT_NE(folded.find("text/plain"), std::string::npos);

  // ...the wave timeline...
  std::string eventz =
      manager.HandleHttp(Request("GET", "/jobs/" + id + "/eventz"));
  EXPECT_NE(StatusLine(eventz).find("200"), std::string::npos);
  std::string eventz_body = Body(eventz);
  EXPECT_TRUE(JsonChecker(eventz_body).Valid()) << eventz_body;
  EXPECT_NE(eventz_body.find("\"trace_id\":\"" + kTraceId + "\""),
            std::string::npos)
      << eventz_body;
  EXPECT_NE(eventz_body.find("\"waves\":[{\"wave\":1,"), std::string::npos)
      << eventz_body;

  // ...the RunReport artifact and its sibling events file on disk.
  ASSERT_FALSE(done.artifact_path.empty());
  std::string report = ReadWholeFile(done.artifact_path);
  EXPECT_NE(report.find("\"trace_id\":\"" + kTraceId + "\""),
            std::string::npos)
      << done.artifact_path;
  std::string events_file =
      ReadWholeFile(options.artifact_dir + "/" + id + ".events.json");
  EXPECT_TRUE(JsonChecker(events_file).Valid()) << events_file;
  EXPECT_NE(events_file.find("\"trace_id\":\"" + kTraceId + "\""),
            std::string::npos);

  // Unknown views 404 without disturbing the job.
  std::string unknown =
      manager.HandleHttp(Request("GET", "/jobs/" + id + "/nope"));
  EXPECT_NE(StatusLine(unknown).find("404"), std::string::npos);

  telemetry::SetEnabled(false);
  telemetry::TraceBuffer::Global().Clear();
}

TEST(JobApiTest, JobsWithoutIngressContextMintTheirOwnTrace) {
  JobManager manager;
  std::string id = manager.Submit(QuickRequest()).value();
  JobSnapshot done = AwaitDone(manager, id);
  ASSERT_EQ(done.state, JobState::kDone);
  // Even without a caller-supplied traceparent every job owns a nonzero
  // trace id, so logs/metrics attribution never silently degrades.
  EXPECT_TRUE(done.trace.has_trace());
  EXPECT_EQ(done.trace.job_id, id);
  EXPECT_EQ(done.trace.algorithm, "knn_shapley");
}

}  // namespace
}  // namespace nde
