#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/status.h"
#include "common/trace_context.h"
#include "importance/subset_cache.h"

namespace nde {
namespace {

// --- Thread-count policy ----------------------------------------------------

TEST(ThreadPolicyTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(HardwareConcurrency(), 1u);
}

TEST(ThreadPolicyTest, SetDefaultOverridesAndZeroRestores) {
  SetDefaultNumThreads(3);
  EXPECT_EQ(DefaultNumThreads(), 3u);
  EXPECT_EQ(ResolveNumThreads(0), 3u);
  EXPECT_EQ(ResolveNumThreads(7), 7u);
  SetDefaultNumThreads(0);
  EXPECT_EQ(DefaultNumThreads(), HardwareConcurrency());
}

TEST(ThreadPolicyTest, PlannedNeverExceedsRange) {
  EXPECT_EQ(PlannedNumThreads(/*range=*/2, /*num_threads=*/8), 2u);
  EXPECT_EQ(PlannedNumThreads(/*range=*/100, /*num_threads=*/4), 4u);
  EXPECT_EQ(PlannedNumThreads(/*range=*/0, /*num_threads=*/4), 1u);
}

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, DrainsOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No WaitIdle: the destructor must still run every queued task.
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, WaitIdleRethrowsTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  // The error is consumed: the pool stays usable afterwards.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

// --- ParallelFor ------------------------------------------------------------

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  size_t used = ParallelFor(
      0, hits.size(), [&](size_t i) { hits[i].fetch_add(1); }, 4);
  EXPECT_GE(used, 1u);
  EXPECT_LE(used, 4u);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  std::atomic<int> counter{0};
  ParallelFor(5, 5, [&](size_t) { counter.fetch_add(1); }, 4);
  EXPECT_EQ(counter.load(), 0);
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  size_t used =
      ParallelFor(0, seen.size(),
                  [&](size_t i) { seen[i] = std::this_thread::get_id(); }, 1);
  EXPECT_EQ(used, 1u);
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelForTest, PropagatesBodyException) {
  EXPECT_THROW(ParallelFor(
                   0, 100,
                   [](size_t i) {
                     if (i == 17) throw std::runtime_error("body failed");
                   },
                   4),
               std::runtime_error);
}

// --- SeedSequence -----------------------------------------------------------

TEST(SeedSequenceTest, SeedsAreDistinctAndStable) {
  SeedSequence seeds(42);
  EXPECT_EQ(seeds.base_seed(), 42u);
  std::set<uint64_t> unique;
  for (uint64_t t = 0; t < 1000; ++t) unique.insert(seeds.SeedFor(t));
  EXPECT_EQ(unique.size(), 1000u);  // No collisions among nearby tasks.
  // Same (base seed, task index) always maps to the same seed.
  EXPECT_EQ(seeds.SeedFor(7), SeedSequence(42).SeedFor(7));
  EXPECT_NE(seeds.SeedFor(7), SeedSequence(43).SeedFor(7));
}

TEST(SeedSequenceTest, RngForMatchesManualConstruction) {
  SeedSequence seeds(99);
  Rng derived = seeds.RngFor(5);
  Rng manual(seeds.SeedFor(5));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(derived.NextUint64(), manual.NextUint64());
  }
}

TEST(SeedSequenceTest, StreamsAreUncorrelatedAcrossTasks) {
  // Adjacent task indices must not produce obviously related streams: the
  // first draws of tasks 0..63 should all differ.
  SeedSequence seeds(1);
  std::set<uint64_t> first_draws;
  for (uint64_t t = 0; t < 64; ++t) {
    first_draws.insert(seeds.RngFor(t).NextUint64());
  }
  EXPECT_EQ(first_draws.size(), 64u);
}

// --- SubsetCache under concurrency ------------------------------------------
//
// Hammers one sharded cache from a thread pool (tools/check.sh --tsan runs
// this test under ThreadSanitizer). The value function is a pure function of
// the subset, so any lost update, torn read, or cross-key collision would
// surface as a value mismatch.

TEST(ParallelForTest, SubsetCacheConcurrentGetOrCompute) {
  SubsetCacheOptions options;
  options.num_shards = 4;
  options.max_entries = 64;  // Small enough that eviction races are exercised.
  SubsetCache cache(options);

  auto expected_value = [](size_t pattern) {
    return static_cast<double>(pattern * 7 + 1);
  };
  std::atomic<size_t> mismatches{0};
  ParallelFor(
      0, 4000,
      [&](size_t i) {
        // A small hot set guarantees hits; interleaved unique cold keys keep
        // every shard at capacity so eviction runs concurrently with lookups.
        size_t pattern = (i % 5 == 0) ? 1000 + i : i % 13;
        std::vector<size_t> subset = {pattern, pattern + 100, pattern + 200};
        if (i % 2 == 1) std::swap(subset[0], subset[2]);  // Unsorted submissions.
        double got =
            cache.GetOrCompute(subset, [&] { return expected_value(pattern); });
        if (got != expected_value(pattern)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*num_threads=*/4);

  EXPECT_EQ(mismatches.load(), 0u);
  SubsetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4000u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(stats.entries, options.max_entries);
}

// --- Fault propagation ------------------------------------------------------

/// Scoped disarm: fault-injection tests must not leak armed points into the
/// rest of the suite.
struct FailpointGuard {
  FailpointGuard() {
    failpoint::DisarmAll();
    failpoint::ResetStats();
  }
  ~FailpointGuard() {
    failpoint::DisarmAll();
    failpoint::ResetStats();
  }
};

TEST(ThreadPoolTest, InjectedFaultPropagatesThroughWaitIdle) {
  FailpointGuard guard;
  // Kill exactly one task: the third one a worker picks up.
  ASSERT_TRUE(
      failpoint::Arm("threadpool.task=error(unavailable:worker fault)#3x1")
          .ok());
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  bool threw = false;
  try {
    pool.WaitIdle();
  } catch (const failpoint::InjectedFault& fault) {
    threw = true;
    EXPECT_EQ(fault.status().code(), StatusCode::kUnavailable);
    EXPECT_EQ(fault.status().message(), "worker fault");
  }
  EXPECT_TRUE(threw);
  // The killed task never ran its body; the other seven drained normally.
  EXPECT_EQ(counter.load(), 7);
  // The error latch is one-shot: the pool is healthy again and keeps
  // accepting work.
  pool.WaitIdle();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolTest, DrainsCleanlyOnDestructionAfterFault) {
  FailpointGuard guard;
  ASSERT_TRUE(failpoint::Arm("threadpool.task=error(internal:boom)#1x1").ok());
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No WaitIdle: the destructor must drain every remaining task and must
    // not terminate on the latched exception.
  }
  EXPECT_EQ(counter.load(), 31);
}

TEST(TryParallelForTest, MapsInjectedFaultToTypedStatus) {
  FailpointGuard guard;
  ASSERT_TRUE(
      failpoint::Arm("threadpool.task=error(unavailable:worker fault)").ok());
  std::vector<int> out(64, 0);
  Result<size_t> used = TryParallelFor(
      0, out.size(), [&](size_t i) { out[i] = 1; }, 4, "fault_test");
  ASSERT_FALSE(used.ok());
  EXPECT_EQ(used.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(used.status().message(), "worker fault");
  // Disarmed, the same call succeeds and completes every index.
  failpoint::DisarmAll();
  Result<size_t> clean = TryParallelFor(
      0, out.size(), [&](size_t i) { out[i] = 1; }, 4, "fault_test");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(std::count(out.begin(), out.end(), 1),
            static_cast<ptrdiff_t>(out.size()));
}

// --- Trace-context propagation ----------------------------------------------

TEST(ThreadPoolTest, SubmitPropagatesTraceContextToWorkers) {
  ThreadPool pool(2);
  TraceContext context;
  context.trace_id_hi = 0xaaULL;
  context.trace_id_lo = 0xbbULL;
  context.span_id = 42;
  context.job_id = "job-9";
  context.algorithm = "tmc";
  TraceContext seen;
  {
    ScopedTraceContext scope{context};
    pool.Submit([&seen] { seen = CurrentTraceContext(); });
    pool.WaitIdle();
  }
  EXPECT_EQ(seen.trace_id_hi, 0xaaULL);
  EXPECT_EQ(seen.trace_id_lo, 0xbbULL);
  EXPECT_EQ(seen.span_id, 42u);
  EXPECT_EQ(seen.job_id, "job-9");
  EXPECT_EQ(seen.algorithm, "tmc");
  // A task submitted outside any context runs without one.
  bool worker_had_context = true;
  pool.Submit([&worker_had_context] { worker_had_context = HasTraceContext(); });
  pool.WaitIdle();
  EXPECT_FALSE(worker_had_context);
}

TEST(ParallelForTest, BodiesInheritTheCallersTraceContext) {
  TraceContext context;
  context.trace_id_hi = 1;
  context.trace_id_lo = 2;
  context.job_id = "job-x";
  ScopedTraceContext scope{context};
  std::vector<int> attributed(32, 0);
  ParallelFor(
      0, attributed.size(),
      [&](size_t i) {
        const TraceContext& current = CurrentTraceContext();
        attributed[i] = current.trace_id_hi == 1 && current.trace_id_lo == 2 &&
                                current.job_id == "job-x"
                            ? 1
                            : 0;
      },
      4, "ctx_test");
  EXPECT_EQ(std::count(attributed.begin(), attributed.end(), 1),
            static_cast<ptrdiff_t>(attributed.size()));
}

TEST(TryParallelForTest, MapsBodyExceptionToInternalStatus) {
  Result<size_t> used = TryParallelFor(
      0, 16,
      [](size_t i) {
        if (i == 7) throw std::runtime_error("index 7 exploded");
      },
      4, "throw_test");
  ASSERT_FALSE(used.ok());
  EXPECT_EQ(used.status().code(), StatusCode::kInternal);
  EXPECT_NE(used.status().message().find("index 7 exploded"),
            std::string::npos);
}

}  // namespace
}  // namespace nde
