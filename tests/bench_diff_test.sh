#!/usr/bin/env bash
# Contract test for the bench_diff regression gate: exit 0 when every watched
# counter is within threshold, 1 on a regression beyond it, 2 on unusable
# input. Fixtures mimic the JSON-lines bench_util::ReportJson writes.
# Registered with ctest.
set -u

DIFF="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT
cd "$WORKDIR"

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# make_results FILE EVALS_PER_SEC HIT_RATE P99_MS — one stamped record per
# watched benchmark, in the exact shape ReportJson emits.
make_results() {
  cat > "$1" <<EOF
{"name": "BM_TmcUtilityFastPath/fast:1", "ms": 1.25, "utility_evals_per_sec": $2, "git_rev": "fixture", "date": "2026-08-07", "cpus": 1, "telemetry": "off"}
{"name": "BM_BanzhafSubsetCache/warm:1", "ms": 0.5, "cache_hit_rate": $3, "git_rev": "fixture", "date": "2026-08-07", "cpus": 1, "telemetry": "off"}
{"name": "BM_TmcWaveLatency", "ms": 4.0, "wave_p99_ms": $4, "git_rev": "fixture", "date": "2026-08-07", "cpus": 1, "telemetry": "off"}
EOF
}

make_results base.json 1000 0.99 4.0

# --- identical runs pass ------------------------------------------------------
make_results cand.json 1000 0.99 4.0
"$DIFF" --baseline base.json --candidate cand.json > /dev/null \
    || fail "identical candidate should exit 0"

# --- small drift within the threshold passes ----------------------------------
make_results cand.json 950 0.95 4.2
"$DIFF" --baseline base.json --candidate cand.json > /dev/null \
    || fail "5% drift should be within the default 15% threshold"

# --- improvements pass ---------------------------------------------------------
make_results cand.json 2000 1.0 2.0
"$DIFF" --baseline base.json --candidate cand.json > /dev/null \
    || fail "improvement should exit 0"

# --- a 20% throughput regression fails ----------------------------------------
make_results cand.json 800 0.99 4.0
"$DIFF" --baseline base.json --candidate cand.json > diff_out.txt
[ $? -eq 1 ] || fail "20% throughput regression should exit 1"
grep -q "utility_evals_per_sec" diff_out.txt \
    || fail "regression report does not name the regressed counter"

# --- a 20% latency regression fails (lower-is-better counter) -----------------
make_results cand.json 1000 0.99 4.8
"$DIFF" --baseline base.json --candidate cand.json > /dev/null
[ $? -eq 1 ] || fail "20% wave_p99_ms regression should exit 1"

# --- a loose threshold lets the same candidate through ------------------------
make_results cand.json 800 0.99 4.8
"$DIFF" --baseline base.json --candidate cand.json --threshold 0.5 \
    > /dev/null || fail "20% regression should pass a 50% threshold"

# --- last record per name wins (append-only results file) ---------------------
make_results cand.json 100 0.1 40.0
make_results fresh.json 1000 0.99 4.0
cat fresh.json >> cand.json
"$DIFF" --baseline base.json --candidate cand.json > /dev/null \
    || fail "stale earlier records should be shadowed by the last run"

# --- a watched benchmark missing from the candidate is an error ---------------
grep -v BM_TmcWaveLatency fresh.json > cand.json
"$DIFF" --baseline base.json --candidate cand.json > /dev/null 2>&1
[ $? -eq 2 ] || fail "candidate missing a guarded benchmark should exit 2"

# --- unreadable input is an error ---------------------------------------------
"$DIFF" --baseline base.json --candidate does_not_exist.json > /dev/null 2>&1
[ $? -eq 2 ] || fail "missing candidate file should exit 2"
"$DIFF" --baseline base.json > /dev/null 2>&1
[ $? -eq 2 ] || fail "missing --candidate flag should exit 2"
"$DIFF" --baseline base.json --candidate fresh.json --threshold -1 \
    > /dev/null 2>&1
[ $? -eq 2 ] || fail "negative threshold should exit 2"

echo "bench_diff test passed"
