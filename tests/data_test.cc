#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/status.h"
#include "data/csv.h"
#include "data/table.h"
#include "data/value.h"

namespace nde {
namespace {

// --- Value --------------------------------------------------------------------

TEST(ValueTest, NullSemantics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_double());
  EXPECT_EQ(v, Value::Null());
  EXPECT_EQ(v.ToString(), "");
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value(int64_t{7}).as_int64(), 7);
  EXPECT_EQ(Value(7).as_int64(), 7);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_EQ(Value(std::string("hey")).as_string(), "hey");
}

TEST(ValueTest, AsNumericWidensInt) {
  EXPECT_EQ(Value(3).AsNumeric(), 3.0);
  EXPECT_EQ(Value(3.5).AsNumeric(), 3.5);
}

TEST(ValueTest, TypeQueries) {
  EXPECT_EQ(Value(1.0).type(), DataType::kDouble);
  EXPECT_EQ(Value(1).type(), DataType::kInt64);
  EXPECT_EQ(Value("x").type(), DataType::kString);
}

TEST(ValueTest, MatchesTypeAllowsNull) {
  EXPECT_TRUE(Value::Null().MatchesType(DataType::kDouble));
  EXPECT_TRUE(Value(1.0).MatchesType(DataType::kDouble));
  EXPECT_FALSE(Value(1.0).MatchesType(DataType::kString));
}

TEST(ValueTest, EqualityDistinguishesTypes) {
  EXPECT_NE(Value(1.0), Value(int64_t{1}));
  EXPECT_EQ(Value(1.0), Value(1.0));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value(5).Hash(), Value(5).Hash());
  EXPECT_NE(Value(5).Hash(), Value(5.0).Hash());
}

TEST(ValueTest, ToStringRendersNumbers) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("text").ToString(), "text");
}

// --- Schema -------------------------------------------------------------------

TEST(SchemaTest, FieldIndexAndHasField) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(schema.FieldIndex("b").value(), 1u);
  EXPECT_TRUE(schema.HasField("a"));
  EXPECT_FALSE(schema.HasField("c"));
  EXPECT_EQ(schema.FieldIndex("c").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, AddFieldRejectsDuplicates) {
  Schema schema;
  EXPECT_TRUE(schema.AddField({"x", DataType::kDouble}).ok());
  EXPECT_EQ(schema.AddField({"x", DataType::kInt64}).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ToStringListsFields) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(schema.ToString(), "a:int64, b:string");
}

// --- Table --------------------------------------------------------------------

Table MakeSampleTable() {
  return TableBuilder()
      .AddInt64Column("id", {1, 2, 3, 4})
      .AddStringColumn("name", {"ann", "bob", "cat", "dan"})
      .AddDoubleColumn("score", {1.5, 2.5, 3.5, 4.5})
      .Build();
}

TEST(TableTest, BuilderProducesConsistentTable) {
  Table t = MakeSampleTable();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.At(2, 1).as_string(), "cat");
}

TEST(TableTest, AppendRowTypeChecked) {
  Table t = MakeSampleTable();
  EXPECT_TRUE(t.AppendRow({Value(5), Value("eve"), Value(5.5)}).ok());
  EXPECT_EQ(t.num_rows(), 5u);
  // Wrong type.
  EXPECT_FALSE(t.AppendRow({Value("x"), Value("eve"), Value(5.5)}).ok());
  // Wrong arity.
  EXPECT_FALSE(t.AppendRow({Value(6)}).ok());
  // Nulls always allowed.
  EXPECT_TRUE(t.AppendRow({Value::Null(), Value::Null(), Value::Null()}).ok());
}

TEST(TableTest, SetCellValidatesTypeAndRange) {
  Table t = MakeSampleTable();
  EXPECT_TRUE(t.SetCell(0, 2, Value(9.0)).ok());
  EXPECT_EQ(t.At(0, 2).as_double(), 9.0);
  EXPECT_EQ(t.SetCell(0, 2, Value("bad")).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.SetCell(99, 0, Value(1)).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(t.SetCell(0, 2, Value::Null()).ok());
  EXPECT_TRUE(t.At(0, 2).is_null());
}

TEST(TableTest, RowRoundTrip) {
  Table t = MakeSampleTable();
  std::vector<Value> row = t.Row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].as_int64(), 2);
  EXPECT_EQ(row[1].as_string(), "bob");
}

TEST(TableTest, AddAndDropColumn) {
  Table t = MakeSampleTable();
  EXPECT_TRUE(t.AddColumn({"flag", DataType::kInt64},
                          {Value(0), Value(1), Value(0), Value(1)})
                  .ok());
  EXPECT_EQ(t.num_columns(), 4u);
  // Wrong length rejected.
  EXPECT_FALSE(t.AddColumn({"bad", DataType::kInt64}, {Value(0)}).ok());
  // Duplicate name rejected.
  EXPECT_FALSE(t.AddColumn({"flag", DataType::kInt64},
                           {Value(0), Value(0), Value(0), Value(0)})
                   .ok());
  EXPECT_TRUE(t.DropColumn("flag").ok());
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_FALSE(t.DropColumn("flag").ok());
}

TEST(TableTest, SelectColumnsReorders) {
  Table t = MakeSampleTable();
  Result<Table> s = t.SelectColumns({"score", "id"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_columns(), 2u);
  EXPECT_EQ(s->schema().field(0).name, "score");
  EXPECT_EQ(s->At(0, 1).as_int64(), 1);
  EXPECT_FALSE(t.SelectColumns({"nope"}).ok());
}

TEST(TableTest, SelectRowsAndFilter) {
  Table t = MakeSampleTable();
  Table s = t.SelectRows({3, 0});
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.At(0, 0).as_int64(), 4);

  std::vector<size_t> kept;
  Table f = t.FilterRows(
      [&t](size_t r) { return t.At(r, 2).as_double() > 2.0; }, &kept);
  EXPECT_EQ(f.num_rows(), 3u);
  EXPECT_EQ(kept, (std::vector<size_t>{1, 2, 3}));
}

TEST(TableTest, AppendTableRequiresSameSchema) {
  Table a = MakeSampleTable();
  Table b = MakeSampleTable();
  EXPECT_TRUE(a.AppendTable(b).ok());
  EXPECT_EQ(a.num_rows(), 8u);
  Table c = TableBuilder().AddInt64Column("other", {1}).Build();
  EXPECT_FALSE(a.AppendTable(c).ok());
}

TEST(TableTest, CountNulls) {
  Table t = TableBuilder()
                .AddValueColumn("x", DataType::kDouble,
                                {Value(1.0), Value::Null(), Value::Null()})
                .Build();
  EXPECT_EQ(t.CountNulls(0), 2u);
}

TEST(TableTest, FromRowsValidates) {
  Schema schema({{"a", DataType::kInt64}});
  Result<Table> good = Table::FromRows(schema, {{Value(1)}, {Value(2)}});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->num_rows(), 2u);
  EXPECT_FALSE(Table::FromRows(schema, {{Value("x")}}).ok());
}

// --- CSV ------------------------------------------------------------------------

TEST(CsvTest, ParsesTypedColumns) {
  Result<Table> t = ReadCsvString("id,name,score\n1,ann,1.5\n2,bob,2\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(t->schema().field(1).type, DataType::kString);
  EXPECT_EQ(t->schema().field(2).type, DataType::kDouble);
  EXPECT_EQ(t->At(1, 2).as_double(), 2.0);
}

TEST(CsvTest, EmptyCellsAndMarkerBecomeNull) {
  Result<Table> t = ReadCsvString("a,b\n1,\nn/a,2\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->At(0, 1).is_null());
  EXPECT_TRUE(t->At(1, 0).is_null());
  EXPECT_EQ(t->At(1, 1).as_int64(), 2);
}

TEST(CsvTest, MixedIntThenStringFallsBackToString) {
  Result<Table> t = ReadCsvString("a\n1\n2\nhello\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, DataType::kString);
  EXPECT_EQ(t->At(0, 0).as_string(), "1");
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndEscapes) {
  Result<Table> t = ReadCsvString("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->At(0, 0).as_string(), "x,y");
  EXPECT_EQ(t->At(0, 1).as_string(), "he said \"hi\"");
}

TEST(CsvTest, NoHeaderGeneratesColumnNames) {
  CsvReadOptions options;
  options.has_header = false;
  Result<Table> t = ReadCsvString("1,2\n3,4\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).name, "c0");
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ReadCsvString("a,b\n1\n").ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ReadCsvString("").ok());
  EXPECT_FALSE(ReadCsvString("\n\n").ok());
}

TEST(CsvTest, CrlfLineEndingsHandled) {
  Result<Table> t = ReadCsvString("a\r\n1\r\n2\r\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->At(0, 0).as_int64(), 1);
}

TEST(CsvTest, RoundTripPreservesContent) {
  Table original = TableBuilder()
                       .AddInt64Column("id", {1, 2})
                       .AddStringColumn("text", {"plain", "with,comma"})
                       .AddValueColumn("maybe", DataType::kDouble,
                                       {Value(1.5), Value::Null()})
                       .Build();
  std::string csv = WriteCsvString(original);
  Result<Table> parsed = ReadCsvString(csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->At(1, 1).as_string(), "with,comma");
  EXPECT_TRUE(parsed->At(1, 2).is_null());
  EXPECT_EQ(parsed->At(0, 2).as_double(), 1.5);
}

TEST(CsvTest, FileRoundTrip) {
  Table original = TableBuilder().AddInt64Column("v", {10, 20}).Build();
  std::string path = ::testing::TempDir() + "/nde_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(original, path).ok());
  Result<Table> parsed = ReadCsvFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->At(1, 0).as_int64(), 20);
}

TEST(CsvTest, MissingFileReturnsIOError) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/nde.csv").status().code(),
            StatusCode::kIOError);
}

TEST(CsvTest, AllNullColumnDefaultsToString) {
  Result<Table> t = ReadCsvString("a,b\n1,\n2,\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(1).type, DataType::kString);
}

// --- CSV negative paths -------------------------------------------------------

TEST(CsvTest, UnterminatedQuoteIsTypedError) {
  Result<Table> t = ReadCsvString("a,b\n\"unclosed,2\n");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("unterminated quoted field"),
            std::string::npos);
}

TEST(CsvTest, OverlongFieldRejectedByByteLimit) {
  CsvReadOptions options;
  options.max_field_bytes = 8;
  std::string text = "a,b\nshort,";
  text += std::string(64, 'x');
  text += "\n";
  Result<Table> t = ReadCsvString(text, options);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("over the 8-byte limit"),
            std::string::npos);
  // Unlimited (the default) accepts the same input.
  EXPECT_TRUE(ReadCsvString(text).ok());
}

TEST(CsvTest, OpenFailpointSurfacesTypedError) {
  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm("csv.open=error(io_error:disk gone)").ok());
  Result<Table> t = ReadCsvFile("/definitely/not/used.csv");
  failpoint::DisarmAll();
  failpoint::ResetStats();
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kIOError);
  EXPECT_EQ(t.status().message(), "disk gone");
}

TEST(CsvTest, RecordFailpointFiresOnExactRecord) {
  failpoint::DisarmAll();
  // csv.record is keyed by the data-record index, so #N counts hits: the
  // third record read aborts the parse.
  ASSERT_TRUE(failpoint::Arm("csv.record=error(io_error:bad sector)#3").ok());
  Result<Table> t = ReadCsvString("a\n1\n2\n3\n4\n");
  failpoint::DisarmAll();
  failpoint::ResetStats();
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kIOError);
  EXPECT_EQ(t.status().message(), "bad sector");

  // A two-record input never reaches the third hit: the parse succeeds.
  ASSERT_TRUE(failpoint::Arm("csv.record=error(io_error:bad sector)#3").ok());
  EXPECT_TRUE(ReadCsvString("a\n1\n2\n").ok());
  failpoint::DisarmAll();
  failpoint::ResetStats();
}

// --- CSV edge-case hardening --------------------------------------------------
// Regressions for the quote-aware record scanner: quoted fields spanning
// lines, CRLF inside quotes, EOF without a final newline, and empty trailing
// fields. Each case was once mis-parsed by the line-based splitter.

TEST(CsvHardeningTest, QuotedFieldAtEofWithoutNewline) {
  Result<Table> t = ReadCsvString("a,b\n1,\"x,y\"");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->At(0, 0).as_int64(), 1);
  EXPECT_EQ(t->At(0, 1).as_string(), "x,y");
}

TEST(CsvHardeningTest, UnquotedLastFieldAtEofWithoutNewline) {
  Result<Table> t = ReadCsvString("a,b\n1,2\n3,4");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->At(1, 1).as_int64(), 4);
}

TEST(CsvHardeningTest, NewlineInsideQuotedFieldSpansRecords) {
  Result<Table> t = ReadCsvString("a,b\n\"line1\nline2\",7\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->At(0, 0).as_string(), "line1\nline2");
  EXPECT_EQ(t->At(0, 1).as_int64(), 7);
}

TEST(CsvHardeningTest, CrlfInsideQuotedFieldIsContent) {
  // An unquoted CRLF ends the record; a quoted one is two content bytes.
  Result<Table> t = ReadCsvString("a,b\r\n\"x\r\ny\",5\r\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->At(0, 0).as_string(), "x\r\ny");
  EXPECT_EQ(t->At(0, 1).as_int64(), 5);
}

TEST(CsvHardeningTest, EmptyTrailingFieldIsNull) {
  // Both with and without a final newline, "1," is the two fields [1, null].
  for (const char* text : {"a,b\n1,\n", "a,b\n1,"}) {
    Result<Table> t = ReadCsvString(text);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    ASSERT_EQ(t->num_rows(), 1u) << text;
    EXPECT_EQ(t->At(0, 0).as_int64(), 1);
    EXPECT_TRUE(t->At(0, 1).is_null()) << text;
  }
}

TEST(CsvHardeningTest, SingleColumnNullRowRoundTrips) {
  // A lone null cell would serialize as a blank line (which the reader drops
  // at end of input); the writer emits a quoted empty field instead.
  Table t = TableBuilder()
                .AddValueColumn("v", DataType::kInt64,
                                {Value(1), Value::Null(), Value(3)})
                .Build();
  Table shorter = t.SelectRows({0, 1});  // null row is last
  std::string csv = WriteCsvString(shorter);
  EXPECT_NE(csv.find("\"\""), std::string::npos);
  Result<Table> reread = ReadCsvString(csv);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ASSERT_EQ(reread->num_rows(), 2u);
  EXPECT_TRUE(reread->At(1, 0).is_null());
}

TEST(CsvHardeningTest, ErrorLineNumbersAccountForMultilineFields) {
  // The bad record starts on physical line 4 (the quoted field above it
  // spans lines 2-3), and the error must say so.
  Result<Table> t = ReadCsvString("a\n\"x\ny\"\nbad,row\n");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 4"), std::string::npos)
      << t.status().message();
}

TEST(CsvHardeningTest, UnterminatedQuoteReportsOpeningLine) {
  Result<Table> t = ReadCsvString("a\n1\n\"open\nmore\n");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("line 3"), std::string::npos)
      << t.status().message();
}

TEST(CsvHardeningTest, TrailingBlankAndWhitespaceLinesDropped) {
  Result<Table> t = ReadCsvString("a,b\n1,2\n\n   \n\r\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 1u);
}

}  // namespace
}  // namespace nde
