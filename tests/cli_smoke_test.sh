#!/usr/bin/env bash
# Smoke test for the nde_cli tool: exercises every subcommand end to end on a
# generated CSV and checks exit codes and key output. Registered with ctest.
set -u

CLI="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT
cd "$WORKDIR"

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# --- fixture: a small binary-classification CSV with some nulls -------------
{
  echo "age,score,label"
  for i in $(seq 0 99); do
    if [ $((i % 2)) -eq 0 ]; then
      label=1
      score="1.$((i % 9))"
    else
      label=0
      score="-1.$((i % 9))"
    fi
    if [ $((i % 13)) -eq 0 ]; then
      score=""  # missing value
    fi
    echo "$((22 + i % 40)),$score,$label"
  done
} > train.csv
head -41 train.csv > valid.csv

# --- screen ------------------------------------------------------------------
"$CLI" screen train.csv --label label > screen_out.txt
code=$?
[ $code -eq 0 ] || [ $code -eq 1 ] || fail "screen exited with $code"

# Unknown file must fail cleanly.
"$CLI" screen missing.csv > /dev/null 2>&1 && fail "screen accepted a missing file"

# --- importance ---------------------------------------------------------------
"$CLI" importance train.csv valid.csv --label label --method knn_shapley \
    --top 5 > importance_out.txt || fail "importance failed"
[ "$(grep -c '^[0-9]\+$' importance_out.txt)" -eq 5 ] \
    || fail "importance did not print 5 candidate ids"

"$CLI" importance train.csv valid.csv --label label --method bogus \
    > /dev/null 2>&1 && fail "importance accepted a bogus method"

# --- impute ---------------------------------------------------------------------
"$CLI" impute train.csv --column score --strategy median --out fixed.csv \
    > impute_out.txt || fail "impute failed"
grep -q "repaired" impute_out.txt || fail "impute did not report repairs"
# The repaired file must have no empty score cells left.
if awk -F, 'NR > 1 && $2 == "" { found = 1 } END { exit found }' fixed.csv; then
  :
else
  fail "fixed.csv still has empty score cells"
fi

# --- usage ----------------------------------------------------------------------
"$CLI" > /dev/null 2>&1
[ $? -eq 2 ] || fail "bare invocation should exit 2 with usage"

echo "cli smoke test passed"
