#!/usr/bin/env bash
# Smoke test for the nde_cli tool: exercises every subcommand end to end on a
# generated CSV and checks exit codes and key output. Registered with ctest.
set -u

CLI="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT
cd "$WORKDIR"

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# --- fixture: a small binary-classification CSV with some nulls -------------
{
  echo "age,score,label"
  for i in $(seq 0 99); do
    if [ $((i % 2)) -eq 0 ]; then
      label=1
      score="1.$((i % 9))"
    else
      label=0
      score="-1.$((i % 9))"
    fi
    if [ $((i % 13)) -eq 0 ]; then
      score=""  # missing value
    fi
    echo "$((22 + i % 40)),$score,$label"
  done
} > train.csv
head -41 train.csv > valid.csv

# --- screen ------------------------------------------------------------------
"$CLI" screen train.csv --label label > screen_out.txt
code=$?
[ $code -eq 0 ] || [ $code -eq 1 ] || fail "screen exited with $code"

# Unknown file must fail cleanly.
"$CLI" screen missing.csv > /dev/null 2>&1 && fail "screen accepted a missing file"

# --- importance ---------------------------------------------------------------
"$CLI" importance train.csv valid.csv --label label --method knn_shapley \
    --top 5 > importance_out.txt || fail "importance failed"
[ "$(grep -c '^[0-9]\+$' importance_out.txt)" -eq 5 ] \
    || fail "importance did not print 5 candidate ids"

"$CLI" importance train.csv valid.csv --label label --method bogus \
    > /dev/null 2>&1 && fail "importance accepted a bogus method"

# --- impute ---------------------------------------------------------------------
"$CLI" impute train.csv --column score --strategy median --out fixed.csv \
    > impute_out.txt || fail "impute failed"
grep -q "repaired" impute_out.txt || fail "impute did not report repairs"
# The repaired file must have no empty score cells left.
if awk -F, 'NR > 1 && $2 == "" { found = 1 } END { exit found }' fixed.csv; then
  :
else
  fail "fixed.csv still has empty score cells"
fi

# --- pipeline-mode importance with telemetry ---------------------------------
"$CLI" importance train.csv --label label --top 5 --permutations 4 \
    --metrics --trace out.json > pipeline_out.txt 2> pipeline_err.txt \
    || fail "pipeline-mode importance failed"
[ "$(grep -c '^[0-9]\+$' pipeline_out.txt)" -eq 5 ] \
    || fail "pipeline-mode importance did not print 5 candidate ids"
# The annotated plan printout lists per-operator rows and timings.
grep -q "rows," pipeline_out.txt || fail "no annotated plan in pipeline output"
grep -q "ms total" pipeline_out.txt || fail "no per-operator timings in plan"
# --trace writes Chrome trace_event JSON.
[ -s out.json ] || fail "trace file missing or empty"
grep -q '"traceEvents"' out.json || fail "trace file lacks traceEvents"
if grep -q "telemetry compiled out" pipeline_err.txt; then
  : # NDE_TELEMETRY=OFF build: metrics table and trace are legitimately empty.
else
  # --metrics appends the metrics table.
  grep -q "pipeline.operator_executions" pipeline_out.txt \
      || fail "metrics table missing pipeline counters"
  grep -q '"ph":"X"' out.json || fail "trace file lacks complete events"
  grep -q 'tmc_permutation' out.json || fail "trace lacks Shapley iteration spans"
fi

# --- --threads: parallel runs match the serial run ---------------------------
"$CLI" importance train.csv --label label --top 5 --permutations 4 \
    --threads 1 > threads1_out.txt || fail "--threads 1 importance failed"
"$CLI" importance train.csv --label label --top 5 --permutations 4 \
    --threads 2 > threads2_out.txt || fail "--threads 2 importance failed"
grep '^[0-9]\+$' threads1_out.txt > threads1_ids.txt
grep '^[0-9]\+$' threads2_out.txt > threads2_ids.txt
cmp -s threads1_ids.txt threads2_ids.txt \
    || fail "--threads 2 ranked different candidates than --threads 1"
grep -q "threads)" threads2_out.txt \
    || fail "importance output does not report the thread count"

"$CLI" importance train.csv --label label --threads bogus > /dev/null 2> err.txt
[ $? -eq 2 ] || fail "non-numeric --threads should exit 2"
grep -q -- "--threads" err.txt || fail "--threads error does not name the flag"

"$CLI" importance train.csv --label label --threads 0 > /dev/null 2>&1
[ $? -eq 2 ] || fail "--threads 0 should exit 2"

"$CLI" importance train.csv --label label --threads -3 > /dev/null 2>&1
[ $? -eq 2 ] || fail "negative --threads should exit 2"

# --- observability flags: --report / --log-level / --log-json / --serve ------
"$CLI" importance train.csv --label label --top 5 --permutations 8 \
    --report report.json > /dev/null 2> report_err.txt \
    || fail "--report importance failed"
[ -s report.json ] || fail "run report missing or empty"
grep -q '"convergence_curve"' report.json || fail "report lacks convergence_curve"
grep -q '"config"' report.json || fail "report lacks config"
grep -q '"flag.permutations":"8"' report.json \
    || fail "report config does not record the invocation flags"
grep -q '"command":"importance"' report.json \
    || fail "report config does not record the command"
grep -q "wrote run report" report_err.txt \
    || fail "--report did not announce the report path"

# Progress lines reach stderr at info level, as text and as JSON.
"$CLI" importance train.csv --label label --top 5 --permutations 8 \
    --log-level info > /dev/null 2> log_text.txt \
    || fail "--log-level info importance failed"
grep -q "tmc_shapley: " log_text.txt || fail "no progress line at --log-level info"
"$CLI" importance train.csv --label label --top 5 --permutations 8 \
    --log-level info --log-json > /dev/null 2> log_json.txt \
    || fail "--log-json importance failed"
grep -q '"level":"INFO"' log_json.txt || fail "--log-json did not emit JSON lines"
grep -q '"msg":"tmc_shapley: ' log_json.txt \
    || fail "--log-json progress line missing msg field"

# Default level is warning: no progress chatter without opting in.
grep -q "tmc_shapley: " pipeline_err.txt \
    && fail "progress lines leaked at the default log level"

"$CLI" importance train.csv --label label --log-level bogus > /dev/null 2> err.txt
[ $? -eq 2 ] || fail "bogus --log-level should exit 2"
grep -q -- "--log-level" err.txt || fail "--log-level error does not name the flag"

# --serve 0 binds an ephemeral port and announces it before the run.
"$CLI" importance train.csv --label label --top 5 --permutations 8 \
    --serve 0 > /dev/null 2> serve_err.txt || fail "--serve 0 importance failed"
grep -q "serving on http://127.0.0.1:" serve_err.txt \
    || fail "--serve did not announce the bound port"

"$CLI" importance train.csv --label label --serve notaport > /dev/null 2> err.txt
[ $? -eq 2 ] || fail "non-numeric --serve should exit 2"
grep -q -- "--serve" err.txt || fail "--serve error does not name the flag"

"$CLI" importance train.csv --label label --serve > /dev/null 2>&1
[ $? -eq 2 ] || fail "value-less --serve should exit 2"

"$CLI" importance train.csv --label label --report > /dev/null 2>&1
[ $? -eq 2 ] || fail "value-less --report should exit 2"

# --- --profile: folded stacks, report block, bit-identical ranking -----------
# 256 permutations keep the estimator busy for tens of milliseconds, so the
# fast CLI sampler is guaranteed observations.
"$CLI" importance train.csv --label label --top 5 --permutations 256 \
    --profile prof.folded --report prof_report.json \
    > prof_out.txt 2> prof_err.txt || fail "--profile importance failed"
grep -q "wrote .* profile samples" prof_err.txt \
    || fail "--profile did not announce the profile file"
grep -q '"profile":{' prof_report.json \
    || fail "report lacks the profile block under --profile"
if grep -q "telemetry compiled out" prof_err.txt; then
  : # NDE_TELEMETRY=OFF build: no spans exist, so folded stacks stay empty.
else
  [ -s prof.folded ] || fail "folded-stack file missing or empty"
  # Folded lines are "frame(;frame)* count" and the run's wave spans show up.
  awk '{ if (NF != 2 || $2 !~ /^[0-9]+$/) exit 1 }' prof.folded \
      || fail "prof.folded is not in folded-stack format"
  grep -q "tmc" prof.folded || fail "folded stacks lack tmc wave frames"
  grep -q '"profile":{"enabled":true' prof_report.json \
      || fail "report profile block not enabled under --profile"
fi
# Profiling must not change the ranking: compare against the plain run.
"$CLI" importance train.csv --label label --top 5 --permutations 256 \
    > noprof_out.txt || fail "plain importance failed"
grep '^[0-9]\+$' prof_out.txt > prof_ids.txt
grep '^[0-9]\+$' noprof_out.txt > noprof_ids.txt
cmp -s prof_ids.txt noprof_ids.txt \
    || fail "--profile changed the importance ranking"

"$CLI" importance train.csv --label label --profile > /dev/null 2>&1
[ $? -eq 2 ] || fail "value-less --profile should exit 2"

# --- error handling ----------------------------------------------------------
"$CLI" bogus train.csv > /dev/null 2> err.txt
[ $? -eq 2 ] || fail "unknown command should exit 2"
grep -q "bogus" err.txt || fail "unknown-command error does not name the token"

"$CLI" screen train.csv --label label --bogus-flag 3 > /dev/null 2> err.txt
[ $? -eq 2 ] || fail "unknown flag should exit 2"
grep -q -- "--bogus-flag" err.txt || fail "unknown-flag error does not name the flag"

"$CLI" importance train.csv --label label --trace > /dev/null 2> err.txt
[ $? -eq 2 ] || fail "value-less --trace should exit 2"
grep -q -- "--trace" err.txt || fail "missing-value error does not name the flag"

# --- fault injection: exit codes, report error block, health endpoint --------

# Runtime failures exit 3, distinct from usage errors (2) and screen
# findings (1).
"$CLI" screen missing.csv > /dev/null 2>&1
[ $? -eq 3 ] || fail "missing input file should exit 3"

# An injected utility fault with retries exhausted aborts the run with exit 3
# and a structured error block in the run report.
NDE_FAILPOINTS='utility.evaluate=error(unavailable:backend down)' \
    "$CLI" importance train.csv --label label --top 5 --permutations 4 \
    --retries 0 --report chaos_report.json \
    > chaos_out.txt 2> chaos_err.txt
[ $? -eq 3 ] || fail "injected utility fault should exit 3"
grep -q "backend down" chaos_err.txt \
    || fail "injected fault not reported on stderr"
[ -s chaos_report.json ] || fail "run report missing after injected fault"
grep -q '"error":{"code":"unavailable","message":"backend down","exit_code":3}' \
    chaos_report.json || fail "report lacks the structured error block"

# A malformed NDE_FAILPOINTS spec warns and is ignored — an operator typo
# must not break the run it was trying to observe.
NDE_FAILPOINTS='utility.evaluate=bogus_action' \
    "$CLI" importance train.csv --label label --top 5 --permutations 4 \
    > /dev/null 2> badspec_err.txt \
    || fail "malformed NDE_FAILPOINTS spec aborted the run"
grep -q "warning: NDE_FAILPOINTS" badspec_err.txt \
    || fail "malformed NDE_FAILPOINTS spec not warned about"

# While utility retries back off, /healthz flips to 503 but /metrics stays
# scrapeable (including the failpoint counters); the run then exits 3.
http_fetch() {  # prints the response body, then the HTTP status on a new line
  if command -v curl >/dev/null 2>&1; then
    curl -s --max-time 5 -w '\n%{http_code}' "$1"
  else
    python3 - "$1" <<'EOF'
import sys, urllib.error, urllib.request
try:
    r = urllib.request.urlopen(sys.argv[1], timeout=5)
    body, code = r.read().decode(), r.getcode()
except urllib.error.HTTPError as e:
    body, code = e.read().decode(), e.code
except Exception:
    body, code = "", 0
print(body)
print(code)
EOF
  fi
}

: > serve3_err.txt
NDE_FAILPOINTS='utility.evaluate=error(unavailable:flaky backend)' \
    "$CLI" importance train.csv --label label --top 5 --permutations 4 \
    --retries 4 --retry-backoff-ms 300 --serve 0 \
    > serve3_out.txt 2> serve3_err.txt &
cli_pid=$!
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's#^serving on http://127.0.0.1:\([0-9]*\)$#\1#p' serve3_err.txt)
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { kill "$cli_pid" 2>/dev/null; fail "--serve port not announced under fault"; }
saw_degraded=""
for _ in $(seq 1 100); do
  http_fetch "http://127.0.0.1:$PORT/healthz" > healthz.txt 2>/dev/null
  if [ "$(tail -1 healthz.txt)" = "503" ]; then
    saw_degraded=1
    break
  fi
  sleep 0.1
done
[ -n "$saw_degraded" ] || { kill "$cli_pid" 2>/dev/null; fail "/healthz never flipped to 503 under fault"; }
grep -q "degraded: " healthz.txt \
    || { kill "$cli_pid" 2>/dev/null; fail "503 healthz body lacks the degraded reason"; }
http_fetch "http://127.0.0.1:$PORT/metrics" > metrics_degraded.txt 2>/dev/null
[ "$(tail -1 metrics_degraded.txt)" = "200" ] \
    || { kill "$cli_pid" 2>/dev/null; fail "/metrics not scrapeable while degraded"; }
grep -q "failpoint_utility_evaluate" metrics_degraded.txt \
    || { kill "$cli_pid" 2>/dev/null; fail "/metrics lacks failpoint counters while degraded"; }
wait "$cli_pid"
[ $? -eq 3 ] || fail "faulty --serve run should exit 3 after retries"

# --- algorithm registry ---------------------------------------------------------
"$CLI" --list-algorithms > algorithms.txt || fail "--list-algorithms failed"
for name in loo tmc_shapley banzhaf beta_shapley knn_shapley datascope \
            influence aum self_confidence; do
  grep -q "^$name\$" algorithms.txt \
      || fail "--list-algorithms does not list $name"
done
grep -q "num_permutations" algorithms.txt \
    || fail "--list-algorithms does not document options"

# --set reaches the registry: an explicit option matching the flag default
# must reproduce the flag run exactly.
"$CLI" importance train.csv --label label --top 5 --permutations 4 \
    > set_flag_out.txt || fail "flag-configured importance failed"
"$CLI" importance train.csv --label label --top 5 \
    --set num_permutations=4 > set_set_out.txt \
    || fail "--set-configured importance failed"
diff <(grep '^[0-9]\+$' set_flag_out.txt) <(grep '^[0-9]\+$' set_set_out.txt) \
    > /dev/null || fail "--set num_permutations=4 ranked differently than --permutations 4"

"$CLI" importance train.csv --label label --set bogus=1 > /dev/null 2> err.txt
[ $? -eq 2 ] || fail "unknown --set option should exit 2"
grep -q "no option 'bogus'" err.txt \
    || fail "unknown --set option error should name the option"
"$CLI" importance train.csv --label label --set num_permutations=never \
    > /dev/null 2>&1
[ $? -eq 2 ] || fail "badly typed --set value should exit 2"
"$CLI" screen train.csv --label label --set k=3 > /dev/null 2>&1
[ $? -eq 2 ] || fail "--set on a non-importance command should exit 2"

# --- usage ----------------------------------------------------------------------
"$CLI" > /dev/null 2>&1
[ $? -eq 2 ] || fail "bare invocation should exit 2 with usage"

echo "cli smoke test passed"
