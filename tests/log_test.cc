#include "common/log.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace_context.h"
#include "json_checker.h"

namespace nde {
namespace {

// Captures records through a test sink and restores the global logger state
// (sink, level, JSON mode) afterwards so tests never leak configuration.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_level_ = log::MinLevel();
    log::SetMinLevel(log::Level::kDebug);
    log::Logger::Global().SetSink(
        [this](const log::LogRecord& record) { records_.push_back(record); });
  }
  void TearDown() override {
    log::Logger::Global().SetSink(nullptr);
    log::Logger::Global().SetJson(false);
    log::SetMinLevel(original_level_);
  }

  std::vector<log::LogRecord> records_;
  log::Level original_level_ = log::Level::kWarning;
};

TEST_F(LogTest, LevelNamesRoundTrip) {
  EXPECT_STREQ(log::LevelName(log::Level::kDebug), "DEBUG");
  EXPECT_STREQ(log::LevelName(log::Level::kInfo), "INFO");
  EXPECT_STREQ(log::LevelName(log::Level::kWarning), "WARNING");
  EXPECT_STREQ(log::LevelName(log::Level::kError), "ERROR");

  log::Level level = log::Level::kDebug;
  EXPECT_TRUE(log::ParseLevel("info", &level));
  EXPECT_EQ(level, log::Level::kInfo);
  EXPECT_TRUE(log::ParseLevel("WARNING", &level));
  EXPECT_EQ(level, log::Level::kWarning);
  EXPECT_TRUE(log::ParseLevel("warn", &level));
  EXPECT_EQ(level, log::Level::kWarning);
  EXPECT_TRUE(log::ParseLevel("err", &level));
  EXPECT_EQ(level, log::Level::kError);
  EXPECT_TRUE(log::ParseLevel("Debug", &level));
  EXPECT_EQ(level, log::Level::kDebug);

  level = log::Level::kInfo;
  EXPECT_FALSE(log::ParseLevel("verbose", &level));
  EXPECT_FALSE(log::ParseLevel("", &level));
  EXPECT_EQ(level, log::Level::kInfo) << "failed parse must not write";
}

TEST_F(LogTest, EmitRespectsLevelFilter) {
  log::SetMinLevel(log::Level::kWarning);
  log::Emit(log::Level::kInfo, "x.cc", 1, "dropped");
  log::Emit(log::Level::kWarning, "x.cc", 2, "kept");
  log::Emit(log::Level::kError, "x.cc", 3, "kept too");
  ASSERT_EQ(records_.size(), 2u);
  EXPECT_EQ(records_[0].message, "kept");
  EXPECT_EQ(records_[0].line, 2);
  EXPECT_EQ(records_[1].level, log::Level::kError);
}

TEST_F(LogTest, FormatTextCarriesLevelFileLineAndMessage) {
  log::LogRecord record;
  record.level = log::Level::kWarning;
  record.file = "game_values.cc";
  record.line = 42;
  record.wall_micros = 0;
  record.tid = 3;
  record.message = "converged";
  std::string text = log::FormatText(record);
  EXPECT_EQ(text[0], 'W');
  EXPECT_NE(text.find("game_values.cc:42] converged"), std::string::npos)
      << text;
}

TEST_F(LogTest, FormatJsonIsValidJsonAndEscapes) {
  log::LogRecord record;
  record.level = log::Level::kError;
  record.file = "a.cc";
  record.line = 7;
  record.wall_micros = 1234567;
  record.tid = 1;
  record.message = "quote \" backslash \\ newline \n done";
  std::string json = log::FormatJson(record);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"level\":\"ERROR\""), std::string::npos) << json;
  // occurrence is elided when 1, present when > 1.
  EXPECT_EQ(json.find("occurrence"), std::string::npos) << json;
  record.occurrence = 5;
  json = log::FormatJson(record);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"occurrence\":5"), std::string::npos) << json;
}

TEST_F(LogTest, FormattersCarryTraceAndJobOnlyWhenStamped) {
  log::LogRecord record;
  record.level = log::Level::kInfo;
  record.file = "x.cc";
  record.line = 1;
  record.message = "m";
  // Without a stamp, output is byte-identical to the pre-tracing format.
  std::string plain_text = log::FormatText(record);
  EXPECT_EQ(plain_text.find(" trace="), std::string::npos) << plain_text;
  std::string plain_json = log::FormatJson(record);
  EXPECT_EQ(plain_json.find("trace_id"), std::string::npos) << plain_json;
  EXPECT_EQ(plain_json.find("job_id"), std::string::npos) << plain_json;

  record.trace_id = "0123456789abcdeffedcba9876543210";
  record.job_id = "job-7";
  std::string text = log::FormatText(record);
  EXPECT_NE(text.find("] m trace=0123456789abcdeffedcba9876543210 job=job-7"),
            std::string::npos)
      << text;
  std::string json = log::FormatJson(record);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(
      json.find("\"trace_id\":\"0123456789abcdeffedcba9876543210\""),
      std::string::npos)
      << json;
  EXPECT_NE(json.find("\"job_id\":\"job-7\""), std::string::npos) << json;
}

TEST_F(LogTest, EmitStampsRecordsFromTheInstalledTraceContext) {
  TraceContext context;
  context.trace_id_hi = 0x0123456789abcdefULL;
  context.trace_id_lo = 0xfedcba9876543210ULL;
  context.job_id = "job-42";
  {
    ScopedTraceContext scope{context};
    log::Emit(log::Level::kInfo, "x.cc", 1, "inside");
  }
  log::Emit(log::Level::kInfo, "x.cc", 2, "outside");
  ASSERT_EQ(records_.size(), 2u);
  EXPECT_EQ(records_[0].trace_id, "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(records_[0].job_id, "job-42");
  EXPECT_TRUE(records_[1].trace_id.empty());
  EXPECT_TRUE(records_[1].job_id.empty());
}

#if NDE_TELEMETRY_ENABLED

TEST_F(LogTest, MacroSkipsFormattingWhenFiltered) {
  log::SetMinLevel(log::Level::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("payload");
  };
  NDE_LOG(INFO) << expensive();
  EXPECT_EQ(evaluations, 0) << "operands of a filtered NDE_LOG must not run";
  EXPECT_TRUE(records_.empty());

  NDE_LOG(ERROR) << expensive();
  EXPECT_EQ(evaluations, 1);
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].message, "payload");
}

TEST_F(LogTest, EveryNEmitsOccurrences1Then5Then9) {
  for (int i = 0; i < 10; ++i) {
    NDE_LOG_EVERY_N(INFO, 4) << "tick " << i;
  }
  ASSERT_EQ(records_.size(), 3u);
  EXPECT_EQ(records_[0].message, "tick 0");
  EXPECT_EQ(records_[0].occurrence, 1u);
  EXPECT_EQ(records_[1].message, "tick 4");
  EXPECT_EQ(records_[1].occurrence, 5u);
  EXPECT_EQ(records_[2].message, "tick 8");
  EXPECT_EQ(records_[2].occurrence, 9u);
}

TEST_F(LogTest, FirstNEmitsOnlyTheFirstN) {
  for (int i = 0; i < 10; ++i) {
    NDE_LOG_FIRST_N(WARNING, 3) << "warn " << i;
  }
  ASSERT_EQ(records_.size(), 3u);
  EXPECT_EQ(records_[0].message, "warn 0");
  EXPECT_EQ(records_[2].message, "warn 2");
}

TEST_F(LogTest, EveryMsCollapsesABurstToOneLine) {
  // A huge window: the whole burst lands inside it, so only the first line
  // of this site can ever emit. (Timing-dependent the other way — asserting
  // a *second* emission — would flake; asserting suppression cannot.)
  for (int i = 0; i < 50; ++i) {
    NDE_LOG_EVERY_MS(INFO, 3600 * 1000) << "burst " << i;
  }
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].message, "burst 0");
}

TEST_F(LogTest, SuppressedLinesAreCounted) {
  log::Logger::Global().ResetStats();
  for (int i = 0; i < 9; ++i) {
    NDE_LOG_EVERY_N(INFO, 3) << "x";
  }
  log::LogStats stats = log::Logger::Global().stats();
  EXPECT_EQ(stats.emitted, 3u);     // occurrences 1, 4, 7
  EXPECT_EQ(stats.suppressed, 6u);  // the rest
}

TEST_F(LogTest, RateLimitedSitesDoNotShareState) {
  auto site_a = [] { NDE_LOG_FIRST_N(INFO, 1) << "a"; };
  auto site_b = [] { NDE_LOG_FIRST_N(INFO, 1) << "b"; };
  site_a();
  site_a();
  site_b();  // Its own budget: must still emit.
  ASSERT_EQ(records_.size(), 2u);
  EXPECT_EQ(records_[0].message, "a");
  EXPECT_EQ(records_[1].message, "b");
}

TEST_F(LogTest, ConcurrentWritersProduceWholeRecords) {
  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        NDE_LOG(INFO) << "thread " << t << " line " << i;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  ASSERT_EQ(records_.size(),
            static_cast<size_t>(kThreads * kLinesPerThread));
  for (const auto& record : records_) {
    EXPECT_EQ(record.message.rfind("thread ", 0), 0u) << record.message;
  }
}

#else  // !NDE_TELEMETRY_ENABLED

TEST_F(LogTest, MacrosCompileOutButEmitStillWorks) {
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 1;
  };
  NDE_LOG(ERROR) << expensive();
  NDE_LOG_EVERY_N(ERROR, 1) << expensive();
  NDE_LOG_FIRST_N(ERROR, 1) << expensive();
  NDE_LOG_EVERY_MS(ERROR, 1) << expensive();
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(records_.empty());

  log::Emit(log::Level::kError, "x.cc", 1, "function form stays live");
  ASSERT_EQ(records_.size(), 1u);
}

#endif  // NDE_TELEMETRY_ENABLED

}  // namespace
}  // namespace nde
