// Generative invariant suites over the whole estimator stack (DESIGN.md §16).
//
// Every test here draws hundreds of random cases from src/proptest's domain
// generators and asserts an invariant the design document promises for *all*
// inputs: bit-identity across fast-path configurations and thread counts,
// CSV round-trips, prefix-scan-vs-full-retrain equality, registry-vs-direct
// equality, pipeline removal semantics, and the paper-level metamorphic
// property that corrupting rows drops their importance.
//
// On failure each suite prints a one-line replay command
// (`NDE_PROP_SEED=<seed> ... ctest -R proptest_test`) plus the shrunk
// counterexample as a pasteable CSV snippet. Case budgets scale with
// NDE_PROP_CASES (tools/check.sh sets a reduced budget under sanitizers).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "data/csv.h"
#include "data/table.h"
#include "datagen/synthetic.h"
#include "importance/game_values.h"
#include "importance/knn_shapley.h"
#include "importance/utility.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "nde/registry.h"
#include "pipeline/pipeline.h"
#include "proptest/check.h"
#include "proptest/domain.h"
#include "proptest/gen.h"

namespace nde {
namespace prop {
namespace {

/// CheckConfig naming the running gtest test, so the replay line pinpoints
/// the failing TEST as well as the seed.
CheckConfig HereConfig(int default_cases) {
  CheckConfig config;
  config.num_cases = DefaultNumCases(default_cases);
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    config.gtest_filter =
        std::string(info->test_suite_name()) + "." + info->name();
  }
  return config;
}

/// --- Framework self-tests ---------------------------------------------------

TEST(PropFrameworkTest, CaseSeedReplayContract) {
  // Case 0 IS the base seed: replaying a reported failing seed reproduces the
  // failure as case 0 without any case-index bookkeeping.
  EXPECT_EQ(CaseSeed(12345, 0), 12345u);
  EXPECT_EQ(CaseSeed(0xdeadbeef, 0), 0xdeadbeefu);
  // Later cases are deterministic and distinct from the base.
  std::set<uint64_t> seeds;
  for (int i = 0; i < 50; ++i) {
    uint64_t seed = CaseSeed(42, i);
    EXPECT_EQ(seed, CaseSeed(42, i));
    seeds.insert(seed);
  }
  EXPECT_EQ(seeds.size(), 50u);
}

TEST(PropFrameworkTest, GreedyShrinkReachesBoundary) {
  // Property: v < 50. Every failing value must shrink to exactly 50, the
  // minimal counterexample.
  Gen<int64_t> gen = IntInRange(0, 1000);
  std::function<std::string(const int64_t&)> property =
      [](const int64_t& v) -> std::string {
    return v < 50 ? "" : StrFormat("%lld is not < 50", static_cast<long long>(v));
  };
  CheckConfig config;
  for (int64_t start : {50, 51, 77, 512, 1000}) {
    int steps = 0, rechecks = 0;
    std::string message = property(start);
    ASSERT_FALSE(message.empty());
    int64_t shrunk = ShrinkCounterexample<int64_t>(gen, start, property,
                                                   config, &steps, &rechecks,
                                                   &message);
    EXPECT_EQ(shrunk, 50) << "started from " << start;
    EXPECT_FALSE(message.empty());
  }
}

TEST(PropFrameworkTest, VectorShrinkFindsMinimalElement) {
  // Property: no element >= 10. Minimal counterexample is the single-element
  // vector [10].
  Gen<std::vector<int64_t>> gen =
      VectorOf(SizeInRange(0, 10), IntInRange(0, 100));
  std::function<std::string(const std::vector<int64_t>&)> property =
      [](const std::vector<int64_t>& v) -> std::string {
    for (int64_t x : v) {
      if (x >= 10) return StrFormat("contains %lld", static_cast<long long>(x));
    }
    return "";
  };
  Rng rng(7);
  int found = 0;
  while (found < 5) {
    std::vector<int64_t> value = gen.Sample(&rng);
    if (property(value).empty()) continue;
    ++found;
    int steps = 0, rechecks = 0;
    std::string message;
    std::vector<int64_t> shrunk = ShrinkCounterexample<std::vector<int64_t>>(
        gen, value, property, CheckConfig{}, &steps, &rechecks, &message);
    ASSERT_EQ(shrunk.size(), 1u);
    EXPECT_EQ(shrunk[0], 10);
  }
}

TEST(PropFrameworkTest, FailureReportIsReplayable) {
  // A failing check must name the failing case's own seed such that running
  // with that seed as base fails at case 0 — the one-command replay contract.
  Gen<int64_t> gen = IntInRange(0, 1000000);
  std::function<std::string(const int64_t&)> property =
      [](const int64_t& v) -> std::string {
    return (v % 2 == 0) ? "" : "odd";
  };
  CheckConfig config;
  config.seed = 42;
  config.num_cases = 200;
  std::string report = CheckProperty<int64_t>("odd-hunt", gen, property,
                                              nullptr, config);
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("NDE_PROP_SEED="), std::string::npos);
  EXPECT_NE(report.find("ctest -R proptest_test"), std::string::npos);
  EXPECT_NE(report.find("replay:"), std::string::npos);

  // Extract the reported seed and replay: must fail at case 0 of 1.
  size_t pos = report.find("NDE_PROP_SEED=");
  uint64_t failing_seed =
      std::strtoull(report.c_str() + pos + strlen("NDE_PROP_SEED="), nullptr,
                    10);
  CheckConfig replay;
  replay.seed = failing_seed;
  replay.num_cases = 1;
  std::string replay_report =
      CheckProperty<int64_t>("odd-hunt", gen, property, nullptr, replay);
  ASSERT_FALSE(replay_report.empty());
  EXPECT_NE(replay_report.find("failed at case 0"), std::string::npos);
}

TEST(PropFrameworkTest, FilterNeverEscapesDomain) {
  Gen<int64_t> evens = IntInRange(0, 100).Filter(
      [](const int64_t& v) { return v % 2 == 0; });
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(evens.Sample(&rng) % 2, 0);
  }
  for (int64_t candidate : evens.Shrink(88)) {
    EXPECT_EQ(candidate % 2, 0);
  }
}

/// --- CSV round-trip and totality ---------------------------------------------

/// Value comparison under the writer's 6-significant-digit double formatting.
std::string CompareCell(const Value& original, const Value& reread,
                        size_t row, size_t col) {
  if (original.is_null() != reread.is_null()) {
    return StrFormat("cell (%zu,%zu): null mismatch", row, col);
  }
  if (original.is_null()) return "";
  if (original.is_string()) {
    if (!reread.is_string() || original.as_string() != reread.as_string()) {
      return StrFormat("cell (%zu,%zu): string mismatch", row, col);
    }
    return "";
  }
  double a = original.AsNumeric();
  double b = reread.AsNumeric();
  if (std::isnan(a) && std::isnan(b)) return "";
  double tolerance = std::abs(a) * 1e-5 + 1e-5;  // %g keeps 6 sig digits
  if (std::isnan(a) != std::isnan(b) || std::abs(a - b) > tolerance) {
    return StrFormat("cell (%zu,%zu): %.17g re-read as %.17g", row, col, a, b);
  }
  return "";
}

TEST(CsvPropertyTest, WriteReadRoundTripPreservesTables) {
  std::function<std::string(const Table&)> property =
      [](const Table& table) -> std::string {
    std::string csv = WriteCsvString(table);
    Result<Table> reread = ReadCsvString(csv);
    if (!reread.ok()) {
      return "re-read failed: " + reread.status().ToString();
    }
    if (reread.value().num_rows() != table.num_rows() ||
        reread.value().num_columns() != table.num_columns()) {
      return StrFormat("shape changed: %zux%zu -> %zux%zu", table.num_rows(),
                       table.num_columns(), reread.value().num_rows(),
                       reread.value().num_columns());
    }
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (reread.value().schema().field(c).name !=
          table.schema().field(c).name) {
        return StrFormat("column %zu renamed", c);
      }
      for (size_t r = 0; r < table.num_rows(); ++r) {
        std::string diff = CompareCell(table.At(r, c),
                                       reread.value().At(r, c), r, c);
        if (!diff.empty()) return diff;
      }
    }
    return "";
  };
  std::string report = CheckProperty<Table>("csv-round-trip", AnyTable(),
                                            property, DescribeTable,
                                            HereConfig(150));
  EXPECT_TRUE(report.empty()) << report;
}

TEST(CsvPropertyTest, ReaderIsTotalAndReparseIsStable) {
  // For arbitrary structured-but-nasty bytes the reader must either produce a
  // consistent table or a typed error — and a successfully parsed table must
  // survive a write -> re-read cycle with its shape intact.
  std::function<std::string(const std::string&)> property =
      [](const std::string& text) -> std::string {
    Result<Table> first = ReadCsvString(text);
    if (!first.ok()) return "";  // A typed error is an acceptable outcome.
    Status valid = first.value().Validate();
    if (!valid.ok()) {
      return "parsed table fails Validate(): " + valid.ToString();
    }
    std::string rewritten = WriteCsvString(first.value());
    Result<Table> second = ReadCsvString(rewritten);
    if (!second.ok()) {
      return "re-parse of rewritten table failed: " +
             second.status().ToString();
    }
    if (second.value().num_rows() != first.value().num_rows() ||
        second.value().num_columns() != first.value().num_columns()) {
      return StrFormat("shape drifted: %zux%zu -> %zux%zu",
                       first.value().num_rows(), first.value().num_columns(),
                       second.value().num_rows(),
                       second.value().num_columns());
    }
    return "";
  };
  std::string report = CheckProperty<std::string>(
      "csv-totality", AnyCsvText(), property, DescribeCsvText,
      HereConfig(200));
  EXPECT_TRUE(report.empty()) << report;
}

/// --- Estimator configuration sweeps ------------------------------------------

/// One generated estimator case: a matched train/validation pair plus TMC
/// options. Shrinks the scenario first, then the options budget.
struct EstimatorCase {
  ImportanceScenario scenario;
  TmcShapleyOptions tmc;
};

Gen<EstimatorCase> AnyEstimatorCase() {
  Gen<ImportanceScenario> scenario_gen = AnyImportanceScenario();
  Gen<TmcShapleyOptions> tmc_gen = AnyTmcOptions();
  return Gen<EstimatorCase>(
      [scenario_gen, tmc_gen](Rng* rng) {
        EstimatorCase c;
        c.scenario = scenario_gen.Sample(rng);
        c.tmc = tmc_gen.Sample(rng);
        return c;
      },
      [scenario_gen, tmc_gen](const EstimatorCase& c) {
        std::vector<EstimatorCase> candidates;
        for (ImportanceScenario& smaller : scenario_gen.Shrink(c.scenario)) {
          candidates.push_back(EstimatorCase{std::move(smaller), c.tmc});
        }
        for (TmcShapleyOptions& smaller : tmc_gen.Shrink(c.tmc)) {
          candidates.push_back(EstimatorCase{c.scenario, std::move(smaller)});
        }
        return candidates;
      });
}

std::string DescribeEstimatorCase(const EstimatorCase& c) {
  return DescribeScenario(c.scenario) + DescribeTmcOptions(c.tmc);
}

std::string CompareEstimates(const ImportanceEstimate& baseline,
                             const ImportanceEstimate& variant,
                             const std::string& variant_name) {
  if (variant.values != baseline.values) {
    for (size_t i = 0; i < baseline.values.size(); ++i) {
      if (i < variant.values.size() &&
          variant.values[i] != baseline.values[i]) {
        return StrFormat("%s: values[%zu] %.17g != baseline %.17g",
                         variant_name.c_str(), i, variant.values[i],
                         baseline.values[i]);
      }
    }
    return variant_name + ": values differ";
  }
  if (variant.std_errors != baseline.std_errors) {
    return variant_name + ": std_errors differ";
  }
  if (variant.utility_evaluations != baseline.utility_evaluations) {
    return StrFormat("%s: %zu utility evaluations != baseline %zu",
                     variant_name.c_str(), variant.utility_evaluations,
                     baseline.utility_evaluations);
  }
  return "";
}

ClassifierFactory KnnFactory(size_t k) {
  return [k] { return std::make_unique<KnnClassifier>(k); };
}

TEST(EstimatorPropertyTest, FastPathConfigSweepIsBitIdentical) {
  // DESIGN.md §9/§13: every fast-path knob (subset cache, zero-copy views,
  // SoA kernels, arena placement, prefix scan) and every thread count must
  // reproduce the slow path bit for bit.
  std::function<std::string(const EstimatorCase&)> property =
      [](const EstimatorCase& c) -> std::string {
    TmcShapleyOptions base_options = c.tmc;
    base_options.num_threads = 1;
    ModelAccuracyUtility baseline_utility(KnnFactory(3), c.scenario.train,
                                          c.scenario.valid, {});
    Result<ImportanceEstimate> baseline =
        TmcShapleyValues(baseline_utility, base_options);
    if (!baseline.ok()) {
      return "baseline failed: " + baseline.status().ToString();
    }

    struct Variant {
      std::string name;
      UtilityFastPathOptions fast_path;
      size_t num_threads = 1;
      bool use_prefix_scan = true;
    };
    std::vector<Variant> variants;
    {
      Variant v;
      v.name = "subset_cache=on";
      v.fast_path.subset_cache = true;
      variants.push_back(v);
    }
    {
      Variant v;
      v.name = "zero_copy_views=off";
      v.fast_path.zero_copy_views = false;
      variants.push_back(v);
    }
    {
      Variant v;
      v.name = "soa_kernels=off";
      v.fast_path.soa_kernels = false;
      variants.push_back(v);
    }
    {
      Variant v;
      v.name = "arena=off";
      v.fast_path.arena = false;
      variants.push_back(v);
    }
    {
      Variant v;
      v.name = "num_threads=8";
      v.num_threads = 8;
      variants.push_back(v);
    }
    {
      Variant v;
      v.name = "use_prefix_scan=off";
      v.use_prefix_scan = false;
      variants.push_back(v);
    }
    {
      // With KNN the default prefix-scan scorer bypasses Evaluate(), so the
      // cache only serves values when the scan is off — this is the one
      // variant where a poisoned cache entry can reach the estimate.
      Variant v;
      v.name = "cache+scan=off";
      v.fast_path.subset_cache = true;
      v.use_prefix_scan = false;
      variants.push_back(v);
    }
    {
      Variant v;
      v.name = "cache+scan=off+threads=8";
      v.fast_path.subset_cache = true;
      v.use_prefix_scan = false;
      v.num_threads = 8;
      variants.push_back(v);
    }
    {
      Variant v;
      v.name = "cache+threads=8";
      v.fast_path.subset_cache = true;
      v.num_threads = 8;
      variants.push_back(v);
    }

    for (const Variant& variant : variants) {
      TmcShapleyOptions options = c.tmc;
      options.num_threads = variant.num_threads;
      options.use_prefix_scan = variant.use_prefix_scan;
      ModelAccuracyUtility utility(KnnFactory(3), c.scenario.train,
                                   c.scenario.valid, variant.fast_path);
      Result<ImportanceEstimate> estimate = TmcShapleyValues(utility, options);
      if (!estimate.ok()) {
        return variant.name + " failed: " + estimate.status().ToString();
      }
      std::string diff =
          CompareEstimates(baseline.value(), estimate.value(), variant.name);
      if (!diff.empty()) return diff;
    }
    return "";
  };
  std::string report = CheckProperty<EstimatorCase>(
      "fast-path-sweep", AnyEstimatorCase(), property, DescribeEstimatorCase,
      HereConfig(30));
  EXPECT_TRUE(report.empty()) << report;
}

TEST(EstimatorPropertyTest, Float32KernelIsThreadCountInvariant) {
  // float32 distances are approximate (bits may differ from the float64
  // kernel) but must still be deterministic across thread counts.
  std::function<std::string(const EstimatorCase&)> property =
      [](const EstimatorCase& c) -> std::string {
    UtilityFastPathOptions fast_path;
    fast_path.float32 = true;
    ImportanceEstimate reference;
    for (size_t threads : {size_t{1}, size_t{8}}) {
      TmcShapleyOptions options = c.tmc;
      options.num_threads = threads;
      ModelAccuracyUtility utility(KnnFactory(3), c.scenario.train,
                                   c.scenario.valid, fast_path);
      Result<ImportanceEstimate> estimate = TmcShapleyValues(utility, options);
      if (!estimate.ok()) {
        return "float32 run failed: " + estimate.status().ToString();
      }
      if (threads == 1) {
        reference = std::move(estimate).value();
      } else {
        std::string diff = CompareEstimates(
            reference, estimate.value(),
            StrFormat("float32 threads=%zu", threads));
        if (!diff.empty()) return diff;
      }
    }
    return "";
  };
  std::string report = CheckProperty<EstimatorCase>(
      "float32-thread-identity", AnyEstimatorCase(), property,
      DescribeEstimatorCase, HereConfig(20));
  EXPECT_TRUE(report.empty()) << report;
}

TEST(EstimatorPropertyTest, RegistryMatchesDirectCall) {
  // The registry surface (string-configured instances) must be a pure
  // veneer: tmc_shapley through Create/Configure/Run equals the direct
  // TmcShapleyValues call with the same options, bit for bit.
  std::function<std::string(const EstimatorCase&)> property =
      [](const EstimatorCase& c) -> std::string {
    TmcShapleyOptions options = c.tmc;
    options.num_threads = 2;
    ModelAccuracyUtility utility(KnnFactory(5), c.scenario.train,
                                 c.scenario.valid, {});
    Result<ImportanceEstimate> direct = TmcShapleyValues(utility, options);
    if (!direct.ok()) return "direct failed: " + direct.status().ToString();

    Result<std::unique_ptr<AlgorithmInstance>> instance =
        AlgorithmRegistry::Global().Create("tmc_shapley");
    if (!instance.ok()) return "Create failed: " + instance.status().ToString();
    AlgorithmInstance& algorithm = *instance.value();
    for (const auto& [option, value] :
         std::vector<std::pair<std::string, std::string>>{
             {"num_permutations", StrFormat("%zu", options.num_permutations)},
             {"seed", StrFormat("%llu",
                                static_cast<unsigned long long>(options.seed))},
             {"num_threads", "2"},
             {"truncation_tolerance",
              StrFormat("%.17g", options.truncation_tolerance)},
             {"convergence_tolerance",
              StrFormat("%.17g", options.convergence_tolerance)}}) {
      Status status = algorithm.Configure(option, value);
      if (!status.ok()) {
        return "Configure(" + option + ") failed: " + status.ToString();
      }
    }
    RunInput input;
    input.train = &c.scenario.train;
    input.validation = &c.scenario.valid;
    Result<ImportanceEstimate> registry = algorithm.Run(input);
    if (!registry.ok()) {
      return "registry run failed: " + registry.status().ToString();
    }
    return CompareEstimates(direct.value(), registry.value(), "registry");
  };
  std::string report = CheckProperty<EstimatorCase>(
      "registry-vs-direct", AnyEstimatorCase(), property,
      DescribeEstimatorCase, HereConfig(25));
  EXPECT_TRUE(report.empty()) << report;
}

/// --- Prefix scan vs full retrain ----------------------------------------------

std::string CheckExactScan(const ModelAccuracyUtility& utility,
                           const MlDataset& train, Rng* rng) {
  std::unique_ptr<UtilityFunction::PrefixScan> scan =
      utility.NewPrefixScan(/*allow_warm_start=*/false);
  if (scan == nullptr) return "expected an exact prefix scan, got nullptr";
  std::vector<size_t> permutation(train.size());
  std::iota(permutation.begin(), permutation.end(), size_t{0});
  rng->Shuffle(&permutation);
  std::vector<size_t> prefix;
  for (size_t unit : permutation) {
    double scanned = scan->Push(unit);
    prefix.push_back(unit);
    std::vector<size_t> sorted = prefix;
    std::sort(sorted.begin(), sorted.end());
    double retrained = utility.Evaluate(sorted);
    if (scanned != retrained) {
      return StrFormat(
          "prefix of size %zu: scan %.17g != full retrain %.17g",
          prefix.size(), scanned, retrained);
    }
  }
  return "";
}

TEST(EstimatorPropertyTest, PrefixScanMatchesFullRetrain) {
  // The exact coalition scorers (KNN, Gaussian NB) must return bit-identical
  // values to retraining from scratch on every prefix; logistic regression
  // has no exact scan and must decline rather than silently approximate.
  std::function<std::string(const ImportanceScenario&)> property =
      [](const ImportanceScenario& scenario) -> std::string {
    Rng rng(scenario.train.labels.empty()
                ? 1
                : static_cast<uint64_t>(scenario.train.size() * 2654435761u));
    {
      ModelAccuracyUtility knn(KnnFactory(3), scenario.train, scenario.valid,
                               {});
      std::string diff = CheckExactScan(knn, scenario.train, &rng);
      if (!diff.empty()) return "knn: " + diff;
    }
    {
      ModelAccuracyUtility nb(
          [] { return std::make_unique<GaussianNaiveBayes>(); },
          scenario.train, scenario.valid, {});
      std::string diff = CheckExactScan(nb, scenario.train, &rng);
      if (!diff.empty()) return "gaussian_nb: " + diff;
    }
    {
      ModelAccuracyUtility logreg(
          [] { return std::make_unique<LogisticRegression>(); },
          scenario.train, scenario.valid, {});
      if (logreg.NewPrefixScan(/*allow_warm_start=*/false) != nullptr) {
        return "logreg returned an exact scan it cannot honor";
      }
    }
    return "";
  };
  std::string report = CheckProperty<ImportanceScenario>(
      "prefix-scan-equality", AnyImportanceScenario(), property,
      DescribeScenario, HereConfig(40));
  EXPECT_TRUE(report.empty()) << report;
}

/// --- Error-injection metamorphic property -------------------------------------

/// Well-separated blobs plus a heavy label-flip mix: corrupting known rows
/// must drop their mean importance below the clean rows' mean under both the
/// closed-form KNN-Shapley and LOO (the paper's identify-debug loop).
struct CorruptionCase {
  MlDataset train;
  MlDataset valid;
  std::vector<size_t> corrupted;
};

Gen<CorruptionCase> AnyCorruptionCase() {
  return Gen<CorruptionCase>([](Rng* rng) {
    BlobsOptions options;
    options.num_examples = 24;
    options.num_features = 2 + rng->NextBounded(2);
    options.num_classes = 2;
    options.separation = 3.5;
    options.noise = 0.5;
    options.seed = rng->NextUint64() | 1;
    options.center_seed = rng->NextUint64() | 1;
    CorruptionCase c;
    c.train = MakeBlobs(options);
    BlobsOptions valid_options = options;
    valid_options.num_examples = 16;
    valid_options.seed = rng->NextUint64() | 1;
    c.valid = MakeBlobs(valid_options);
    c.corrupted = InjectLabelErrors(&c.train, 0.35, rng);
    return c;
  });
}

std::string DescribeCorruptionCase(const CorruptionCase& c) {
  std::string out = "train.csv (corrupted):\n" + DescribeDataset(c.train);
  out += "corrupted rows:";
  for (size_t i : c.corrupted) out += StrFormat(" %zu", i);
  return out + "\n";
}

std::string CompareGroupMeans(const std::vector<double>& values,
                              const std::vector<size_t>& corrupted,
                              bool strict, const std::string& method) {
  std::set<size_t> corrupt_set(corrupted.begin(), corrupted.end());
  double corrupt_sum = 0.0, clean_sum = 0.0;
  size_t clean_count = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (corrupt_set.count(i)) {
      corrupt_sum += values[i];
    } else {
      clean_sum += values[i];
      ++clean_count;
    }
  }
  double corrupt_mean = corrupt_sum / static_cast<double>(corrupted.size());
  double clean_mean = clean_sum / static_cast<double>(clean_count);
  bool failed = strict ? !(corrupt_mean < clean_mean)
                       : !(corrupt_mean <= clean_mean);
  if (failed) {
    return StrFormat(
        "%s: corrupted rows score mean %.6g, clean rows %.6g — corruption "
        "did not drop importance",
        method.c_str(), corrupt_mean, clean_mean);
  }
  return "";
}

TEST(MetamorphicPropertyTest, InjectedErrorsDropImportance) {
  std::function<std::string(const CorruptionCase&)> property =
      [](const CorruptionCase& c) -> std::string {
    if (c.corrupted.empty()) return "injector corrupted zero rows";
    // Closed-form KNN-Shapley: flipped labels must strictly lose.
    std::vector<double> shapley =
        KnnShapleyValues(c.train, c.valid, /*k=*/3, {});
    std::string diff =
        CompareGroupMeans(shapley, c.corrupted, /*strict=*/true,
                          "knn_shapley");
    if (!diff.empty()) return diff;
    // LOO under the KNN utility: accuracy is quantized by the validation
    // size, so ties are legal — the corrupted mean just must not exceed the
    // clean mean.
    ModelAccuracyUtility utility(KnnFactory(3), c.train, c.valid, {});
    EstimatorOptions options;
    options.num_threads = 2;
    Result<std::vector<double>> loo = LeaveOneOutValues(utility, options);
    if (!loo.ok()) return "loo failed: " + loo.status().ToString();
    return CompareGroupMeans(loo.value(), c.corrupted, /*strict=*/false,
                             "loo");
  };
  std::string report = CheckProperty<CorruptionCase>(
      "error-injection-rank-drop", AnyCorruptionCase(), property,
      DescribeCorruptionCase, HereConfig(20));
  EXPECT_TRUE(report.empty()) << report;
}

/// --- Error-mix bookkeeping -----------------------------------------------------

struct MixCase {
  MlDataset data;
  ErrorMix mix;
  uint64_t seed = 1;
};

TEST(ErrorMixPropertyTest, ApplyErrorMixKeepsShapeAndReportsSortedRows) {
  Gen<MlDataset> dataset_gen = AnyDataset(4, 30);
  Gen<ErrorMix> mix_gen = AnyErrorMix();
  Gen<MixCase> gen(
      [dataset_gen, mix_gen](Rng* rng) {
        MixCase c;
        c.data = dataset_gen.Sample(rng);
        c.mix = mix_gen.Sample(rng);
        c.seed = rng->NextUint64() | 1;
        return c;
      },
      [dataset_gen, mix_gen](const MixCase& c) {
        std::vector<MixCase> candidates;
        for (MlDataset& smaller : dataset_gen.Shrink(c.data)) {
          candidates.push_back(MixCase{std::move(smaller), c.mix, c.seed});
        }
        for (ErrorMix& smaller : mix_gen.Shrink(c.mix)) {
          candidates.push_back(MixCase{c.data, std::move(smaller), c.seed});
        }
        return candidates;
      });
  std::function<std::string(const MixCase&)> property =
      [](const MixCase& c) -> std::string {
    MlDataset corrupted = c.data;
    Rng rng(c.seed);
    std::vector<size_t> rows = ApplyErrorMix(&corrupted, c.mix, &rng);
    if (corrupted.size() != c.data.size() ||
        corrupted.num_features() != c.data.num_features()) {
      return "corruption changed the dataset shape";
    }
    Status valid = corrupted.Validate();
    if (!valid.ok()) return "corrupted dataset invalid: " + valid.ToString();
    if (!std::is_sorted(rows.begin(), rows.end())) {
      return "corrupted indices not sorted";
    }
    if (std::adjacent_find(rows.begin(), rows.end()) != rows.end()) {
      return "corrupted indices not unique";
    }
    for (size_t i : rows) {
      if (i >= c.data.size()) return StrFormat("index %zu out of range", i);
    }
    // Replay determinism: the same seed must corrupt the same rows.
    MlDataset again = c.data;
    Rng rng2(c.seed);
    std::vector<size_t> rows2 = ApplyErrorMix(&again, c.mix, &rng2);
    if (rows2 != rows) return "corruption is not seed-deterministic";
    if (again.labels != corrupted.labels) {
      return "corrupted labels differ across identical replays";
    }
    return "";
  };
  std::string report = CheckProperty<MixCase>(
      "error-mix-bookkeeping", gen, property,
      [](const MixCase& c) {
        return DescribeErrorMix(c.mix) + "\n" + DescribeDataset(c.data);
      },
      HereConfig(100));
  EXPECT_TRUE(report.empty()) << report;
}

/// --- Pipeline removal invariants -----------------------------------------------

TEST(PipelinePropertyTest, FastRemovalMatchesGroundTruthRerun) {
  // RemoveByProvenance must be an exact equivalent of RunWithout whenever
  // refitting the encoders cannot change any output — here the scenario
  // columns are null-free and the NumericEncoders run with standardize off,
  // so Transform is the identity regardless of fit statistics.
  std::function<std::string(const PipelineScenario&)> property =
      [](const PipelineScenario& scenario) -> std::string {
    MlPipeline pipeline = BuildScenarioPipeline(scenario);
    Result<PipelineOutput> output = pipeline.Run();
    if (!output.ok()) {
      // A filter chain may legitimately drop every row, in which case the
      // encoders cannot fit; the removal contract is vacuous for such
      // scenarios.
      return "";
    }

    Rng rng(scenario.seed);
    std::vector<SourceRef> removed;
    size_t num_removed = 1 + rng.NextBounded(3);
    std::set<uint32_t> seen;
    for (size_t i = 0; i < num_removed; ++i) {
      uint32_t row =
          static_cast<uint32_t>(rng.NextBounded(scenario.table.num_rows()));
      if (seen.insert(row).second) removed.push_back(SourceRef{0, row});
    }

    PipelineOutput fast =
        MlPipeline::RemoveByProvenance(output.value(), removed);
    Result<PipelineOutput> ground = pipeline.RunWithout(removed);
    if (!ground.ok()) {
      // RunWithout refits the encoders, so it fails exactly when the removal
      // left no surviving rows — and then the fast path must agree that
      // nothing survived.
      if (fast.size() != 0) {
        return "RunWithout failed (" + ground.status().ToString() +
               ") but RemoveByProvenance kept " +
               StrFormat("%zu", fast.size()) + " rows";
      }
      return "";
    }
    const PipelineOutput& slow = ground.value();
    if (fast.size() != slow.size()) {
      return StrFormat("row counts differ: fast %zu vs rerun %zu",
                       fast.size(), slow.size());
    }
    if (fast.labels != slow.labels) return "labels differ";
    if (fast.features.rows() != slow.features.rows() ||
        fast.features.cols() != slow.features.cols()) {
      return "feature shapes differ";
    }
    for (size_t r = 0; r < fast.features.rows(); ++r) {
      for (size_t c = 0; c < fast.features.cols(); ++c) {
        if (fast.features(r, c) != slow.features(r, c)) {
          return StrFormat("feature (%zu,%zu): fast %.17g vs rerun %.17g", r,
                           c, fast.features(r, c), slow.features(r, c));
        }
      }
    }
    for (size_t r = 0; r < fast.size(); ++r) {
      if (!(fast.provenance[r].refs() == slow.provenance[r].refs())) {
        return StrFormat("provenance differs at output row %zu", r);
      }
    }
    return "";
  };
  std::string report = CheckProperty<PipelineScenario>(
      "pipeline-removal-equality", AnyPipelineScenario(), property,
      DescribePipelineScenario, HereConfig(60));
  EXPECT_TRUE(report.empty()) << report;
}

}  // namespace
}  // namespace prop
}  // namespace nde
