#include <functional>
#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "importance/game_values.h"
#include "importance/grouped.h"
#include "ml/knn.h"

namespace nde {
namespace {

class LambdaUtility : public UtilityFunction {
 public:
  LambdaUtility(size_t n, std::function<double(const std::vector<size_t>&)> fn)
      : n_(n), fn_(std::move(fn)) {}
  double Evaluate(const std::vector<size_t>& subset) const override {
    return fn_(subset);
  }
  size_t num_units() const override { return n_; }

 private:
  size_t n_;
  std::function<double(const std::vector<size_t>&)> fn_;
};

TEST(GroupedUtilityTest, CreateValidatesAssignment) {
  LambdaUtility base(4, [](const std::vector<size_t>&) { return 0.0; });
  EXPECT_FALSE(GroupedUtility::Create(nullptr, {0, 0, 1, 1}).ok());
  EXPECT_FALSE(GroupedUtility::Create(&base, {0, 1}).ok());       // Size.
  EXPECT_FALSE(GroupedUtility::Create(&base, {0, 0, 2, 2}).ok());  // Gap.
  EXPECT_TRUE(GroupedUtility::Create(&base, {0, 0, 1, 1}).ok());
}

TEST(GroupedUtilityTest, EvaluatesUnionOfGroupRows) {
  // Base game: v(S) = sum of (i + 1) over rows.
  LambdaUtility base(5, [](const std::vector<size_t>& subset) {
    double total = 0.0;
    for (size_t i : subset) total += static_cast<double>(i + 1);
    return total;
  });
  GroupedUtility grouped =
      GroupedUtility::Create(&base, {0, 0, 1, 1, 1}).value();
  EXPECT_EQ(grouped.num_units(), 2u);
  EXPECT_EQ(grouped.Evaluate({0}), 1.0 + 2.0);
  EXPECT_EQ(grouped.Evaluate({1}), 3.0 + 4.0 + 5.0);
  EXPECT_EQ(grouped.Evaluate({0, 1}), 15.0);
  EXPECT_EQ(grouped.GroupRows(1), (std::vector<size_t>{2, 3, 4}));
}

TEST(GroupedUtilityTest, GroupShapleyOfAdditiveGameIsGroupSum) {
  // In an additive game the group Shapley value equals the sum of member
  // worths — a crisp correctness anchor.
  std::vector<double> worths = {1.0, 2.0, -1.5, 0.5, 3.0, -0.5};
  LambdaUtility base(6, [worths](const std::vector<size_t>& subset) {
    double total = 0.0;
    for (size_t i : subset) total += worths[i];
    return total;
  });
  GroupedUtility grouped =
      GroupedUtility::Create(&base, {0, 0, 1, 1, 2, 2}).value();
  std::vector<double> values = ExactShapleyValues(grouped).value();
  EXPECT_NEAR(values[0], 3.0, 1e-12);
  EXPECT_NEAR(values[1], -1.0, 1e-12);
  EXPECT_NEAR(values[2], 2.5, 1e-12);
}

TEST(GroupedUtilityTest, EfficiencyOverGroups) {
  LambdaUtility base(6, [](const std::vector<size_t>& subset) {
    return static_cast<double>(subset.size() * subset.size());
  });
  GroupedUtility grouped =
      GroupedUtility::Create(&base, {0, 1, 1, 2, 2, 2}).value();
  std::vector<double> values = ExactShapleyValues(grouped).value();
  double total = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_NEAR(total, 36.0, 1e-9);  // v(all groups) = 6^2.
}

TEST(GroupShapleyTest, CorruptedProviderGetsLowestValue) {
  // Three "data providers": provider 2's labels are all flipped. Its group
  // Shapley value must be the lowest (and negative).
  BlobsOptions options;
  options.num_examples = 150;
  options.num_features = 4;
  options.separation = 3.0;
  MlDataset all = MakeBlobs(options);
  Rng split_rng(7);
  SplitResult split = TrainTestSplit(all, 0.4, &split_rng);
  MlDataset train = split.train;
  MlDataset validation = split.test;

  std::vector<size_t> group_of(train.size());
  for (size_t i = 0; i < train.size(); ++i) {
    group_of[i] = i % 3;
    if (group_of[i] == 2) train.labels[i] = 1 - train.labels[i];
  }
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  std::vector<double> values =
      GroupShapleyValues(factory, train, validation, group_of).value();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_LT(values[2], values[0]);
  EXPECT_LT(values[2], values[1]);
  EXPECT_LT(values[2], 0.0);
  EXPECT_GT(values[0], 0.0);
}

TEST(GroupShapleyTest, TooManyGroupsRejected) {
  MlDataset train = MakeBlobs({});
  std::vector<size_t> group_of(train.size());
  std::iota(group_of.begin(), group_of.end(), size_t{0});  // 500 groups.
  auto factory = []() { return std::make_unique<KnnClassifier>(5); };
  EXPECT_FALSE(GroupShapleyValues(factory, train, train, group_of).ok());
}

}  // namespace
}  // namespace nde
