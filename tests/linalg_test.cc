#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "linalg/solve.h"

namespace nde {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng->NextGaussian();
  }
  return m;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.At(1, 2), 0.0);
  m.At(1, 2) = 5.0;
  EXPECT_EQ(m(1, 2), 5.0);
}

TEST(MatrixTest, FromRowsAndIdentity) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id(0, 0), 1.0);
  EXPECT_EQ(id(0, 1), 0.0);
  EXPECT_EQ(id(2, 2), 1.0);
}

TEST(MatrixTest, RowAndColExtraction) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.Col(2), (std::vector<double>{3, 6}));
}

TEST(MatrixTest, SetRow) {
  Matrix m(2, 2);
  m.SetRow(0, {7, 8});
  EXPECT_EQ(m(0, 0), 7.0);
  EXPECT_EQ(m(0, 1), 8.0);
}

TEST(MatrixTest, TransposeIsInvolution) {
  Rng rng(5);
  Matrix m = RandomMatrix(4, 7, &rng);
  EXPECT_EQ(m.Transposed().Transposed().MaxAbsDiff(m), 0.0);
}

TEST(MatrixTest, MatMulAgainstHandComputed) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.MatMul(b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MatMulAssociativeWithVector) {
  Rng rng(11);
  Matrix a = RandomMatrix(3, 4, &rng);
  Matrix b = RandomMatrix(4, 5, &rng);
  std::vector<double> v = {1.0, -2.0, 0.5, 3.0, -1.0};
  std::vector<double> left = a.MatMul(b).MatVec(v);
  std::vector<double> right = a.MatVec(b.MatVec(v));
  for (size_t i = 0; i < left.size(); ++i) {
    EXPECT_NEAR(left[i], right[i], 1e-9);
  }
}

TEST(MatrixTest, TransposedMatVecMatchesExplicitTranspose) {
  Rng rng(13);
  Matrix a = RandomMatrix(6, 3, &rng);
  std::vector<double> v = {1, 2, 3, 4, 5, 6};
  std::vector<double> fast = a.TransposedMatVec(v);
  std::vector<double> slow = a.Transposed().MatVec(v);
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-9);
  }
}

TEST(MatrixTest, SelectRowsReordersAndRepeats) {
  Matrix m = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  Matrix s = m.SelectRows({2, 0, 2});
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_EQ(s(0, 0), 3.0);
  EXPECT_EQ(s(1, 0), 1.0);
  EXPECT_EQ(s(2, 0), 3.0);
}

TEST(MatrixTest, AppendRows) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  a.AppendRows(b);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a(2, 1), 6.0);
  Matrix empty;
  empty.AppendRows(b);
  EXPECT_EQ(empty.rows(), 2u);
}

TEST(MatrixTest, ConcatCols) {
  Matrix a = Matrix::FromRows({{1}, {2}});
  Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  Matrix c = a.ConcatCols(b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_EQ(c(1, 2), 6.0);
  EXPECT_EQ(c(0, 0), 1.0);
}

TEST(MatrixTest, AddAndScaleInPlace) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3, 4}});
  a.AddInPlace(b);
  a.ScaleInPlace(2.0);
  EXPECT_EQ(a(0, 0), 8.0);
  EXPECT_EQ(a(0, 1), 12.0);
}

TEST(MatrixTest, DebugStringTruncates) {
  Matrix m(100, 100);
  std::string s = m.DebugString(2, 2);
  EXPECT_NE(s.find("Matrix(100x100)"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(VectorOpsTest, DotNormDistance) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {4, 5, 6};
  EXPECT_EQ(Dot(a, b), 32.0);
  EXPECT_NEAR(Norm2(a), std::sqrt(14.0), 1e-12);
  EXPECT_EQ(SquaredDistance(a, b), 27.0);
}

TEST(VectorOpsTest, AxpyAndScale) {
  std::vector<double> x = {1, 1};
  std::vector<double> y = {2, 3};
  Axpy(2.0, x, &y);
  EXPECT_EQ(y, (std::vector<double>{4, 5}));
  Scale(0.5, &y);
  EXPECT_EQ(y, (std::vector<double>{2, 2.5}));
}

// --- Cholesky / solvers -------------------------------------------------------

TEST(CholeskyTest, FactorOfKnownMatrix) {
  // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]].
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  Result<Matrix> l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR((*l)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*l)(1, 0), 1.0, 1e-12);
  EXPECT_NEAR((*l)(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(CholeskyTest, FactorTimesTransposeReconstructs) {
  Rng rng(17);
  Matrix b = RandomMatrix(5, 5, &rng);
  Matrix a = b.Transposed().MatMul(b);
  for (size_t i = 0; i < 5; ++i) a(i, i) += 5.0;  // Ensure SPD.
  Result<Matrix> l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  Matrix reconstructed = l->MatMul(l->Transposed());
  EXPECT_LT(reconstructed.MaxAbsDiff(a), 1e-9);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_EQ(CholeskyFactor(a).status().code(), StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // Eigenvalues 3, -1.
  EXPECT_EQ(CholeskyFactor(a).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  std::vector<double> x_true = {1.0, -2.0};
  std::vector<double> b = a.MatVec(x_true);
  Result<std::vector<double>> x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-10);
  EXPECT_NEAR((*x)[1], -2.0, 1e-10);
}

TEST(CholeskyTest, SolveRejectsBadRhsSize) {
  Matrix a = Matrix::Identity(3);
  EXPECT_FALSE(CholeskySolve(a, {1.0, 2.0}).ok());
}

TEST(CholeskyTest, SpdInverseTimesOriginalIsIdentity) {
  Rng rng(19);
  Matrix b = RandomMatrix(4, 4, &rng);
  Matrix a = b.Transposed().MatMul(b);
  for (size_t i = 0; i < 4; ++i) a(i, i) += 4.0;
  Result<Matrix> inv = SpdInverse(a);
  ASSERT_TRUE(inv.ok());
  Matrix product = a.MatMul(*inv);
  EXPECT_LT(product.MaxAbsDiff(Matrix::Identity(4)), 1e-8);
}

TEST(RidgeSolveTest, RecoversGeneratingWeights) {
  Rng rng(23);
  size_t n = 200;
  size_t d = 4;
  std::vector<double> w_true = {2.0, -1.0, 0.5, 3.0};
  Matrix x = RandomMatrix(n, d, &rng);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = Dot(x.Row(i), w_true) + 0.01 * rng.NextGaussian();
  }
  Result<std::vector<double>> w = RidgeSolve(x, y, 1e-6);
  ASSERT_TRUE(w.ok());
  for (size_t j = 0; j < d; ++j) {
    EXPECT_NEAR((*w)[j], w_true[j], 0.02);
  }
}

TEST(RidgeSolveTest, LargerLambdaShrinksWeights) {
  Rng rng(29);
  Matrix x = RandomMatrix(100, 3, &rng);
  std::vector<double> y(100);
  for (size_t i = 0; i < 100; ++i) y[i] = Dot(x.Row(i), {5.0, 5.0, 5.0});
  std::vector<double> small = RidgeSolve(x, y, 1e-6).value();
  std::vector<double> large = RidgeSolve(x, y, 1e3).value();
  EXPECT_LT(Norm2(large), Norm2(small));
}

TEST(RidgeSolveTest, RejectsNegativeLambdaAndBadShapes) {
  Matrix x(3, 2);
  EXPECT_FALSE(RidgeSolve(x, {1.0, 2.0, 3.0}, -1.0).ok());
  EXPECT_FALSE(RidgeSolve(x, {1.0, 2.0}, 1.0).ok());
}

}  // namespace
}  // namespace nde
