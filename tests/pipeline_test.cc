#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/status.h"
#include "datagen/synthetic.h"
#include "pipeline/encoders.h"
#include "pipeline/inspection.h"
#include "pipeline/pipeline.h"
#include "pipeline/plan.h"
#include "pipeline/provenance.h"

namespace nde {
namespace {

// --- Provenance -------------------------------------------------------------

TEST(ProvenanceTest, SourceRefOrderingAndKeys) {
  SourceRef a{0, 1};
  SourceRef b{0, 2};
  SourceRef c{1, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_NE(a.Key(), b.Key());
  EXPECT_EQ(a.ToString(), "t0/r1");
}

TEST(ProvenanceTest, AddKeepsSortedUnique) {
  RowProvenance prov;
  prov.Add({1, 5});
  prov.Add({0, 3});
  prov.Add({1, 5});  // Duplicate ignored.
  ASSERT_EQ(prov.size(), 2u);
  EXPECT_EQ(prov.refs()[0], (SourceRef{0, 3}));
  EXPECT_EQ(prov.refs()[1], (SourceRef{1, 5}));
}

TEST(ProvenanceTest, MergeIsSetUnion) {
  RowProvenance a({0, 1});
  a.Add({1, 2});
  RowProvenance b({1, 2});
  b.Add({2, 0});
  RowProvenance merged = RowProvenance::Merge(a, b);
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_TRUE(merged.DependsOnTable(0));
  EXPECT_TRUE(merged.DependsOnTable(2));
  EXPECT_FALSE(merged.DependsOnTable(5));
}

TEST(ProvenanceTest, FindTableRefAndIntersect) {
  RowProvenance prov({0, 7});
  prov.Add({1, 9});
  const SourceRef* ref = prov.FindTableRef(1);
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->row_id, 9u);
  EXPECT_EQ(prov.FindTableRef(4), nullptr);

  auto keys = MakeKeySet({{1, 9}});
  EXPECT_TRUE(prov.IntersectsKeys(keys));
  auto other_keys = MakeKeySet({{1, 8}, {0, 6}});
  EXPECT_FALSE(prov.IntersectsKeys(other_keys));
}

// --- Plan operators -----------------------------------------------------------

Table People() {
  return TableBuilder()
      .AddInt64Column("id", {0, 1, 2, 3})
      .AddStringColumn("name", {"ann", "bob", "cat", "dan"})
      .AddInt64Column("dept", {10, 20, 10, 30})
      .Build();
}

Table Departments() {
  return TableBuilder()
      .AddInt64Column("dept_id", {10, 20})
      .AddStringColumn("dept_name", {"radiology", "surgery"})
      .Build();
}

TEST(PlanTest, SourceAnnotatesIdentityProvenance) {
  PlanNodePtr source = MakeSource(3, "people", People());
  AnnotatedTable out = source->Execute().value();
  ASSERT_EQ(out.table.num_rows(), 4u);
  ASSERT_TRUE(out.Validate().ok());
  EXPECT_EQ(out.provenance[2].refs()[0], (SourceRef{3, 2}));
}

TEST(PlanTest, FilterKeepsMatchingRowsWithProvenance) {
  PlanNodePtr plan = MakeFilterEquals(MakeSource(0, "people", People()),
                                      "dept", Value(int64_t{10}));
  AnnotatedTable out = plan->Execute().value();
  ASSERT_EQ(out.table.num_rows(), 2u);
  EXPECT_EQ(out.table.At(0, 1).as_string(), "ann");
  EXPECT_EQ(out.table.At(1, 1).as_string(), "cat");
  EXPECT_EQ(out.provenance[1].refs()[0].row_id, 2u);
}

TEST(PlanTest, FilterWithCustomPredicate) {
  PlanNodePtr plan = MakeFilter(
      MakeSource(0, "people", People()), "name starts with a-c",
      [](const RowView& row) {
        return row.GetOrDie("name").as_string() < std::string("d");
      });
  AnnotatedTable out = plan->Execute().value();
  EXPECT_EQ(out.table.num_rows(), 3u);
}

TEST(PlanTest, ProjectSelectsAndComputes) {
  std::vector<ComputedColumn> computed;
  computed.push_back(ComputedColumn{
      Field{"name_len", DataType::kInt64}, [](const RowView& row) {
        return Value(static_cast<int64_t>(
            row.GetOrDie("name").as_string().size()));
      }});
  PlanNodePtr plan = MakeProject(MakeSource(0, "people", People()),
                                 {"id", "name"}, std::move(computed));
  AnnotatedTable out = plan->Execute().value();
  EXPECT_EQ(out.table.num_columns(), 3u);
  EXPECT_EQ(out.table.At(0, 2).as_int64(), 3);
  EXPECT_EQ(out.provenance.size(), 4u);
}

TEST(PlanTest, ProjectUnknownColumnFails) {
  PlanNodePtr plan = MakeProject(MakeSource(0, "people", People()), {"nope"});
  EXPECT_FALSE(plan->Execute().ok());
}

TEST(PlanTest, HashJoinMatchesAndMergesProvenance) {
  PlanNodePtr plan = MakeHashJoin(MakeSource(0, "people", People()),
                                  MakeSource(1, "departments", Departments()),
                                  "dept", "dept_id");
  AnnotatedTable out = plan->Execute().value();
  // dept 30 (dan) has no match; dept 10 matches twice (ann, cat).
  ASSERT_EQ(out.table.num_rows(), 3u);
  EXPECT_TRUE(out.table.schema().HasField("dept_name"));
  EXPECT_FALSE(out.table.schema().HasField("dept_id"));
  for (size_t r = 0; r < out.table.num_rows(); ++r) {
    ASSERT_EQ(out.provenance[r].size(), 2u);
    EXPECT_TRUE(out.provenance[r].DependsOnTable(0));
    EXPECT_TRUE(out.provenance[r].DependsOnTable(1));
  }
}

TEST(PlanTest, HashJoinIgnoresNullKeys) {
  Table left = TableBuilder()
                   .AddValueColumn("k", DataType::kInt64,
                                   {Value(1), Value::Null()})
                   .Build();
  Table right = TableBuilder().AddInt64Column("k2", {1}).Build();
  PlanNodePtr plan = MakeHashJoin(MakeSource(0, "l", left),
                                  MakeSource(1, "r", right), "k", "k2");
  AnnotatedTable out = plan->Execute().value();
  EXPECT_EQ(out.table.num_rows(), 1u);
}

TEST(PlanTest, HashJoinRenamesCollidingColumns) {
  Table left = TableBuilder()
                   .AddInt64Column("k", {1})
                   .AddStringColumn("x", {"left"})
                   .Build();
  Table right = TableBuilder()
                    .AddInt64Column("k", {1})
                    .AddStringColumn("x", {"right"})
                    .Build();
  PlanNodePtr plan = MakeHashJoin(MakeSource(0, "l", left),
                                  MakeSource(1, "r", right), "k", "k");
  AnnotatedTable out = plan->Execute().value();
  ASSERT_TRUE(out.table.schema().HasField("x_r"));
  EXPECT_EQ(out.table.At(0, out.table.schema().FieldIndex("x_r").value())
                .as_string(),
            "right");
}

TEST(PlanTest, FuzzyJoinMatchesWithinEditDistance) {
  Table left = TableBuilder()
                   .AddStringColumn("city", {"berlin", "munich", "hamburg"})
                   .Build();
  Table right = TableBuilder()
                    .AddStringColumn("city_name", {"Berlin", "berln", "muenich"})
                    .AddInt64Column("population", {3600, 3600, 1500})
                    .Build();
  PlanNodePtr plan =
      MakeFuzzyJoin(MakeSource(0, "l", left), MakeSource(1, "r", right),
                    "city", "city_name", 1);
  AnnotatedTable out = plan->Execute().value();
  // "berlin" ~ "Berlin"(1 sub), "berlin" ~ "berln"(1 del), "munich" ~
  // "muenich"(1 ins); "hamburg" matches nothing.
  EXPECT_EQ(out.table.num_rows(), 3u);
}

TEST(PlanTest, FuzzyJoinRequiresStringKeys) {
  Table left = TableBuilder().AddInt64Column("k", {1}).Build();
  Table right = TableBuilder().AddInt64Column("k2", {1}).Build();
  PlanNodePtr plan = MakeFuzzyJoin(MakeSource(0, "l", left),
                                   MakeSource(1, "r", right), "k", "k2", 1);
  EXPECT_FALSE(plan->Execute().ok());
}

TEST(PlanTest, PlanToStringShowsOperators) {
  PlanNodePtr plan = MakeFilterEquals(
      MakeHashJoin(MakeSource(0, "people", People()),
                   MakeSource(1, "departments", Departments()), "dept",
                   "dept_id"),
      "dept_name", Value("radiology"));
  std::string text = PlanToString(*plan);
  EXPECT_NE(text.find("Filter(dept_name == radiology)"), std::string::npos);
  EXPECT_NE(text.find("Join(dept = dept_id)"), std::string::npos);
  EXPECT_NE(text.find("Source(people"), std::string::npos);
}

TEST(PlanTest, PlanToDotIsWellFormed) {
  PlanNodePtr plan = MakeHashJoin(MakeSource(0, "people", People()),
                                  MakeSource(1, "departments", Departments()),
                                  "dept", "dept_id");
  std::string dot = PlanToDot(*plan);
  EXPECT_NE(dot.find("digraph pipeline"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), 1);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '}'), 1);
}

// --- Encoders -------------------------------------------------------------------

TEST(NumericEncoderTest, StandardizesAndImputesMean) {
  NumericEncoder encoder;
  std::vector<Value> column = {Value(1.0), Value(3.0), Value::Null()};
  ASSERT_TRUE(encoder.Fit(column).ok());
  double out = 0.0;
  encoder.Transform(Value(2.0), &out);
  EXPECT_NEAR(out, 0.0, 1e-12);  // 2.0 is the mean of {1, 3}.
  encoder.Transform(Value::Null(), &out);
  EXPECT_NEAR(out, 0.0, 1e-12);  // Null imputed with the mean.
  encoder.Transform(Value(3.0), &out);
  EXPECT_NEAR(out, 1.0, 1e-12);  // One stddev above.
}

TEST(NumericEncoderTest, RejectsStringCells) {
  NumericEncoder encoder;
  EXPECT_FALSE(encoder.Fit({Value("oops")}).ok());
}

TEST(OneHotEncoderTest, EncodesCategoriesAndImputes) {
  OneHotEncoder encoder;
  std::vector<Value> column = {Value("a"), Value("b"), Value("a"),
                               Value::Null()};
  ASSERT_TRUE(encoder.Fit(column).ok());
  ASSERT_EQ(encoder.num_features(), 2u);
  double out[2];
  encoder.Transform(Value("b"), out);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 1.0);
  encoder.Transform(Value::Null(), out);  // Most frequent = "a".
  EXPECT_EQ(out[0], 1.0);
  encoder.Transform(Value("unknown"), out);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
}

TEST(OneHotEncoderTest, NoImputeMapsNullToZeros) {
  OneHotEncoder encoder(/*impute_most_frequent=*/false);
  ASSERT_TRUE(encoder.Fit({Value("x"), Value("y")}).ok());
  double out[2];
  encoder.Transform(Value::Null(), out);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
}

TEST(OneHotEncoderTest, AllNullColumnFailsFit) {
  OneHotEncoder encoder;
  EXPECT_FALSE(encoder.Fit({Value::Null(), Value::Null()}).ok());
}

TEST(HashingVectorizerTest, DeterministicAndNormalized) {
  HashingVectorizer encoder(16);
  ASSERT_TRUE(encoder.Fit({}).ok());
  std::vector<double> a(16), b(16);
  encoder.Transform(Value("great work great"), a.data());
  encoder.Transform(Value("great work great"), b.data());
  EXPECT_EQ(a, b);
  double norm = 0.0;
  for (double v : a) norm += v * v;
  EXPECT_NEAR(norm, 1.0, 1e-9);
  EXPECT_TRUE(encoder.is_row_local());
}

TEST(HashingVectorizerTest, DifferentTextsDiffer) {
  HashingVectorizer encoder(32);
  std::vector<double> a(32), b(32);
  encoder.Transform(Value("outstanding dedication"), a.data());
  encoder.Transform(Value("careless and sloppy"), b.data());
  EXPECT_NE(a, b);
}

TEST(HashingVectorizerTest, NullAndEmptyGiveZeroVector) {
  HashingVectorizer encoder(8);
  std::vector<double> out(8, 1.0);
  encoder.Transform(Value::Null(), out.data());
  for (double v : out) EXPECT_EQ(v, 0.0);
  encoder.Transform(Value(""), out.data());
  for (double v : out) EXPECT_EQ(v, 0.0);
}

TEST(NotNullIndicatorTest, Binary) {
  NotNullIndicatorEncoder encoder;
  ASSERT_TRUE(encoder.Fit({}).ok());
  double out = -1.0;
  encoder.Transform(Value("@handle"), &out);
  EXPECT_EQ(out, 1.0);
  encoder.Transform(Value::Null(), &out);
  EXPECT_EQ(out, 0.0);
}

TEST(ColumnTransformerTest, ConcatenatesBlocks) {
  Table t = TableBuilder()
                .AddDoubleColumn("age", {20, 40})
                .AddStringColumn("degree", {"bs", "ms"})
                .Build();
  ColumnTransformer transformer;
  transformer.Add("age", std::make_unique<NumericEncoder>());
  transformer.Add("degree", std::make_unique<OneHotEncoder>());
  Matrix x = transformer.FitTransform(t).value();
  EXPECT_EQ(x.rows(), 2u);
  EXPECT_EQ(x.cols(), 3u);  // 1 numeric + 2 one-hot.
  EXPECT_FALSE(transformer.is_row_local());
}

TEST(ColumnTransformerTest, CopyIsDeep) {
  Table t = TableBuilder().AddDoubleColumn("v", {1, 2, 3}).Build();
  ColumnTransformer a;
  a.Add("v", std::make_unique<NumericEncoder>());
  ASSERT_TRUE(a.Fit(t).ok());
  ColumnTransformer b = a;
  EXPECT_TRUE(b.fitted());
  Matrix x = b.Transform(t).value();
  EXPECT_EQ(x.rows(), 3u);
}

TEST(ColumnTransformerTest, MissingColumnFails) {
  Table t = TableBuilder().AddDoubleColumn("v", {1}).Build();
  ColumnTransformer transformer;
  transformer.Add("nope", std::make_unique<NumericEncoder>());
  EXPECT_FALSE(transformer.Fit(t).ok());
}

TEST(ColumnTransformerTest, TransformBeforeFitFails) {
  Table t = TableBuilder().AddDoubleColumn("v", {1}).Build();
  ColumnTransformer transformer;
  transformer.Add("v", std::make_unique<NumericEncoder>());
  EXPECT_EQ(transformer.Transform(t).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AutoTransformerTest, PicksEncodersBySchemaAndCardinality) {
  std::vector<std::string> texts;
  std::vector<std::string> categories;
  std::vector<double> numbers;
  for (int i = 0; i < 40; ++i) {
    // High-cardinality text column (40 distinct values > onehot cap).
    texts.push_back("long free text number " + std::to_string(i));
    categories.push_back(i % 3 == 0 ? "a" : "b");
    numbers.push_back(static_cast<double>(i));
  }
  Table t = TableBuilder()
                .AddStringColumn("text", texts)
                .AddStringColumn("category", categories)
                .AddDoubleColumn("value", numbers)
                .AddInt64Column("label", std::vector<int64_t>(40, 1))
                .Build();
  ColumnTransformer transformer =
      MakeAutoTransformer(t, {"label"}, /*max_onehot_cardinality=*/16,
                          /*text_hash_buckets=*/8)
          .value();
  ASSERT_TRUE(transformer.fitted());
  // text -> 8 hash buckets, category -> 2 one-hot, value -> 1 numeric.
  EXPECT_EQ(transformer.num_features(), 11u);
  std::string description = transformer.DebugString();
  EXPECT_NE(description.find("text -> hashing_vectorizer"), std::string::npos);
  EXPECT_NE(description.find("category -> onehot"), std::string::npos);
  EXPECT_NE(description.find("value -> numeric"), std::string::npos);
  EXPECT_EQ(description.find("label"), std::string::npos);
  Matrix encoded = transformer.Transform(t).value();
  EXPECT_EQ(encoded.rows(), 40u);
}

TEST(AutoTransformerTest, FailsWhenNothingEncodable) {
  Table t = TableBuilder().AddInt64Column("label", {1, 0}).Build();
  EXPECT_FALSE(MakeAutoTransformer(t, {"label"}).ok());
}

TEST(AutoTransformerTest, SkipsAllNullColumns) {
  Table t = TableBuilder()
                .AddValueColumn("empty", DataType::kDouble,
                                {Value::Null(), Value::Null()})
                .AddDoubleColumn("ok", {1.0, 2.0})
                .Build();
  ColumnTransformer transformer = MakeAutoTransformer(t, {}).value();
  EXPECT_EQ(transformer.num_features(), 1u);
}

// --- End-to-end pipeline ------------------------------------------------------------

/// The Figure 3 pipeline in miniature over the hiring scenario.
MlPipeline MakeHiringPipeline(const HiringScenario& scenario,
                              bool row_local_encoders) {
  std::vector<NamedTable> sources;
  sources.push_back({"train", scenario.train});
  sources.push_back({"jobdetail", scenario.jobdetail});
  sources.push_back({"social", scenario.social});

  PlanBuilder builder = [](const std::vector<PlanNodePtr>& s) -> PlanNodePtr {
    PlanNodePtr joined = MakeHashJoin(s[0], s[1], "job_id", "job_id");
    joined = MakeHashJoin(joined, s[2], "person_id", "person_id");
    joined = MakeFilterEquals(joined, "sector", Value("healthcare"));
    std::vector<ComputedColumn> computed;
    computed.push_back(ComputedColumn{
        Field{"has_twitter", DataType::kInt64}, [](const RowView& row) {
          return Value(int64_t{row.GetOrDie("twitter").is_null() ? 0 : 1});
        }});
    return MakeProject(joined,
                       {"person_id", "letter_text", "degree", "age",
                        "employer_rating", "twitter", "sentiment"},
                       std::move(computed));
  };

  ColumnTransformer transformer;
  transformer.Add("letter_text", std::make_unique<HashingVectorizer>(32));
  if (row_local_encoders) {
    transformer.Add("twitter", std::make_unique<NotNullIndicatorEncoder>());
  } else {
    transformer.Add("degree", std::make_unique<OneHotEncoder>());
    transformer.Add("age", std::make_unique<NumericEncoder>());
    transformer.Add("employer_rating", std::make_unique<NumericEncoder>());
  }
  return MlPipeline(std::move(sources), std::move(builder),
                    std::move(transformer), "sentiment");
}

TEST(MlPipelineTest, RunProducesAlignedOutputs) {
  HiringScenario scenario = MakeHiringScenario({});
  MlPipeline pipeline = MakeHiringPipeline(scenario, false);
  PipelineOutput output = pipeline.Run().value();
  EXPECT_GT(output.size(), 50u);
  EXPECT_EQ(output.features.rows(), output.labels.size());
  EXPECT_EQ(output.provenance.size(), output.labels.size());
  EXPECT_EQ(output.processed.num_rows(), output.labels.size());
  // Every output row depends on all three source tables (two joins).
  for (const RowProvenance& prov : output.provenance) {
    EXPECT_EQ(prov.size(), 3u);
  }
}

TEST(MlPipelineTest, FilterLimitsToHealthcareSector) {
  HiringScenario scenario = MakeHiringScenario({});
  MlPipeline pipeline = MakeHiringPipeline(scenario, false);
  PipelineOutput output = pipeline.Run().value();
  // Healthcare jobs only: every output row's jobdetail ref points to a
  // healthcare row.
  size_t sector_col =
      scenario.jobdetail.schema().FieldIndex("sector").value();
  for (const RowProvenance& prov : output.provenance) {
    const SourceRef* job_ref = prov.FindTableRef(1);
    ASSERT_NE(job_ref, nullptr);
    EXPECT_EQ(scenario.jobdetail.At(job_ref->row_id, sector_col).as_string(),
              "healthcare");
  }
}

TEST(MlPipelineTest, RunWithoutKeepsOriginalRowIds) {
  HiringScenario scenario = MakeHiringScenario({});
  MlPipeline pipeline = MakeHiringPipeline(scenario, false);
  PipelineOutput full = pipeline.Run().value();
  // Remove the train rows feeding the first two outputs.
  std::vector<SourceRef> removed;
  removed.push_back(*full.provenance[0].FindTableRef(0));
  removed.push_back(*full.provenance[1].FindTableRef(0));
  PipelineOutput reduced = pipeline.RunWithout(removed).value();
  EXPECT_EQ(reduced.size(), full.size() - 2);
  auto keys = MakeKeySet(removed);
  for (const RowProvenance& prov : reduced.provenance) {
    EXPECT_FALSE(prov.IntersectsKeys(keys));
  }
}

TEST(MlPipelineTest, FastRemovalEquivalentToRerunWithRowLocalEncoders) {
  HiringScenario scenario = MakeHiringScenario({});
  MlPipeline pipeline = MakeHiringPipeline(scenario, /*row_local=*/true);
  PipelineOutput full = pipeline.Run().value();
  ASSERT_TRUE(full.encoders.is_row_local());

  std::vector<SourceRef> removed;
  for (size_t i = 0; i < 20 && i < full.size(); i += 2) {
    removed.push_back(*full.provenance[i].FindTableRef(0));
  }
  PipelineOutput fast = MlPipeline::RemoveByProvenance(full, removed);
  PipelineOutput slow = pipeline.RunWithout(removed).value();
  ASSERT_EQ(fast.size(), slow.size());
  EXPECT_EQ(fast.labels, slow.labels);
  EXPECT_LT(fast.features.MaxAbsDiff(slow.features), 1e-12);
}

TEST(MlPipelineTest, FastRemovalApproximatesRerunWithStatefulEncoders) {
  HiringScenario scenario = MakeHiringScenario({});
  MlPipeline pipeline = MakeHiringPipeline(scenario, /*row_local=*/false);
  PipelineOutput full = pipeline.Run().value();
  ASSERT_FALSE(full.encoders.is_row_local());
  std::vector<SourceRef> removed = {*full.provenance[0].FindTableRef(0)};
  PipelineOutput fast = MlPipeline::RemoveByProvenance(full, removed);
  PipelineOutput slow = pipeline.RunWithout(removed).value();
  // Same rows survive; features differ only through refit statistics, so the
  // mean per-cell deviation must be small even though a flipped imputation
  // category can move a single cell by 1.
  ASSERT_EQ(fast.labels, slow.labels);
  double total_diff = 0.0;
  for (size_t r = 0; r < fast.features.rows(); ++r) {
    for (size_t c = 0; c < fast.features.cols(); ++c) {
      total_diff += std::fabs(fast.features(r, c) - slow.features(r, c));
    }
  }
  double mean_diff = total_diff / static_cast<double>(fast.features.size());
  EXPECT_LT(mean_diff, 0.05);
}

TEST(MlPipelineTest, MissingLabelColumnFails) {
  HiringScenario scenario = MakeHiringScenario({});
  std::vector<NamedTable> sources = {{"train", scenario.train}};
  ColumnTransformer transformer;
  transformer.Add("age", std::make_unique<NumericEncoder>());
  MlPipeline pipeline(
      std::move(sources),
      [](const std::vector<PlanNodePtr>& s) { return s[0]; },
      std::move(transformer), "no_such_label");
  EXPECT_FALSE(pipeline.Run().ok());
}

// --- Inspection -----------------------------------------------------------------

TEST(InspectionTest, DistributionChangeFlagsShrunkGroup) {
  // A filter that drops almost all of sex=f.
  Table t = TableBuilder()
                .AddStringColumn("sex", {"f", "f", "f", "f", "m", "m", "m", "m"})
                .AddInt64Column("age", {20, 30, 40, 50, 20, 30, 40, 50})
                .Build();
  PlanNodePtr plan = MakeFilter(
      MakeSource(0, "t", t), "age>=50 or sex==m", [](const RowView& row) {
        return row.GetOrDie("age").as_int64() >= 50 ||
               row.GetOrDie("sex").as_string() == "m";
      });
  std::vector<PipelineIssue> issues =
      CheckDistributionChange(*plan, {"sex"}, 0.5).value();
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].check, "distribution_change");
  EXPECT_NE(issues[0].message.find("sex=f"), std::string::npos);
}

TEST(InspectionTest, BalancedFilterPassesDistributionCheck) {
  Table t = TableBuilder()
                .AddStringColumn("sex", {"f", "f", "m", "m"})
                .AddInt64Column("age", {20, 50, 20, 50})
                .Build();
  PlanNodePtr plan = MakeFilter(
      MakeSource(0, "t", t), "age>=50", [](const RowView& row) {
        return row.GetOrDie("age").as_int64() >= 50;
      });
  EXPECT_TRUE(CheckDistributionChange(*plan, {"sex"}, 0.5).value().empty());
}

TEST(InspectionTest, LeakageDetectedOnSharedSourceRows) {
  std::vector<RowProvenance> train = {RowProvenance({0, 1}),
                                      RowProvenance({0, 2})};
  std::vector<RowProvenance> test = {RowProvenance({0, 2}),
                                     RowProvenance({0, 3})};
  std::vector<PipelineIssue> issues = CheckDataLeakage(train, test);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].severity, IssueSeverity::kError);

  std::vector<RowProvenance> disjoint = {RowProvenance({0, 9})};
  EXPECT_TRUE(CheckDataLeakage(train, disjoint).empty());
}

TEST(InspectionTest, LabelErrorScreenFiresOnDirtyData) {
  DatasetSplits splits = LoadRecommendationLetters(300, 67);
  MlDataset dirty = splits.train;
  Rng rng(71);
  InjectLabelErrors(&dirty, 0.3, &rng);
  std::vector<size_t> suspects;
  std::vector<PipelineIssue> issues =
      CheckLabelErrors(dirty, 5, 0.15, &suspects);
  EXPECT_FALSE(issues.empty());
  EXPECT_FALSE(suspects.empty());
  // Clean data has only Bayes-error-level disagreement: far fewer suspects.
  std::vector<size_t> clean_suspects;
  CheckLabelErrors(splits.train, 5, 1.0, &clean_suspects);
  EXPECT_LT(clean_suspects.size(), suspects.size() / 2);
}

TEST(InspectionTest, NullFractionScreen) {
  Table t = TableBuilder()
                .AddValueColumn("mostly_null", DataType::kDouble,
                                {Value::Null(), Value::Null(), Value(1.0)})
                .AddDoubleColumn("full", {1, 2, 3})
                .Build();
  std::vector<PipelineIssue> issues = CheckNullFractions(t, 0.5);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("mostly_null"), std::string::npos);
}

TEST(InspectionTest, ClassBalanceScreen) {
  std::vector<int> imbalanced(100, 0);
  imbalanced[0] = 1;
  EXPECT_FALSE(CheckClassBalance(imbalanced, 0.1).empty());
  std::vector<int> balanced = {0, 1, 0, 1};
  EXPECT_TRUE(CheckClassBalance(balanced, 0.1).empty());
  EXPECT_FALSE(CheckClassBalance({}, 0.1).empty());
}

TEST(InspectionTest, ScreenPipelineAggregatesChecks) {
  HiringScenario scenario = MakeHiringScenario({});
  // Corrupt the source labels so the label screen fires.
  Rng rng(73);
  ASSERT_TRUE(
      InjectLabelErrorsTable(&scenario.train, "sentiment", 0.35, &rng).ok());
  MlPipeline pipeline = MakeHiringPipeline(scenario, false);
  PipelineOutput output = pipeline.Run().value();
  ScreeningOptions options;
  options.sensitive_columns = {"sex"};
  std::vector<PipelineIssue> issues =
      ScreenPipeline(pipeline, output, options).value();
  bool label_issue = false;
  for (const PipelineIssue& issue : issues) {
    if (issue.check == "label_errors") label_issue = true;
    EXPECT_FALSE(issue.ToString().empty());
  }
  EXPECT_TRUE(label_issue);
}

// --- Negative paths and fault injection -------------------------------------

TEST(NumericEncoderTest, AllNullColumnFailsFit) {
  NumericEncoder encoder;
  Status status = encoder.Fit({Value::Null(), Value::Null()});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("all-null"), std::string::npos);
}

TEST(PlanTest, ExecuteFailpointSurfacesFromAnyOperator) {
  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm("pipeline.execute=error(internal:op died)").ok());
  // The failpoint lives in the PlanNode::Execute gateway, so every operator —
  // source, filter, join — degrades the same way.
  Result<AnnotatedTable> out =
      MakeFilterEquals(MakeSource(0, "people", People()), "dept",
                       Value(int64_t{10}))
          ->Execute();
  failpoint::DisarmAll();
  failpoint::ResetStats();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
  EXPECT_EQ(out.status().message(), "op died");
}

TEST(ColumnTransformerTest, FitFailpointSurfacesTypedError) {
  failpoint::DisarmAll();
  ColumnTransformer transformer;
  transformer.Add("id", std::make_unique<NumericEncoder>());
  ASSERT_TRUE(failpoint::Arm("encoder.fit=error(unavailable:fit lost)").ok());
  Status status = transformer.Fit(People());
  failpoint::DisarmAll();
  failpoint::ResetStats();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(status.message(), "fit lost");
  EXPECT_FALSE(transformer.fitted());
}

TEST(ColumnTransformerTest, TransformFailpointSurfacesTypedError) {
  failpoint::DisarmAll();
  ColumnTransformer transformer;
  transformer.Add("id", std::make_unique<NumericEncoder>());
  ASSERT_TRUE(transformer.Fit(People()).ok());
  ASSERT_TRUE(
      failpoint::Arm("encoder.transform=error(internal:encode died)").ok());
  Result<Matrix> encoded = transformer.Transform(People());
  failpoint::DisarmAll();
  failpoint::ResetStats();
  ASSERT_FALSE(encoded.ok());
  EXPECT_EQ(encoded.status().code(), StatusCode::kInternal);
  EXPECT_EQ(encoded.status().message(), "encode died");
  // The transformer itself is unharmed: disarmed, the same call encodes.
  EXPECT_TRUE(transformer.Transform(People()).ok());
}

}  // namespace
}  // namespace nde
