#include <algorithm>
#include <memory>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "cleaning/challenge.h"
#include "cleaning/cleaner.h"
#include "cleaning/strategies.h"
#include "datagen/synthetic.h"
#include "ml/knn.h"

namespace nde {
namespace {

struct CleaningFixture {
  MlDataset clean_train;
  MlDataset dirty_train;
  MlDataset valid;
  MlDataset test;
  std::vector<size_t> corrupted;

  static CleaningFixture Make(size_t n = 400, uint64_t seed = 42,
                              double flip_fraction = 0.15) {
    DatasetSplits splits = LoadRecommendationLetters(n, seed);
    CleaningFixture fixture;
    fixture.clean_train = splits.train;
    fixture.dirty_train = splits.train;
    fixture.valid = splits.valid;
    fixture.test = splits.test;
    Rng rng(seed + 1);
    fixture.corrupted =
        InjectLabelErrors(&fixture.dirty_train, flip_fraction, &rng);
    return fixture;
  }
};

ClassifierFactory KnnFactory(size_t k = 5) {
  return [k]() { return std::make_unique<KnnClassifier>(k); };
}

// --- Strategies --------------------------------------------------------------

TEST(StrategiesTest, AscendingOrderSortsByScore) {
  std::vector<size_t> order = AscendingOrder({3.0, -1.0, 2.0, -1.0});
  EXPECT_EQ(order, (std::vector<size_t>{1, 3, 2, 0}));
}

TEST(StrategiesTest, PrecisionAtK) {
  std::vector<size_t> ranking = {5, 3, 9, 1};
  std::vector<size_t> corrupted = {3, 9};
  EXPECT_EQ(PrecisionAtK(ranking, corrupted, 2), 0.5);
  EXPECT_EQ(PrecisionAtK(ranking, corrupted, 4), 0.5);
  EXPECT_EQ(PrecisionAtK(ranking, corrupted, 0), 0.0);
  EXPECT_EQ(PrecisionAtK({}, corrupted, 3), 0.0);
}

TEST(StrategiesTest, EveryStrategyReturnsFullPermutation) {
  CleaningFixture fixture = CleaningFixture::Make(150, 7);
  for (const CleaningStrategy& strategy : StandardStrategies()) {
    Result<std::vector<size_t>> ranking =
        strategy.rank(fixture.dirty_train, fixture.valid, 3);
    ASSERT_TRUE(ranking.ok()) << strategy.name;
    EXPECT_EQ(ranking->size(), fixture.dirty_train.size()) << strategy.name;
    std::set<size_t> unique(ranking->begin(), ranking->end());
    EXPECT_EQ(unique.size(), fixture.dirty_train.size()) << strategy.name;
  }
}

TEST(StrategiesTest, ImportanceStrategiesBeatRandomAtFindingErrors) {
  CleaningFixture fixture = CleaningFixture::Make(300, 11, 0.1);
  size_t k = fixture.corrupted.size();

  auto precision_of = [&](const CleaningStrategy& strategy) {
    std::vector<size_t> ranking =
        strategy.rank(fixture.dirty_train, fixture.valid, 5).value();
    return PrecisionAtK(ranking, fixture.corrupted, k);
  };

  double random_precision = precision_of(RandomStrategy());
  EXPECT_GT(precision_of(KnnShapleyStrategy()), random_precision + 0.2);
  EXPECT_GT(precision_of(InfluenceStrategy()), random_precision + 0.2);
  EXPECT_GT(precision_of(SelfConfidenceStrategy()), random_precision + 0.2);
  EXPECT_GT(precision_of(AumStrategy()), random_precision + 0.2);
}

TEST(StrategiesTest, TmcShapleyStrategyRuns) {
  CleaningFixture fixture = CleaningFixture::Make(60, 13);
  CleaningStrategy strategy = TmcShapleyStrategy(/*permutations=*/5);
  std::vector<size_t> ranking =
      strategy.rank(fixture.dirty_train, fixture.valid, 7).value();
  EXPECT_EQ(ranking.size(), 36u);  // 60% train split of 60.
}

// --- OracleCleaner ------------------------------------------------------------

TEST(OracleCleanerTest, RepairRestoresGroundTruth) {
  CleaningFixture fixture = CleaningFixture::Make(200, 17);
  OracleCleaner oracle(fixture.clean_train);
  MlDataset working = fixture.dirty_train;
  ASSERT_TRUE(oracle.Repair(&working, fixture.corrupted).ok());
  EXPECT_EQ(working.labels, fixture.clean_train.labels);
  EXPECT_EQ(working.features.MaxAbsDiff(fixture.clean_train.features), 0.0);
}

TEST(OracleCleanerTest, RepairIsIdempotentAndRangeChecked) {
  CleaningFixture fixture = CleaningFixture::Make(100, 19);
  OracleCleaner oracle(fixture.clean_train);
  MlDataset working = fixture.dirty_train;
  ASSERT_TRUE(oracle.Repair(&working, {0, 0, 1}).ok());
  EXPECT_FALSE(oracle.Repair(&working, {99999}).ok());
  EXPECT_FALSE(oracle.Repair(nullptr, {0}).ok());
}

// --- IterativeClean -------------------------------------------------------------

TEST(IterativeCleanTest, ShapleyCleaningRecoversAccuracy) {
  // The Figure 2 workflow: dirty accuracy < cleaned accuracy, approaching
  // the clean-data accuracy as the budget covers the corrupted set.
  CleaningFixture fixture = CleaningFixture::Make(400, 23, 0.15);
  OracleCleaner oracle(fixture.clean_train);
  IterativeCleaningOptions options;
  options.budget = fixture.corrupted.size();
  options.batch_size = 20;
  IterativeCleaningResult result =
      IterativeClean(KnnShapleyStrategy(), fixture.dirty_train, oracle,
                     fixture.valid, fixture.test, KnnFactory(), options)
          .value();
  ASSERT_GE(result.accuracy_curve.size(), 2u);
  double dirty_accuracy = result.accuracy_curve.front();
  double final_accuracy = result.accuracy_curve.back();
  EXPECT_GT(final_accuracy, dirty_accuracy);
  EXPECT_EQ(result.cleaned_order.size(), options.budget);
  // No duplicates in the cleaning order.
  std::set<size_t> unique(result.cleaned_order.begin(),
                          result.cleaned_order.end());
  EXPECT_EQ(unique.size(), result.cleaned_order.size());
}

TEST(IterativeCleanTest, ShapleyBeatsRandomAtEqualBudget) {
  CleaningFixture fixture = CleaningFixture::Make(400, 29, 0.15);
  OracleCleaner oracle(fixture.clean_train);
  IterativeCleaningOptions options;
  options.budget = 30;
  options.batch_size = 10;
  double shapley_final =
      IterativeClean(KnnShapleyStrategy(), fixture.dirty_train, oracle,
                     fixture.valid, fixture.test, KnnFactory(), options)
          .value()
          .accuracy_curve.back();
  double random_final =
      IterativeClean(RandomStrategy(), fixture.dirty_train, oracle,
                     fixture.valid, fixture.test, KnnFactory(), options)
          .value()
          .accuracy_curve.back();
  EXPECT_GE(shapley_final, random_final);
}

TEST(IterativeCleanTest, RejectsZeroBatch) {
  CleaningFixture fixture = CleaningFixture::Make(50, 31);
  OracleCleaner oracle(fixture.clean_train);
  IterativeCleaningOptions options;
  options.batch_size = 0;
  EXPECT_FALSE(IterativeClean(RandomStrategy(), fixture.dirty_train, oracle,
                              fixture.valid, fixture.test, KnnFactory(),
                              options)
                   .ok());
}

// --- DataDebuggingChallenge -------------------------------------------------------

DataDebuggingChallenge MakeChallenge(size_t n = 300, uint64_t seed = 37) {
  DatasetSplits splits = LoadRecommendationLetters(n, seed);
  ChallengeOptions options;
  options.seed = seed + 1;
  options.cleaning_budget = 30;
  return DataDebuggingChallenge(splits.train, splits.valid, splits.test,
                                KnnFactory(), options);
}

TEST(ChallengeTest, DirtyTrainDiffersFromHidden) {
  DataDebuggingChallenge challenge = MakeChallenge();
  EXPECT_FALSE(challenge.corrupted_indices().empty());
  EXPECT_GT(challenge.BaselineScore(), 0.4);
}

TEST(ChallengeTest, BudgetIsEnforcedCumulatively) {
  DataDebuggingChallenge challenge = MakeChallenge();
  std::vector<size_t> first(20);
  std::iota(first.begin(), first.end(), size_t{0});
  ASSERT_TRUE(challenge.SubmitCleaningRequest("alice", first).ok());
  EXPECT_EQ(challenge.RemainingBudget("alice"), 10u);
  // Re-cleaning the same ids is free.
  ASSERT_TRUE(challenge.SubmitCleaningRequest("alice", first).ok());
  EXPECT_EQ(challenge.RemainingBudget("alice"), 10u);
  // Requesting 20 fresh ids exceeds the remaining 10.
  std::vector<size_t> second(20);
  std::iota(second.begin(), second.end(), size_t{50});
  EXPECT_EQ(challenge.SubmitCleaningRequest("alice", second).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(challenge.RemainingBudget("alice"), 10u);  // Nothing consumed.
}

TEST(ChallengeTest, OutOfRangeIdsRejected) {
  DataDebuggingChallenge challenge = MakeChallenge();
  EXPECT_EQ(challenge.SubmitCleaningRequest("bob", {999999}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(ChallengeTest, CleaningTrueErrorsImprovesHiddenScore) {
  DataDebuggingChallenge challenge = MakeChallenge(400, 41);
  // Cheat: clean the actual corrupted rows (within budget).
  std::vector<size_t> ids = challenge.corrupted_indices();
  if (ids.size() > 30) ids.resize(30);
  double score = challenge.SubmitCleaningRequest("oracle_user", ids).value();
  EXPECT_GT(score, challenge.BaselineScore());
}

TEST(ChallengeTest, LeaderboardOrdersByBestScore) {
  DataDebuggingChallenge challenge = MakeChallenge(400, 43);
  // Participant A cleans true errors; participant B cleans arbitrary rows.
  std::vector<size_t> good = challenge.corrupted_indices();
  if (good.size() > 25) good.resize(25);
  std::vector<size_t> arbitrary(25);
  std::iota(arbitrary.begin(), arbitrary.end(), size_t{0});
  ASSERT_TRUE(challenge.SubmitCleaningRequest("informed", good).ok());
  ASSERT_TRUE(challenge.SubmitCleaningRequest("uninformed", arbitrary).ok());
  auto leaderboard = challenge.Leaderboard();
  ASSERT_EQ(leaderboard.size(), 2u);
  EXPECT_GE(leaderboard[0].best_score, leaderboard[1].best_score);
  EXPECT_FALSE(leaderboard[0].ToString().empty());
  // The informed participant should top the board.
  EXPECT_EQ(leaderboard[0].participant, "informed");
}

TEST(ChallengeTest, ParticipantsAreIsolated) {
  DataDebuggingChallenge challenge = MakeChallenge();
  std::vector<size_t> ids = {0, 1, 2};
  ASSERT_TRUE(challenge.SubmitCleaningRequest("a", ids).ok());
  EXPECT_EQ(challenge.RemainingBudget("a"), 27u);
  EXPECT_EQ(challenge.RemainingBudget("b"), 30u);
}

}  // namespace
}  // namespace nde
