#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "datagen/synthetic.h"
#include "ml/knn.h"
#include "ml/metrics.h"
#include "nde/engine.h"
#include "nde/registry.h"

namespace nde {
namespace {

TEST(BlobsTest, ShapeAndDeterminism) {
  BlobsOptions options;
  options.num_examples = 120;
  options.num_features = 5;
  options.num_classes = 3;
  MlDataset a = MakeBlobs(options);
  MlDataset b = MakeBlobs(options);
  EXPECT_EQ(a.size(), 120u);
  EXPECT_EQ(a.num_features(), 5u);
  EXPECT_EQ(a.NumClasses(), 3);
  EXPECT_EQ(a.features.MaxAbsDiff(b.features), 0.0);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(BlobsTest, DifferentSeedsProduceDifferentData) {
  BlobsOptions a_options;
  BlobsOptions b_options;
  b_options.seed = 7;
  MlDataset a = MakeBlobs(a_options);
  MlDataset b = MakeBlobs(b_options);
  EXPECT_GT(a.features.MaxAbsDiff(b.features), 0.0);
}

TEST(BlobsTest, CenterSeedSharesTaskAcrossExampleSeeds) {
  BlobsOptions train_options;
  train_options.num_examples = 200;
  train_options.separation = 5.0;
  train_options.noise = 0.5;
  train_options.seed = 1;
  train_options.center_seed = 99;
  BlobsOptions val_options = train_options;
  val_options.num_examples = 100;
  val_options.seed = 2;  // Different examples, same centers.
  MlDataset train = MakeBlobs(train_options);
  MlDataset validation = MakeBlobs(val_options);
  // The examples differ...
  EXPECT_NE(train.size(), validation.size());
  // ...but a model trained on one generalizes to the other, proving the
  // class geometry is shared.
  double accuracy =
      TrainAndScore([]() { return std::make_unique<KnnClassifier>(3); },
                    train, validation)
          .value();
  EXPECT_GT(accuracy, 0.9);

  // Without a shared center seed the "validation" set is a different task.
  val_options.center_seed = 0;
  MlDataset mismatched = MakeBlobs(val_options);
  double mismatched_accuracy =
      TrainAndScore([]() { return std::make_unique<KnnClassifier>(3); },
                    train, mismatched)
          .value();
  EXPECT_LT(mismatched_accuracy, accuracy);
}

TEST(BlobsTest, SeparatedBlobsAreLearnable) {
  BlobsOptions options;
  options.num_examples = 300;
  options.separation = 5.0;
  options.noise = 0.5;
  MlDataset data = MakeBlobs(options);
  Rng rng(1);
  SplitResult split = TrainTestSplit(data, 0.3, &rng);
  double accuracy =
      TrainAndScore([]() { return std::make_unique<KnnClassifier>(3); },
                    split.train, split.test)
          .value();
  EXPECT_GT(accuracy, 0.9);
}

TEST(HiringScenarioTest, TablesHaveDeclaredSchemas) {
  HiringScenarioOptions options;
  options.num_applicants = 50;
  options.num_jobs = 10;
  HiringScenario scenario = MakeHiringScenario(options);

  EXPECT_EQ(scenario.train.num_rows(), 50u);
  EXPECT_TRUE(scenario.train.schema().HasField("person_id"));
  EXPECT_TRUE(scenario.train.schema().HasField("job_id"));
  EXPECT_TRUE(scenario.train.schema().HasField("letter_text"));
  EXPECT_TRUE(scenario.train.schema().HasField("sentiment"));

  EXPECT_EQ(scenario.jobdetail.num_rows(), 10u);
  EXPECT_TRUE(scenario.jobdetail.schema().HasField("sector"));
  EXPECT_TRUE(scenario.jobdetail.schema().HasField("employer_rating"));

  EXPECT_EQ(scenario.social.num_rows(), 50u);
  EXPECT_TRUE(scenario.social.schema().HasField("twitter"));
  EXPECT_TRUE(scenario.train.Validate().ok());
  EXPECT_TRUE(scenario.jobdetail.Validate().ok());
  EXPECT_TRUE(scenario.social.Validate().ok());
}

TEST(HiringScenarioTest, JobIdsReferenceJobTable) {
  HiringScenario scenario = MakeHiringScenario({});
  size_t job_col = scenario.train.schema().FieldIndex("job_id").value();
  int64_t num_jobs = static_cast<int64_t>(scenario.jobdetail.num_rows());
  for (size_t r = 0; r < scenario.train.num_rows(); ++r) {
    int64_t job = scenario.train.At(r, job_col).as_int64();
    EXPECT_GE(job, 0);
    EXPECT_LT(job, num_jobs);
  }
}

TEST(HiringScenarioTest, LettersCorrelateWithSentiment) {
  // Positive letters should contain more positive-list tokens; verify via a
  // crude proxy: the token "outstanding" appears mostly in positive letters.
  HiringScenarioOptions options;
  options.num_applicants = 400;
  HiringScenario scenario = MakeHiringScenario(options);
  size_t letter_col = scenario.train.schema().FieldIndex("letter_text").value();
  size_t label_col = scenario.train.schema().FieldIndex("sentiment").value();
  size_t negative_with_marker = 0;
  size_t positive_with_marker = 0;
  for (size_t r = 0; r < scenario.train.num_rows(); ++r) {
    bool has_marker = scenario.train.At(r, letter_col)
                          .as_string()
                          .find("outstanding") != std::string::npos;
    if (!has_marker) continue;
    if (scenario.train.At(r, label_col).as_int64() == 1) {
      ++positive_with_marker;
    } else {
      ++negative_with_marker;
    }
  }
  EXPECT_GT(positive_with_marker, 3 * std::max<size_t>(negative_with_marker, 1));
}

TEST(HiringScenarioTest, SectorsIncludeHealthcare) {
  HiringScenario scenario = MakeHiringScenario({});
  size_t sector_col = scenario.jobdetail.schema().FieldIndex("sector").value();
  size_t healthcare = 0;
  for (size_t r = 0; r < scenario.jobdetail.num_rows(); ++r) {
    if (scenario.jobdetail.At(r, sector_col).as_string() == "healthcare") {
      ++healthcare;
    }
  }
  EXPECT_GT(healthcare, 0u);
  EXPECT_LT(healthcare, scenario.jobdetail.num_rows());
}

TEST(LoadRecommendationLettersTest, SplitsPartitionData) {
  DatasetSplits splits = LoadRecommendationLetters(200, 3);
  EXPECT_NEAR(static_cast<double>(splits.train.size()), 120.0, 3.0);
  EXPECT_GT(splits.valid.size(), 20u);
  EXPECT_GT(splits.test.size(), 20u);
  EXPECT_EQ(splits.train.size() + splits.valid.size() + splits.test.size(),
            200u);
}

TEST(LoadRecommendationLettersTest, CleanDataIsLearnable) {
  DatasetSplits splits = LoadRecommendationLetters(500, 42);
  double accuracy =
      TrainAndScore([]() { return std::make_unique<KnnClassifier>(5); },
                    splits.train, splits.test)
          .value();
  EXPECT_GT(accuracy, 0.72);  // The Figure 2 regime: good but not perfect.
  EXPECT_LT(accuracy, 0.99);
}

// --- Error injection ----------------------------------------------------------

TEST(InjectLabelErrorsTest, FlipsRequestedFraction) {
  MlDataset data = MakeBlobs({});
  MlDataset original = data;
  Rng rng(5);
  std::vector<size_t> corrupted = InjectLabelErrors(&data, 0.1, &rng);
  EXPECT_EQ(corrupted.size(), 50u);  // 10% of 500.
  EXPECT_TRUE(std::is_sorted(corrupted.begin(), corrupted.end()));
  for (size_t i : corrupted) {
    EXPECT_NE(data.labels[i], original.labels[i]);
  }
  // Untouched rows unchanged.
  std::unordered_set<size_t> hit(corrupted.begin(), corrupted.end());
  for (size_t i = 0; i < data.size(); ++i) {
    if (hit.count(i) == 0) {
      EXPECT_EQ(data.labels[i], original.labels[i]);
    }
  }
  // Features untouched by label errors.
  EXPECT_EQ(data.features.MaxAbsDiff(original.features), 0.0);
}

TEST(InjectLabelErrorsTest, ZeroFractionIsNoOp) {
  MlDataset data = MakeBlobs({});
  MlDataset original = data;
  Rng rng(5);
  EXPECT_TRUE(InjectLabelErrors(&data, 0.0, &rng).empty());
  EXPECT_EQ(data.labels, original.labels);
}

TEST(InjectFeatureNoiseTest, PerturbsOnlySelectedRows) {
  MlDataset data = MakeBlobs({});
  MlDataset original = data;
  Rng rng(7);
  std::vector<size_t> corrupted = InjectFeatureNoise(&data, 0.2, 2.0, &rng);
  EXPECT_EQ(corrupted.size(), 100u);
  std::unordered_set<size_t> hit(corrupted.begin(), corrupted.end());
  for (size_t i = 0; i < data.size(); ++i) {
    double diff = 0.0;
    for (size_t j = 0; j < data.num_features(); ++j) {
      diff += std::fabs(data.features(i, j) - original.features(i, j));
    }
    if (hit.count(i) > 0) {
      EXPECT_GT(diff, 0.0);
    } else {
      EXPECT_EQ(diff, 0.0);
    }
  }
  EXPECT_EQ(data.labels, original.labels);
}

TEST(InjectOutliersTest, ShiftsRowsFar) {
  MlDataset data = MakeBlobs({});
  MlDataset original = data;
  Rng rng(9);
  std::vector<size_t> corrupted = InjectOutliers(&data, 0.05, 10.0, &rng);
  EXPECT_EQ(corrupted.size(), 25u);
  for (size_t i : corrupted) {
    double dist = SquaredDistance(data.features.Row(i),
                                  original.features.Row(i));
    EXPECT_GT(dist, 1.0);
  }
}

TEST(InjectMissingValuesTest, McarNullsRequestedFraction) {
  HiringScenario scenario = MakeHiringScenario({});
  Rng rng(11);
  auto affected = InjectMissingValues(&scenario.jobdetail, "employer_rating",
                                      0.25, Missingness::kMcar, &rng);
  ASSERT_TRUE(affected.ok());
  size_t col =
      scenario.jobdetail.schema().FieldIndex("employer_rating").value();
  EXPECT_EQ(scenario.jobdetail.CountNulls(col), affected->size());
  EXPECT_NEAR(static_cast<double>(affected->size()),
              0.25 * scenario.jobdetail.num_rows(), 1.0);
}

TEST(InjectMissingValuesTest, MnarPrefersHighValues) {
  // Build a table with known values 0..999; MNAR should null above-median
  // rows about 3x as often.
  std::vector<double> values(1000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  Table t = TableBuilder().AddDoubleColumn("v", values).Build();
  Rng rng(13);
  auto affected =
      InjectMissingValues(&t, "v", 0.3, Missingness::kMnar, &rng);
  ASSERT_TRUE(affected.ok());
  size_t high = 0;
  for (size_t i : *affected) {
    if (i >= 500) ++high;
  }
  double high_fraction = static_cast<double>(high) / affected->size();
  EXPECT_GT(high_fraction, 0.6);
}

TEST(InjectMissingValuesTest, MarRequiresDriver) {
  Table t = TableBuilder().AddDoubleColumn("v", {1, 2, 3}).Build();
  Rng rng(1);
  EXPECT_FALSE(
      InjectMissingValues(&t, "v", 0.5, Missingness::kMar, &rng).ok());
}

TEST(InjectMissingValuesTest, MarFollowsDriverColumn) {
  std::vector<double> driver(1000);
  std::vector<double> target(1000, 1.0);
  for (size_t i = 0; i < driver.size(); ++i) {
    driver[i] = static_cast<double>(i);
  }
  Table t = TableBuilder()
                .AddDoubleColumn("driver", driver)
                .AddDoubleColumn("target", target)
                .Build();
  Rng rng(17);
  auto affected = InjectMissingValues(&t, "target", 0.3, Missingness::kMar,
                                      &rng, "driver");
  ASSERT_TRUE(affected.ok());
  size_t high = 0;
  for (size_t i : *affected) {
    if (i >= 500) ++high;
  }
  EXPECT_GT(static_cast<double>(high) / affected->size(), 0.6);
}

TEST(InjectMissingValuesTest, RejectsBadArguments) {
  Table t = TableBuilder().AddStringColumn("s", {"a", "b"}).Build();
  Rng rng(1);
  EXPECT_FALSE(
      InjectMissingValues(&t, "nope", 0.5, Missingness::kMcar, &rng).ok());
  EXPECT_FALSE(
      InjectMissingValues(&t, "s", 1.5, Missingness::kMcar, &rng).ok());
  EXPECT_FALSE(
      InjectMissingValues(&t, "s", 0.5, Missingness::kMnar, &rng).ok());
}

TEST(InjectLabelErrorsTableTest, FlipsBinaryColumn) {
  Table t = TableBuilder().AddInt64Column("y", {0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
                .Build();
  Table original = t;
  Rng rng(19);
  auto affected = InjectLabelErrorsTable(&t, "y", 0.4, &rng);
  ASSERT_TRUE(affected.ok());
  EXPECT_EQ(affected->size(), 4u);
  for (size_t i : *affected) {
    EXPECT_NE(t.At(i, 0).as_int64(), original.At(i, 0).as_int64());
  }
}

TEST(InjectSelectionBiasTest, DropsDisadvantagedGroup) {
  std::vector<std::string> groups;
  for (int i = 0; i < 500; ++i) groups.push_back(i % 2 == 0 ? "a" : "b");
  Table t = TableBuilder().AddStringColumn("g", groups).Build();
  Rng rng(23);
  std::vector<size_t> kept;
  Result<Table> biased =
      InjectSelectionBias(t, "g", Value("b"), 0.2, &rng, &kept);
  ASSERT_TRUE(biased.ok());
  size_t b_count = 0;
  for (size_t r = 0; r < biased->num_rows(); ++r) {
    if (biased->At(r, 0).as_string() == "b") ++b_count;
  }
  EXPECT_NEAR(static_cast<double>(b_count), 50.0, 20.0);
  EXPECT_EQ(kept.size(), biased->num_rows());
  // "a" rows all survive.
  EXPECT_EQ(biased->num_rows() - b_count, 250u);
}

TEST(MissingnessToStringTest, Names) {
  EXPECT_STREQ(MissingnessToString(Missingness::kMcar), "MCAR");
  EXPECT_STREQ(MissingnessToString(Missingness::kMar), "MAR");
  EXPECT_STREQ(MissingnessToString(Missingness::kMnar), "MNAR");
}

// --- Credit-default scenario ---------------------------------------------------

TEST(CreditScenarioTest, DeterministicUnderFixedSeed) {
  CreditScenarioOptions options;
  options.num_accounts = 120;
  options.label_noise_fraction = 0.1;
  options.missing_sector_fraction = 0.2;
  CreditScenario a = MakeCreditScenario(options);
  CreditScenario b = MakeCreditScenario(options);
  EXPECT_EQ(WriteCsvString(a.accounts), WriteCsvString(b.accounts));
  EXPECT_EQ(a.corrupted_rows, b.corrupted_rows);
  EXPECT_EQ(a.missing_sector_rows, b.missing_sector_rows);

  options.seed = 7;
  CreditScenario c = MakeCreditScenario(options);
  EXPECT_NE(WriteCsvString(a.accounts), WriteCsvString(c.accounts));
}

TEST(CreditScenarioTest, DefaultRateControlsClassBalance) {
  CreditScenarioOptions options;
  options.num_accounts = 2000;
  options.default_rate = 0.3;
  CreditScenario scenario = MakeCreditScenario(options);
  size_t col = scenario.accounts.schema().FieldIndex("defaulted").value();
  size_t defaults = 0;
  for (size_t r = 0; r < scenario.accounts.num_rows(); ++r) {
    defaults += scenario.accounts.At(r, col).as_int64();
  }
  double rate = static_cast<double>(defaults) / 2000.0;
  EXPECT_NEAR(rate, 0.3, 0.05);

  options.default_rate = 0.0;
  CreditScenario none = MakeCreditScenario(options);
  for (size_t r = 0; r < none.accounts.num_rows(); ++r) {
    EXPECT_EQ(none.accounts.At(r, col).as_int64(), 0);
  }
}

TEST(CreditScenarioTest, LabelNoiseContractFlipsExactCount) {
  CreditScenarioOptions clean_options;
  clean_options.num_accounts = 200;
  CreditScenarioOptions noisy_options = clean_options;
  noisy_options.label_noise_fraction = 0.1;
  CreditScenario clean = MakeCreditScenario(clean_options);
  CreditScenario noisy = MakeCreditScenario(noisy_options);

  EXPECT_EQ(noisy.corrupted_rows.size(), 20u);  // round(0.1 * 200)
  EXPECT_TRUE(std::is_sorted(noisy.corrupted_rows.begin(),
                             noisy.corrupted_rows.end()));
  EXPECT_EQ(std::set<size_t>(noisy.corrupted_rows.begin(),
                             noisy.corrupted_rows.end())
                .size(),
            noisy.corrupted_rows.size());
  // Same seed, same pre-noise labels: the noisy run differs from the clean
  // run exactly on the reported rows.
  size_t col = clean.accounts.schema().FieldIndex("defaulted").value();
  std::set<size_t> flipped(noisy.corrupted_rows.begin(),
                           noisy.corrupted_rows.end());
  for (size_t r = 0; r < 200; ++r) {
    int64_t before = clean.accounts.At(r, col).as_int64();
    int64_t after = noisy.accounts.At(r, col).as_int64();
    if (flipped.count(r)) {
      EXPECT_EQ(after, before ^ 1) << "row " << r;
    } else {
      EXPECT_EQ(after, before) << "row " << r;
    }
  }
}

TEST(CreditScenarioTest, MissingSectorContractNullsExactCount) {
  CreditScenarioOptions options;
  options.num_accounts = 200;
  options.missing_sector_fraction = 0.25;
  CreditScenario scenario = MakeCreditScenario(options);
  EXPECT_EQ(scenario.missing_sector_rows.size(), 50u);  // round(0.25 * 200)
  size_t col = scenario.accounts.schema().FieldIndex("sector").value();
  EXPECT_EQ(scenario.accounts.CountNulls(col), 50u);
  for (size_t r : scenario.missing_sector_rows) {
    EXPECT_TRUE(scenario.accounts.At(r, col).is_null()) << "row " << r;
  }
}

TEST(CreditScenarioTest, RunsEndToEndThroughImportanceEngine) {
  CreditScenarioOptions options;
  options.num_accounts = 60;
  options.label_noise_fraction = 0.1;
  options.missing_sector_fraction = 0.1;
  CreditScenario scenario = MakeCreditScenario(options);

  Result<std::unique_ptr<AlgorithmInstance>> algorithm =
      AlgorithmRegistry::Global().Create("knn_shapley");
  ASSERT_TRUE(algorithm.ok()) << algorithm.status().ToString();
  ASSERT_TRUE(algorithm.value()->Configure("k", "3").ok());
  Result<TableRunResult> run = RunAlgorithmOnTable(
      *algorithm.value(), scenario.accounts, "defaulted");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->train_rows + run->valid_rows, 60u);
  EXPECT_EQ(run->estimate.values.size(), run->train_rows);
  // Train-split algorithms rank the provenance-mapped training rows.
  EXPECT_EQ(run->ranked_rows.size(), run->train_rows);
  EXPECT_FALSE(run->annotated_plan.empty());
}

}  // namespace
}  // namespace nde
