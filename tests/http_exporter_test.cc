#include "telemetry/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/trace_context.h"
#include "importance/game_values.h"
#include "importance/utility.h"
#include "json_checker.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/telemetry.h"

namespace nde {
namespace {

// One blocking HTTP GET against 127.0.0.1:port; returns the raw response
// bytes ("" on connect failure).
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

// --- Socket-free router coverage: every endpoint, deterministically. --------

TEST(HttpExporterRoutingTest, HealthzIsOk) {
  std::string response =
      telemetry::HttpExporter::HandleRequest("GET /healthz HTTP/1.1");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u) << response;
  EXPECT_EQ(Body(response), "ok\n");
}

TEST(HttpExporterRoutingTest, MetricsIsPrometheusText) {
  telemetry::MetricsRegistry::Global()
      .GetCounter("http_test.scraped")
      .Increment();
  std::string response =
      telemetry::HttpExporter::HandleRequest("GET /metrics HTTP/1.1");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u) << response;
  EXPECT_NE(response.find("text/plain"), std::string::npos) << response;
  std::string body = Body(response);
  // Prometheus exposition: names mapped to [a-zA-Z0-9_:], HELP/TYPE lines.
  EXPECT_NE(body.find("# TYPE http_test_scraped counter"), std::string::npos)
      << body;
  EXPECT_NE(body.find("http_test_scraped "), std::string::npos) << body;
}

TEST(HttpExporterRoutingTest, VarzIsValidJson) {
  std::string response =
      telemetry::HttpExporter::HandleRequest("GET /varz HTTP/1.1");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u) << response;
  std::string body = Body(response);
  ASSERT_FALSE(body.empty());
  if (body.back() == '\n') body.pop_back();
  EXPECT_TRUE(JsonChecker(body).Valid()) << body;
}

TEST(HttpExporterRoutingTest, TracezIsValidJson) {
  std::string response =
      telemetry::HttpExporter::HandleRequest("GET /tracez HTTP/1.1");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u) << response;
  std::string body = Body(response);
  ASSERT_FALSE(body.empty());
  if (body.back() == '\n') body.pop_back();
  EXPECT_TRUE(JsonChecker(body).Valid()) << body;
}

TEST(HttpExporterRoutingTest, QueryStringsAreStripped) {
  std::string response = telemetry::HttpExporter::HandleRequest(
      "GET /healthz?probe=1 HTTP/1.1");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u) << response;
  EXPECT_EQ(Body(response), "ok\n");
}

TEST(HttpExporterRoutingTest, VarzMergesFailpointCounters) {
  // /varz must export failpoint hit/fire counters alongside the ordinary
  // metrics: arm a point, hit it, and pin the JSON keys.
  ASSERT_TRUE(failpoint::Arm("http_varz.pin=error(unavailable:pin)").ok());
  ASSERT_TRUE(failpoint::Fire("http_varz.pin").fired());
  failpoint::DisarmAll();

  std::string response =
      telemetry::HttpExporter::HandleRequest("GET /varz HTTP/1.1");
  std::string body = Body(response);
  EXPECT_NE(body.find("\"failpoint.http_varz.pin.hits\""), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"failpoint.http_varz.pin.fires\""), std::string::npos)
      << body;
  // Name-sorted export: the counters object must list the failpoint keys in
  // lexicographic order (fires before hits).
  size_t fires = body.find("failpoint.http_varz.pin.fires");
  size_t hits = body.find("failpoint.http_varz.pin.hits");
  EXPECT_LT(fires, hits);
}

TEST(HttpExporterRoutingTest, ProfilezServesTextAndFoldedStacks) {
  telemetry::Profiler& profiler = telemetry::Profiler::Global();
  profiler.Reset();
  telemetry::prof::PushFrame("profilez_frame");
  profiler.SampleOnce();
  telemetry::prof::PopFrame();

  std::string response =
      telemetry::HttpExporter::HandleRequest("GET /profilez HTTP/1.1");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u) << response;
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  EXPECT_NE(Body(response).find("profilez_frame"), std::string::npos)
      << Body(response);

  // ?folded=1 downloads raw folded stacks: exactly the "stack count" lines.
  std::string folded = telemetry::HttpExporter::HandleRequest(
      "GET /profilez?folded=1 HTTP/1.1");
  EXPECT_EQ(folded.rfind("HTTP/1.1 200", 0), 0u) << folded;
  EXPECT_NE(Body(folded).find("profilez_frame 1"), std::string::npos)
      << Body(folded);
  profiler.Reset();
}

TEST(HttpExporterRoutingTest, UnknownPathIs404AndNonGetIs405) {
  EXPECT_EQ(telemetry::HttpExporter::HandleRequest("GET /nope HTTP/1.1")
                .rfind("HTTP/1.1 404", 0),
            0u);
  EXPECT_EQ(telemetry::HttpExporter::HandleRequest("POST /metrics HTTP/1.1")
                .rfind("HTTP/1.1 405", 0),
            0u);
  EXPECT_EQ(
      telemetry::HttpExporter::HandleRequest("").rfind("HTTP/1.1 4", 0), 0u)
      << "garbage request lines must still get an error response";
}

TEST(HttpExporterRoutingTest, EveryRequestCountsInTheRegistry) {
  telemetry::Counter& requests =
      telemetry::MetricsRegistry::Global().GetCounter(
          "http_exporter.requests");
  uint64_t before = requests.value();
  telemetry::HttpExporter::HandleRequest("GET /healthz HTTP/1.1");
  telemetry::HttpExporter::HandleRequest("GET /nope HTTP/1.1");
  EXPECT_EQ(requests.value(), before + 2);
}

// --- Real sockets: the ISSUE acceptance scenario. ---------------------------

TEST(HttpExporterTest, ServesScrapesWhileAnEstimatorRuns) {
  telemetry::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start(0).ok());
  ASSERT_TRUE(exporter.running());
  uint16_t port = exporter.port();
  ASSERT_NE(port, 0);

  // Profile the run too: spans only exist with telemetry on, and the sampler
  // must be live for ScopedSpan to push frames.
  telemetry::SetEnabled(true);
  telemetry::Profiler::Global().Reset();
  telemetry::ProfilerOptions prof_options;
  prof_options.sampling_interval_us = 100;  // Fast: the run lasts ~tens of ms.
  ASSERT_TRUE(telemetry::Profiler::Global().Start(prof_options).ok());

  // A deliberately slow game keeps the estimator busy on another thread
  // while we scrape.
  class SlowGame : public UtilityFunction {
   public:
    double Evaluate(const std::vector<size_t>& subset) const override {
      double sum = 0.0;
      for (size_t i : subset) sum += static_cast<double>(i + 1);
      // Slow enough that the whole estimate spans tens of milliseconds: the
      // scrapes below land mid-run and the 100 us sampler sees the waves.
      for (int spin = 0; spin < 2000; ++spin) {
        sum = std::sqrt(sum * sum + 1e-9);
      }
      return std::sqrt(sum);
    }
    size_t num_units() const override { return 12; }
  };
  SlowGame game;
  ImportanceEstimate estimate;
  std::thread estimator([&game, &estimate] {
    TmcShapleyOptions options;
    options.num_permutations = 96;
    options.seed = 5;
    estimate = TmcShapleyValues(game, options).value();
  });

  std::string health = HttpGet(port, "/healthz");
  EXPECT_EQ(health.rfind("HTTP/1.1 200", 0), 0u) << health;
  EXPECT_EQ(Body(health), "ok\n");

  std::string metrics = HttpGet(port, "/metrics");
  EXPECT_EQ(metrics.rfind("HTTP/1.1 200", 0), 0u);
  EXPECT_NE(Body(metrics).find("# TYPE"), std::string::npos);

  // /profilez answers mid-run; with a live estimator it may or may not have
  // caught a wave yet, so only the transport and shape are asserted here.
  std::string profilez = HttpGet(port, "/profilez");
  EXPECT_EQ(profilez.rfind("HTTP/1.1 200", 0), 0u) << profilez;
  EXPECT_EQ(Body(profilez).rfind("profiler:", 0), 0u) << Body(profilez);

  std::string missing = HttpGet(port, "/definitely-not-here");
  EXPECT_EQ(missing.rfind("HTTP/1.1 404", 0), 0u);

  estimator.join();
  EXPECT_EQ(estimate.values.size(), 12u);
  telemetry::Profiler::Global().Stop();
#if NDE_TELEMETRY_ENABLED
  // 96 sequential waves of a deliberately slow game run long enough that the
  // 1 ms sampler observes at least one tmc wave span. (Without telemetry
  // compiled in there are no spans to observe.)
  EXPECT_NE(telemetry::Profiler::Global().FoldedStacks().find("tmc"),
            std::string::npos)
      << telemetry::Profiler::Global().FoldedStacks();
#endif
  telemetry::Profiler::Global().Reset();
  telemetry::SetEnabled(false);

  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  EXPECT_EQ(exporter.port(), 0);
  exporter.Stop();  // Idempotent.
  EXPECT_TRUE(HttpGet(port, "/healthz").empty())
      << "stopped server must not answer";
}

TEST(HttpExporterTest, StartTwiceFailsAndRestartWorks) {
  telemetry::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start(0).ok());
  EXPECT_FALSE(exporter.Start(0).ok()) << "double Start must fail";
  uint16_t first_port = exporter.port();
  exporter.Stop();
  ASSERT_TRUE(exporter.Start(0).ok());
  EXPECT_NE(exporter.port(), 0);
  std::string health = HttpGet(exporter.port(), "/healthz");
  EXPECT_EQ(health.rfind("HTTP/1.1 200", 0), 0u);
  (void)first_port;
  exporter.Stop();
}

// --- Request bodies and the handler hook (the job-API transport). -----------

/// One blocking request with an arbitrary method and body.
std::string HttpSend(uint16_t port, const std::string& method,
                     const std::string& path, const std::string& body) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = method + " " + path + " HTTP/1.1\r\nHost: localhost\r\n"
                        "Content-Length: " + std::to_string(body.size()) +
                        "\r\n\r\n" + body;
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpExporterTest, HandlerReceivesMethodTargetAndBody) {
  telemetry::HttpExporter exporter;
  exporter.SetHandler([](const telemetry::HttpRequest& request) {
    return telemetry::MakeHttpResponse(
        200, "OK", "text/plain",
        request.method + " " + request.target + " [" + request.body + "]\n");
  });
  ASSERT_TRUE(exporter.Start(0).ok());
  uint16_t port = exporter.port();

  std::string response = HttpSend(port, "POST", "/jobs", "hello body");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u) << response;
  EXPECT_EQ(Body(response), "POST /jobs [hello body]\n");

  // The handler owns /jobs/<id> and /algorithmz too...
  EXPECT_EQ(Body(HttpSend(port, "DELETE", "/jobs/job-1", "")),
            "DELETE /jobs/job-1 []\n");
  EXPECT_EQ(Body(HttpGet(port, "/algorithmz")), "GET /algorithmz []\n");
  // ...but never the built-in observability endpoints.
  std::string health = HttpGet(port, "/healthz");
  EXPECT_EQ(health.rfind("HTTP/1.1 200", 0), 0u);
  EXPECT_EQ(Body(health), "ok\n");
  exporter.Stop();
}

TEST(HttpExporterTest, OversizedBodyIs413) {
  telemetry::HttpExporter exporter;
  exporter.SetHandler([](const telemetry::HttpRequest&) {
    return telemetry::MakeHttpResponse(200, "OK", "text/plain", "unreached\n");
  });
  exporter.set_max_body_bytes(16);
  ASSERT_TRUE(exporter.Start(0).ok());
  uint16_t port = exporter.port();

  std::string big(17, 'x');
  std::string response = HttpSend(port, "POST", "/jobs", big);
  EXPECT_EQ(response.rfind("HTTP/1.1 413", 0), 0u) << response;

  std::string small(16, 'x');
  std::string accepted = HttpSend(port, "POST", "/jobs", small);
  EXPECT_EQ(accepted.rfind("HTTP/1.1 200", 0), 0u) << accepted;
  exporter.Stop();
}

TEST(HttpExporterTest, MalformedContentLengthIs400) {
  telemetry::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start(0).ok());
  uint16_t port = exporter.port();

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string request =
      "POST /jobs HTTP/1.1\r\nContent-Length: lots\r\n\r\nx";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[1024];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(response.rfind("HTTP/1.1 400", 0), 0u) << response;
  exporter.Stop();
}

TEST(HttpExporterRoutingTest, DispatchWithoutHandlerMatchesHandleRequest) {
  // The GET surface must be byte-identical whether a request arrives through
  // the legacy request-line entry point or the structured dispatch path.
  // (/metrics and /varz are excluded only because their bodies embed the
  // ever-incrementing request counter.)
  for (const char* path : {"/healthz", "/nope", "/jobs", "/algorithmz"}) {
    telemetry::HttpRequest request;
    request.method = "GET";
    request.target = path;
    telemetry::HttpExporter exporter;
    EXPECT_EQ(exporter.Dispatch(request),
              telemetry::HttpExporter::HandleRequest(
                  std::string("GET ") + path + " HTTP/1.1"))
        << path;
  }
}

// --- Tracing ingress and per-endpoint latency --------------------------------

TEST(HttpExporterRoutingTest, DispatchAdoptsValidTraceparentAndMintsOtherwise) {
  telemetry::HttpExporter exporter;
  exporter.SetHandler([](const telemetry::HttpRequest&) {
    return telemetry::MakeHttpResponse(
        200, "OK", "text/plain", TraceIdHex(CurrentTraceContext()) + "\n");
  });
  telemetry::HttpRequest request;
  request.method = "POST";
  request.target = "/jobs";
  request.traceparent =
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
  EXPECT_EQ(Body(exporter.Dispatch(request)),
            "4bf92f3577b34da6a3ce929d0e0e4736\n");
  // An invalid header is never adopted: a fresh nonzero context is minted.
  request.traceparent = "not-a-traceparent";
  std::string minted = Body(exporter.Dispatch(request));
  ASSERT_EQ(minted.size(), 33u) << minted;
  EXPECT_NE(minted, "4bf92f3577b34da6a3ce929d0e0e4736\n");
  EXPECT_NE(minted, std::string(32, '0') + "\n");
  // The ingress context is uninstalled again once the dispatch returns.
  EXPECT_FALSE(HasTraceContext());
}

TEST(HttpExporterRoutingTest, DispatchRecordsLabeledRequestLatency) {
  telemetry::HttpExporter exporter;
  telemetry::HttpRequest request;
  request.method = "GET";
  request.target = "/healthz";
  exporter.Dispatch(request);
  request.target = "/jobs/job-123";  // id-bearing, no handler mounted -> 404
  exporter.Dispatch(request);

  telemetry::MetricsSnapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  // Labeled series collapse job ids to a fixed route-shape vocabulary, and
  // the unlabeled aggregate counts every dispatch.
  EXPECT_GE(snapshot.histograms
                .at("http.request_us{status=\"2xx\",target=\"/healthz\"}")
                .count,
            1u);
  EXPECT_GE(snapshot.histograms
                .at("http.request_us{status=\"4xx\",target=\"/jobs/<id>\"}")
                .count,
            1u);
  EXPECT_GE(snapshot.histograms.at("http.request_us").count, 2u);

  // Pinned Prometheus rendering: labeled samples merge their labels with the
  // le=/quantile= extras, under a single TYPE declaration per family.
  std::string prom = telemetry::MetricsRegistry::Global().ToPrometheusText();
  EXPECT_NE(
      prom.find("http_request_us_count{status=\"2xx\",target=\"/healthz\"}"),
      std::string::npos)
      << prom;
  EXPECT_NE(prom.find("http_request_us_bucket{status=\"2xx\","
                      "target=\"/healthz\",le=\"+Inf\"}"),
            std::string::npos)
      << prom;
  size_t first = prom.find("# TYPE http_request_us histogram");
  ASSERT_NE(first, std::string::npos) << prom;
  EXPECT_EQ(prom.find("# TYPE http_request_us histogram", first + 1),
            std::string::npos);
}

TEST(HttpExporterTest, TraceparentHeaderIsCapturedFromTheWire) {
  telemetry::HttpExporter exporter;
  exporter.SetHandler([](const telemetry::HttpRequest& request) {
    return telemetry::MakeHttpResponse(200, "OK", "text/plain",
                                       "[" + request.traceparent + "]\n");
  });
  ASSERT_TRUE(exporter.Start(0).ok());
  uint16_t port = exporter.port();

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
  // Mixed-case header name: HTTP headers are case-insensitive on the wire.
  std::string request =
      "POST /jobs HTTP/1.1\r\nHost: localhost\r\nTraceparent: " + tp +
      "\r\nContent-Length: 2\r\n\r\nhi";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[1024];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(Body(response), "[" + tp + "]\n") << response;
  exporter.Stop();
}

TEST(HttpExporterRoutingTest, JobPathsWithoutHandlerAre404) {
  // Without a mounted job manager the serving paths fall through to the
  // pre-existing 404, not a crash or an empty response.
  std::string response =
      telemetry::HttpExporter::HandleRequest("GET /jobs HTTP/1.1");
  EXPECT_EQ(response.rfind("HTTP/1.1 404", 0), 0u);
  EXPECT_EQ(Body(response),
            "unknown path; try /healthz /metrics /varz /tracez /profilez\n");
}

}  // namespace
}  // namespace nde
