#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "ml/knn.h"
#include "ml/metrics.h"

namespace nde {
namespace {

TEST(AccuracyTest, Basics) {
  EXPECT_EQ(Accuracy({1, 0, 1}, {1, 0, 1}), 1.0);
  EXPECT_EQ(Accuracy({1, 0, 1, 0}, {1, 1, 1, 1}), 0.5);
  EXPECT_EQ(Accuracy({}, {}), 0.0);
}

TEST(ConfusionTest, CountsHandChecked) {
  //               actual:   1  1  0  0  1
  //               predicted:1  0  1  0  1
  BinaryConfusion c = ComputeBinaryConfusion({1, 1, 0, 0, 1}, {1, 0, 1, 0, 1});
  EXPECT_EQ(c.true_positives, 2u);
  EXPECT_EQ(c.false_negatives, 1u);
  EXPECT_EQ(c.false_positives, 1u);
  EXPECT_EQ(c.true_negatives, 1u);
  EXPECT_NEAR(c.Precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.Recall(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.F1(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.FalsePositiveRate(), 0.5, 1e-12);
}

TEST(ConfusionTest, DegenerateDenominatorsGiveZero) {
  BinaryConfusion c = ComputeBinaryConfusion({0, 0}, {0, 0});
  EXPECT_EQ(c.Precision(), 0.0);
  EXPECT_EQ(c.Recall(), 0.0);
  EXPECT_EQ(c.F1(), 0.0);
}

TEST(F1Test, MacroAveragesClasses) {
  // Perfect on class 0, terrible on class 1.
  std::vector<int> actual = {0, 0, 1, 1};
  std::vector<int> predicted = {0, 0, 0, 0};
  double macro = MacroF1Score(actual, predicted, 2);
  double f1_class0 = ComputeBinaryConfusion(actual, predicted, 0).F1();
  EXPECT_NEAR(macro, f1_class0 / 2.0, 1e-12);
}

TEST(LogLossTest, PerfectAndUncertain) {
  Matrix confident = Matrix::FromRows({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_NEAR(LogLoss(confident, {1, 0}), 0.0, 1e-9);
  Matrix uniform = Matrix::FromRows({{0.5, 0.5}});
  EXPECT_NEAR(LogLoss(uniform, {1}), std::log(2.0), 1e-12);
}

TEST(FairnessTest, DemographicParityDifference) {
  // Group 0: 2/2 positive; group 1: 0/2 positive -> gap 1.
  EXPECT_EQ(DemographicParityDifference({1, 1, 0, 0}, {0, 0, 1, 1}), 1.0);
  // Equal rates -> 0.
  EXPECT_EQ(DemographicParityDifference({1, 0, 1, 0}, {0, 0, 1, 1}), 0.0);
  // Single group -> 0.
  EXPECT_EQ(DemographicParityDifference({1, 0}, {0, 0}), 0.0);
}

TEST(FairnessTest, EqualizedOddsHandChecked) {
  // Group 0: actual {1,0}, predicted {1,0} -> TPR 1, FPR 0.
  // Group 1: actual {1,0}, predicted {0,1} -> TPR 0, FPR 1.
  std::vector<int> actual = {1, 0, 1, 0};
  std::vector<int> predicted = {1, 0, 0, 1};
  std::vector<int> groups = {0, 0, 1, 1};
  EXPECT_EQ(EqualizedOddsDifference(actual, predicted, groups), 1.0);
  // Identical behavior across groups -> 0.
  EXPECT_EQ(EqualizedOddsDifference(actual, actual, groups), 0.0);
}

TEST(FairnessTest, PredictiveParityHandChecked) {
  // Group 0 precision 1.0 (one TP), group 1 precision 0.0 (one FP).
  std::vector<int> actual = {1, 0};
  std::vector<int> predicted = {1, 1};
  std::vector<int> groups = {0, 1};
  EXPECT_EQ(PredictiveParityDifference(actual, predicted, groups), 1.0);
}

TEST(EntropyTest, UniformIsMaximal) {
  Matrix uniform = Matrix::FromRows({{0.5, 0.5}});
  Matrix confident = Matrix::FromRows({{1.0, 0.0}});
  EXPECT_NEAR(MeanPredictionEntropy(uniform), std::log(2.0), 1e-12);
  EXPECT_NEAR(MeanPredictionEntropy(confident), 0.0, 1e-12);
  EXPECT_EQ(MeanPredictionEntropy(Matrix()), 0.0);
}

TEST(TrainAndEvaluateTest, ProducesFullQualityPanel) {
  MlDataset data = MakeBlobs({});
  Rng rng(31);
  SplitResult split = TrainTestSplit(data, 0.3, &rng);
  std::vector<int> groups(split.test.size());
  for (size_t i = 0; i < groups.size(); ++i) groups[i] = i % 2;
  Result<QualityReport> report = TrainAndEvaluate(
      []() { return std::make_unique<KnnClassifier>(5); }, split.train,
      split.test, groups);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->accuracy, 0.7);
  EXPECT_GT(report->f1, 0.5);
  EXPECT_GE(report->log_loss, 0.0);
  EXPECT_GE(report->equalized_odds, 0.0);
  EXPECT_LE(report->equalized_odds, 1.0);
  EXPECT_GE(report->prediction_entropy, 0.0);
}

TEST(TrainAndEvaluateTest, RejectsMisalignedGroups) {
  MlDataset data = MakeBlobs({});
  Rng rng(1);
  SplitResult split = TrainTestSplit(data, 0.3, &rng);
  EXPECT_FALSE(TrainAndEvaluate(
                   []() { return std::make_unique<KnnClassifier>(5); },
                   split.train, split.test, {0, 1})
                   .ok());
}

TEST(TrainAndScoreTest, MatchesAccuracyOfReport) {
  MlDataset data = MakeBlobs({});
  Rng rng(2);
  SplitResult split = TrainTestSplit(data, 0.3, &rng);
  auto factory = []() { return std::make_unique<KnnClassifier>(3); };
  double score = TrainAndScore(factory, split.train, split.test).value();
  QualityReport report =
      TrainAndEvaluate(factory, split.train, split.test).value();
  EXPECT_EQ(score, report.accuracy);
}

}  // namespace
}  // namespace nde
