#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "cleaning/imputation.h"
#include "common/rng.h"
#include "data/table.h"

namespace nde {
namespace {

std::vector<Value> DoubleColumn(std::vector<double> values,
                                std::vector<size_t> nulls = {}) {
  std::vector<Value> out;
  out.reserve(values.size());
  for (double v : values) out.emplace_back(v);
  for (size_t i : nulls) out[i] = Value::Null();
  return out;
}

TEST(MeanImputerTest, FillsWithObservedMean) {
  MeanImputer imputer;
  ASSERT_TRUE(imputer.Fit(DoubleColumn({1.0, 3.0, 5.0}, {1})).ok());
  // Mean of {1, 5} = 3.
  EXPECT_EQ(imputer.FillValue().as_double(), 3.0);
}

TEST(MeanImputerTest, IntColumnsStayInt) {
  MeanImputer imputer;
  std::vector<Value> column = {Value(1), Value(2), Value::Null()};
  ASSERT_TRUE(imputer.Fit(column).ok());
  EXPECT_TRUE(imputer.FillValue().is_int64());
  EXPECT_EQ(imputer.FillValue().as_int64(), 2);  // round(1.5)
}

TEST(MeanImputerTest, RejectsStringsAndAllNull) {
  MeanImputer imputer;
  EXPECT_FALSE(imputer.Fit({Value("x")}).ok());
  EXPECT_FALSE(imputer.Fit({Value::Null()}).ok());
}

TEST(MedianImputerTest, OddAndEvenCounts) {
  MedianImputer odd;
  ASSERT_TRUE(odd.Fit(DoubleColumn({5.0, 1.0, 100.0})).ok());
  EXPECT_EQ(odd.FillValue().as_double(), 5.0);

  MedianImputer even;
  ASSERT_TRUE(even.Fit(DoubleColumn({1.0, 2.0, 3.0, 100.0})).ok());
  EXPECT_EQ(even.FillValue().as_double(), 2.5);
}

TEST(MedianImputerTest, RobustToOutliers) {
  MeanImputer mean;
  MedianImputer median;
  std::vector<Value> column = DoubleColumn({1.0, 1.0, 1.0, 1.0, 1000.0});
  ASSERT_TRUE(mean.Fit(column).ok());
  ASSERT_TRUE(median.Fit(column).ok());
  EXPECT_GT(mean.FillValue().as_double(), 100.0);
  EXPECT_EQ(median.FillValue().as_double(), 1.0);
}

TEST(MostFrequentImputerTest, PicksModeWithDeterministicTies) {
  MostFrequentImputer imputer;
  std::vector<Value> column = {Value("b"), Value("a"), Value("b"),
                               Value::Null(), Value("a")};
  ASSERT_TRUE(imputer.Fit(column).ok());
  EXPECT_EQ(imputer.FillValue().as_string(), "a");  // Tie: smaller value.
}

TEST(MostFrequentImputerTest, WorksOnIntColumns) {
  MostFrequentImputer imputer;
  ASSERT_TRUE(imputer.Fit({Value(7), Value(7), Value(9)}).ok());
  EXPECT_EQ(imputer.FillValue().as_int64(), 7);
}

TEST(ImputeColumnTest, RepairsAllNullsAndReportsRows) {
  Table t = TableBuilder()
                .AddValueColumn("v", DataType::kDouble,
                                DoubleColumn({1.0, 2.0, 3.0, 4.0}, {1, 3}))
                .Build();
  MeanImputer imputer;
  std::vector<size_t> repaired = ImputeColumn(&t, "v", &imputer).value();
  EXPECT_EQ(repaired, (std::vector<size_t>{1, 3}));
  EXPECT_EQ(t.CountNulls(0), 0u);
  EXPECT_EQ(t.At(1, 0).as_double(), 2.0);  // Mean of {1, 3}.
}

TEST(ImputeColumnTest, UnknownColumnFails) {
  Table t = TableBuilder().AddDoubleColumn("v", {1.0}).Build();
  MeanImputer imputer;
  EXPECT_FALSE(ImputeColumn(&t, "nope", &imputer).ok());
}

TEST(KnnImputeTest, UsesNearestNeighborsValues) {
  // Two clusters: feature f near 0 -> target ~10; f near 100 -> target ~20.
  Table t = TableBuilder()
                .AddDoubleColumn("f", {0.0, 1.0, 2.0, 100.0, 101.0, 0.5, 99.0})
                .AddValueColumn("target", DataType::kDouble,
                                DoubleColumn({10.0, 10.5, 9.5, 20.0, 20.5,
                                              0.0, 0.0},
                                             {5, 6}))
                .Build();
  std::vector<size_t> repaired =
      KnnImputeColumn(&t, "target", {"f"}, 2).value();
  EXPECT_EQ(repaired, (std::vector<size_t>{5, 6}));
  // Row 5 (f=0.5) should take values from the low cluster.
  EXPECT_NEAR(t.At(5, 1).as_double(), 10.0, 1.0);
  // Row 6 (f=99) from the high cluster.
  EXPECT_NEAR(t.At(6, 1).as_double(), 20.0, 1.0);
}

TEST(KnnImputeTest, BeatsMeanImputationOnStructuredData) {
  // Ground truth: target = f; MCAR holes; KNN recovers locally, mean cannot.
  Rng rng(7);
  std::vector<double> f(200);
  std::vector<Value> target(200);
  for (size_t i = 0; i < 200; ++i) {
    f[i] = rng.NextUniform(0, 100);
    target[i] = Value(f[i]);
  }
  std::vector<size_t> holes = rng.SampleWithoutReplacement(200, 40);
  for (size_t i : holes) target[i] = Value::Null();

  Table knn_table = TableBuilder()
                        .AddDoubleColumn("f", f)
                        .AddValueColumn("target", DataType::kDouble, target)
                        .Build();
  Table mean_table = knn_table;
  ASSERT_TRUE(KnnImputeColumn(&knn_table, "target", {"f"}, 3).ok());
  MeanImputer mean;
  ASSERT_TRUE(ImputeColumn(&mean_table, "target", &mean).ok());

  double knn_error = 0.0;
  double mean_error = 0.0;
  for (size_t i : holes) {
    knn_error += std::fabs(knn_table.At(i, 1).as_double() - f[i]);
    mean_error += std::fabs(mean_table.At(i, 1).as_double() - f[i]);
  }
  EXPECT_LT(knn_error, mean_error / 5.0);
}

TEST(KnnImputeTest, Validation) {
  Table t = TableBuilder()
                .AddStringColumn("s", {"a"})
                .AddDoubleColumn("v", {1.0})
                .Build();
  EXPECT_FALSE(KnnImputeColumn(&t, "s", {"v"}, 3).ok());   // String target.
  EXPECT_FALSE(KnnImputeColumn(&t, "v", {"s"}, 3).ok());   // String feature.
  EXPECT_FALSE(KnnImputeColumn(&t, "v", {}, 3).ok());      // No features.
  EXPECT_FALSE(KnnImputeColumn(&t, "v", {"v"}, 0).ok());   // k == 0.
  EXPECT_FALSE(KnnImputeColumn(nullptr, "v", {"v"}, 1).ok());
}

TEST(KnnImputeTest, NoDonorsFails) {
  Table t = TableBuilder()
                .AddDoubleColumn("f", {1.0, 2.0})
                .AddValueColumn("target", DataType::kDouble,
                                {Value::Null(), Value::Null()})
                .Build();
  EXPECT_EQ(KnnImputeColumn(&t, "target", {"f"}, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace nde
