#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "ml/knn.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/unlearning.h"

namespace nde {
namespace {

MlDataset SmallBlobs(uint64_t seed = 42) {
  BlobsOptions options;
  options.num_examples = 120;
  options.num_features = 4;
  options.num_classes = 3;
  options.seed = seed;
  return MakeBlobs(options);
}

// --- DecrementalGaussianNb ----------------------------------------------------

TEST(DecrementalNbTest, FreshFitMatchesBatchModel) {
  MlDataset data = SmallBlobs();
  GaussianNaiveBayes batch;
  DecrementalGaussianNb decremental;
  ASSERT_TRUE(batch.Fit(data).ok());
  ASSERT_TRUE(decremental.Fit(data).ok());
  Matrix batch_proba = batch.PredictProba(data.features);
  Matrix dec_proba = decremental.PredictProba(data.features);
  EXPECT_LT(batch_proba.MaxAbsDiff(dec_proba), 1e-9);
}

TEST(DecrementalNbTest, ForgetEqualsRetrainFromScratch) {
  MlDataset data = SmallBlobs(7);
  DecrementalGaussianNb decremental;
  ASSERT_TRUE(decremental.Fit(data).ok());
  std::vector<size_t> to_forget = {3, 17, 55, 90, 4};
  for (size_t i : to_forget) {
    ASSERT_TRUE(decremental.Forget(i).ok());
  }
  EXPECT_EQ(decremental.remaining_size(), data.size() - to_forget.size());

  GaussianNaiveBayes retrained;
  MlDataset reduced = data.Without(to_forget);
  ASSERT_TRUE(retrained.FitWithClasses(reduced, 3).ok());

  MlDataset probe = SmallBlobs(8);
  Matrix dec_proba = decremental.PredictProba(probe.features);
  Matrix retrain_proba = retrained.PredictProba(probe.features);
  EXPECT_LT(dec_proba.MaxAbsDiff(retrain_proba), 1e-8);
}

TEST(DecrementalNbTest, ForgettingAWholeClassFallsBackGracefully) {
  MlDataset data;
  data.features = Matrix::FromRows({{0.0}, {0.1}, {5.0}, {5.1}, {5.2}});
  data.labels = {0, 0, 1, 1, 1};
  DecrementalGaussianNb model;
  ASSERT_TRUE(model.Fit(data).ok());
  ASSERT_TRUE(model.Forget(0).ok());
  ASSERT_TRUE(model.Forget(1).ok());  // Class 0 now empty.
  std::vector<int> predictions = model.Predict(data.features);
  EXPECT_EQ(predictions[2], 1);  // Remaining class dominates.
}

TEST(DecrementalNbTest, ForgetValidation) {
  MlDataset data = SmallBlobs();
  DecrementalGaussianNb model;
  EXPECT_EQ(model.Forget(0).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_EQ(model.Forget(9999).code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(model.Forget(5).ok());
  EXPECT_EQ(model.Forget(5).code(), StatusCode::kFailedPrecondition);
}

TEST(DecrementalNbTest, CannotForgetEverything) {
  MlDataset data;
  data.features = Matrix::FromRows({{0.0}, {1.0}});
  data.labels = {0, 1};
  DecrementalGaussianNb model;
  ASSERT_TRUE(model.Fit(data).ok());
  ASSERT_TRUE(model.Forget(0).ok());
  EXPECT_FALSE(model.Forget(1).ok());
}

// --- DecrementalKnn --------------------------------------------------------------

TEST(DecrementalKnnTest, FreshFitMatchesBatchKnn) {
  MlDataset data = SmallBlobs(11);
  KnnClassifier batch(5);
  DecrementalKnn decremental(5);
  ASSERT_TRUE(batch.Fit(data).ok());
  ASSERT_TRUE(decremental.Fit(data).ok());
  MlDataset probe = SmallBlobs(12);
  EXPECT_EQ(batch.Predict(probe.features),
            decremental.Predict(probe.features));
}

TEST(DecrementalKnnTest, ForgetEqualsRetrainFromScratch) {
  MlDataset data = SmallBlobs(13);
  DecrementalKnn decremental(5);
  ASSERT_TRUE(decremental.Fit(data).ok());
  std::vector<size_t> to_forget = {0, 1, 2, 50, 99};
  for (size_t i : to_forget) {
    ASSERT_TRUE(decremental.Forget(i).ok());
  }
  KnnClassifier retrained(5);
  ASSERT_TRUE(retrained.FitWithClasses(data.Without(to_forget), 3).ok());
  MlDataset probe = SmallBlobs(14);
  Matrix dec_proba = decremental.PredictProba(probe.features);
  Matrix retrain_proba = retrained.PredictProba(probe.features);
  EXPECT_LT(dec_proba.MaxAbsDiff(retrain_proba), 1e-12);
}

TEST(DecrementalKnnTest, UnlearningHarmfulPointsImprovesAccuracy) {
  // The debugging/unlearning synergy: forget the label errors found by
  // debugging instead of retraining.
  DatasetSplits splits = LoadRecommendationLetters(300, 17);
  MlDataset dirty = splits.train;
  Rng rng(19);
  std::vector<size_t> corrupted = InjectLabelErrors(&dirty, 0.15, &rng);

  DecrementalKnn model(1);
  ASSERT_TRUE(model.Fit(dirty).ok());
  double dirty_accuracy =
      Accuracy(splits.test.labels, model.Predict(splits.test.features));
  for (size_t i : corrupted) {
    ASSERT_TRUE(model.Forget(i).ok());
  }
  double forgotten_accuracy =
      Accuracy(splits.test.labels, model.Predict(splits.test.features));
  EXPECT_GT(forgotten_accuracy, dirty_accuracy);
}

}  // namespace
}  // namespace nde
