#include "telemetry/run_report.h"

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/progress.h"
#include "importance/game_values.h"
#include "importance/utility.h"
#include "json_checker.h"
#include "telemetry/profiler.h"

namespace nde {
namespace {

ProgressUpdate MakeUpdate(size_t completed, size_t total, size_t evals,
                          double max_std_error) {
  ProgressUpdate update;
  update.phase = "test";
  update.completed = completed;
  update.total = total;
  update.utility_evaluations = evals;
  update.max_std_error = max_std_error;
  return update;
}

TEST(RunReportTest, EnvelopeIsMonotoneOnANonMonotoneRawSeries) {
  telemetry::RunReport report("envelope");
  // Raw errors: not estimable, then 0.5, 0.2, 0.4 (tick up), not estimable,
  // 0.1. The envelope must carry through the gaps and never increase.
  const double raw[] = {0.0, 0.5, 0.2, 0.4, 0.0, 0.1};
  for (size_t i = 0; i < 6; ++i) {
    report.RecordProgress(MakeUpdate(i + 1, 6, (i + 1) * 10, raw[i]));
  }
  const auto& curve = report.curve();
  ASSERT_EQ(curve.size(), 6u);
  const double expected_envelope[] = {0.0, 0.5, 0.2, 0.2, 0.2, 0.1};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(curve[i].max_std_error, raw[i]) << i;
    EXPECT_DOUBLE_EQ(curve[i].envelope, expected_envelope[i]) << i;
    if (i > 0 && curve[i].envelope > 0 && curve[i - 1].envelope > 0) {
      EXPECT_LE(curve[i].envelope, curve[i - 1].envelope) << i;
    }
  }
}

TEST(RunReportTest, MakeProgressCallbackForwardsEveryField) {
  telemetry::RunReport report("callback");
  ProgressCallback callback = report.MakeProgressCallback();
  callback(MakeUpdate(32, 100, 250, 0.125));
  ASSERT_EQ(report.curve().size(), 1u);
  EXPECT_EQ(report.curve()[0].completed, 32u);
  EXPECT_EQ(report.curve()[0].total, 100u);
  EXPECT_EQ(report.curve()[0].utility_evaluations, 250u);
  EXPECT_DOUBLE_EQ(report.curve()[0].max_std_error, 0.125);
}

TEST(RunReportTest, ConfigKeepsTypesAndLastWriteWins) {
  telemetry::RunReport report("config");
  report.SetConfig("method", "tmc_shapley");
  report.SetConfig("seed", int64_t{42});
  report.SetConfig("tolerance", 0.05);
  report.SetConfig("cache", true);
  report.SetConfig("seed", int64_t{7});  // Overwrite.
  std::string json = report.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"method\":\"tmc_shapley\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":7"), std::string::npos);
  EXPECT_EQ(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"cache\":true"), std::string::npos);
}

TEST(RunReportTest, ToJsonIsWellFormedAndFinishIsIdempotent) {
  telemetry::RunReport report("shape");
  report.SetConfig("escaped \"key\"", "escaped \"value\"\n");
  report.RecordProgress(MakeUpdate(1, 2, 3, 0.5));
  report.Finish();
  EXPECT_TRUE(report.finished());
  std::string first = report.ToJson();
  report.Finish();  // Second call must not move the timers.
  EXPECT_EQ(report.ToJson(), first);
  EXPECT_TRUE(JsonChecker(first).Valid()) << first;
  for (const char* key :
       {"\"name\":\"shape\"", "\"config\":", "\"timing\":", "\"wall_ms\":",
        "\"cpu_ms\":", "\"convergence_curve\":", "\"metrics\":",
        "\"utility_cache\":", "\"profile\":", "\"trace\":"}) {
    EXPECT_NE(first.find(key), std::string::npos) << key << "\n" << first;
  }
}

TEST(RunReportTest, ProfileBlockReflectsTheSamplingProfiler) {
  // Without a profiler run the block is present but disabled…
  {
    telemetry::Profiler::Global().Reset();
    telemetry::RunReport report("no_profile");
    std::string json = report.ToJson();
    EXPECT_TRUE(JsonChecker(json).Valid()) << json;
    EXPECT_NE(json.find("\"profile\":{\"enabled\":false"), std::string::npos)
        << json;
  }
  // …and with samples aggregated it carries them, inside valid JSON.
  {
    telemetry::prof::PushFrame("report_frame");
    telemetry::Profiler::Global().SampleOnce();
    telemetry::prof::PopFrame();
    telemetry::RunReport report("with_profile");
    std::string json = report.ToJson();
    EXPECT_TRUE(JsonChecker(json).Valid()) << json;
    EXPECT_NE(json.find("\"profile\":{\"enabled\":true"), std::string::npos)
        << json;
    EXPECT_NE(json.find("report_frame"), std::string::npos) << json;
    EXPECT_NE(json.find("\"alloc\":"), std::string::npos) << json;
    telemetry::Profiler::Global().Reset();
  }
}

TEST(RunReportTest, WriteFileRoundTripsAndReportsIOErrors) {
  telemetry::RunReport report("file");
  report.RecordProgress(MakeUpdate(4, 4, 9, 0.25));
  std::string path =
      ::testing::TempDir() + "/nde_run_report_test_roundtrip.json";
  ASSERT_TRUE(report.WriteFile(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  std::remove(path.c_str());

  ASSERT_FALSE(contents.empty());
  EXPECT_EQ(contents.back(), '\n');
  contents.pop_back();
  EXPECT_EQ(contents, report.ToJson());
  EXPECT_TRUE(JsonChecker(contents).Valid());

  Status bad = report.WriteFile("/nonexistent-dir-zzz/report.json");
  EXPECT_FALSE(bad.ok());
}

// A report attached to a real estimator run must agree with the estimate:
// the last curve point sits at the run's final boundary and its cumulative
// evaluation count matches the estimator's own accounting.
TEST(RunReportTest, CurveAgreesWithARealTmcRun) {
  class SqrtGame : public UtilityFunction {
   public:
    double Evaluate(const std::vector<size_t>& subset) const override {
      double sum = 0.0;
      for (size_t i : subset) sum += static_cast<double>(i + 1);
      return std::sqrt(sum);
    }
    size_t num_units() const override { return 6; }
  };
  SqrtGame game;

  telemetry::RunReport report("tmc");
  TmcShapleyOptions options;
  options.num_permutations = 64;
  options.seed = 11;
  options.truncation_tolerance = 0.0;
  options.progress = report.MakeProgressCallback();
  ImportanceEstimate estimate = TmcShapleyValues(game, options).value();

  const auto& curve = report.curve();
  ASSERT_EQ(curve.size(), 2u);  // 64 permutations = two 32-permutation waves.
  EXPECT_EQ(curve.back().completed, 64u);
  EXPECT_EQ(curve.back().total, 64u);
  EXPECT_EQ(curve.back().utility_evaluations, estimate.utility_evaluations);
  EXPECT_GT(curve.back().max_std_error, 0.0);
  EXPECT_LE(curve.back().envelope, curve.front().envelope);
  EXPECT_TRUE(JsonChecker(report.ToJson()).Valid());
}

}  // namespace
}  // namespace nde
