#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/json.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace nde {
namespace {

// --- Status -----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("missing column");
  EXPECT_EQ(s.ToString(), "not_found: missing column");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::IOError("disk"); };
  auto outer = [&]() -> Status {
    NDE_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIOError);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto outer = []() -> Status {
    NDE_RETURN_IF_ERROR(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

// --- Result -----------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 7;
  };
  auto consume = [&](bool fail) -> Result<int> {
    NDE_ASSIGN_OR_RETURN(int v, produce(fail));
    return v + 1;
  };
  EXPECT_EQ(consume(false).value(), 8);
  EXPECT_EQ(consume(true).status().code(), StatusCode::kInternal);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH({ (void)r.value(); }, "Result::value");
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextCategorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, PermutationContainsAllIndices) {
  Rng rng(31);
  std::vector<size_t> perm = rng.Permutation(100);
  std::set<size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

class SampleWithoutReplacementTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SampleWithoutReplacementTest, DistinctAndInRange) {
  auto [n, k] = GetParam();
  Rng rng(37 + n * 1000 + k);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(n, k);
  EXPECT_EQ(sample.size(), k);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), k);
  for (size_t s : sample) EXPECT_LT(s, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SampleWithoutReplacementTest,
    ::testing::Values(std::pair<size_t, size_t>{10, 0},
                      std::pair<size_t, size_t>{10, 3},
                      std::pair<size_t, size_t>{10, 10},
                      std::pair<size_t, size_t>{1000, 5},
                      std::pair<size_t, size_t>{1000, 900},
                      std::pair<size_t, size_t>{1, 1}));

TEST(RngTest, SampleWithoutReplacementUniformish) {
  // Every index should be sampled with roughly equal frequency.
  Rng rng(41);
  std::vector<int> counts(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (size_t i : rng.SampleWithoutReplacement(20, 5)) ++counts[i];
  }
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(trials), 0.25, 0.03);
  }
}

// --- string_util -------------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  std::vector<std::string> parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitEmptyString) {
  std::vector<std::string> parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::string original = "x|y|z";
  EXPECT_EQ(JoinStrings(SplitString(original, '|'), "|"), original);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("pipeline", "pipe"));
  EXPECT_FALSE(StartsWith("pipe", "pipeline"));
  EXPECT_TRUE(EndsWith("table.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "table.csv"));
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("HeLLo 123"), "hello 123");
}

TEST(StringUtilTest, EditDistanceBasics) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
}

TEST(StringUtilTest, EditDistanceSymmetric) {
  const char* words[] = {"alpha", "beta", "alphabet", "bet", ""};
  for (const char* a : words) {
    for (const char* b : words) {
      EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
    }
  }
}

TEST(StringUtilTest, EditDistanceTriangleInequality) {
  const char* words[] = {"join", "jobs", "jorn", "yarn"};
  for (const char* a : words) {
    for (const char* b : words) {
      for (const char* c : words) {
        EXPECT_LE(EditDistance(a, c), EditDistance(a, b) + EditDistance(b, c));
      }
    }
  }
}

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(JsonParseTest, ScalarsKeepValueAndRawSpelling) {
  json::Value number = json::Parse("1e-3").value();
  ASSERT_TRUE(number.is_number());
  EXPECT_DOUBLE_EQ(number.as_number(), 1e-3);
  EXPECT_EQ(number.raw(), "1e-3");

  EXPECT_EQ(json::Parse("-42").value().as_number(), -42.0);
  EXPECT_TRUE(json::Parse("true").value().as_bool());
  EXPECT_FALSE(json::Parse("false").value().as_bool());
  EXPECT_TRUE(json::Parse("null").value().is_null());
  EXPECT_EQ(json::Parse("\"a\\n\\\"b\\\"\"").value().as_string(), "a\n\"b\"");
}

TEST(JsonParseTest, ObjectMembersKeepSourceOrder) {
  json::Value object =
      json::Parse("{\"z\": 1, \"a\": [true, {\"k\": \"v\"}], \"m\": null}")
          .value();
  ASSERT_TRUE(object.is_object());
  ASSERT_EQ(object.members().size(), 3u);
  EXPECT_EQ(object.members()[0].first, "z");
  EXPECT_EQ(object.members()[1].first, "a");
  const json::Value* array = object.Find("a");
  ASSERT_NE(array, nullptr);
  ASSERT_EQ(array->items().size(), 2u);
  EXPECT_EQ(array->items()[1].Find("k")->as_string(), "v");
  EXPECT_EQ(object.Find("missing"), nullptr);
}

TEST(JsonParseTest, StrictnessRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":1,}", "{\"a\":1 \"b\":2}", "01", "1.",
        "\"unterminated", "\"bad \\q escape\"", "nul", "{\"a\":1}garbage",
        "{\"dup\":1,\"dup\":2}", "[1] [2]"}) {
    Result<json::Value> parsed = json::Parse(bad);
    EXPECT_FALSE(parsed.ok()) << "'" << bad << "' should not parse";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
    }
  }
}

TEST(JsonParseTest, DepthIsCapped) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(json::Parse(deep).ok());
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(64);  // Tiny first chunk to force growth.
  std::vector<std::pair<char*, size_t>> blocks;
  for (size_t i = 0; i < 100; ++i) {
    size_t bytes = 1 + (i * 7) % 96;
    size_t alignment = size_t{1} << (i % 7);  // 1..64.
    char* p = static_cast<char*>(arena.Allocate(bytes, alignment));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignment, 0u)
        << "allocation " << i;
    // Writing the full block must not corrupt any earlier block.
    std::memset(p, static_cast<int>(i), bytes);
    blocks.emplace_back(p, bytes);
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (size_t b = 0; b < blocks[i].second; ++b) {
      ASSERT_EQ(static_cast<unsigned char>(blocks[i].first[b]),
                static_cast<unsigned char>(i))
          << "block " << i << " byte " << b;
    }
  }
  EXPECT_GE(arena.bytes_allocated(), 100u);
}

TEST(ArenaTest, ResetReachesSteadyStateWithoutNewChunks) {
  Arena arena(128);
  for (int i = 0; i < 32; ++i) arena.AllocateArray<double>(16);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  // The retained chunk covers the whole workload, so replaying it must not
  // grow the reservation again.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 32; ++i) arena.AllocateArray<double>(16);
    EXPECT_EQ(arena.bytes_reserved(), reserved) << "round " << round;
    arena.Reset();
  }
}

TEST(ArenaTest, TypedArraysAreElementAligned) {
  Arena arena;
  arena.Allocate(1, 1);  // Knock the bump pointer off natural alignment.
  double* d = arena.AllocateArray<double>(3);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
  uint32_t* u = arena.AllocateArray<uint32_t>(5);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(u) % alignof(uint32_t), 0u);
}

TEST(ArenaPoolTest, RecyclesReleasedArenas) {
  ArenaPool pool(256);
  std::unique_ptr<Arena> a = pool.Acquire();
  a->AllocateArray<double>(64);
  Arena* raw = a.get();
  size_t reserved = a->bytes_reserved();
  pool.Release(std::move(a));
  EXPECT_EQ(pool.idle(), 1u);

  // The same pre-grown arena comes back, already reset.
  std::unique_ptr<Arena> b = pool.Acquire();
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(b->bytes_allocated(), 0u);
  EXPECT_EQ(b->bytes_reserved(), reserved);
  EXPECT_EQ(pool.idle(), 0u);

  // An empty pool constructs fresh arenas rather than blocking.
  std::unique_ptr<Arena> c = pool.Acquire();
  EXPECT_NE(c.get(), nullptr);
  EXPECT_NE(c.get(), raw);
  pool.Release(std::move(b));
  pool.Release(std::move(c));
  pool.Release(nullptr);  // Ignored.
  EXPECT_EQ(pool.idle(), 2u);
}

}  // namespace
}  // namespace nde
