#include "common/failpoint.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace nde {
namespace {

/// Every test starts and ends with nothing armed and zeroed counters, so
/// tests compose in any order and never leak injections into other suites.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DisarmAll();
    failpoint::ResetStats();
  }
  void TearDown() override {
    failpoint::DisarmAll();
    failpoint::ResetStats();
  }
};

/// Looks up one site's counters in Stats() (zeros when never armed).
failpoint::PointStats StatsFor(const std::string& name) {
  for (const failpoint::PointStats& point : failpoint::Stats()) {
    if (point.name == name) return point;
  }
  return {};
}

TEST_F(FailpointTest, UnarmedProcessIsSilent) {
  EXPECT_FALSE(failpoint::AnyArmed());
  failpoint::Outcome out = failpoint::Fire("test.silent");
  EXPECT_EQ(out.kind, failpoint::Outcome::kNone);
  EXPECT_FALSE(out.fired());
  EXPECT_TRUE(out.status.ok());
}

TEST_F(FailpointTest, ErrorActionDefaultsToInternal) {
  ASSERT_TRUE(failpoint::Arm("test.err=error").ok());
  EXPECT_TRUE(failpoint::AnyArmed());
  failpoint::Outcome out = failpoint::Fire("test.err");
  EXPECT_EQ(out.kind, failpoint::Outcome::kError);
  EXPECT_TRUE(out.fired());
  EXPECT_EQ(out.status.code(), StatusCode::kInternal);
  EXPECT_NE(out.status.message().find("failpoint 'test.err' fired"),
            std::string::npos);
}

TEST_F(FailpointTest, ErrorActionWithCodeAndMessage) {
  ASSERT_TRUE(failpoint::Arm("test.err=error(io_error:disk gone)").ok());
  failpoint::Outcome out = failpoint::Fire("test.err");
  EXPECT_EQ(out.status.code(), StatusCode::kIOError);
  EXPECT_EQ(out.status.message(), "disk gone");
}

TEST_F(FailpointTest, RetryableCodesAreRetryable) {
  ASSERT_TRUE(failpoint::Arm("test.err=error(unavailable)").ok());
  failpoint::Outcome out = failpoint::Fire("test.err");
  EXPECT_EQ(out.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryable(out.status.code()));
  EXPECT_FALSE(IsRetryable(StatusCode::kInternal));
}

TEST_F(FailpointTest, DelayServesThenContinues) {
  ASSERT_TRUE(failpoint::Arm("test.delay=delay(20)").ok());
  auto start = std::chrono::steady_clock::now();
  failpoint::Outcome out = failpoint::Fire("test.delay");
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // A delay is served in place and the caller proceeds normally.
  EXPECT_EQ(out.kind, failpoint::Outcome::kNone);
  EXPECT_FALSE(out.fired());
  EXPECT_GE(elapsed.count(), 15);
  // The delay still counts as a fire in the stats.
  EXPECT_EQ(StatsFor("test.delay").fires, 1u);
}

TEST_F(FailpointTest, NanPoisonCarriesTypedStatus) {
  ASSERT_TRUE(failpoint::Arm("test.nan=nan").ok());
  failpoint::Outcome out = failpoint::Fire("test.nan");
  EXPECT_EQ(out.kind, failpoint::Outcome::kNanPoison);
  EXPECT_TRUE(out.fired());
  // Status-only sites cannot represent a poisoned value; they must still get
  // a typed non-OK status instead of a silent "fired but OK" outcome.
  EXPECT_EQ(out.status.code(), StatusCode::kInternal);
  EXPECT_NE(out.status.message().find("nan poison"), std::string::npos);
}

TEST_F(FailpointTest, AllocFailIsResourceExhausted) {
  ASSERT_TRUE(failpoint::Arm("test.alloc=alloc_fail").ok());
  failpoint::Outcome out = failpoint::Fire("test.alloc");
  EXPECT_EQ(out.kind, failpoint::Outcome::kAllocFail);
  EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsRetryable(out.status.code()));
}

TEST_F(FailpointTest, FirstHitModifierSkipsEarlyHits) {
  ASSERT_TRUE(failpoint::Arm("test.nth=error#3").ok());
  EXPECT_FALSE(failpoint::Fire("test.nth").fired());
  EXPECT_FALSE(failpoint::Fire("test.nth").fired());
  EXPECT_TRUE(failpoint::Fire("test.nth").fired());
  EXPECT_TRUE(failpoint::Fire("test.nth").fired());  // and every hit after
  failpoint::PointStats stats = StatsFor("test.nth");
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.fires, 2u);
}

TEST_F(FailpointTest, MaxFiresModifierCapsInjections) {
  ASSERT_TRUE(failpoint::Arm("test.max=error(internal:cap)x2").ok());
  size_t fires = 0;
  for (int i = 0; i < 5; ++i) {
    if (failpoint::Fire("test.max").fired()) ++fires;
  }
  EXPECT_EQ(fires, 2u);
  EXPECT_EQ(StatsFor("test.max").fires, 2u);
  EXPECT_EQ(StatsFor("test.max").hits, 5u);
}

TEST_F(FailpointTest, FirstHitAndMaxFiresCompose) {
  // Fire exactly once, on the third hit: the one-shot transient fault.
  ASSERT_TRUE(failpoint::Arm("test.once=error#3x1").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(failpoint::Fire("test.once").fired());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  const char* bad[] = {
      "noequals",                   // no '='
      "=error",                     // empty name
      "test.x=",                    // empty action
      "test.x=bogus",               // unknown action
      "test.x=error(not_a_code)",   // unknown status code
      "test.x=error(ok)",           // firing cannot succeed
      "test.x=delay",               // delay needs (ms)
      "test.x=delay(abc)",          // non-numeric ms
      "test.x=delay(5",             // unterminated '('
      "test.x=off(now)",            // off takes no args
      "test.x=error#0",             // #N is 1-based
      "test.x=error(internal)x0",   // x0 is spelled 'off'
      "test.x=error@1.5",           // prob outside [0, 1]
      "test.x=error@-0.5",          // prob outside [0, 1]
      "test.x=error@zzz",           // non-numeric prob
      "test.x=error!7",             // unknown modifier
  };
  for (const char* spec : bad) {
    Status status = failpoint::Arm(spec);
    EXPECT_FALSE(status.ok()) << "spec accepted: " << spec;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << spec;
  }
  EXPECT_FALSE(failpoint::AnyArmed());
}

TEST_F(FailpointTest, ArmFromListArmsEverySpec) {
  ASSERT_TRUE(
      failpoint::ArmFromList("test.a=error; test.b=nan, test.c=alloc_fail")
          .ok());
  EXPECT_TRUE(failpoint::Fire("test.a").fired());
  EXPECT_EQ(failpoint::Fire("test.b").kind, failpoint::Outcome::kNanPoison);
  EXPECT_EQ(failpoint::Fire("test.c").kind, failpoint::Outcome::kAllocFail);
}

TEST_F(FailpointTest, ArmFromListStopsAtFirstBadSpec) {
  Status status = failpoint::ArmFromList("test.a=error;test.b=bogus");
  EXPECT_FALSE(status.ok());
  // Specs before the bad one stay armed: the operator sees the parse error
  // and the already-applied prefix, matching documented behavior.
  EXPECT_TRUE(failpoint::Fire("test.a").fired());
}

TEST_F(FailpointTest, OffSpecDisarms) {
  ASSERT_TRUE(failpoint::Arm("test.off=error").ok());
  EXPECT_TRUE(failpoint::AnyArmed());
  ASSERT_TRUE(failpoint::Arm("test.off=off").ok());
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_FALSE(failpoint::Fire("test.off").fired());
  // Already disarmed: Disarm reports it was not armed.
  EXPECT_FALSE(failpoint::Disarm("test.off"));
}

TEST_F(FailpointTest, RearmReplacesSpecAndKeepsCounters) {
  ASSERT_TRUE(failpoint::Arm("test.rearm=error(internal)").ok());
  EXPECT_EQ(failpoint::Fire("test.rearm").status.code(),
            StatusCode::kInternal);
  ASSERT_TRUE(failpoint::Arm("test.rearm=error(unavailable)").ok());
  EXPECT_EQ(failpoint::Fire("test.rearm").status.code(),
            StatusCode::kUnavailable);
  failpoint::PointStats stats = StatsFor("test.rearm");
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.fires, 2u);
}

TEST_F(FailpointTest, StatsSurviveDisarmAndResetZeroes) {
  ASSERT_TRUE(failpoint::Arm("test.stats=error").ok());
  (void)failpoint::Fire("test.stats");
  ASSERT_TRUE(failpoint::Disarm("test.stats"));
  failpoint::PointStats stats = StatsFor("test.stats");
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.fires, 1u);
  EXPECT_FALSE(stats.armed);
  failpoint::ResetStats();
  stats = StatsFor("test.stats");
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.fires, 0u);
}

TEST_F(FailpointTest, KnownSitesCatalogMatchesDesignDoc) {
  const std::vector<std::string>& sites = failpoint::KnownSites();
  const char* expected[] = {
      "csv.open",         "csv.record",        "pipeline.execute",
      "encoder.fit",      "encoder.transform", "utility.evaluate",
      "subset_cache.insert", "threadpool.task", "http.handle_request",
  };
  EXPECT_EQ(sites.size(), 9u);
  for (const char* site : expected) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << "missing site: " << site;
  }
}

TEST_F(FailpointTest, KeyedProbabilisticDecisionIsPureFunctionOfKey) {
  ASSERT_TRUE(failpoint::Arm("test.prob=error@0.5/123").ok());
  std::vector<bool> first;
  for (uint64_t key = 0; key < 1000; ++key) {
    first.push_back(failpoint::Fire("test.prob", key).fired());
  }
  // The decision ignores hit order entirely: replaying the same keys (with
  // 1000 extra hits already on the counters) reproduces the same bitmap.
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(failpoint::Fire("test.prob", key).fired(), first[key])
        << "key " << key;
  }
  // At prob 0.5 the fire rate over 1000 keys is near one half.
  size_t fires = static_cast<size_t>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 400u);
  EXPECT_LT(fires, 600u);
}

TEST_F(FailpointTest, DifferentSeedsGiveDifferentDecisions) {
  ASSERT_TRUE(failpoint::Arm("test.prob=error@0.5/1").ok());
  std::vector<bool> seed1;
  for (uint64_t key = 0; key < 256; ++key) {
    seed1.push_back(failpoint::Fire("test.prob", key).fired());
  }
  ASSERT_TRUE(failpoint::Arm("test.prob=error@0.5/2").ok());
  size_t differing = 0;
  for (uint64_t key = 0; key < 256; ++key) {
    if (failpoint::Fire("test.prob", key).fired() != seed1[key]) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST_F(FailpointTest, ProbabilityEdgesNeverAndAlways) {
  ASSERT_TRUE(failpoint::Arm("test.never=error@0").ok());
  ASSERT_TRUE(failpoint::Arm("test.always=error@1").ok());
  for (uint64_t key = 0; key < 64; ++key) {
    EXPECT_FALSE(failpoint::Fire("test.never", key).fired());
    EXPECT_TRUE(failpoint::Fire("test.always", key).fired());
  }
}

TEST_F(FailpointTest, MixKeyMixesBothCoordinates) {
  EXPECT_NE(failpoint::MixKey(1, 2), failpoint::MixKey(2, 1));
  EXPECT_NE(failpoint::MixKey(0, 0), failpoint::MixKey(0, 1));
  EXPECT_NE(failpoint::MixKey(0, 0), failpoint::MixKey(1, 0));
  EXPECT_EQ(failpoint::MixKey(7, 9), failpoint::MixKey(7, 9));
}

TEST_F(FailpointTest, InjectedFaultCarriesStatus) {
  failpoint::InjectedFault fault(Status::Unavailable("backend down"));
  EXPECT_EQ(fault.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(fault.status().message(), "backend down");
  EXPECT_NE(std::string(fault.what()).find("backend down"),
            std::string::npos);
}

// NDE_FAILPOINT works inside functions returning Status or Result<T>.
Status GuardedStatus() {
  NDE_FAILPOINT("test.macro");
  return Status();
}

Result<int> GuardedResult() {
  NDE_FAILPOINT_KEYED("test.macro", 7);
  return 42;
}

TEST_F(FailpointTest, MacroReturnsInjectedStatus) {
  EXPECT_TRUE(GuardedStatus().ok());
  EXPECT_EQ(*GuardedResult(), 42);
  ASSERT_TRUE(failpoint::Arm("test.macro=error(io_error:gone)").ok());
  Status status = GuardedStatus();
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(status.message(), "gone");
  Result<int> result = GuardedResult();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  ASSERT_TRUE(failpoint::Disarm("test.macro"));
  EXPECT_TRUE(GuardedStatus().ok());
}

TEST_F(FailpointTest, StatusCodeRoundTripsThroughName) {
  for (StatusCode code :
       {StatusCode::kInternal, StatusCode::kUnavailable,
        StatusCode::kResourceExhausted, StatusCode::kIOError,
        StatusCode::kInvalidArgument}) {
    StatusCode parsed;
    ASSERT_TRUE(StatusCodeFromString(StatusCodeToString(code), &parsed));
    EXPECT_EQ(parsed, code);
  }
  StatusCode parsed;
  EXPECT_FALSE(StatusCodeFromString("not_a_code", &parsed));
}

}  // namespace
}  // namespace nde
