#ifndef NDE_TESTS_JSON_CHECKER_H_
#define NDE_TESTS_JSON_CHECKER_H_

#include <cctype>
#include <cstddef>
#include <string>

namespace nde {

/// Minimal recursive-descent JSON well-formedness checker — enough to catch
/// broken escaping or unbalanced structure without a JSON dependency. Shared
/// by the telemetry, run-report, and HTTP-exporter tests.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWhitespace();
    if (!Value()) return false;
    SkipWhitespace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWhitespace();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWhitespace();
      if (!String()) return false;
      SkipWhitespace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWhitespace();
      if (!Value()) return false;
      SkipWhitespace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWhitespace();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWhitespace();
      if (!Value()) return false;
      SkipWhitespace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // Closing quote.
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace nde

#endif  // NDE_TESTS_JSON_CHECKER_H_
