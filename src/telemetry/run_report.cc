#include "telemetry/run_report.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <map>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "telemetry/profiler.h"
#include "telemetry/trace.h"

namespace nde {
namespace telemetry {

namespace {

int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonNumber(double value) { return StrFormat("%.9g", value); }

/// Aggregated span stats for the "top_spans" trace summary.
struct SpanAgg {
  uint64_t count = 0;
  int64_t total_us = 0;
  int64_t max_us = 0;
};

std::string RenderTraceSummary() {
  TraceBuffer& buffer = TraceBuffer::Global();
  std::vector<TraceEvent> events = buffer.Snapshot();
  std::map<std::string, SpanAgg> by_name;
  for (const TraceEvent& event : events) {
    SpanAgg& agg = by_name[event.name];
    ++agg.count;
    agg.total_us += event.dur_us;
    agg.max_us = std::max(agg.max_us, event.dur_us);
  }
  // Top spans by total time: where did the run actually go?
  std::vector<std::pair<std::string, SpanAgg>> ranked(by_name.begin(),
                                                      by_name.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.total_us != b.second.total_us)
      return a.second.total_us > b.second.total_us;
    return a.first < b.first;  // deterministic tie-break
  });
  constexpr size_t kTopSpans = 10;
  if (ranked.size() > kTopSpans) ranked.resize(kTopSpans);

  std::ostringstream os;
  os << "{\"buffered_spans\":" << events.size()
     << ",\"dropped_spans\":" << buffer.dropped()
     << ",\"buffer_capacity\":" << buffer.capacity() << ",\"top_spans\":[";
  bool first = true;
  for (const auto& [name, agg] : ranked) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(name) << "\",\"count\":" << agg.count
       << ",\"total_ms\":" << JsonNumber(agg.total_us / 1000.0)
       << ",\"max_ms\":" << JsonNumber(agg.max_us / 1000.0) << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace

RunReport::RunReport(std::string name)
    : name_(std::move(name)),
      start_steady_us_(SteadyMicros()),
      start_cpu_clock_(static_cast<int64_t>(std::clock())) {}

void RunReport::SetConfig(const std::string& key, const std::string& value) {
  config_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void RunReport::SetConfig(const std::string& key, const char* value) {
  SetConfig(key, std::string(value));
}

void RunReport::SetConfig(const std::string& key, int64_t value) {
  config_.emplace_back(key,
                       StrFormat("%lld", static_cast<long long>(value)));
}

void RunReport::SetConfig(const std::string& key, double value) {
  config_.emplace_back(key, JsonNumber(value));
}

void RunReport::SetConfig(const std::string& key, bool value) {
  config_.emplace_back(key, value ? "true" : "false");
}

void RunReport::RecordProgress(const ProgressUpdate& update) {
  ConvergencePoint point;
  point.completed = update.completed;
  point.total = update.total;
  point.utility_evaluations = update.utility_evaluations;
  point.max_std_error = update.max_std_error;
  // Envelope: running minimum over estimable (> 0) errors. Points before the
  // first estimable error carry 0, matching "nothing known yet".
  double prev = curve_.empty() ? 0.0 : curve_.back().envelope;
  if (update.max_std_error > 0.0) {
    point.envelope =
        prev > 0.0 ? std::min(prev, update.max_std_error) : update.max_std_error;
  } else {
    point.envelope = prev;
  }
  curve_.push_back(point);
}

ProgressCallback RunReport::MakeProgressCallback() {
  return [this](const ProgressUpdate& update) { RecordProgress(update); };
}

void RunReport::SetError(const Status& status, int exit_code) {
  has_error_ = true;
  error_ = status;
  error_exit_code_ = exit_code;
}

void RunReport::Finish() {
  if (finished_) return;
  finished_ = true;
  wall_ms_ = static_cast<double>(SteadyMicros() - start_steady_us_) / 1000.0;
  cpu_ms_ = (static_cast<double>(std::clock()) -
             static_cast<double>(start_cpu_clock_)) *
            1000.0 / CLOCKS_PER_SEC;
  metrics_ = MetricsRegistry::Global().Snapshot();
  trace_json_ = RenderTraceSummary();
  profile_json_ = Profiler::Global().ToJson();
}

std::string RunReport::ToJson() {
  Finish();
  std::ostringstream os;
  os << "{\"name\":\"" << JsonEscape(name_) << "\",\"config\":{";
  // Last write wins per key, preserving first-seen order (the CLI records
  // flags in parse order, which is what a human wants to read back).
  std::vector<std::pair<std::string, std::string>> config;
  for (const auto& [key, value] : config_) {
    auto it = std::find_if(config.begin(), config.end(),
                           [&](const auto& e) { return e.first == key; });
    if (it == config.end()) {
      config.emplace_back(key, value);
    } else {
      it->second = value;
    }
  }
  bool first = true;
  for (const auto& [key, value] : config) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(key) << "\":" << value;
  }
  os << "},\"timing\":{\"wall_ms\":" << JsonNumber(wall_ms_)
     << ",\"cpu_ms\":" << JsonNumber(cpu_ms_) << "},\"convergence_curve\":[";
  first = true;
  for (const ConvergencePoint& point : curve_) {
    if (!first) os << ",";
    first = false;
    os << "{\"completed\":" << point.completed << ",\"total\":" << point.total
       << ",\"utility_evaluations\":" << point.utility_evaluations
       << ",\"max_std_error\":" << JsonNumber(point.max_std_error)
       << ",\"envelope\":" << JsonNumber(point.envelope) << "}";
  }
  os << "],\"metrics\":";
  // Re-render the snapshot taken at Finish() time (not the live registry, so
  // serializing later does not smuggle in post-run metric churn).
  std::ostringstream metrics;
  metrics << "{\"counters\":{";
  first = true;
  for (const auto& [name, value] : metrics_.counters) {
    if (!first) metrics << ",";
    first = false;
    metrics << "\"" << JsonEscape(name) << "\":" << value;
  }
  metrics << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : metrics_.gauges) {
    if (!first) metrics << ",";
    first = false;
    metrics << "\"" << JsonEscape(name) << "\":" << JsonNumber(value);
  }
  metrics << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : metrics_.histograms) {
    if (!first) metrics << ",";
    first = false;
    metrics << "\"" << JsonEscape(name) << "\":"
            << StrFormat("{\"count\":%llu,\"sum\":%.9g,\"p50\":%.9g,"
                         "\"p95\":%.9g,\"p99\":%.9g}",
                         static_cast<unsigned long long>(h.count), h.sum,
                         h.p50, h.p95, h.p99);
  }
  metrics << "}}";
  os << metrics.str();
  // Derived cache summary: the question a report reader actually asks is
  // "did the subset cache help", so answer it directly instead of making
  // them divide counters.
  auto counter = [&](const char* name) -> uint64_t {
    auto it = metrics_.counters.find(name);
    return it == metrics_.counters.end() ? 0 : it->second;
  };
  uint64_t hits = counter("utility_cache.hits");
  uint64_t misses = counter("utility_cache.misses");
  uint64_t lookups = hits + misses;
  os << ",\"utility_cache\":{\"hits\":" << hits << ",\"misses\":" << misses
     << ",\"hit_rate\":"
     << JsonNumber(lookups == 0
                       ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(lookups))
     << "}";
  if (has_error_) {
    os << ",\"error\":{\"code\":\""
       << JsonEscape(StatusCodeToString(error_.code())) << "\",\"message\":\""
       << JsonEscape(error_.message())
       << "\",\"exit_code\":" << error_exit_code_ << "}";
  }
  os << ",\"profile\":" << profile_json_;
  os << ",\"trace\":" << trace_json_ << "}";
  return os.str();
}

Status RunReport::WriteFile(const std::string& path) {
  std::string json = ToJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError("cannot open run-report file: " + path);
  }
  json.push_back('\n');
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to run-report file: " + path);
  }
  return Status();
}

}  // namespace telemetry
}  // namespace nde
