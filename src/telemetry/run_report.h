#ifndef NDE_TELEMETRY_RUN_REPORT_H_
#define NDE_TELEMETRY_RUN_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/progress.h"
#include "common/status.h"
#include "telemetry/metrics.h"

namespace nde {
namespace telemetry {

/// One recorded progress observation, as stored in a run report's
/// convergence curve.
struct ConvergencePoint {
  size_t completed = 0;            ///< work units done at this boundary
  size_t total = 0;                ///< full budget in the same unit
  size_t utility_evaluations = 0;  ///< cumulative utility evaluations
  /// Raw max per-unit standard error at this boundary (0 = not estimable).
  double max_std_error = 0.0;
  /// Running minimum of every *estimable* max_std_error seen so far — the
  /// convergence envelope. Unlike the raw series (which can tick up when a
  /// new permutation lands an outlier marginal), the envelope is monotone
  /// nonincreasing by construction, which is what "the run is converging"
  /// plots and acceptance tests want.
  double envelope = 0.0;
};

/// Per-run JSON artifact: invocation config, timing, the convergence curve
/// collected through a ProgressCallback, a metrics snapshot, and a trace
/// summary. Typical use:
///
///   RunReport report("tmc_shapley");
///   report.SetConfig("seed", int64_t{42});
///   options.progress = report.MakeProgressCallback();
///   ... run the estimator ...
///   report.Finish();
///   NDE_RETURN_IF_ERROR(report.WriteFile("out.json"));
///
/// Recording is observational (see common/progress.h): the report only
/// copies fields out of each update and never feeds anything back, so
/// attaching one cannot change estimator results. Methods are not
/// thread-safe; progress updates arrive on the coordinating thread, which is
/// the thread expected to own the report.
class RunReport {
 public:
  /// `name` identifies the run (usually the CLI command or estimator phase).
  /// Wall-clock and CPU timers start here.
  explicit RunReport(std::string name);

  /// Records one invocation-config entry, preserving JSON types. Later calls
  /// with the same key overwrite.
  void SetConfig(const std::string& key, const std::string& value);
  void SetConfig(const std::string& key, const char* value);
  void SetConfig(const std::string& key, int64_t value);
  void SetConfig(const std::string& key, double value);
  void SetConfig(const std::string& key, bool value);

  /// Appends one point to the convergence curve (envelope maintained here).
  void RecordProgress(const ProgressUpdate& update);

  /// Convenience adapter: a callback that forwards to RecordProgress. The
  /// callback holds a raw pointer to this report, which must outlive it.
  ProgressCallback MakeProgressCallback();

  /// Records the failure that ended the run: serialized as an "error" object
  /// ({"code","message","exit_code"}) so report consumers can distinguish a
  /// clean run (no "error" key) from a structured failure without parsing
  /// stderr. Later calls overwrite; `exit_code` is the process exit code the
  /// CLI will return.
  void SetError(const Status& status, int exit_code);

  /// Stops the timers and snapshots metrics + the global trace buffer.
  /// Idempotent: the first call wins, so the report describes the run, not
  /// the time spent serializing it.
  void Finish();

  /// Serializes the report (calls Finish() if the caller has not). Shape:
  /// {"name":...,"config":{...},"timing":{"wall_ms":...,"cpu_ms":...},
  ///  "convergence_curve":[{...}],"metrics":{...},"utility_cache":{...},
  ///  "profile":{...},"trace":{...}}
  /// The "profile" block is Profiler::ToJson() captured at Finish() time; its
  /// "enabled" field is false (and its aggregates empty) when the sampling
  /// profiler never ran.
  std::string ToJson();

  /// Writes ToJson() plus a trailing newline to `path`.
  Status WriteFile(const std::string& path);

  const std::vector<ConvergencePoint>& curve() const { return curve_; }
  bool finished() const { return finished_; }

 private:
  std::string name_;
  int64_t start_steady_us_ = 0;
  int64_t start_cpu_clock_ = 0;
  double wall_ms_ = 0.0;
  double cpu_ms_ = 0.0;
  bool finished_ = false;
  /// Insertion-ordered config entries; `value` is pre-rendered JSON.
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<ConvergencePoint> curve_;
  MetricsSnapshot metrics_;
  std::string trace_json_;    ///< pre-rendered "trace" object
  std::string profile_json_;  ///< pre-rendered "profile" object
  bool has_error_ = false;
  Status error_;
  int error_exit_code_ = 0;
};

}  // namespace telemetry
}  // namespace nde

#endif  // NDE_TELEMETRY_RUN_REPORT_H_
