#ifndef NDE_TELEMETRY_TRACE_H_
#define NDE_TELEMETRY_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nde {
namespace telemetry {

/// Runtime on/off switch for span recording and metric macros. Defaults to
/// off so instrumented hot paths cost a single relaxed atomic load until a
/// caller (CLI flag, bench harness, test) opts in.
bool Enabled();
void SetEnabled(bool enabled);

/// Small dense id for the calling thread (1, 2, ... in first-use order);
/// stable for the thread's lifetime. Used as the Chrome-trace `tid`.
uint32_t CurrentThreadId();

/// Microseconds since the process's trace epoch (steady clock; first call
/// pins the epoch).
int64_t NowMicros();

/// One completed span, matching a Chrome `trace_event` complete event
/// (`"ph":"X"`).
struct TraceEvent {
  std::string name;
  std::string category;
  /// Extra args as (key, already-JSON-encoded value) pairs.
  std::vector<std::pair<std::string, std::string>> args;
  int64_t ts_us = 0;   ///< span start, relative to the trace epoch
  int64_t dur_us = 0;  ///< span duration
  uint32_t tid = 0;
  uint32_t depth = 0;  ///< span nesting depth on its thread (0 = top level)
  /// Request attribution, copied from the opening thread's TraceContext
  /// (common/trace_context.h): the owning 128-bit trace id (0 when the span
  /// opened outside any request), this span's own id, and its parent's
  /// (0 for a root span). Parent linkage crosses thread hops because
  /// ThreadPool::Submit propagates the submitting context to its workers.
  uint64_t trace_id_hi = 0;
  uint64_t trace_id_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

/// Bounded in-memory store of completed spans. When full, new events are
/// dropped (and counted) so a long run keeps its earliest — structurally most
/// interesting — spans and memory stays bounded.
class TraceBuffer {
 public:
  static TraceBuffer& Global();

  explicit TraceBuffer(size_t capacity = 1 << 16);

  void Record(TraceEvent event);

  std::vector<TraceEvent> Snapshot() const;
  size_t size() const;
  size_t dropped() const;
  size_t capacity() const;

  /// Drops all buffered events and zeroes the dropped counter.
  void Clear();
  /// Also truncates the buffer if it is over the new capacity.
  void SetCapacity(size_t capacity);

  /// Chrome `trace_event` JSON (the `{"traceEvents": [...]}` object form),
  /// loadable in about:tracing / Perfetto. Thread ids are remapped to small
  /// dense values in first-appearance order (stable across runs with the
  /// same span structure); spans carry `id`/`parent` args, and a flow event
  /// pair (`"ph":"s"` / `"ph":"f"`) links every parent/child edge that
  /// crosses threads, so pool work renders attached to its submitter
  /// instead of as flat unparented boxes.
  std::string ToChromeJson() const;

  /// Flamegraph-compatible folded stacks for one trace: each line is
  /// "root;child;...;leaf <self_us>" built from span parent linkage, with
  /// identical stacks merged and lines sorted (deterministic output).
  /// Feed to flamegraph.pl or speedscope. Empty string when the buffer has
  /// no spans for the trace.
  std::string FoldedForTrace(uint64_t trace_id_hi, uint64_t trace_id_lo) const;

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

 private:
  mutable std::mutex mu_;
  std::deque<TraceEvent> events_;
  size_t capacity_;
  size_t dropped_ = 0;
};

/// RAII span: records one complete event into TraceBuffer::Global() at scope
/// exit. Construction is a no-op (no clock reads, no allocations beyond the
/// moved-in name) when telemetry is disabled at the time the span opens.
///
/// An active span mints its own span id, records the current TraceContext's
/// span id as its parent, and installs itself as the thread's current span
/// for its scope — so nested spans (including spans opened by pool tasks the
/// scope submits) parent to it, restoring the previous span on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, std::string category = "nde");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches an arg shown in the trace viewer's detail pane.
  void AddArg(const std::string& key, int64_t value);
  void AddArg(const std::string& key, double value);
  void AddArg(const std::string& key, const std::string& value);

  /// Elapsed time since the span opened (0 when recording is off).
  double ElapsedMs() const;

  bool active() const { return active_; }

 private:
  bool active_;
  /// Whether this span pushed a frame onto the profiler's per-thread stack
  /// (sampling can start or stop mid-span, so the pop must match the push,
  /// not the state at destruction time).
  bool pushed_ = false;
  /// The thread's previous current-span id, restored at destruction.
  uint64_t saved_span_id_ = 0;
  TraceEvent event_;
};

/// Escapes a string for embedding in a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& text);

}  // namespace telemetry
}  // namespace nde

#endif  // NDE_TELEMETRY_TRACE_H_
