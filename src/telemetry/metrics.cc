#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "telemetry/trace.h"

namespace nde {
namespace telemetry {

namespace {

/// Failpoint hit/fire counters, exported as `failpoint.<name>.hits` and
/// `failpoint.<name>.fires`. The failpoint framework lives below telemetry
/// (nde_common must not depend on this library), so the merge happens here at
/// export time instead of through the macro API. Empty — and therefore
/// export-invisible — unless a failpoint was armed at some point.
std::vector<std::pair<std::string, uint64_t>> FailpointCounterValues() {
  std::vector<std::pair<std::string, uint64_t>> values;
  for (const failpoint::PointStats& point : failpoint::Stats()) {
    values.emplace_back("failpoint." + point.name + ".hits", point.hits);
    values.emplace_back("failpoint." + point.name + ".fires", point.fires);
  }
  return values;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1) {
  NDE_CHECK(!upper_bounds_.empty()) << "histogram needs at least one bound";
  NDE_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()))
      << "histogram bounds must be increasing";
}

void Histogram::Record(double value) {
  // First bucket whose upper bound contains `value`; the extra final slot
  // catches everything above the largest bound.
  size_t bucket = std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(),
                                   value) -
                  upper_bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

uint64_t Histogram::bucket_count(size_t i) const {
  NDE_CHECK_LT(i, counts_.size());
  return counts_[i].load(std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  uint64_t total = count();
  if (total == 0) return 0.0;
  double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    uint64_t in_bucket = counts_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Interpolate the rank's position inside this bucket's range. The
      // underflow bucket's lower edge is 0 (all recorded values are expected
      // to be non-negative durations/counts); the overflow bucket collapses
      // to the largest finite bound.
      if (i == counts_.size() - 1) return upper_bounds_.back();
      double lo = i == 0 ? std::min(0.0, upper_bounds_.front())
                         : upper_bounds_[i - 1];
      double hi = upper_bounds_[i];
      double fraction = (target - static_cast<double>(cumulative)) /
                        static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return upper_bounds_.back();
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double>* buckets = [] {
    auto* b = new std::vector<double>();
    for (double bound = 0.001; bound < 2e5; bound *= 4.0) b->push_back(bound);
    return b;
  }();
  return *buckets;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(
    const std::string& name, const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(upper_bounds);
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, value] : FailpointCounterValues()) {
    snapshot.counters[name] = value;
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSummary summary;
    summary.count = histogram->count();
    summary.sum = histogram->sum();
    summary.p50 = histogram->Quantile(0.5);
    summary.p95 = histogram->Quantile(0.95);
    summary.p99 = histogram->Quantile(0.99);
    snapshot.histograms[name] = summary;
  }
  return snapshot;
}

std::string MetricsRegistry::ToTable() const {
  std::lock_guard<std::mutex> lock(mu_);
  // One (name, line) entry per metric regardless of kind, sorted by name, so
  // two dumps of the same process state are byte-identical and diffable.
  std::vector<std::pair<std::string, std::string>> lines;
  lines.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    lines.emplace_back(
        name, StrFormat("%-44s %-10s %llu\n", name.c_str(), "counter",
                        static_cast<unsigned long long>(counter->value())));
  }
  for (const auto& [name, value] : FailpointCounterValues()) {
    lines.emplace_back(
        name, StrFormat("%-44s %-10s %llu\n", name.c_str(), "counter",
                        static_cast<unsigned long long>(value)));
  }
  for (const auto& [name, gauge] : gauges_) {
    lines.emplace_back(name, StrFormat("%-44s %-10s %.6g\n", name.c_str(),
                                       "gauge", gauge->value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    lines.emplace_back(
        name,
        StrFormat(
            "%-44s %-10s count=%llu sum=%.3f p50=%.4g p95=%.4g p99=%.4g\n",
            name.c_str(), "histogram",
            static_cast<unsigned long long>(histogram->count()),
            histogram->sum(), histogram->Quantile(0.5),
            histogram->Quantile(0.95), histogram->Quantile(0.99)));
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream os;
  os << StrFormat("%-44s %-10s %s\n", "metric", "kind", "value");
  for (const auto& [name, line] : lines) os << line;
  return os.str();
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map '.'
/// (and anything else) to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Blocks are sorted by metric name across kinds (Prometheus ignores order,
  // but sorted scrapes diff cleanly and scrape tests can be byte-stable).
  std::vector<std::pair<std::string, std::string>> blocks;
  blocks.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    std::string pname = PrometheusName(name);
    blocks.emplace_back(name, "# TYPE " + pname + " counter\n" + pname + " " +
                                  std::to_string(counter->value()) + "\n");
  }
  for (const auto& [name, value] : FailpointCounterValues()) {
    std::string pname = PrometheusName(name);
    blocks.emplace_back(name, "# TYPE " + pname + " counter\n" + pname + " " +
                                  std::to_string(value) + "\n");
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string pname = PrometheusName(name);
    blocks.emplace_back(name, "# TYPE " + pname + " gauge\n" + pname + " " +
                                  StrFormat("%.6g", gauge->value()) + "\n");
  }
  for (const auto& [name, histogram] : histograms_) {
    std::string pname = PrometheusName(name);
    std::ostringstream block;
    block << "# TYPE " << pname << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram->num_buckets(); ++i) {
      cumulative += histogram->bucket_count(i);
      std::string le =
          i < histogram->upper_bounds().size()
              ? StrFormat("%g", histogram->upper_bounds()[i])
              : std::string("+Inf");
      block << pname << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
    }
    block << pname << "_sum " << StrFormat("%.6f", histogram->sum()) << "\n"
          << pname << "_count " << histogram->count() << "\n";
    // Companion summary with precomputed quantiles: dashboards get p50/p90/p99
    // without a histogram_quantile() over coarse buckets. Same sort key, so
    // the block stays adjacent to its histogram.
    std::string sname = pname + "_quantiles";
    block << "# TYPE " << sname << " summary\n";
    for (double q : {0.5, 0.9, 0.99}) {
      block << sname << "{quantile=\"" << StrFormat("%g", q) << "\"} "
            << StrFormat("%.9g", histogram->Quantile(q)) << "\n";
    }
    block << sname << "_sum " << StrFormat("%.6f", histogram->sum()) << "\n"
          << sname << "_count " << histogram->count() << "\n";
    blocks.emplace_back(name, block.str());
  }
  std::sort(blocks.begin(), blocks.end());
  std::ostringstream os;
  for (const auto& [name, block] : blocks) os << block;
  return os.str();
}

std::string MetricsRegistry::ToJson() const {
  MetricsSnapshot snapshot = Snapshot();
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << StrFormat("%.9g", value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":"
       << StrFormat("{\"count\":%llu,\"sum\":%.9g,\"p50\":%.9g,"
                    "\"p95\":%.9g,\"p99\":%.9g}",
                    static_cast<unsigned long long>(h.count), h.sum, h.p50,
                    h.p95, h.p99);
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace telemetry
}  // namespace nde
