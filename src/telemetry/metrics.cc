#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/trace_context.h"
#include "telemetry/trace.h"

namespace nde {
namespace telemetry {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map '.'
/// (and anything else) to '_'. Also applied to label keys at series-creation
/// time, so exported label names are always legal.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

/// Escapes a label value for the `name{key="value"}` series key. The same
/// escapes are valid in Prometheus label values and (after JsonEscape at
/// export time) in JSON object keys.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Failpoint hit/fire counters, exported as `failpoint.<name>.hits` and
/// `failpoint.<name>.fires`. The failpoint framework lives below telemetry
/// (nde_common must not depend on this library), so the merge happens here at
/// export time instead of through the macro API. Empty — and therefore
/// export-invisible — unless a failpoint was armed at some point.
std::vector<std::pair<std::string, uint64_t>> FailpointCounterValues() {
  std::vector<std::pair<std::string, uint64_t>> values;
  for (const failpoint::PointStats& point : failpoint::Stats()) {
    values.emplace_back("failpoint." + point.name + ".hits", point.hits);
    values.emplace_back("failpoint." + point.name + ".fires", point.fires);
  }
  return values;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1) {
  NDE_CHECK(!upper_bounds_.empty()) << "histogram needs at least one bound";
  NDE_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()))
      << "histogram bounds must be increasing";
}

void Histogram::Record(double value) {
  // First bucket whose upper bound contains `value`; the extra final slot
  // catches everything above the largest bound.
  size_t bucket = std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(),
                                   value) -
                  upper_bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

uint64_t Histogram::bucket_count(size_t i) const {
  NDE_CHECK_LT(i, counts_.size());
  return counts_[i].load(std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  uint64_t total = count();
  if (total == 0) return 0.0;
  double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    uint64_t in_bucket = counts_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Interpolate the rank's position inside this bucket's range. The
      // underflow bucket's lower edge is 0 (all recorded values are expected
      // to be non-negative durations/counts); the overflow bucket collapses
      // to the largest finite bound.
      if (i == counts_.size() - 1) return upper_bounds_.back();
      double lo = i == 0 ? std::min(0.0, upper_bounds_.front())
                         : upper_bounds_[i - 1];
      double hi = upper_bounds_[i];
      double fraction = (target - static_cast<double>(cumulative)) /
                        static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return upper_bounds_.back();
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double>* buckets = [] {
    auto* b = new std::vector<double>();
    for (double bound = 0.001; bound < 2e5; bound *= 4.0) b->push_back(bound);
    return b;
  }();
  return *buckets;
}

MetricLabels WithLabels(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

MetricLabels CurrentJobLabels() {
  const TraceContext& context = CurrentTraceContext();
  if (context.job_id.empty()) return {};
  MetricLabels labels;
  if (!context.algorithm.empty()) {
    labels.emplace_back("algorithm", context.algorithm);
  }
  labels.emplace_back("job_id", context.job_id);
  return labels;  // already key-sorted: "algorithm" < "job_id"
}

std::string LabeledSeriesName(const std::string& name,
                              const MetricLabels& labels) {
  if (labels.empty()) return name;
  MetricLabels sorted = WithLabels(labels);
  std::string key = name + "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ",";
    key += PrometheusName(sorted[i].first) + "=\"" +
           EscapeLabelValue(sorted[i].second) + "\"";
  }
  key += "}";
  return key;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::CounterLocked(const std::string& name) {
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::HistogramLocked(
    const std::string& name, const std::vector<double>& upper_bounds) {
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(upper_bounds);
  return *slot;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return CounterLocked(name);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(
    const std::string& name, const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  return HistogramLocked(name, upper_bounds);
}

bool MetricsRegistry::AdmitLabeledSeriesLocked(bool exists) {
  if (exists) return true;
  if (labeled_series_ >= label_cardinality_cap_) {
    // Refused: the caller falls back to base-only counting, and the drop is
    // visible instead of silent. Incrementing under mu_ is safe — the
    // counter op is a plain atomic add with no registry re-entry.
    CounterLocked("telemetry.labels_dropped").Increment();
    return false;
  }
  ++labeled_series_;
  return true;
}

LabeledCounter MetricsRegistry::GetCounterWithLabels(
    const std::string& name, const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  LabeledCounter result;
  result.base = &CounterLocked(name);
  if (labels.empty()) return result;
  // Pre-register the drop counter so scrapes list it (at zero) as soon as
  // any labeled series exists, making "nothing was dropped" observable.
  CounterLocked("telemetry.labels_dropped");
  std::string key = LabeledSeriesName(name, labels);
  bool exists = counters_.find(key) != counters_.end();
  if (!AdmitLabeledSeriesLocked(exists)) return result;
  result.series = &CounterLocked(key);
  return result;
}

LabeledHistogram MetricsRegistry::GetHistogramWithLabels(
    const std::string& name, const MetricLabels& labels,
    const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  LabeledHistogram result;
  result.base = &HistogramLocked(name, upper_bounds);
  if (labels.empty()) return result;
  CounterLocked("telemetry.labels_dropped");
  std::string key = LabeledSeriesName(name, labels);
  bool exists = histograms_.find(key) != histograms_.end();
  if (!AdmitLabeledSeriesLocked(exists)) return result;
  result.series = &HistogramLocked(key, upper_bounds);
  return result;
}

void MetricsRegistry::SetLabelCardinalityCap(size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  label_cardinality_cap_ = cap;
}

size_t MetricsRegistry::label_cardinality_cap() const {
  std::lock_guard<std::mutex> lock(mu_);
  return label_cardinality_cap_;
}

size_t MetricsRegistry::labeled_series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return labeled_series_;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, value] : FailpointCounterValues()) {
    snapshot.counters[name] = value;
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSummary summary;
    summary.count = histogram->count();
    summary.sum = histogram->sum();
    summary.p50 = histogram->Quantile(0.5);
    summary.p95 = histogram->Quantile(0.95);
    summary.p99 = histogram->Quantile(0.99);
    snapshot.histograms[name] = summary;
  }
  return snapshot;
}

std::string MetricsRegistry::ToTable() const {
  std::lock_guard<std::mutex> lock(mu_);
  // One (name, line) entry per metric regardless of kind, sorted by name, so
  // two dumps of the same process state are byte-identical and diffable.
  std::vector<std::pair<std::string, std::string>> lines;
  lines.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    lines.emplace_back(
        name, StrFormat("%-44s %-10s %llu\n", name.c_str(), "counter",
                        static_cast<unsigned long long>(counter->value())));
  }
  for (const auto& [name, value] : FailpointCounterValues()) {
    lines.emplace_back(
        name, StrFormat("%-44s %-10s %llu\n", name.c_str(), "counter",
                        static_cast<unsigned long long>(value)));
  }
  for (const auto& [name, gauge] : gauges_) {
    lines.emplace_back(name, StrFormat("%-44s %-10s %.6g\n", name.c_str(),
                                       "gauge", gauge->value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    lines.emplace_back(
        name,
        StrFormat(
            "%-44s %-10s count=%llu sum=%.3f p50=%.4g p95=%.4g p99=%.4g\n",
            name.c_str(), "histogram",
            static_cast<unsigned long long>(histogram->count()),
            histogram->sum(), histogram->Quantile(0.5),
            histogram->Quantile(0.95), histogram->Quantile(0.99)));
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream os;
  os << StrFormat("%-44s %-10s %s\n", "metric", "kind", "value");
  for (const auto& [name, line] : lines) os << line;
  return os.str();
}

namespace {

/// One export block: the series' sort key, the `# TYPE` declarations its
/// body relies on (emitted once per metric family after sorting — a base
/// metric and its labeled series share one declaration), and the sample
/// lines themselves.
struct PromBlock {
  std::string sort_key;
  std::vector<std::pair<std::string, std::string>> types;  ///< (name, kind)
  std::string body;
};

/// Splits a registry key `name{labels}` into the Prometheus family name and
/// the label block's inner text ("" when unlabeled). Label keys/values were
/// sanitized at series creation, so they pass through untouched.
void SplitSeriesKey(const std::string& key, std::string* family,
                    std::string* labels_inner) {
  size_t brace = key.find('{');
  if (brace == std::string::npos) {
    *family = PrometheusName(key);
    labels_inner->clear();
    return;
  }
  *family = PrometheusName(key.substr(0, brace));
  *labels_inner = key.substr(brace + 1, key.size() - brace - 2);
}

/// `family{inner,extra}` with correct brace handling for any combination of
/// empty `inner` / `extra`.
std::string SampleName(const std::string& family, const std::string& inner,
                       const std::string& extra = "") {
  std::string all = inner;
  if (!extra.empty()) {
    if (!all.empty()) all += ",";
    all += extra;
  }
  if (all.empty()) return family;
  return family + "{" + all + "}";
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Blocks are sorted by series key across kinds (Prometheus ignores order,
  // but sorted scrapes diff cleanly and scrape tests can be byte-stable);
  // labeled series sort directly after their base metric.
  std::vector<PromBlock> blocks;
  blocks.reserve(counters_.size() + gauges_.size() + histograms_.size());
  auto counter_block = [&blocks](const std::string& name, uint64_t value) {
    std::string family, labels;
    SplitSeriesKey(name, &family, &labels);
    blocks.push_back({name,
                      {{family, "counter"}},
                      SampleName(family, labels) + " " +
                          std::to_string(value) + "\n"});
  };
  for (const auto& [name, counter] : counters_) {
    counter_block(name, counter->value());
  }
  for (const auto& [name, value] : FailpointCounterValues()) {
    counter_block(name, value);
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string family, labels;
    SplitSeriesKey(name, &family, &labels);
    blocks.push_back({name,
                      {{family, "gauge"}},
                      SampleName(family, labels) + " " +
                          StrFormat("%.6g", gauge->value()) + "\n"});
  }
  for (const auto& [name, histogram] : histograms_) {
    std::string family, labels;
    SplitSeriesKey(name, &family, &labels);
    std::ostringstream body;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram->num_buckets(); ++i) {
      cumulative += histogram->bucket_count(i);
      std::string le =
          i < histogram->upper_bounds().size()
              ? StrFormat("%g", histogram->upper_bounds()[i])
              : std::string("+Inf");
      body << SampleName(family + "_bucket", labels, "le=\"" + le + "\"")
           << " " << cumulative << "\n";
    }
    body << SampleName(family + "_sum", labels) << " "
         << StrFormat("%.6f", histogram->sum()) << "\n"
         << SampleName(family + "_count", labels) << " " << histogram->count()
         << "\n";
    // Companion summary with precomputed quantiles: dashboards get p50/p90/p99
    // without a histogram_quantile() over coarse buckets. Same sort key, so
    // the block stays adjacent to its histogram.
    std::string sname = family + "_quantiles";
    for (double q : {0.5, 0.9, 0.99}) {
      body << SampleName(sname, labels,
                         "quantile=\"" + StrFormat("%g", q) + "\"")
           << " " << StrFormat("%.9g", histogram->Quantile(q)) << "\n";
    }
    body << SampleName(sname + "_sum", labels) << " "
         << StrFormat("%.6f", histogram->sum()) << "\n"
         << SampleName(sname + "_count", labels) << " " << histogram->count()
         << "\n";
    blocks.push_back(
        {name, {{family, "histogram"}, {sname, "summary"}}, body.str()});
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const PromBlock& a, const PromBlock& b) {
              return a.sort_key < b.sort_key;
            });
  std::ostringstream os;
  std::set<std::string> declared;
  for (const PromBlock& block : blocks) {
    for (const auto& [family, kind] : block.types) {
      if (declared.insert(family).second) {
        os << "# TYPE " << family << " " << kind << "\n";
      }
    }
    os << block.body;
  }
  return os.str();
}

std::string MetricsRegistry::ToJson() const {
  MetricsSnapshot snapshot = Snapshot();
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << StrFormat("%.9g", value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":"
       << StrFormat("{\"count\":%llu,\"sum\":%.9g,\"p50\":%.9g,"
                    "\"p95\":%.9g,\"p99\":%.9g}",
                    static_cast<unsigned long long>(h.count), h.sum, h.p50,
                    h.p95, h.p99);
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace telemetry
}  // namespace nde
