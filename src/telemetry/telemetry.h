#ifndef NDE_TELEMETRY_TELEMETRY_H_
#define NDE_TELEMETRY_TELEMETRY_H_

/// Macro API for instrumenting nde hot paths.
///
/// Two gates keep telemetry zero-cost when unwanted:
///   1. Compile time: building with -DNDE_TELEMETRY_ENABLED=0 (CMake option
///      `NDE_TELEMETRY=OFF`) turns every macro below into a no-op, so the
///      instrumented code is byte-identical to uninstrumented code.
///   2. Runtime: even when compiled in, recording is off until
///      `telemetry::SetEnabled(true)`; each macro costs one relaxed atomic
///      load while disabled.
///
/// The class APIs (MetricsRegistry, TraceBuffer, ScopedSpan, Histogram, ...)
/// exist in both build modes; only the macros compile out.

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

#ifndef NDE_TELEMETRY_ENABLED
#define NDE_TELEMETRY_ENABLED 1
#endif

#define NDE_TELEMETRY_CONCAT_INNER(a, b) a##b
#define NDE_TELEMETRY_CONCAT(a, b) NDE_TELEMETRY_CONCAT_INNER(a, b)

#if NDE_TELEMETRY_ENABLED

/// Opens an anonymous RAII span covering the rest of the enclosing scope.
/// Note: `name` and `category` are evaluated even when telemetry is runtime-
/// disabled (only the recording is skipped), so pass cheap expressions here;
/// anything expensive belongs behind a `telemetry::Enabled()` check.
#define NDE_TRACE_SPAN(name, category)                           \
  ::nde::telemetry::ScopedSpan NDE_TELEMETRY_CONCAT(             \
      nde_trace_span_, __COUNTER__)(name, category)

/// Opens a named RAII span so call sites can attach args:
///   NDE_TRACE_SPAN_VAR(span, "fit", "encoder");
///   span.AddArg("rows", rows);
#define NDE_TRACE_SPAN_VAR(var, name, category) \
  ::nde::telemetry::ScopedSpan var(name, category)

/// Attaches an arg to a span declared with NDE_TRACE_SPAN_VAR. The value
/// expression is not evaluated when telemetry is compiled out.
#define NDE_SPAN_ARG(var, key, value) (var).AddArg(key, value)

/// Increments the named global counter by `delta`.
#define NDE_METRIC_COUNT(name, delta)                                        \
  do {                                                                       \
    if (::nde::telemetry::Enabled()) {                                       \
      ::nde::telemetry::MetricsRegistry::Global().GetCounter(name)           \
          .Increment(static_cast<uint64_t>(delta));                          \
    }                                                                        \
  } while (0)

/// Sets the named global gauge.
#define NDE_METRIC_GAUGE_SET(name, value)                                  \
  do {                                                                     \
    if (::nde::telemetry::Enabled()) {                                     \
      ::nde::telemetry::MetricsRegistry::Global().GetGauge(name).Set(      \
          static_cast<double>(value));                                     \
    }                                                                      \
  } while (0)

/// Records a sample into the named global histogram (default ms buckets).
#define NDE_METRIC_RECORD(name, value)                                     \
  do {                                                                     \
    if (::nde::telemetry::Enabled()) {                                     \
      ::nde::telemetry::MetricsRegistry::Global().GetHistogram(name)       \
          .Record(static_cast<double>(value));                             \
    }                                                                      \
  } while (0)

#else  // !NDE_TELEMETRY_ENABLED

namespace nde {
namespace telemetry {

/// Stand-in for ScopedSpan when telemetry is compiled out; lets call sites
/// written against NDE_TRACE_SPAN_VAR / NDE_SPAN_ARG compile to nothing.
struct NoopSpan {
  double ElapsedMs() const { return 0.0; }
  bool active() const { return false; }
};

}  // namespace telemetry
}  // namespace nde

#define NDE_TRACE_SPAN(name, category) \
  do {                                 \
  } while (0)

#define NDE_TRACE_SPAN_VAR(var, name, category) \
  [[maybe_unused]] ::nde::telemetry::NoopSpan var

#define NDE_SPAN_ARG(var, key, value) \
  do {                                \
  } while (0)

#define NDE_METRIC_COUNT(name, delta) \
  do {                                \
  } while (0)

#define NDE_METRIC_GAUGE_SET(name, value) \
  do {                                    \
  } while (0)

#define NDE_METRIC_RECORD(name, value) \
  do {                                 \
  } while (0)

#endif  // NDE_TELEMETRY_ENABLED

#endif  // NDE_TELEMETRY_TELEMETRY_H_
