#include "telemetry/health.h"

#include <atomic>
#include <mutex>

namespace nde {
namespace telemetry {

namespace {

std::atomic<bool> g_healthy{true};
std::mutex g_reason_mu;
std::string& ReasonStorage() {
  static std::string* reason = new std::string;  // Leaked: outlives exit.
  return *reason;
}

}  // namespace

void SetHealthy() {
  g_healthy.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_reason_mu);
  ReasonStorage().clear();
}

void SetDegraded(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(g_reason_mu);
    ReasonStorage() = reason;
  }
  g_healthy.store(false, std::memory_order_relaxed);
}

bool IsHealthy() { return g_healthy.load(std::memory_order_relaxed); }

std::string HealthReason() {
  std::lock_guard<std::mutex> lock(g_reason_mu);
  return ReasonStorage();
}

}  // namespace telemetry
}  // namespace nde
