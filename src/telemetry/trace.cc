#include "telemetry/trace.h"

#include <atomic>
#include <chrono>
#include <sstream>

#include "common/string_util.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"

namespace nde {
namespace telemetry {

namespace {

std::atomic<bool> g_enabled{false};

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

uint32_t NextThreadId() {
  static std::atomic<uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

thread_local uint32_t t_span_depth = 0;

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
  if (enabled) {
    // Surface the span budget as soon as recording starts, so /metrics and
    // run reports can show how close the buffer is to silently dropping.
    MetricsRegistry::Global().GetGauge("trace.buffer_capacity")
        .Set(static_cast<double>(TraceBuffer::Global().capacity()));
  }
}

uint32_t CurrentThreadId() {
  thread_local uint32_t id = NextThreadId();
  return id;
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

TraceBuffer::TraceBuffer(size_t capacity) : capacity_(capacity) {}

void TraceBuffer::Record(TraceEvent event) {
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() >= capacity_) {
      ++dropped_;
      dropped = true;
    } else {
      events_.push_back(std::move(event));
    }
  }
  // Saturation must be visible, not silent: the global buffer mirrors its
  // drops into a counter that /metrics and run reports expose. Local buffers
  // (tests) stay off the global registry. Incremented outside mu_ — the
  // registry has its own lock and no path back into the trace buffer.
  if (dropped && this == &Global()) {
    MetricsRegistry::Global().GetCounter("trace.dropped_spans").Increment();
  }
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {events_.begin(), events_.end()};
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

size_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t TraceBuffer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

void TraceBuffer::SetCapacity(size_t capacity) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = capacity;
    while (events_.size() > capacity_) {
      events_.pop_back();
      ++dropped_;
    }
  }
  if (this == &Global()) {
    MetricsRegistry::Global().GetGauge("trace.buffer_capacity")
        .Set(static_cast<double>(capacity));
  }
}

std::string TraceBuffer::ToChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":\""
       << JsonEscape(event.category) << "\",\"ph\":\"X\",\"ts\":"
       << event.ts_us << ",\"dur\":" << event.dur_us
       << ",\"pid\":1,\"tid\":" << event.tid << ",\"args\":{\"depth\":"
       << event.depth;
    for (const auto& [key, value] : event.args) {
      os << ",\"" << JsonEscape(key) << "\":" << value;
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

ScopedSpan::ScopedSpan(std::string name, std::string category)
    : active_(Enabled()) {
  if (!active_) return;
  event_.name = std::move(name);
  event_.category = std::move(category);
  event_.tid = CurrentThreadId();
  event_.depth = t_span_depth++;
  // Publish the frame to the sampling profiler before reading the clock, so
  // a sample taken during the span sees the full stack.
  if (prof::SamplingActive()) {
    prof::PushFrame(event_.name);
    pushed_ = true;
  }
  event_.ts_us = NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  event_.dur_us = NowMicros() - event_.ts_us;
  if (pushed_) prof::PopFrame();
  --t_span_depth;
  TraceBuffer::Global().Record(std::move(event_));
}

void ScopedSpan::AddArg(const std::string& key, int64_t value) {
  if (!active_) return;
  event_.args.emplace_back(key, StrFormat("%lld", static_cast<long long>(value)));
}

void ScopedSpan::AddArg(const std::string& key, double value) {
  if (!active_) return;
  event_.args.emplace_back(key, StrFormat("%.6g", value));
}

void ScopedSpan::AddArg(const std::string& key, const std::string& value) {
  if (!active_) return;
  event_.args.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

double ScopedSpan::ElapsedMs() const {
  if (!active_) return 0.0;
  return static_cast<double>(NowMicros() - event_.ts_us) / 1000.0;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace telemetry
}  // namespace nde
