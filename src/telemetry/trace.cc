#include "telemetry/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"
#include "common/trace_context.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"

namespace nde {
namespace telemetry {

namespace {

std::atomic<bool> g_enabled{false};

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

uint32_t NextThreadId() {
  static std::atomic<uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

thread_local uint32_t t_span_depth = 0;

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
  if (enabled) {
    // Surface the span budget as soon as recording starts, so /metrics and
    // run reports can show how close the buffer is to silently dropping.
    MetricsRegistry::Global().GetGauge("trace.buffer_capacity")
        .Set(static_cast<double>(TraceBuffer::Global().capacity()));
  }
}

uint32_t CurrentThreadId() {
  thread_local uint32_t id = NextThreadId();
  return id;
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

TraceBuffer::TraceBuffer(size_t capacity) : capacity_(capacity) {}

void TraceBuffer::Record(TraceEvent event) {
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() >= capacity_) {
      ++dropped_;
      dropped = true;
    } else {
      events_.push_back(std::move(event));
    }
  }
  // Saturation must be visible, not silent: the global buffer mirrors its
  // drops into a counter that /metrics and run reports expose. Local buffers
  // (tests) stay off the global registry. Incremented outside mu_ — the
  // registry has its own lock and no path back into the trace buffer.
  if (dropped && this == &Global()) {
    MetricsRegistry::Global().GetCounter("trace.dropped_spans").Increment();
  }
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {events_.begin(), events_.end()};
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

size_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t TraceBuffer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

void TraceBuffer::SetCapacity(size_t capacity) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = capacity;
    while (events_.size() > capacity_) {
      events_.pop_back();
      ++dropped_;
    }
  }
  if (this == &Global()) {
    MetricsRegistry::Global().GetGauge("trace.buffer_capacity")
        .Set(static_cast<double>(capacity));
  }
}

std::string TraceBuffer::ToChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  // Remap raw thread ids to small dense ones in first-appearance order:
  // process-lifetime ids depend on which unrelated threads ran first, so
  // remapping makes exports with the same span structure byte-comparable.
  std::unordered_map<uint32_t, uint32_t> tid_map;
  auto dense_tid = [&tid_map](uint32_t tid) {
    auto [it, inserted] =
        tid_map.emplace(tid, static_cast<uint32_t>(tid_map.size() + 1));
    return it->second;
  };
  // Span-id -> recording tid, for cross-thread flow linkage below.
  std::unordered_map<uint64_t, uint32_t> span_tid;
  for (const TraceEvent& event : events) {
    if (event.span_id != 0) span_tid.emplace(event.span_id, event.tid);
  }
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":\""
       << JsonEscape(event.category) << "\",\"ph\":\"X\",\"ts\":"
       << event.ts_us << ",\"dur\":" << event.dur_us
       << ",\"pid\":1,\"tid\":" << dense_tid(event.tid)
       << ",\"args\":{\"depth\":" << event.depth;
    if (event.span_id != 0) {
      os << ",\"id\":\"" << SpanIdHex(event.span_id) << "\"";
    }
    if (event.parent_span_id != 0) {
      os << ",\"parent\":\"" << SpanIdHex(event.parent_span_id) << "\"";
    }
    if ((event.trace_id_hi | event.trace_id_lo) != 0) {
      TraceContext id_only;
      id_only.trace_id_hi = event.trace_id_hi;
      id_only.trace_id_lo = event.trace_id_lo;
      os << ",\"trace_id\":\"" << TraceIdHex(id_only) << "\"";
    }
    for (const auto& [key, value] : event.args) {
      os << ",\"" << JsonEscape(key) << "\":" << value;
    }
    os << "}}";
  }
  // Flow events stitch parent/child edges that cross threads (a pool task
  // parented to the submitting span): an "s" at the parent's recorded tid
  // and an "f" at the child's start, both keyed by the child's span id.
  for (const TraceEvent& event : events) {
    if (event.parent_span_id == 0 || event.span_id == 0) continue;
    auto parent = span_tid.find(event.parent_span_id);
    if (parent == span_tid.end() || parent->second == event.tid) continue;
    std::string id = "\"" + SpanIdHex(event.span_id) + "\"";
    os << ",{\"name\":\"submit\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" << id
       << ",\"ts\":" << event.ts_us << ",\"pid\":1,\"tid\":"
       << dense_tid(parent->second) << "}"
       << ",{\"name\":\"submit\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
       << "\"id\":" << id << ",\"ts\":" << event.ts_us
       << ",\"pid\":1,\"tid\":" << dense_tid(event.tid) << "}";
  }
  os << "]}";
  return os.str();
}

std::string TraceBuffer::FoldedForTrace(uint64_t trace_id_hi,
                                        uint64_t trace_id_lo) const {
  std::vector<TraceEvent> events = Snapshot();
  std::unordered_map<uint64_t, const TraceEvent*> by_span;
  std::vector<const TraceEvent*> in_trace;
  for (const TraceEvent& event : events) {
    if (event.trace_id_hi != trace_id_hi || event.trace_id_lo != trace_id_lo) {
      continue;
    }
    in_trace.push_back(&event);
    if (event.span_id != 0) by_span.emplace(event.span_id, &event);
  }
  // Self time = duration minus the children recorded in the buffer, clamped
  // at zero (children can outlive a dropped parent record, never vice versa).
  std::unordered_map<uint64_t, int64_t> children_us;
  for (const TraceEvent* event : in_trace) {
    if (event->parent_span_id != 0 &&
        by_span.count(event->parent_span_id) != 0) {
      children_us[event->parent_span_id] += event->dur_us;
    }
  }
  std::map<std::string, int64_t> folded;  // sorted -> deterministic output
  for (const TraceEvent* event : in_trace) {
    // Walk parent pointers to the root; spans whose parent fell outside the
    // buffer (or outside the trace) become roots of their own stacks.
    std::vector<const TraceEvent*> chain{event};
    const TraceEvent* cursor = event;
    while (cursor->parent_span_id != 0) {
      auto it = by_span.find(cursor->parent_span_id);
      if (it == by_span.end() || it->second == event) break;
      cursor = it->second;
      chain.push_back(cursor);
      if (chain.size() > events.size()) break;  // malformed linkage guard
    }
    std::string stack;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (!stack.empty()) stack += ";";
      stack += (*it)->name;
    }
    int64_t self_us = event->dur_us;
    auto consumed = children_us.find(event->span_id);
    if (consumed != children_us.end()) {
      self_us = std::max<int64_t>(0, self_us - consumed->second);
    }
    folded[stack] += self_us;
  }
  std::ostringstream os;
  for (const auto& [stack, self_us] : folded) {
    os << stack << " " << self_us << "\n";
  }
  return os.str();
}

ScopedSpan::ScopedSpan(std::string name, std::string category)
    : active_(Enabled()) {
  if (!active_) return;
  event_.name = std::move(name);
  event_.category = std::move(category);
  event_.tid = CurrentThreadId();
  event_.depth = t_span_depth++;
  // Parent linkage: adopt the thread's current TraceContext (trace id and
  // parent span), then install this span as the current one so children —
  // on this thread or on pool workers it submits to — parent here. The
  // span-id push/pop mutates only the id field in place, so the context's
  // job attribution strings are never copied on this hot path.
  TraceContext* context = nde::internal::MutableCurrentTraceContext();
  event_.trace_id_hi = context->trace_id_hi;
  event_.trace_id_lo = context->trace_id_lo;
  event_.parent_span_id = context->span_id;
  event_.span_id = MintSpanId();
  saved_span_id_ = context->span_id;
  context->span_id = event_.span_id;
  // Publish the frame to the sampling profiler before reading the clock, so
  // a sample taken during the span sees the full stack.
  if (prof::SamplingActive()) {
    prof::PushFrame(event_.name);
    pushed_ = true;
  }
  event_.ts_us = NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  event_.dur_us = NowMicros() - event_.ts_us;
  if (pushed_) prof::PopFrame();
  nde::internal::MutableCurrentTraceContext()->span_id = saved_span_id_;
  --t_span_depth;
  TraceBuffer::Global().Record(std::move(event_));
}

void ScopedSpan::AddArg(const std::string& key, int64_t value) {
  if (!active_) return;
  event_.args.emplace_back(key, StrFormat("%lld", static_cast<long long>(value)));
}

void ScopedSpan::AddArg(const std::string& key, double value) {
  if (!active_) return;
  event_.args.emplace_back(key, StrFormat("%.6g", value));
}

void ScopedSpan::AddArg(const std::string& key, const std::string& value) {
  if (!active_) return;
  event_.args.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

double ScopedSpan::ElapsedMs() const {
  if (!active_) return 0.0;
  return static_cast<double>(NowMicros() - event_.ts_us) / 1000.0;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace telemetry
}  // namespace nde
