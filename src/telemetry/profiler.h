#ifndef NDE_TELEMETRY_PROFILER_H_
#define NDE_TELEMETRY_PROFILER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace nde {
namespace telemetry {

/// In-process sampling profiler + allocation accounting.
///
/// Sampling mode: a background thread periodically snapshots every worker's
/// thread-local stack of open trace spans (fed by the NDE_TRACE_SPAN macros)
/// and aggregates the observations into folded stacks ("a;b;c count" lines,
/// directly consumable by flamegraph.pl / speedscope) plus a flat
/// self/total-time table. Sampling is purely observational: it reads
/// atomics published by the span RAII objects and never feeds anything back,
/// so estimates are bit-identical with the profiler on or off.
///
/// Zero-cost-when-off contract, matching the rest of telemetry/:
///   - compiled out (NDE_TELEMETRY=OFF): no spans open, so no frames are ever
///     pushed; the classes remain so call sites compile.
///   - compiled in, profiler stopped: each span open/close pays one relaxed
///     atomic load on top of the existing telemetry gate.
///   - running: span open/close additionally interns the span name and
///     updates the thread's lock-free frame stack.
struct ProfilerOptions {
  /// Wall-clock gap between sampling passes. 1 ms (~1 kHz) resolves spans of
  /// a few ms and costs well under 1% of one core.
  int64_t sampling_interval_us = 1000;
};

/// One aggregated folded stack: root-to-leaf span names joined with ';'.
struct FoldedStack {
  std::string stack;
  uint64_t count = 0;
};

/// Per-frame flat aggregation over every sample.
struct FlatFrame {
  std::string name;
  uint64_t self = 0;   ///< samples where this frame was the leaf
  uint64_t total = 0;  ///< samples where this frame was anywhere on the stack
};

class Profiler {
 public:
  static Profiler& Global();

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;
  ~Profiler();

  /// Starts the background sampler. Fails if already running. Spans only
  /// exist while `telemetry::SetEnabled(true)`, so callers normally enable
  /// telemetry first (the CLI's --profile does both).
  Status Start(const ProfilerOptions& options = {});

  /// Stops the sampler thread; aggregated samples are kept for readout.
  /// Safe to call twice or when never started.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Runs one synchronous sampling pass on the caller's thread. Used by
  /// tests for deterministic coverage and usable while stopped.
  void SampleOnce();

  /// Total stack observations aggregated so far (one per thread with at
  /// least one open span, per sampling pass).
  uint64_t samples() const;
  /// Number of sampling passes (clock ticks) so far.
  uint64_t sample_passes() const;
  /// Samples discarded because a stack mutated mid-read (seqlock retry).
  uint64_t torn_samples() const;

  /// Drops all aggregated samples (the interval and running state are kept).
  void Reset();

  int64_t sampling_interval_us() const {
    return options_.sampling_interval_us;
  }

  /// Folded-stack lines "name;name;name count\n", sorted by stack so two
  /// dumps diff cleanly. Feed straight into flamegraph.pl or speedscope.
  std::string FoldedStacks() const;

  /// The same aggregation as structured data (sorted by stack).
  std::vector<FoldedStack> Folded() const;

  /// Per-frame self/total sample counts, sorted by self descending (ties by
  /// name) — the "where does the time actually go" table.
  std::vector<FlatFrame> Flat() const;

  /// Human-readable flat table plus allocation-accounting summary; the
  /// /profilez endpoint and `nde_cli --profile` stderr summary both use it.
  std::string ToText() const;

  /// JSON object for RunReport's "profile" block:
  /// {"enabled":...,"samples":...,"sampling_interval_us":...,
  ///  "folded":[{"stack":...,"count":...}],"flat":[...],"alloc":{...}}.
  /// Folded stacks are capped to the top `max_stacks` by count.
  std::string ToJson(size_t max_stacks = 25) const;

 private:
  void Run();

  ProfilerOptions options_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  mutable std::mutex cv_mu_;
  std::condition_variable cv_;

  mutable std::mutex agg_mu_;
  /// Aggregated samples: interned-frame-id stack (root first) -> count.
  std::map<std::vector<uint32_t>, uint64_t> stacks_;
  std::atomic<uint64_t> samples_{0};
  std::atomic<uint64_t> passes_{0};
  std::atomic<uint64_t> torn_{0};
};

namespace prof {

/// True while any Profiler instance is sampling (one relaxed atomic load);
/// ScopedSpan consults this before paying the frame-stack cost.
bool SamplingActive();

/// Pushes/pops one frame on the calling thread's span stack. Called by
/// ScopedSpan when SamplingActive(); PopFrame must pair a successful
/// PushFrame (ScopedSpan tracks this so sampling can toggle mid-span).
void PushFrame(const std::string& name);
void PopFrame();

/// Current span-stack depth of the calling thread (test hook).
uint32_t LocalDepthForTesting();

}  // namespace prof

// ---------------------------------------------------------------------------
// Allocation accounting
// ---------------------------------------------------------------------------

/// Point-in-time allocation counters. Bytes are actual heap bytes
/// (malloc_usable_size) where the platform provides them, else the requested
/// size. Counters accumulate from the moment accounting is enabled; `live`
/// can go negative when memory allocated before enabling is freed after.
struct AllocStats {
  uint64_t alloc_count = 0;
  uint64_t alloc_bytes = 0;
  uint64_t free_count = 0;
  uint64_t free_bytes = 0;
  int64_t live_bytes = 0;
  int64_t peak_live_bytes = 0;
};

/// Whether operator new/delete interposition was compiled in. False under
/// NDE_TELEMETRY=OFF and under ASan/TSan/MSan builds (the sanitizers own the
/// allocator there); everything below degrades to no-ops in that case.
bool AllocAccountingCompiledIn();

/// Runtime gate. While disabled, the interposed operators cost one relaxed
/// atomic load over plain malloc/free.
void SetAllocAccountingEnabled(bool enabled);
bool AllocAccountingEnabled();

/// Process-wide counters since the last ResetAllocStats().
AllocStats GlobalAllocStats();

/// Per-phase totals accumulated by AllocationScope, sorted by phase name.
std::vector<std::pair<std::string, AllocStats>> AllocPhaseStats();

/// Zeroes the global counters and drops every recorded phase.
void ResetAllocStats();

/// RAII phase tag: while the innermost scope on a thread is alive, that
/// thread's allocations and frees are attributed to `phase` (self-only:
/// nested scopes do not roll up into their parents). On destruction the
/// scope's tally is folded into the process-wide per-phase table, merging
/// with earlier scopes of the same phase. `phase` must outlive the scope
/// (string literals, in practice). Construction and destruction are no-ops
/// while accounting is disabled or compiled out.
class AllocationScope {
 public:
  explicit AllocationScope(const char* phase);
  ~AllocationScope();

  AllocationScope(const AllocationScope&) = delete;
  AllocationScope& operator=(const AllocationScope&) = delete;

  /// Internal: per-scope running tally, updated by the allocation hooks.
  struct Tally {
    const char* phase = nullptr;
    uint64_t alloc_count = 0;
    uint64_t alloc_bytes = 0;
    uint64_t free_count = 0;
    uint64_t free_bytes = 0;
    int64_t live_bytes = 0;
    int64_t peak_live_bytes = 0;
    Tally* parent = nullptr;
  };

 private:
  Tally tally_;
  bool active_ = false;
};

/// Text table of global + per-phase allocation counters (part of
/// Profiler::ToText and /profilez).
std::string AllocStatsTable();

}  // namespace telemetry
}  // namespace nde

#endif  // NDE_TELEMETRY_PROFILER_H_
