#include "telemetry/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <new>
#include <set>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"
#include "telemetry/telemetry.h"

#if defined(__GLIBC__)
#include <malloc.h>  // malloc_usable_size
#endif

// Allocation interposition is compiled out under NDE_TELEMETRY=OFF (the
// zero-cost contract) and under sanitizer builds: ASan/TSan/MSan replace the
// global allocator themselves, and a second replacement would either lose
// their redzones/race instrumentation or fail to link.
#if !defined(NDE_PROFILER_SANITIZED)
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define NDE_PROFILER_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define NDE_PROFILER_SANITIZED 1
#endif
#endif
#endif
#if !defined(NDE_PROFILER_SANITIZED)
#define NDE_PROFILER_SANITIZED 0
#endif

#define NDE_ALLOC_INTERPOSE (NDE_TELEMETRY_ENABLED && !NDE_PROFILER_SANITIZED)

namespace nde {
namespace telemetry {

namespace {

// ---------------------------------------------------------------------------
// Span-name interning
//
// The sampler reads worker stacks asynchronously, so it can never touch the
// std::string a span owns (the span may be gone by the time the sample is
// resolved). Frames therefore carry small interned ids; the table's strings
// live for the process lifetime, making id resolution race-free by
// construction. Ids are 1-based so 0 can mean "empty slot".
// ---------------------------------------------------------------------------

std::mutex& InternMu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::deque<std::string>& InternNames() {
  static std::deque<std::string>* names = new std::deque<std::string>();
  return *names;
}

std::unordered_map<std::string, uint32_t>& InternIndex() {
  static std::unordered_map<std::string, uint32_t>* index =
      new std::unordered_map<std::string, uint32_t>();
  return *index;
}

uint32_t InternName(const std::string& name) {
  std::lock_guard<std::mutex> lock(InternMu());
  auto [it, inserted] = InternIndex().emplace(name, 0);
  if (inserted) {
    InternNames().push_back(name);
    it->second = static_cast<uint32_t>(InternNames().size());
  }
  return it->second;
}

std::string NameForId(uint32_t id) {
  std::lock_guard<std::mutex> lock(InternMu());
  if (id == 0 || id > InternNames().size()) return "?";
  return InternNames()[id - 1];
}

// ---------------------------------------------------------------------------
// Per-thread frame stacks
//
// Each thread that opens a span while sampling is active owns a fixed-depth
// stack of atomic frame ids guarded by a seqlock generation counter: the
// writer (the thread itself, in ScopedSpan's ctor/dtor) bumps the counter to
// odd, mutates, bumps back to even; the sampler discards any observation
// whose generation was odd or changed mid-read. Everything is atomic, so a
// torn read costs one discarded sample, never undefined behavior.
// ---------------------------------------------------------------------------

constexpr uint32_t kMaxDepth = 64;

struct ThreadStack {
  std::atomic<uint32_t> generation{0};
  std::atomic<uint32_t> depth{0};
  std::atomic<uint32_t> frames[kMaxDepth];
  ThreadStack() {
    for (auto& frame : frames) frame.store(0, std::memory_order_relaxed);
  }
};

std::mutex& StackRegistryMu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<ThreadStack*>& StackRegistry() {
  static std::vector<ThreadStack*>* registry = new std::vector<ThreadStack*>();
  return *registry;
}

// Registers on first use, unregisters at thread exit. The sampler holds
// StackRegistryMu() for its whole pass, so a stack is never freed while
// being read.
struct ThreadStackHandle {
  ThreadStack* stack = new ThreadStack();
  ThreadStackHandle() {
    std::lock_guard<std::mutex> lock(StackRegistryMu());
    StackRegistry().push_back(stack);
  }
  ~ThreadStackHandle() {
    {
      std::lock_guard<std::mutex> lock(StackRegistryMu());
      auto& registry = StackRegistry();
      registry.erase(std::remove(registry.begin(), registry.end(), stack),
                     registry.end());
    }
    delete stack;
  }
};

ThreadStack& LocalStack() {
  thread_local ThreadStackHandle handle;
  return *handle.stack;
}

std::atomic<bool> g_sampling_active{false};

// Sampler-assist bookkeeping: steady-clock nanosecond stamp of the most
// recent sampling pass plus the configured interval (0 while stopped).
std::atomic<int64_t> g_last_pass_ns{0};
std::atomic<int64_t> g_assist_interval_ns{0};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// On a saturated host (one core, CPU-bound estimator) the background sampler
// thread can be starved for the whole of a short run, yielding an empty
// profile. Exiting spans therefore assist it: when a full interval has gone
// by with no sampling pass, the popping thread — whose own stack is stable
// and still includes the finished span — takes one pass inline. The CAS
// elects a single assistant per overdue interval.
void MaybeAssistSampler() {
  if (!g_sampling_active.load(std::memory_order_relaxed)) return;
  int64_t interval = g_assist_interval_ns.load(std::memory_order_relaxed);
  if (interval <= 0) return;
  int64_t now = NowNs();
  int64_t last = g_last_pass_ns.load(std::memory_order_relaxed);
  if (now - last < interval) return;
  if (!g_last_pass_ns.compare_exchange_strong(last, now,
                                              std::memory_order_relaxed)) {
    return;
  }
  Profiler::Global().SampleOnce();
}

}  // namespace

namespace prof {

bool SamplingActive() {
  return g_sampling_active.load(std::memory_order_relaxed);
}

void PushFrame(const std::string& name) {
  ThreadStack& stack = LocalStack();
  uint32_t depth = stack.depth.load(std::memory_order_relaxed);
  uint32_t id = depth < kMaxDepth ? InternName(name) : 0;
  uint32_t seq = stack.generation.load(std::memory_order_relaxed);
  stack.generation.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  if (depth < kMaxDepth) {
    stack.frames[depth].store(id, std::memory_order_relaxed);
  }
  // Depth keeps counting past kMaxDepth (frames are just not recorded) so
  // pops stay balanced on pathological nesting.
  stack.depth.store(depth + 1, std::memory_order_relaxed);
  stack.generation.store(seq + 2, std::memory_order_release);
}

void PopFrame() {
  MaybeAssistSampler();
  ThreadStack& stack = LocalStack();
  uint32_t depth = stack.depth.load(std::memory_order_relaxed);
  if (depth == 0) return;
  uint32_t seq = stack.generation.load(std::memory_order_relaxed);
  stack.generation.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  if (depth <= kMaxDepth) {
    stack.frames[depth - 1].store(0, std::memory_order_relaxed);
  }
  stack.depth.store(depth - 1, std::memory_order_relaxed);
  stack.generation.store(seq + 2, std::memory_order_release);
}

uint32_t LocalDepthForTesting() {
  return LocalStack().depth.load(std::memory_order_relaxed);
}

}  // namespace prof

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

Profiler& Profiler::Global() {
  // A real static (not a leaked pointer) so the destructor joins the sampler
  // thread at process exit even if a caller forgets Stop(). The sampler only
  // touches process-lifetime state, so the late join is safe.
  static Profiler profiler;
  return profiler;
}

Profiler::~Profiler() { Stop(); }

Status Profiler::Start(const ProfilerOptions& options) {
  if (options.sampling_interval_us <= 0) {
    return Status::InvalidArgument("sampling_interval_us must be positive");
  }
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("profiler already running");
  }
  options_ = options;
  g_last_pass_ns.store(NowNs(), std::memory_order_relaxed);
  g_assist_interval_ns.store(options.sampling_interval_us * int64_t{1000},
                             std::memory_order_relaxed);
  g_sampling_active.store(true, std::memory_order_relaxed);
  thread_ = std::thread(&Profiler::Run, this);
  return Status::OK();
}

void Profiler::Stop() {
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    running_.store(false, std::memory_order_release);
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  g_sampling_active.store(false, std::memory_order_relaxed);
  g_assist_interval_ns.store(0, std::memory_order_relaxed);
}

void Profiler::Run() {
  std::unique_lock<std::mutex> lock(cv_mu_);
  while (running_.load(std::memory_order_acquire)) {
    cv_.wait_for(lock,
                 std::chrono::microseconds(options_.sampling_interval_us));
    if (!running_.load(std::memory_order_acquire)) break;
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

void Profiler::SampleOnce() {
  std::vector<std::vector<uint32_t>> observed;
  {
    std::lock_guard<std::mutex> lock(StackRegistryMu());
    observed.reserve(StackRegistry().size());
    for (ThreadStack* stack : StackRegistry()) {
      uint32_t seq_before = stack->generation.load(std::memory_order_acquire);
      if (seq_before & 1u) {
        torn_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      uint32_t depth = stack->depth.load(std::memory_order_relaxed);
      if (depth == 0) continue;  // idle thread: nothing on the span stack
      depth = std::min(depth, kMaxDepth);
      std::vector<uint32_t> key(depth);
      for (uint32_t i = 0; i < depth; ++i) {
        key[i] = stack->frames[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (stack->generation.load(std::memory_order_relaxed) != seq_before ||
          std::find(key.begin(), key.end(), 0u) != key.end()) {
        torn_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      observed.push_back(std::move(key));
    }
  }
  {
    std::lock_guard<std::mutex> lock(agg_mu_);
    for (auto& key : observed) ++stacks_[std::move(key)];
  }
  samples_.fetch_add(observed.size(), std::memory_order_relaxed);
  passes_.fetch_add(1, std::memory_order_relaxed);
  g_last_pass_ns.store(NowNs(), std::memory_order_relaxed);
}

uint64_t Profiler::samples() const {
  return samples_.load(std::memory_order_relaxed);
}

uint64_t Profiler::sample_passes() const {
  return passes_.load(std::memory_order_relaxed);
}

uint64_t Profiler::torn_samples() const {
  return torn_.load(std::memory_order_relaxed);
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(agg_mu_);
  stacks_.clear();
  samples_.store(0, std::memory_order_relaxed);
  passes_.store(0, std::memory_order_relaxed);
  torn_.store(0, std::memory_order_relaxed);
}

std::vector<FoldedStack> Profiler::Folded() const {
  std::map<std::vector<uint32_t>, uint64_t> snapshot;
  {
    std::lock_guard<std::mutex> lock(agg_mu_);
    snapshot = stacks_;
  }
  std::map<std::string, uint64_t> resolved;
  for (const auto& [ids, count] : snapshot) {
    std::string line;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i) line += ';';
      // Folded-stack lines are ";"-joined frames followed by a space and the
      // count; span names like "fit numeric(score)" would corrupt that
      // grammar, so delimiter characters become underscores here.
      for (char c : NameForId(ids[i])) {
        line += (c == ' ' || c == ';' || c == '\t' || c == '\n') ? '_' : c;
      }
    }
    resolved[line] += count;
  }
  std::vector<FoldedStack> out;
  out.reserve(resolved.size());
  for (auto& [stack, count] : resolved) out.push_back({stack, count});
  return out;
}

std::string Profiler::FoldedStacks() const {
  std::string out;
  for (const FoldedStack& folded : Folded()) {
    out += folded.stack;
    out += ' ';
    out += StrFormat("%llu", static_cast<unsigned long long>(folded.count));
    out += '\n';
  }
  return out;
}

std::vector<FlatFrame> Profiler::Flat() const {
  std::map<std::vector<uint32_t>, uint64_t> snapshot;
  {
    std::lock_guard<std::mutex> lock(agg_mu_);
    snapshot = stacks_;
  }
  std::map<std::string, FlatFrame> frames;
  for (const auto& [ids, count] : snapshot) {
    std::set<std::string> on_stack;
    for (uint32_t id : ids) on_stack.insert(NameForId(id));
    for (const std::string& name : on_stack) {
      FlatFrame& frame = frames[name];
      frame.name = name;
      frame.total += count;
    }
    if (!ids.empty()) frames[NameForId(ids.back())].self += count;
  }
  std::vector<FlatFrame> out;
  out.reserve(frames.size());
  for (auto& [name, frame] : frames) out.push_back(frame);
  std::sort(out.begin(), out.end(), [](const FlatFrame& a, const FlatFrame& b) {
    if (a.self != b.self) return a.self > b.self;
    return a.name < b.name;
  });
  return out;
}

std::string Profiler::ToText() const {
  std::ostringstream os;
  os << "profiler: " << samples() << " samples over " << sample_passes()
     << " passes (" << torn_samples() << " torn), interval "
     << options_.sampling_interval_us << " us, "
     << (running() ? "running" : "stopped") << "\n";
  std::vector<FlatFrame> flat = Flat();
  if (flat.empty()) {
    os << "(no samples; is telemetry enabled and the profiler started?)\n";
  } else {
    os << StrFormat("%10s %10s  %s\n", "self", "total", "span");
    for (const FlatFrame& frame : flat) {
      os << StrFormat("%10llu %10llu  %s\n",
                      static_cast<unsigned long long>(frame.self),
                      static_cast<unsigned long long>(frame.total),
                      frame.name.c_str());
    }
    os << "unique stacks: " << Folded().size() << "\n";
  }
  os << "\n" << AllocStatsTable();
  return os.str();
}

namespace {

void AppendAllocStatsJson(std::ostringstream& os, const AllocStats& stats) {
  os << "{\"alloc_count\":" << stats.alloc_count
     << ",\"alloc_bytes\":" << stats.alloc_bytes
     << ",\"free_count\":" << stats.free_count
     << ",\"free_bytes\":" << stats.free_bytes
     << ",\"live_bytes\":" << stats.live_bytes
     << ",\"peak_live_bytes\":" << stats.peak_live_bytes << "}";
}

}  // namespace

std::string Profiler::ToJson(size_t max_stacks) const {
  std::vector<FoldedStack> folded = Folded();
  // Keep the heaviest stacks; re-sort the survivors by stack for stable diffs.
  std::sort(folded.begin(), folded.end(),
            [](const FoldedStack& a, const FoldedStack& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.stack < b.stack;
            });
  size_t total_stacks = folded.size();
  if (folded.size() > max_stacks) folded.resize(max_stacks);
  std::sort(folded.begin(), folded.end(),
            [](const FoldedStack& a, const FoldedStack& b) {
              return a.stack < b.stack;
            });

  std::ostringstream os;
  os << "{\"enabled\":"
     << ((running() || samples() > 0) ? "true" : "false")
     << ",\"running\":" << (running() ? "true" : "false")
     << ",\"sampling_interval_us\":" << options_.sampling_interval_us
     << ",\"samples\":" << samples() << ",\"sample_passes\":"
     << sample_passes() << ",\"torn_samples\":" << torn_samples()
     << ",\"unique_stacks\":" << total_stacks << ",\"folded\":[";
  bool first = true;
  for (const FoldedStack& stack : folded) {
    if (!first) os << ",";
    first = false;
    os << "{\"stack\":\"" << JsonEscape(stack.stack)
       << "\",\"count\":" << stack.count << "}";
  }
  os << "],\"flat\":[";
  first = true;
  for (const FlatFrame& frame : Flat()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(frame.name)
       << "\",\"self\":" << frame.self << ",\"total\":" << frame.total << "}";
  }
  os << "],\"alloc\":{\"compiled_in\":"
     << (AllocAccountingCompiledIn() ? "true" : "false") << ",\"enabled\":"
     << (AllocAccountingEnabled() ? "true" : "false") << ",\"global\":";
  AppendAllocStatsJson(os, GlobalAllocStats());
  os << ",\"phases\":{";
  first = true;
  for (const auto& [phase, stats] : AllocPhaseStats()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(phase) << "\":";
    AppendAllocStatsJson(os, stats);
  }
  os << "}}}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Allocation accounting
//
// The hooks below run inside operator new/delete, so they must never
// allocate and must tolerate being called before main() and during static
// destruction. They therefore touch only constant-initialized namespace
// atomics and one trivially-initialized thread_local pointer. The per-phase
// table (which does allocate) is only touched by AllocationScope's
// destructor, after the thread's innermost-scope pointer has been restored —
// so its own allocations are attributed to the parent scope, not to a
// dangling tally.
// ---------------------------------------------------------------------------

namespace {

std::atomic<bool> g_alloc_enabled{false};
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
std::atomic<uint64_t> g_free_count{0};
std::atomic<uint64_t> g_free_bytes{0};
std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_live_bytes{0};

thread_local AllocationScope::Tally* t_alloc_scope = nullptr;

std::mutex& PhaseMu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::map<std::string, AllocStats>& PhaseMap() {
  static std::map<std::string, AllocStats>* map =
      new std::map<std::string, AllocStats>();
  return *map;
}

#if NDE_ALLOC_INTERPOSE

size_t HeapBytes(void* ptr, size_t requested) {
  (void)ptr;
  (void)requested;
#if defined(__GLIBC__)
  return malloc_usable_size(ptr);
#else
  return requested;
#endif
}

void NoteAlloc(void* ptr, size_t requested) {
  if (!g_alloc_enabled.load(std::memory_order_relaxed)) return;
  int64_t bytes = static_cast<int64_t>(HeapBytes(ptr, requested));
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(static_cast<uint64_t>(bytes),
                          std::memory_order_relaxed);
  int64_t live =
      g_live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = g_peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_live_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  if (AllocationScope::Tally* tally = t_alloc_scope) {
    ++tally->alloc_count;
    tally->alloc_bytes += static_cast<uint64_t>(bytes);
    tally->live_bytes += bytes;
    if (tally->live_bytes > tally->peak_live_bytes) {
      tally->peak_live_bytes = tally->live_bytes;
    }
  }
}

// Must run BEFORE the underlying free(): malloc_usable_size on freed memory
// would be use-after-free.
void NoteFree(void* ptr, size_t requested) {
  if (ptr == nullptr) return;
  if (!g_alloc_enabled.load(std::memory_order_relaxed)) return;
  int64_t bytes = static_cast<int64_t>(HeapBytes(ptr, requested));
  g_free_count.fetch_add(1, std::memory_order_relaxed);
  g_free_bytes.fetch_add(static_cast<uint64_t>(bytes),
                         std::memory_order_relaxed);
  g_live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  if (AllocationScope::Tally* tally = t_alloc_scope) {
    ++tally->free_count;
    tally->free_bytes += static_cast<uint64_t>(bytes);
    tally->live_bytes -= bytes;
  }
}

#endif  // NDE_ALLOC_INTERPOSE

}  // namespace

bool AllocAccountingCompiledIn() {
#if NDE_ALLOC_INTERPOSE
  return true;
#else
  return false;
#endif
}

void SetAllocAccountingEnabled(bool enabled) {
#if NDE_ALLOC_INTERPOSE
  g_alloc_enabled.store(enabled, std::memory_order_relaxed);
#else
  (void)enabled;
#endif
}

bool AllocAccountingEnabled() {
  return g_alloc_enabled.load(std::memory_order_relaxed);
}

AllocStats GlobalAllocStats() {
  AllocStats stats;
  stats.alloc_count = g_alloc_count.load(std::memory_order_relaxed);
  stats.alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  stats.free_count = g_free_count.load(std::memory_order_relaxed);
  stats.free_bytes = g_free_bytes.load(std::memory_order_relaxed);
  stats.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  stats.peak_live_bytes = g_peak_live_bytes.load(std::memory_order_relaxed);
  return stats;
}

std::vector<std::pair<std::string, AllocStats>> AllocPhaseStats() {
  std::lock_guard<std::mutex> lock(PhaseMu());
  return {PhaseMap().begin(), PhaseMap().end()};
}

void ResetAllocStats() {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_bytes.store(0, std::memory_order_relaxed);
  g_free_count.store(0, std::memory_order_relaxed);
  g_free_bytes.store(0, std::memory_order_relaxed);
  g_live_bytes.store(0, std::memory_order_relaxed);
  g_peak_live_bytes.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(PhaseMu());
  PhaseMap().clear();
}

AllocationScope::AllocationScope(const char* phase) {
  if (!AllocAccountingCompiledIn() ||
      !g_alloc_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  tally_.phase = phase;
  tally_.parent = t_alloc_scope;
  t_alloc_scope = &tally_;
  active_ = true;
}

AllocationScope::~AllocationScope() {
  if (!active_) return;
  // Restore the parent first: the flush below allocates (map node, string),
  // and those allocations must not land on the tally being flushed.
  t_alloc_scope = tally_.parent;
  std::lock_guard<std::mutex> lock(PhaseMu());
  AllocStats& stats = PhaseMap()[tally_.phase];
  stats.alloc_count += tally_.alloc_count;
  stats.alloc_bytes += tally_.alloc_bytes;
  stats.free_count += tally_.free_count;
  stats.free_bytes += tally_.free_bytes;
  stats.live_bytes += tally_.live_bytes;
  stats.peak_live_bytes =
      std::max(stats.peak_live_bytes, tally_.peak_live_bytes);
}

std::string AllocStatsTable() {
  std::ostringstream os;
  os << "alloc accounting: "
     << (AllocAccountingCompiledIn() ? "compiled in" : "compiled out") << ", "
     << (AllocAccountingEnabled() ? "enabled" : "disabled") << "\n";
  auto row = [&os](const std::string& name, const AllocStats& stats) {
    os << StrFormat("%-28s %10llu %14llu %10llu %14llu %14lld %14lld\n",
                    name.c_str(),
                    static_cast<unsigned long long>(stats.alloc_count),
                    static_cast<unsigned long long>(stats.alloc_bytes),
                    static_cast<unsigned long long>(stats.free_count),
                    static_cast<unsigned long long>(stats.free_bytes),
                    static_cast<long long>(stats.live_bytes),
                    static_cast<long long>(stats.peak_live_bytes));
  };
  os << StrFormat("%-28s %10s %14s %10s %14s %14s %14s\n", "phase", "allocs",
                  "alloc_bytes", "frees", "free_bytes", "live_bytes",
                  "peak_live");
  row("(global)", GlobalAllocStats());
  for (const auto& [phase, stats] : AllocPhaseStats()) row(phase, stats);
  return os.str();
}

}  // namespace telemetry
}  // namespace nde

// ---------------------------------------------------------------------------
// Global operator new/delete interposition (telemetry builds, non-sanitizer).
// Always malloc/free-backed so mixed new/delete across TUs stays consistent;
// when accounting is disabled the hooks reduce to one relaxed atomic load.
// ---------------------------------------------------------------------------

#if NDE_ALLOC_INTERPOSE

// GCC flags free() inside a replaced operator delete as a mismatched pair; it
// cannot see that the matching operator new above is malloc-backed.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

void* AllocOrNull(std::size_t size) {
  return std::malloc(size ? size : 1);
}

void* AlignedAllocOrNull(std::size_t size, std::size_t alignment) {
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* ptr = nullptr;
  if (posix_memalign(&ptr, alignment, size ? size : 1) != 0) return nullptr;
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) {
  void* ptr = AllocOrNull(size);
  if (ptr == nullptr) throw std::bad_alloc();
  nde::telemetry::NoteAlloc(ptr, size);
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = AllocOrNull(size);
  if (ptr == nullptr) throw std::bad_alloc();
  nde::telemetry::NoteAlloc(ptr, size);
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* ptr = AllocOrNull(size);
  if (ptr != nullptr) nde::telemetry::NoteAlloc(ptr, size);
  return ptr;
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  void* ptr = AllocOrNull(size);
  if (ptr != nullptr) nde::telemetry::NoteAlloc(ptr, size);
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* ptr = AlignedAllocOrNull(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc();
  nde::telemetry::NoteAlloc(ptr, size);
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* ptr = AlignedAllocOrNull(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc();
  nde::telemetry::NoteAlloc(ptr, size);
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  void* ptr = AlignedAllocOrNull(size, static_cast<std::size_t>(alignment));
  if (ptr != nullptr) nde::telemetry::NoteAlloc(ptr, size);
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  void* ptr = AlignedAllocOrNull(size, static_cast<std::size_t>(alignment));
  if (ptr != nullptr) nde::telemetry::NoteAlloc(ptr, size);
  return ptr;
}

void operator delete(void* ptr) noexcept {
  nde::telemetry::NoteFree(ptr, 0);
  std::free(ptr);
}

void operator delete[](void* ptr) noexcept {
  nde::telemetry::NoteFree(ptr, 0);
  std::free(ptr);
}

void operator delete(void* ptr, std::size_t size) noexcept {
  nde::telemetry::NoteFree(ptr, size);
  std::free(ptr);
}

void operator delete[](void* ptr, std::size_t size) noexcept {
  nde::telemetry::NoteFree(ptr, size);
  std::free(ptr);
}

void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  nde::telemetry::NoteFree(ptr, 0);
  std::free(ptr);
}

void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  nde::telemetry::NoteFree(ptr, 0);
  std::free(ptr);
}

void operator delete(void* ptr, std::align_val_t) noexcept {
  nde::telemetry::NoteFree(ptr, 0);
  std::free(ptr);
}

void operator delete[](void* ptr, std::align_val_t) noexcept {
  nde::telemetry::NoteFree(ptr, 0);
  std::free(ptr);
}

void operator delete(void* ptr, std::size_t size, std::align_val_t) noexcept {
  nde::telemetry::NoteFree(ptr, size);
  std::free(ptr);
}

void operator delete[](void* ptr, std::size_t size,
                       std::align_val_t) noexcept {
  nde::telemetry::NoteFree(ptr, size);
  std::free(ptr);
}

void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  nde::telemetry::NoteFree(ptr, 0);
  std::free(ptr);
}

void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  nde::telemetry::NoteFree(ptr, 0);
  std::free(ptr);
}

#endif  // NDE_ALLOC_INTERPOSE
