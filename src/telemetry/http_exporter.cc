#include "telemetry/http_exporter.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/string_util.h"
#include "common/trace_context.h"
#include "telemetry/health.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/trace.h"

namespace nde {
namespace telemetry {

std::string MakeHttpResponse(int status, const char* reason,
                             const std::string& content_type,
                             const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << " " << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

namespace {

constexpr size_t kMaxHeaderBytes = 16384;

std::string TracezJson() {
  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  constexpr size_t kMaxSpans = 100;
  size_t begin = events.size() > kMaxSpans ? events.size() - kMaxSpans : 0;
  std::ostringstream os;
  os << "{\"buffered_spans\":" << events.size()
     << ",\"dropped_spans\":" << TraceBuffer::Global().dropped()
     << ",\"spans\":[";
  bool first = true;
  for (size_t i = begin; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(event.name) << "\",\"category\":\""
       << JsonEscape(event.category) << "\",\"ts_us\":" << event.ts_us
       << ",\"dur_us\":" << event.dur_us << ",\"tid\":" << event.tid;
    if ((event.trace_id_hi | event.trace_id_lo) != 0) {
      TraceContext id_only;
      id_only.trace_id_hi = event.trace_id_hi;
      id_only.trace_id_lo = event.trace_id_lo;
      os << ",\"trace_id\":\"" << TraceIdHex(id_only) << "\"";
    }
    if (event.span_id != 0) {
      os << ",\"span_id\":\"" << SpanIdHex(event.span_id) << "\"";
    }
    if (event.parent_span_id != 0) {
      os << ",\"parent_span_id\":\"" << SpanIdHex(event.parent_span_id)
         << "\"";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

/// Splits a request line ("POST /jobs?x=1 HTTP/1.1") into method + target +
/// query. Malformed lines leave fields empty, which Route answers with 405.
void ParseRequestLine(const std::string& line, HttpRequest* out) {
  std::istringstream is(line);
  is >> out->method >> out->target;
  size_t query = out->target.find('?');
  if (query != std::string::npos) {
    out->query = out->target.substr(query + 1);
    out->target.resize(query);
  }
}

/// Reads one HTTP request off the socket: request line, headers, and — when
/// Content-Length says so — the body. Bodyless methods keep the historical
/// single-read fast path (a complete request line is enough; clients may
/// never send the blank line). Returns false when there is nothing to
/// answer; a non-empty `error_response` carries a 413/400 to send instead.
bool ReadHttpRequest(int fd, size_t max_body_bytes, HttpRequest* out,
                     std::string* error_response) {
  std::string data;
  char buf[4096];
  size_t body_start = std::string::npos;
  while (true) {
    size_t crlf = data.find("\r\n\r\n");
    size_t lflf = data.find("\n\n");
    if (crlf != std::string::npos &&
        (lflf == std::string::npos || crlf < lflf)) {
      body_start = crlf + 4;
      break;
    }
    if (lflf != std::string::npos) {
      body_start = lflf + 2;
      break;
    }
    if (data.size() >= kMaxHeaderBytes) break;  // cap; parse what we have
    if (data.find('\n') != std::string::npos) {
      std::string method = data.substr(0, data.find_first_of(" \r\n"));
      if (method != "POST" && method != "PUT") break;  // no body expected
    }
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    data.append(buf, static_cast<size_t>(n));
  }

  size_t eol = data.find('\n');
  if (eol == std::string::npos) return false;  // no request line at all
  std::string line = data.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  ParseRequestLine(line, out);

  if (body_start == std::string::npos) return true;  // headers never ended

  // Scan the header block for Content-Length (case-insensitive key).
  size_t content_length = 0;
  bool has_length = false;
  size_t cursor = eol + 1;
  while (cursor < body_start && cursor < data.size()) {
    size_t line_end = data.find('\n', cursor);
    if (line_end == std::string::npos || line_end >= body_start) break;
    std::string header = data.substr(cursor, line_end - cursor);
    cursor = line_end + 1;
    if (!header.empty() && header.back() == '\r') header.pop_back();
    size_t colon = header.find(':');
    if (colon == std::string::npos) continue;
    std::string key = header.substr(0, colon);
    for (char& c : key) c = static_cast<char>(std::tolower(c));
    size_t value_begin = header.find_first_not_of(" \t", colon + 1);
    if (value_begin == std::string::npos) continue;
    std::string value = header.substr(value_begin);
    if (key == "traceparent") {
      out->traceparent = value;
      continue;
    }
    if (key != "content-length") continue;
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
      *error_response = MakeHttpResponse(400, "Bad Request", "text/plain",
                                         "malformed Content-Length\n");
      return false;
    }
    content_length = static_cast<size_t>(std::strtoull(value.c_str(),
                                                       nullptr, 10));
    has_length = true;
  }
  if (!has_length || content_length == 0) return true;
  if (content_length > max_body_bytes) {
    *error_response = MakeHttpResponse(
        413, "Payload Too Large", "text/plain",
        StrFormat("request body of %zu bytes exceeds the %zu-byte cap\n",
                  content_length, max_body_bytes));
    return false;
  }
  std::string body =
      body_start < data.size() ? data.substr(body_start) : std::string();
  while (body.size() < content_length) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    body.append(buf, static_cast<size_t>(n));
  }
  if (body.size() < content_length) {
    *error_response =
        MakeHttpResponse(400, "Bad Request", "text/plain",
                         "request body shorter than Content-Length\n");
    return false;
  }
  body.resize(content_length);
  out->body = std::move(body);
  return true;
}

/// Collapses id-bearing paths to one label value per route shape, so the
/// `http.request_us` target label has a small fixed vocabulary no matter how
/// many jobs exist (the cardinality cap is for accidents, not for design).
std::string NormalizedTarget(const std::string& target) {
  if (target == "/healthz" || target == "/metrics" || target == "/varz" ||
      target == "/tracez" || target == "/profilez" || target == "/jobs" ||
      target == "/algorithmz") {
    return target;
  }
  if (StartsWith(target, "/jobs/")) {
    size_t slash = target.find('/', 6);
    if (slash == std::string::npos) return "/jobs/<id>";
    std::string suffix = target.substr(slash);
    if (suffix == "/tracez" || suffix == "/eventz") {
      return "/jobs/<id>" + suffix;
    }
    return "other";
  }
  return "other";
}

/// Request-latency buckets in microseconds: 1us .. ~18min, x4 per bucket.
/// (The default registry buckets are scaled for milliseconds.)
const std::vector<double>& RequestLatencyBucketsUs() {
  static const std::vector<double>* bounds = [] {
    auto* v = new std::vector<double>();
    for (double b = 1.0; b <= 1.2e9; b *= 4.0) v->push_back(b);
    return v;
  }();
  return *bounds;
}

void WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

std::string HttpExporter::Route(const HttpRequest& request,
                                const HttpHandler* handler) {
  MetricsRegistry::Global().GetCounter("http_exporter.requests").Increment();
  // Chaos hook: a scrape failure must produce a well-formed 500, never tear
  // down the serving thread.
  if (failpoint::AnyArmed()) {
    failpoint::Outcome fp = failpoint::Fire("http.handle_request");
    if (fp.fired()) {
      return MakeHttpResponse(500, "Internal Server Error", "text/plain",
                              fp.status.ToString() + "\n");
    }
  }
  // Serving-layer routes go to the installed handler with any method and the
  // request body; the built-ins below never do, so their responses stay
  // byte-identical whether or not a handler is installed.
  bool handled = handler != nullptr && *handler;
  if (handled &&
      (request.target == "/jobs" || StartsWith(request.target, "/jobs/") ||
       request.target == "/algorithmz")) {
    return (*handler)(request);
  }
  if (request.method != "GET") {
    return MakeHttpResponse(405, "Method Not Allowed", "text/plain",
                            "only GET is supported\n");
  }
  if (request.target == "/healthz") {
    // Degraded keeps serving scrapes: the process is alive but its current
    // work is failing (e.g. utility evaluation exhausted its retries), so
    // probers see 503 while /metrics stays readable.
    if (!IsHealthy()) {
      return MakeHttpResponse(503, "Service Unavailable", "text/plain",
                              "degraded: " + HealthReason() + "\n");
    }
    return MakeHttpResponse(200, "OK", "text/plain", "ok\n");
  }
  if (request.target == "/metrics") {
    return MakeHttpResponse(200, "OK", "text/plain; version=0.0.4",
                            MetricsRegistry::Global().ToPrometheusText());
  }
  if (request.target == "/varz") {
    return MakeHttpResponse(200, "OK", "application/json",
                            MetricsRegistry::Global().ToJson() + "\n");
  }
  if (request.target == "/tracez") {
    return MakeHttpResponse(200, "OK", "application/json",
                            TracezJson() + "\n");
  }
  if (request.target == "/profilez") {
    // Default: human-readable flat table + allocation accounting.
    // ?folded=1 downloads the raw folded stacks for flamegraph.pl/speedscope.
    if (request.query.find("folded=1") != std::string::npos) {
      return MakeHttpResponse(200, "OK", "text/plain",
                              Profiler::Global().FoldedStacks());
    }
    return MakeHttpResponse(200, "OK", "text/plain",
                            Profiler::Global().ToText());
  }
  if (handled) {
    return MakeHttpResponse(404, "Not Found", "text/plain",
                            "unknown path; try /healthz /metrics /varz "
                            "/tracez /profilez /jobs /algorithmz\n");
  }
  return MakeHttpResponse(
      404, "Not Found", "text/plain",
      "unknown path; try /healthz /metrics /varz /tracez /profilez\n");
}

std::string HttpExporter::Dispatch(const HttpRequest& request) const {
  // Tracing ingress: honor a valid incoming traceparent (the caller's trace
  // id then flows through every span/log/metric this request produces), mint
  // a fresh context otherwise. Handlers that spawn work (the job API) copy
  // the ambient context before this scope ends.
  TraceContext context;
  if (!ParseTraceparent(request.traceparent, &context)) {
    context = MintTraceContext();
  }
  ScopedTraceContext scope(std::move(context));
  int64_t start_us = NowMicros();
  std::string response = Route(request, &handler_);
  int64_t elapsed_us = NowMicros() - start_us;
  // Per-endpoint latency, labeled by route shape + status class. Resolved
  // per request — requests are orders of magnitude rarer than the hot-path
  // metrics, so the map lookup is irrelevant here.
  char status_digit = response.size() > 9 ? response[9] : '5';
  MetricsRegistry::Global()
      .GetHistogramWithLabels(
          "http.request_us",
          WithLabels({{"target", NormalizedTarget(request.target)},
                      {"status", std::string(1, status_digit) + "xx"}}),
          RequestLatencyBucketsUs())
      .Record(static_cast<double>(elapsed_us));
  return response;
}

std::string HttpExporter::HandleRequest(const std::string& request_line) {
  HttpRequest request;
  ParseRequestLine(request_line, &request);
  return Route(request, nullptr);
}

Status HttpExporter::Start(uint16_t port) {
  if (running()) {
    return Status::FailedPrecondition("http exporter already running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("bind(127.0.0.1:" + std::to_string(port) +
                           "): " + err);
  }
  if (::listen(fd, 16) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("listen(): " + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("getsockname(): " + err);
  }
  if (::pipe(wake_fds_) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("pipe(): " + err);
  }
  listen_fd_ = fd;
  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  NDE_LOG(INFO) << "http exporter serving on 127.0.0.1:" << this->port();
  return Status();
}

void HttpExporter::Serve() {
  while (running()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_fds_[0], POLLIN, 0};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // Stop() wrote to the wake pipe
    if ((fds[0].revents & POLLIN) == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    HttpRequest request;
    std::string error_response;
    if (ReadHttpRequest(client, max_body_bytes_, &request, &error_response)) {
      WriteAll(client, Dispatch(request));
    } else if (!error_response.empty()) {
      WriteAll(client, error_response);
    }
    ::close(client);
  }
}

void HttpExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Wake the poll loop so it observes running_ == false and exits.
  char byte = 'x';
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  port_.store(0, std::memory_order_release);
}

HttpExporter::~HttpExporter() { Stop(); }

}  // namespace telemetry
}  // namespace nde
