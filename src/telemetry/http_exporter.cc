#include "telemetry/http_exporter.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "common/log.h"
#include "telemetry/health.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/trace.h"

namespace nde {
namespace telemetry {

namespace {

std::string MakeResponse(int status, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << " " << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

std::string TracezJson() {
  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  constexpr size_t kMaxSpans = 100;
  size_t begin = events.size() > kMaxSpans ? events.size() - kMaxSpans : 0;
  std::ostringstream os;
  os << "{\"buffered_spans\":" << events.size()
     << ",\"dropped_spans\":" << TraceBuffer::Global().dropped()
     << ",\"spans\":[";
  bool first = true;
  for (size_t i = begin; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(event.name) << "\",\"category\":\""
       << JsonEscape(event.category) << "\",\"ts_us\":" << event.ts_us
       << ",\"dur_us\":" << event.dur_us << ",\"tid\":" << event.tid << "}";
  }
  os << "]}";
  return os.str();
}

/// Reads until the end of the request headers (blank line) or EOF; only the
/// request line matters, but draining headers keeps clients happy.
std::string ReadRequestLine(int fd) {
  std::string data;
  char buf[1024];
  while (data.find("\r\n\r\n") == std::string::npos &&
         data.find("\n\n") == std::string::npos && data.size() < 16384) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    data.append(buf, static_cast<size_t>(n));
    if (data.find('\n') != std::string::npos && data.size() >= 4) {
      // We have the request line; keep draining only if more is in flight —
      // a single short read with a complete line is the common case.
      break;
    }
  }
  size_t eol = data.find('\n');
  if (eol == std::string::npos) return data;
  std::string line = data.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

void WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

std::string HttpExporter::HandleRequest(const std::string& request_line) {
  MetricsRegistry::Global().GetCounter("http_exporter.requests").Increment();
  // Chaos hook: a scrape failure must produce a well-formed 500, never tear
  // down the serving thread.
  if (failpoint::AnyArmed()) {
    failpoint::Outcome fp = failpoint::Fire("http.handle_request");
    if (fp.fired()) {
      return MakeResponse(500, "Internal Server Error", "text/plain",
                          fp.status.ToString() + "\n");
    }
  }
  std::istringstream is(request_line);
  std::string method, target;
  is >> method >> target;
  if (method != "GET") {
    return MakeResponse(405, "Method Not Allowed", "text/plain",
                        "only GET is supported\n");
  }
  // Split off the query string; /profilez honors it, everything else ignores
  // it (/metrics?x=1 serves /metrics).
  std::string query_string;
  size_t query = target.find('?');
  if (query != std::string::npos) {
    query_string = target.substr(query + 1);
    target = target.substr(0, query);
  }
  if (target == "/healthz") {
    // Degraded keeps serving scrapes: the process is alive but its current
    // work is failing (e.g. utility evaluation exhausted its retries), so
    // probers see 503 while /metrics stays readable.
    if (!IsHealthy()) {
      return MakeResponse(503, "Service Unavailable", "text/plain",
                          "degraded: " + HealthReason() + "\n");
    }
    return MakeResponse(200, "OK", "text/plain", "ok\n");
  }
  if (target == "/metrics") {
    return MakeResponse(200, "OK", "text/plain; version=0.0.4",
                        MetricsRegistry::Global().ToPrometheusText());
  }
  if (target == "/varz") {
    return MakeResponse(200, "OK", "application/json",
                        MetricsRegistry::Global().ToJson() + "\n");
  }
  if (target == "/tracez") {
    return MakeResponse(200, "OK", "application/json", TracezJson() + "\n");
  }
  if (target == "/profilez") {
    // Default: human-readable flat table + allocation accounting.
    // ?folded=1 downloads the raw folded stacks for flamegraph.pl/speedscope.
    if (query_string.find("folded=1") != std::string::npos) {
      return MakeResponse(200, "OK", "text/plain",
                          Profiler::Global().FoldedStacks());
    }
    return MakeResponse(200, "OK", "text/plain", Profiler::Global().ToText());
  }
  return MakeResponse(
      404, "Not Found", "text/plain",
      "unknown path; try /healthz /metrics /varz /tracez /profilez\n");
}

Status HttpExporter::Start(uint16_t port) {
  if (running()) {
    return Status::FailedPrecondition("http exporter already running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("bind(127.0.0.1:" + std::to_string(port) +
                           "): " + err);
  }
  if (::listen(fd, 16) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("listen(): " + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("getsockname(): " + err);
  }
  if (::pipe(wake_fds_) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("pipe(): " + err);
  }
  listen_fd_ = fd;
  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  NDE_LOG(INFO) << "http exporter serving on 127.0.0.1:" << this->port();
  return Status();
}

void HttpExporter::Serve() {
  while (running()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_fds_[0], POLLIN, 0};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // Stop() wrote to the wake pipe
    if ((fds[0].revents & POLLIN) == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    std::string request_line = ReadRequestLine(client);
    if (!request_line.empty()) {
      WriteAll(client, HandleRequest(request_line));
    }
    ::close(client);
  }
}

void HttpExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Wake the poll loop so it observes running_ == false and exits.
  char byte = 'x';
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  port_.store(0, std::memory_order_release);
}

HttpExporter::~HttpExporter() { Stop(); }

}  // namespace telemetry
}  // namespace nde
