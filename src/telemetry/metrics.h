#ifndef NDE_TELEMETRY_METRICS_H_
#define NDE_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nde {
namespace telemetry {

/// Monotonically increasing event counter. Increments are lock-free; reads
/// may race with writers and return a slightly stale value, which is fine
/// for reporting.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. "rows currently buffered").
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `upper_bounds` (strictly increasing) define the
/// buckets (-inf, b0], (b0, b1], ..., (b_last, +inf); recording and reading
/// are thread-safe and lock-free. Quantiles are estimated by linear
/// interpolation inside the bucket containing the target rank, so their
/// resolution is the bucket width (the standard Prometheus semantics).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Record(double value);

  uint64_t count() const;
  double sum() const;
  /// Count of values landing in bucket `i` (0 .. num_buckets()-1).
  uint64_t bucket_count(size_t i) const;
  size_t num_buckets() const { return counts_.size(); }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

  /// Quantile estimate for q in [0, 1]; 0 when the histogram is empty.
  /// Values in the overflow bucket are reported as the largest finite bound.
  double Quantile(double q) const;

  /// Zeroes all buckets; the bucket layout is kept.
  void Reset();

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<uint64_t>> counts_;  ///< one per bucket, + overflow
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets in milliseconds: 1us .. ~100s, x4 per bucket.
const std::vector<double>& DefaultLatencyBucketsMs();

/// --- Labeled metrics --------------------------------------------------------
///
/// A label set is a small sorted (key, value) list. Labeled series are stored
/// in the registry under the full series key `name{k="v",k2="v2"}`, so every
/// export path (table, Prometheus, JSON, snapshots/run reports) carries them
/// with no extra plumbing. Cardinality is bounded by a process-wide hard cap:
/// once the cap is reached, new label sets are refused (the unlabeled base
/// metric still counts them) and `telemetry.labels_dropped` ticks — a scrape
/// target can never be blown up by unbounded label values.

using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Canonicalizes a label list: sorted by key (stable series keys regardless
/// of call-site order). Usage: WithLabels({{"job_id", id}, {"algorithm", a}}).
MetricLabels WithLabels(MetricLabels labels);

/// Labels {{"algorithm",...},{"job_id",...}} from the calling thread's
/// TraceContext; empty (=> unlabeled metrics) outside any job.
MetricLabels CurrentJobLabels();

/// The full series key: `name` when labels is empty, else
/// `name{k="v",...}` with values escaped for Prometheus/JSON embedding.
std::string LabeledSeriesName(const std::string& name,
                              const MetricLabels& labels);

/// A resolved (base, labeled-series) counter pair: Increment hits both, so
/// unlabeled aggregates stay exact while the labeled breakdown accumulates.
/// Either pointer may be null (no-op half): `series` is null when the label
/// set was refused by the cardinality cap or the label list was empty, and a
/// default-constructed instance is a full no-op — hot paths resolve once and
/// increment unconditionally.
struct LabeledCounter {
  Counter* base = nullptr;
  Counter* series = nullptr;
  void Increment(uint64_t delta = 1) {
    if (base != nullptr) base->Increment(delta);
    if (series != nullptr) series->Increment(delta);
  }
};

/// Histogram companion to LabeledCounter, same null/no-op semantics.
struct LabeledHistogram {
  Histogram* base = nullptr;
  Histogram* series = nullptr;
  void Record(double value) {
    if (base != nullptr) base->Record(value);
    if (series != nullptr) series->Record(value);
  }
};

/// Point-in-time copy of one histogram's reporting summary.
struct HistogramSummary {
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Point-in-time copy of every registered metric, used by run reports and
/// the /varz endpoint. Values may be slightly stale relative to concurrent
/// writers (the usual relaxed-read reporting semantics).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;
};

/// Process-wide named-metric registry. Getters create on first use and
/// return references that stay valid for the registry's lifetime, so hot
/// paths may cache them. All operations are thread-safe.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `upper_bounds` is honored on first registration only; later callers
  /// with different bounds share the originally created histogram.
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& upper_bounds =
                              DefaultLatencyBucketsMs());

  /// Resolves the (base, labeled) counter pair for `name` + `labels`. The
  /// base counter is always created; the labeled series is created on first
  /// use unless the process-wide labeled-series cap is reached, in which
  /// case it stays null and `telemetry.labels_dropped` is incremented once
  /// per refused resolution. Returned pointers stay valid for the registry's
  /// lifetime — resolve once per run/instance, not per increment.
  LabeledCounter GetCounterWithLabels(const std::string& name,
                                      const MetricLabels& labels);
  /// Histogram twin of GetCounterWithLabels (bounds honored on first
  /// registration of each series, like GetHistogram).
  LabeledHistogram GetHistogramWithLabels(
      const std::string& name, const MetricLabels& labels,
      const std::vector<double>& upper_bounds = DefaultLatencyBucketsMs());

  /// Hard cap on distinct labeled series across all metric kinds; refused
  /// label sets fall back to base-only counting. Default 128.
  void SetLabelCardinalityCap(size_t cap);
  size_t label_cardinality_cap() const;
  /// Distinct labeled series currently registered (always <= the cap).
  size_t labeled_series_count() const;

  /// Copies every registered metric's current value.
  MetricsSnapshot Snapshot() const;

  /// Human-readable fixed-width table of every registered metric, sorted by
  /// metric name across kinds so two dumps diff cleanly.
  std::string ToTable() const;

  /// Prometheus text exposition format (counters, gauges, and histograms
  /// with cumulative `_bucket{le=...}` series), sorted by metric name across
  /// kinds for diffable scrapes.
  std::string ToPrometheusText() const;

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{name:
  /// {"count":...,"sum":...,"p50":...,"p95":...,"p99":...}}}; keys sorted.
  /// The /varz endpoint and RunReport metric snapshots both use this shape.
  std::string ToJson() const;

  /// Zeroes every registered metric (the metrics stay registered).
  void Reset();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  /// Lock-held twins of the public getters, for compound operations.
  Counter& CounterLocked(const std::string& name);
  Histogram& HistogramLocked(const std::string& name,
                             const std::vector<double>& upper_bounds);
  /// True when a new labeled series under `key` may be created; counts the
  /// drop otherwise. Call with mu_ held.
  bool AdmitLabeledSeriesLocked(bool exists);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  size_t label_cardinality_cap_ = 128;  ///< guarded by mu_
  size_t labeled_series_ = 0;           ///< series admitted so far
};

}  // namespace telemetry
}  // namespace nde

#endif  // NDE_TELEMETRY_METRICS_H_
