#ifndef NDE_TELEMETRY_HEALTH_H_
#define NDE_TELEMETRY_HEALTH_H_

#include <string>

namespace nde {
namespace telemetry {

/// Process-wide health flag feeding the HTTP exporter's /healthz endpoint.
///
/// The estimators flip it to degraded when utility evaluation starts failing
/// (after retries) and back to healthy when a retry succeeds, so an external
/// prober sees a long-running serve flip 200 -> 503 -> 200 across a fault
/// window instead of the process dying. Like the rest of the class-level
/// telemetry API this exists in both build modes (NDE_TELEMETRY=OFF only
/// compiles out the macros).
///
/// Thread-safe; the healthy bit is a relaxed atomic and the reason string is
/// mutex-guarded (read only on the scrape path).

/// Marks the process healthy again (the initial state).
void SetHealthy();

/// Marks the process degraded with a human-readable reason.
void SetDegraded(const std::string& reason);

/// Current health bit.
bool IsHealthy();

/// The most recent degradation reason; empty while healthy.
std::string HealthReason();

}  // namespace telemetry
}  // namespace nde

#endif  // NDE_TELEMETRY_HEALTH_H_
