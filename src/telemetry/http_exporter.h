#ifndef NDE_TELEMETRY_HTTP_EXPORTER_H_
#define NDE_TELEMETRY_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"

namespace nde {
namespace telemetry {

/// Minimal embedded HTTP/1.1 server exposing process observability, designed
/// for `nde_cli --serve PORT` and scrape-style clients (curl, Prometheus).
/// No third-party dependencies: POSIX sockets, one serving thread, requests
/// handled serially (scrapes are rare and cheap; concurrency would buy
/// nothing but locking).
///
/// Endpoints (GET only; anything else is 404/405):
///   /healthz  -> 200 "ok\n" liveness probe
///   /metrics  -> Prometheus text exposition of the global MetricsRegistry
///   /varz     -> the same registry as JSON (MetricsRegistry::ToJson)
///   /tracez   -> recent trace spans as JSON (most recent ~100)
///   /profilez -> sampling-profiler flat table + allocation accounting;
///                /profilez?folded=1 downloads raw folded stacks
///                (flamegraph.pl / speedscope input)
///
/// The server binds 127.0.0.1 only — this is an introspection port, not a
/// public service. Start(0) picks an ephemeral port, readable via port().
class HttpExporter {
 public:
  HttpExporter() = default;
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the serving thread.
  /// Fails if already running or the bind/listen fails.
  Status Start(uint16_t port);

  /// Stops the serving thread and closes the socket. Safe to call twice or
  /// when never started; also invoked by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the actual one when Start was given 0); 0 if stopped.
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Pure request router: maps a request line like "GET /metrics HTTP/1.1"
  /// to the complete HTTP response bytes. Exposed so tests can cover every
  /// endpoint deterministically without sockets; the serving thread uses
  /// exactly this function.
  static std::string HandleRequest(const std::string& request_line);

 private:
  void Serve();

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe so Stop() interrupts poll()
};

}  // namespace telemetry
}  // namespace nde

#endif  // NDE_TELEMETRY_HTTP_EXPORTER_H_
