#ifndef NDE_TELEMETRY_HTTP_EXPORTER_H_
#define NDE_TELEMETRY_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"

namespace nde {
namespace telemetry {

/// One parsed HTTP request, as handed to a custom handler. `target` has the
/// query string already split off; `body` is empty unless the client sent a
/// Content-Length body (bounded by HttpExporter::max_body_bytes).
struct HttpRequest {
  std::string method;       ///< "GET", "POST", "DELETE", ... (as sent)
  std::string target;       ///< path with the query string stripped
  std::string query;        ///< raw query string ("" when absent)
  std::string body;         ///< request body ("" when none was sent)
  std::string traceparent;  ///< raw `traceparent` header value ("" if absent)
};

/// Maps a request to complete HTTP response bytes. Build responses with
/// MakeHttpResponse so headers stay consistent with the built-in endpoints.
using HttpHandler = std::function<std::string(const HttpRequest&)>;

/// Builds a complete HTTP/1.1 response (status line, Content-Type,
/// Content-Length, Connection: close). Exposed for custom handlers.
std::string MakeHttpResponse(int status, const char* reason,
                             const std::string& content_type,
                             const std::string& body);

/// Minimal embedded HTTP/1.1 server exposing process observability, designed
/// for `nde_cli --serve PORT` and scrape-style clients (curl, Prometheus).
/// No third-party dependencies: POSIX sockets, one serving thread, requests
/// handled serially (scrapes are rare and cheap; concurrency would buy
/// nothing but locking).
///
/// Built-in endpoints (GET only; anything else is 404/405):
///   /healthz  -> 200 "ok\n" liveness probe
///   /metrics  -> Prometheus text exposition of the global MetricsRegistry
///   /varz     -> the same registry as JSON (MetricsRegistry::ToJson)
///   /tracez   -> recent trace spans as JSON (most recent ~100)
///   /profilez -> sampling-profiler flat table + allocation accounting;
///                /profilez?folded=1 downloads raw folded stacks
///                (flamegraph.pl / speedscope input)
///
/// Serving-layer routes: a handler installed via SetHandler receives every
/// request (any method, with its body) whose target is /jobs, /jobs/<id>, or
/// /algorithmz — the importance-job API mounts here (see src/nde/job_api.h).
/// Built-in endpoints are never routed to the handler, so their responses
/// stay byte-identical whether or not one is installed.
///
/// The server binds 127.0.0.1 only — this is an introspection port, not a
/// public service. Start(0) picks an ephemeral port, readable via port().
class HttpExporter {
 public:
  HttpExporter() = default;
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the serving thread.
  /// Fails if already running or the bind/listen fails.
  Status Start(uint16_t port);

  /// Stops the serving thread and closes the socket. Safe to call twice or
  /// when never started; also invoked by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the actual one when Start was given 0); 0 if stopped.
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Installs the serving-layer handler for the /jobs and /algorithmz
  /// routes. Call before Start(); the serving thread reads it unlocked.
  void SetHandler(HttpHandler handler) { handler_ = std::move(handler); }

  /// Request-body cap: a Content-Length above this is answered with 413
  /// before the body is read. Call before Start(). Default 1 MiB.
  void set_max_body_bytes(size_t bytes) { max_body_bytes_ = bytes; }
  size_t max_body_bytes() const { return max_body_bytes_; }

  /// Routes a full request through the built-in endpoints and the installed
  /// handler — the serving thread uses exactly this function. Exposed so
  /// tests can cover routing deterministically without sockets.
  ///
  /// This is the tracing ingress: a valid `request.traceparent` is adopted
  /// as the request's TraceContext (the caller-supplied trace id propagates
  /// through every span/log/metric the request produces), otherwise a fresh
  /// context is minted. Either way the context is installed around Route and
  /// removed before returning. Each dispatch also records its latency in the
  /// `http.request_us` histogram, labeled by normalized target and status
  /// class (2xx/4xx/...), visible in /metrics.
  std::string Dispatch(const HttpRequest& request) const;

  /// Pure request-line router over the built-in endpoints only (no handler,
  /// no body). The pre-serving-layer entry point, kept byte-identical for
  /// GET scrapes; prefer Dispatch for anything new.
  static std::string HandleRequest(const std::string& request_line);

 private:
  static std::string Route(const HttpRequest& request,
                           const HttpHandler* handler);
  void Serve();

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe so Stop() interrupts poll()
  HttpHandler handler_;
  size_t max_body_bytes_ = size_t{1} << 20;
};

}  // namespace telemetry
}  // namespace nde

#endif  // NDE_TELEMETRY_HTTP_EXPORTER_H_
