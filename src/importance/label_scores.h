#ifndef NDE_IMPORTANCE_LABEL_SCORES_H_
#define NDE_IMPORTANCE_LABEL_SCORES_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/model.h"

namespace nde {

/// --- Area under the margin (Pleiss et al. 2020) ------------------------------

struct AumOptions {
  double learning_rate = 0.5;
  size_t epochs = 60;
  double l2 = 1e-3;
};

/// Trains a softmax logistic model by gradient descent and records, for every
/// training example and epoch, the margin
///   logit(assigned label) - max logit(other labels).
/// The returned score is the mean margin over training ("area under the
/// margin"). Mislabeled examples fight the gradient signal of their
/// neighbors and accumulate low or negative margins, so *low* AUM flags
/// suspect labels.
Result<std::vector<double>> AumScores(const MlDataset& data,
                                      const AumOptions& options = {});

/// --- Cross-validated self-confidence (confident-learning style) --------------

struct SelfConfidenceOptions {
  size_t num_folds = 5;
  uint64_t seed = 42;
};

/// Out-of-fold predicted probability of each example's *assigned* label,
/// using models trained on the other folds (Northcutt et al.'s
/// self-confidence signal). Low values flag suspect labels.
Result<std::vector<double>> SelfConfidenceScores(
    const ClassifierFactory& factory, const MlDataset& data,
    const SelfConfidenceOptions& options = {});

/// Confident-learning-style suspect selection: an example is a suspect when
/// its self-confidence falls below the mean self-confidence of its assigned
/// class. Returns suspect indices (sorted).
std::vector<size_t> ConfidentLearningSuspects(
    const std::vector<double>& self_confidence, const std::vector<int>& labels);

}  // namespace nde

#endif  // NDE_IMPORTANCE_LABEL_SCORES_H_
