#include "importance/influence.h"

#include <algorithm>
#include <cmath>

#include "linalg/solve.h"

namespace nde {

namespace {

constexpr double kBiasRegularization = 1e-9;

/// Design matrix with standardization and a trailing intercept column.
Matrix BuildDesign(const Matrix& features, const FeatureScaler& scaler) {
  Matrix x = scaler.Transform(features);
  Matrix ones(x.rows(), 1, 1.0);
  return x.ConcatCols(ones);
}

double Sigmoid(double z) {
  if (z >= 0.0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

/// Newton-fitted binary logistic regression on a prepared design matrix.
/// Returns the weight vector (last entry = bias).
Result<std::vector<double>> NewtonLogistic(const Matrix& design,
                                           const std::vector<int>& labels,
                                           double l2, size_t iterations) {
  size_t n = design.rows();
  size_t p = design.cols();
  std::vector<double> w(p, 0.0);
  double inv_n = 1.0 / static_cast<double>(n);
  for (size_t iter = 0; iter < iterations; ++iter) {
    std::vector<double> gradient(p, 0.0);
    Matrix hessian(p, p);
    for (size_t i = 0; i < n; ++i) {
      const double* xi = design.RowPtr(i);
      double z = 0.0;
      for (size_t j = 0; j < p; ++j) z += w[j] * xi[j];
      double prob = Sigmoid(z);
      double err = prob - static_cast<double>(labels[i]);
      double curvature = std::max(prob * (1.0 - prob), 1e-9);
      for (size_t j = 0; j < p; ++j) {
        gradient[j] += err * xi[j];
        double scaled = curvature * xi[j];
        for (size_t l = 0; l <= j; ++l) hessian(j, l) += scaled * xi[l];
      }
    }
    for (size_t j = 0; j < p; ++j) {
      for (size_t l = 0; l < j; ++l) hessian(l, j) = hessian(j, l);
    }
    for (size_t j = 0; j < p; ++j) {
      double reg = (j + 1 == p) ? kBiasRegularization : l2;
      gradient[j] = gradient[j] * inv_n + reg * w[j];
      for (size_t l = 0; l < p; ++l) hessian(j, l) *= inv_n;
      hessian(j, j) += reg;
    }
    NDE_ASSIGN_OR_RETURN(std::vector<double> step,
                         CholeskySolve(hessian, gradient));
    double step_norm = 0.0;
    for (size_t j = 0; j < p; ++j) {
      w[j] -= step[j];
      step_norm += step[j] * step[j];
    }
    if (step_norm < 1e-18) break;
  }
  return w;
}

Status ValidateBinary(const MlDataset& data, const char* what) {
  NDE_RETURN_IF_ERROR(data.Validate());
  for (int label : data.labels) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument(
          std::string(what) + ": influence functions require binary labels");
    }
  }
  return Status::OK();
}

double MeanLogLoss(const Matrix& design, const std::vector<int>& labels,
                   const std::vector<double>& w) {
  double total = 0.0;
  for (size_t i = 0; i < design.rows(); ++i) {
    const double* xi = design.RowPtr(i);
    double z = 0.0;
    for (size_t j = 0; j < w.size(); ++j) z += w[j] * xi[j];
    double prob = Sigmoid(z);
    double p_true = labels[i] == 1 ? prob : 1.0 - prob;
    total -= std::log(std::max(p_true, 1e-12));
  }
  return design.rows() == 0 ? 0.0 : total / static_cast<double>(design.rows());
}

}  // namespace

Result<std::vector<double>> InfluenceOnValidationLoss(
    const MlDataset& train, const MlDataset& validation,
    const InfluenceOptions& options) {
  NDE_RETURN_IF_ERROR(ValidateBinary(train, "train"));
  NDE_RETURN_IF_ERROR(ValidateBinary(validation, "validation"));
  if (train.size() == 0 || validation.size() == 0) {
    return Status::InvalidArgument("empty train or validation set");
  }

  size_t n = train.size();
  FeatureScaler scaler =
      options.standardize
          ? FeatureScaler::Fit(train.features)
          : FeatureScaler{std::vector<double>(train.features.cols(), 0.0),
                          std::vector<double>(train.features.cols(), 1.0)};
  Matrix train_design = BuildDesign(train.features, scaler);
  Matrix val_design = BuildDesign(validation.features, scaler);
  size_t p = train_design.cols();

  NDE_ASSIGN_OR_RETURN(
      std::vector<double> w,
      NewtonLogistic(train_design, train.labels, options.l2,
                     options.newton_iterations));

  // Hessian at the optimum (with regularization), and per-point residuals.
  Matrix hessian(p, p);
  std::vector<double> residuals(n);
  double inv_n = 1.0 / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double* xi = train_design.RowPtr(i);
    double z = 0.0;
    for (size_t j = 0; j < p; ++j) z += w[j] * xi[j];
    double prob = Sigmoid(z);
    residuals[i] = prob - static_cast<double>(train.labels[i]);
    double curvature = std::max(prob * (1.0 - prob), 1e-9);
    for (size_t j = 0; j < p; ++j) {
      double scaled = curvature * xi[j];
      for (size_t l = 0; l <= j; ++l) hessian(j, l) += scaled * xi[l];
    }
  }
  for (size_t j = 0; j < p; ++j) {
    for (size_t l = 0; l < j; ++l) hessian(l, j) = hessian(j, l);
  }
  for (size_t j = 0; j < p; ++j) {
    for (size_t l = 0; l < p; ++l) hessian(j, l) *= inv_n;
    hessian(j, j) += (j + 1 == p) ? kBiasRegularization : options.l2;
  }

  // Mean validation-loss gradient.
  std::vector<double> val_gradient(p, 0.0);
  for (size_t v = 0; v < validation.size(); ++v) {
    const double* xv = val_design.RowPtr(v);
    double z = 0.0;
    for (size_t j = 0; j < p; ++j) z += w[j] * xv[j];
    double err = Sigmoid(z) - static_cast<double>(validation.labels[v]);
    for (size_t j = 0; j < p; ++j) val_gradient[j] += err * xv[j];
  }
  for (double& g : val_gradient) g /= static_cast<double>(validation.size());

  // s = H^{-1} g_val, then phi_i = (1/n) s^T grad L(z_i).
  NDE_ASSIGN_OR_RETURN(std::vector<double> s,
                       CholeskySolve(hessian, val_gradient));
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    const double* xi = train_design.RowPtr(i);
    double dot = 0.0;
    for (size_t j = 0; j < p; ++j) dot += s[j] * xi[j];
    values[i] = inv_n * residuals[i] * dot;
  }
  return values;
}

Result<std::vector<double>> ExactRemovalLossChange(
    const MlDataset& train, const MlDataset& validation,
    const InfluenceOptions& options) {
  NDE_RETURN_IF_ERROR(ValidateBinary(train, "train"));
  NDE_RETURN_IF_ERROR(ValidateBinary(validation, "validation"));
  size_t n = train.size();
  if (n < 2 || validation.size() == 0) {
    return Status::InvalidArgument("need >= 2 train rows and a validation set");
  }
  FeatureScaler scaler =
      options.standardize
          ? FeatureScaler::Fit(train.features)
          : FeatureScaler{std::vector<double>(train.features.cols(), 0.0),
                          std::vector<double>(train.features.cols(), 1.0)};
  Matrix train_design = BuildDesign(train.features, scaler);
  Matrix val_design = BuildDesign(validation.features, scaler);

  NDE_ASSIGN_OR_RETURN(
      std::vector<double> w_full,
      NewtonLogistic(train_design, train.labels, options.l2,
                     options.newton_iterations));
  double loss_full = MeanLogLoss(val_design, validation.labels, w_full);

  std::vector<double> changes(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<size_t> keep;
    keep.reserve(n - 1);
    for (size_t j = 0; j < n; ++j) {
      if (j != i) keep.push_back(j);
    }
    Matrix reduced = train_design.SelectRows(keep);
    std::vector<int> labels;
    labels.reserve(n - 1);
    for (size_t j : keep) labels.push_back(train.labels[j]);
    NDE_ASSIGN_OR_RETURN(
        std::vector<double> w,
        NewtonLogistic(reduced, labels, options.l2, options.newton_iterations));
    changes[i] = MeanLogLoss(val_design, validation.labels, w) - loss_full;
  }
  return changes;
}

}  // namespace nde
