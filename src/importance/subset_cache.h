#ifndef NDE_IMPORTANCE_SUBSET_CACHE_H_
#define NDE_IMPORTANCE_SUBSET_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "telemetry/metrics.h"

namespace nde {

/// Order-independent subset hash: a commutative (addition) fold of a 64-bit
/// mix of each element, so {1,5,9} and {9,1,5} collide by construction.
/// Equality still compares full (canonicalized) keys, so the commutative fold
/// costs nothing in correctness.
struct OrderIndependentSubsetHash {
  size_t operator()(const std::vector<size_t>& subset) const;
};

/// Non-owning probe key: a sorted index span plus its precomputed
/// order-independent hash. The hot GetOrCompute probe builds one of these so
/// the map lookup neither copies the subset nor re-hashes its elements;
/// an owned vector key is materialized only when a miss actually inserts.
/// Invariant: `hash` must equal OrderIndependentSubsetHash over the span.
struct SubsetKeyView {
  const size_t* data = nullptr;
  size_t size = 0;
  uint64_t hash = 0;
};

/// Transparent (C++20 heterogeneous-lookup) hasher over owned keys and
/// SubsetKeyView probes.
struct SubsetKeyHash {
  using is_transparent = void;
  size_t operator()(const std::vector<size_t>& subset) const {
    return OrderIndependentSubsetHash{}(subset);
  }
  size_t operator()(const SubsetKeyView& view) const {
    return static_cast<size_t>(view.hash);
  }
};

/// Transparent equality companion: always full element comparison, so hash
/// collisions can share a bucket but never corrupt a lookup.
struct SubsetKeyEq {
  using is_transparent = void;
  bool operator()(const std::vector<size_t>& a,
                  const std::vector<size_t>& b) const {
    return a == b;
  }
  bool operator()(const std::vector<size_t>& a, const SubsetKeyView& b) const {
    return a.size() == b.size && std::equal(a.begin(), a.end(), b.data);
  }
  bool operator()(const SubsetKeyView& a, const std::vector<size_t>& b) const {
    return operator()(b, a);
  }
};

/// Configuration for a SubsetCache.
struct SubsetCacheOptions {
  /// Lock shards. Concurrent utility evaluations from the parallel
  /// estimators hash to independent shards, so contention stays low without
  /// a lock-free structure.
  size_t num_shards = 8;
  /// Size bound across all shards (entries, not bytes). Each shard holds up
  /// to max_entries / num_shards values and evicts FIFO beyond that.
  size_t max_entries = 16384;
};

/// Thread-safe, size-bounded memoization cache for coalition utility values,
/// shared across waves and across estimators evaluating the same game.
///
/// Keys are subsets of training-unit indices, hashed order-independently
/// (commutative mix over the elements) and canonicalized to sorted form, so
/// the same coalition hits regardless of the order a caller lists it in.
///
/// Determinism: the cache stores exact values produced by the deterministic
/// utility, hits are resolved by full-key equality (hash collisions can share
/// a shard, never corrupt a value), and concurrent computes of the same key
/// produce identical values (first insert wins). Estimator results are
/// therefore bit-identical with the cache on or off, for any thread count and
/// any eviction pattern — eviction only costs recomputation.
class SubsetCache {
 public:
  explicit SubsetCache(SubsetCacheOptions options = {});

  /// Returns the cached value for `subset`, or invokes `compute` (outside the
  /// shard lock, so concurrent evaluations of distinct subsets never
  /// serialize) and caches the result.
  double GetOrCompute(const std::vector<size_t>& subset,
                      const std::function<double()>& compute);

  /// Counters over the cache's lifetime. `entries` is the current size.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };
  Stats stats() const;

  const SubsetCacheOptions& options() const { return options_; }

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::vector<size_t>, double, SubsetKeyHash, SubsetKeyEq>
        values;
    /// Insertion-order queue for FIFO eviction.
    std::deque<std::vector<size_t>> order;
  };

  SubsetCacheOptions options_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Registry counters resolved once at construction (construction happens
  /// on the owning run's thread, so a job's labels attach here), then
  /// incremented lock-free on the hot probe path.
  telemetry::LabeledCounter hit_counter_;
  telemetry::LabeledCounter miss_counter_;
  telemetry::LabeledCounter eviction_counter_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<size_t> entries_{0};
};

}  // namespace nde

#endif  // NDE_IMPORTANCE_SUBSET_CACHE_H_
