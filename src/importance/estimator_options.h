#ifndef NDE_IMPORTANCE_ESTIMATOR_OPTIONS_H_
#define NDE_IMPORTANCE_ESTIMATOR_OPTIONS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/progress.h"

namespace nde {

/// Knobs shared by every importance estimator. Method-specific option structs
/// (TmcShapleyOptions, BanzhafOptions, BetaShapleyOptions) embed this by
/// inheritance, so `options.seed = ...` keeps working at every call site and
/// any estimator can be handed a plain EstimatorOptions.
struct EstimatorOptions {
  /// Base seed for the estimator's SeedSequence. Fixing the seed fixes the
  /// result bit-for-bit regardless of num_threads (see DESIGN.md §8).
  uint64_t seed = 42;

  /// Worker threads for the utility-evaluation fan-out; 0 means the
  /// process-wide default (DefaultNumThreads(), i.e. hardware concurrency
  /// unless overridden by the CLI's --threads flag).
  size_t num_threads = 0;

  /// Early-stopping tolerance for Monte-Carlo estimators: sampling stops once
  /// every unit's standard error falls to or below this value (checked at
  /// fixed wave boundaries, so stopping is thread-count invariant). 0 disables
  /// early stopping and runs the full sampling budget.
  double convergence_tolerance = 0.0;

  /// Use the utility's incremental prefix-scan fast path for permutation
  /// scans (TMC-Shapley) when the utility offers one. Exact scans (e.g. the
  /// KNN coalition scorer) are bit-identical to per-prefix Evaluate calls, so
  /// this is on by default; turn off only to benchmark the slow path.
  bool use_prefix_scan = true;

  /// Opt into *approximate* warm-started prefix training: when the utility
  /// has no exact scan, permutation scans may reuse one model per permutation
  /// via Classifier::FitIncremental (reduced iteration budget for gradient
  /// models). Like truncation_tolerance this trades a little bias for a big
  /// speedup, so it is off by default; results stay deterministic for any
  /// thread count either way.
  bool warm_start = false;

  /// Bounded retry budget for *retryable* utility failures (status codes
  /// unavailable / resource_exhausted, the ones a transient backend emits).
  /// Non-retryable failures — and NaN-poisoned values — abort the wave
  /// immediately. Each retry counts toward `estimator.retries` telemetry.
  size_t max_retries = 2;

  /// Base backoff before the first retry; doubles per attempt, capped at
  /// 10x the base. Kept small by default so chaos tests stay fast.
  uint32_t retry_backoff_ms = 25;

  /// Observational progress hook, invoked on the coordinating thread at fixed
  /// wave boundaries (see common/progress.h). Powers live progress/ETA lines
  /// and RunReport convergence curves; installing one never changes results
  /// (DESIGN.md §10). Leave empty to skip all progress bookkeeping.
  ProgressCallback progress;

  /// Cooperative cancellation: when non-null, the wave-based estimators poll
  /// this flag at fixed wave boundaries and stop with abort_cause
  /// StatusCode::kCancelled. Completed waves are kept, so a cancelled run's
  /// partial estimate is bit-identical to a clean smaller-budget run (the
  /// same contract fault aborts follow, DESIGN.md §11); the serving layer's
  /// DELETE /jobs/<id> raises it. The flag must outlive the estimator call.
  const std::atomic<bool>* cancel = nullptr;
};

}  // namespace nde

#endif  // NDE_IMPORTANCE_ESTIMATOR_OPTIONS_H_
