#include "importance/label_scores.h"

#include <algorithm>
#include <cmath>

#include "ml/logistic_regression.h"

namespace nde {

Result<std::vector<double>> AumScores(const MlDataset& data,
                                      const AumOptions& options) {
  NDE_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  int num_classes = std::max(data.NumClasses(), 2);
  size_t n = data.size();
  size_t d = data.features.cols();

  FeatureScaler scaler = FeatureScaler::Fit(data.features);
  Matrix x = scaler.Transform(data.features);

  Matrix weights(static_cast<size_t>(num_classes), d + 1);
  Matrix gradient(static_cast<size_t>(num_classes), d + 1);
  std::vector<double> margin_sum(n, 0.0);
  double inv_n = 1.0 / static_cast<double>(n);

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    // Forward pass: logits, margins, probabilities.
    Matrix logits(n, static_cast<size_t>(num_classes));
    for (size_t i = 0; i < n; ++i) {
      const double* xi = x.RowPtr(i);
      for (int c = 0; c < num_classes; ++c) {
        const double* w = weights.RowPtr(static_cast<size_t>(c));
        double acc = w[d];
        for (size_t j = 0; j < d; ++j) acc += w[j] * xi[j];
        logits(i, static_cast<size_t>(c)) = acc;
      }
      double assigned = logits(i, static_cast<size_t>(data.labels[i]));
      double best_other = -1e300;
      for (int c = 0; c < num_classes; ++c) {
        if (c == data.labels[i]) continue;
        best_other = std::max(best_other, logits(i, static_cast<size_t>(c)));
      }
      margin_sum[i] += assigned - best_other;
    }
    SoftmaxRowsInPlace(&logits);
    // Backward pass.
    for (size_t i = 0; i < gradient.size(); ++i) {
      gradient.mutable_data()[i] = 0.0;
    }
    for (size_t i = 0; i < n; ++i) {
      const double* xi = x.RowPtr(i);
      for (int c = 0; c < num_classes; ++c) {
        double err = logits(i, static_cast<size_t>(c)) -
                     (data.labels[i] == c ? 1.0 : 0.0);
        double* grad = gradient.RowPtr(static_cast<size_t>(c));
        for (size_t j = 0; j < d; ++j) grad[j] += err * xi[j];
        grad[d] += err;
      }
    }
    for (int c = 0; c < num_classes; ++c) {
      double* grad = gradient.RowPtr(static_cast<size_t>(c));
      const double* w = weights.RowPtr(static_cast<size_t>(c));
      for (size_t j = 0; j < d; ++j) {
        grad[j] = grad[j] * inv_n + options.l2 * w[j];
      }
      grad[d] *= inv_n;
    }
    gradient.ScaleInPlace(-options.learning_rate);
    weights.AddInPlace(gradient);
  }

  for (double& m : margin_sum) m /= static_cast<double>(options.epochs);
  return margin_sum;
}

Result<std::vector<double>> SelfConfidenceScores(
    const ClassifierFactory& factory, const MlDataset& data,
    const SelfConfidenceOptions& options) {
  NDE_RETURN_IF_ERROR(data.Validate());
  if (factory == nullptr) {
    return Status::InvalidArgument("null classifier factory");
  }
  size_t n = data.size();
  if (options.num_folds < 2 || n < options.num_folds) {
    return Status::InvalidArgument("need num_folds >= 2 and n >= num_folds");
  }
  int num_classes = std::max(data.NumClasses(), 2);

  Rng rng(options.seed);
  std::vector<size_t> perm = rng.Permutation(n);
  std::vector<size_t> fold_of(n);
  for (size_t pos = 0; pos < n; ++pos) {
    fold_of[perm[pos]] = pos % options.num_folds;
  }

  std::vector<double> scores(n, 0.0);
  for (size_t fold = 0; fold < options.num_folds; ++fold) {
    std::vector<size_t> train_idx;
    std::vector<size_t> held_idx;
    for (size_t i = 0; i < n; ++i) {
      (fold_of[i] == fold ? held_idx : train_idx).push_back(i);
    }
    if (train_idx.empty() || held_idx.empty()) continue;
    MlDataset fold_train = data.Subset(train_idx);
    std::unique_ptr<Classifier> model = factory();
    NDE_RETURN_IF_ERROR(model->FitWithClasses(fold_train, num_classes));
    MlDataset held = data.Subset(held_idx);
    Matrix proba = model->PredictProba(held.features);
    for (size_t pos = 0; pos < held_idx.size(); ++pos) {
      scores[held_idx[pos]] =
          proba(pos, static_cast<size_t>(data.labels[held_idx[pos]]));
    }
  }
  return scores;
}

std::vector<size_t> ConfidentLearningSuspects(
    const std::vector<double>& self_confidence, const std::vector<int>& labels) {
  NDE_CHECK_EQ(self_confidence.size(), labels.size());
  // Per-class mean self-confidence threshold.
  std::vector<double> class_sum;
  std::vector<size_t> class_count;
  for (size_t i = 0; i < labels.size(); ++i) {
    size_t c = static_cast<size_t>(labels[i]);
    if (c >= class_sum.size()) {
      class_sum.resize(c + 1, 0.0);
      class_count.resize(c + 1, 0);
    }
    class_sum[c] += self_confidence[i];
    ++class_count[c];
  }
  std::vector<double> threshold(class_sum.size(), 0.0);
  for (size_t c = 0; c < class_sum.size(); ++c) {
    if (class_count[c] > 0) {
      threshold[c] = class_sum[c] / static_cast<double>(class_count[c]);
    }
  }
  std::vector<size_t> suspects;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (self_confidence[i] < threshold[static_cast<size_t>(labels[i])]) {
      suspects.push_back(i);
    }
  }
  return suspects;
}

}  // namespace nde
