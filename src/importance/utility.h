#ifndef NDE_IMPORTANCE_UTILITY_H_
#define NDE_IMPORTANCE_UTILITY_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/arena.h"
#include "common/result.h"
#include "importance/subset_cache.h"
#include "ml/dataset.h"
#include "ml/metrics.h"
#include "ml/model.h"

namespace nde {

/// A coalition utility v(S) over subsets of training units, the object all
/// game-theoretic importance methods (LOO, Shapley, Banzhaf, Beta-Shapley)
/// are defined on.
///
/// Subsets are given as sorted, unique indices into the training set.
///
/// Thread-safety contract: the parallel estimators call Evaluate concurrently
/// from many worker threads, so implementations must keep Evaluate free of
/// unsynchronized mutable state (counters go in atomics, as
/// ModelAccuracyUtility does).
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// Value of the coalition `subset`.
  virtual double Evaluate(const std::vector<size_t>& subset) const = 0;

  /// Failure-aware wrapper around Evaluate: the estimators call this so a
  /// backend fault (injected through the `utility.evaluate` failpoint, or a
  /// real one once utilities grow fallible backends) surfaces as a typed
  /// Status instead of undefined behavior. The failpoint is keyed by an
  /// order-insensitive hash of the subset mixed with `salt`, so probabilistic
  /// specs replay bit-identically for any thread count; retrying callers pass
  /// the attempt number as `salt` to re-roll the decision deterministically.
  /// A `nan` action poisons the value path: TryEvaluate returns quiet NaN and
  /// the caller's finiteness check converts it into a typed error.
  Result<double> TryEvaluate(const std::vector<size_t>& subset,
                             uint64_t salt = 0) const;

  /// Number of training units (players).
  virtual size_t num_units() const = 0;

  /// v(N): utility of the full training set.
  double FullUtility() const;

  /// v(empty set).
  double EmptyUtility() const { return Evaluate({}); }

  /// One permutation scan's worth of incremental utility evaluation: the TMC
  /// estimator grows a coalition one unit at a time, and Push(unit) returns
  /// v(coalition + unit) — the same value Evaluate would return on the grown
  /// subset, but without retraining from scratch. A scan session is
  /// single-threaded and starts from the empty coalition.
  class PrefixScan {
   public:
    virtual ~PrefixScan() = default;

    /// Adds `unit` to the coalition and returns the utility of the grown
    /// coalition. Each Push counts as one utility evaluation.
    virtual double Push(size_t unit) = 0;
  };

  /// Returns a fresh scan session, or nullptr when the utility has no fast
  /// path (the caller then falls back to plain Evaluate per prefix).
  ///
  /// An *exact* scan returns bit-identical values to Evaluate and may always
  /// be used. When no exact scan exists and `allow_warm_start` is true, the
  /// utility may return an approximate warm-started scan (model reuse across
  /// prefixes) — estimators only pass true when the caller opted in via
  /// EstimatorOptions::warm_start. Thread-safe; called once per permutation.
  virtual std::unique_ptr<PrefixScan> NewPrefixScan(
      bool allow_warm_start) const {
    (void)allow_warm_start;
    return nullptr;
  }
};

/// Fast-path knobs for ModelAccuracyUtility. All defaults preserve the exact
/// semantics of the slow path.
struct UtilityFastPathOptions {
  /// Train via zero-copy index views (Classifier::FitView) instead of
  /// materializing each coalition. Bit-identical by the FitView contract;
  /// off only to benchmark the copy cost.
  bool zero_copy_views = true;

  /// Attach a sharded exact-value SubsetCache shared by every Evaluate call
  /// on this utility (and thus across waves and estimators). Values stay
  /// bit-identical; repeated coalitions skip retraining entirely.
  bool subset_cache = false;

  /// Cache shape when `subset_cache` is on.
  SubsetCacheOptions cache;

  /// Use the structure-of-arrays coalition-scorer kernels on the prefix-scan
  /// fast path (see CoalitionScorerOptions::soa_kernels). Bit-identical; off
  /// only to benchmark the kernel layout.
  bool soa_kernels = true;

  /// Opt into float32 distance storage on the KNN prefix-scan kernel.
  /// Approximate (changes bits), so default-off; deterministic for any
  /// thread count like every fast path.
  bool float32 = false;

  /// Back each prefix scan's scorer state with a pooled arena instead of
  /// per-scan heap allocations. Placement only — never changes results.
  bool arena = true;
};

/// The standard data-valuation utility: validation accuracy of a model
/// retrained on the subset.
///
/// Conventions for degenerate coalitions:
///   - empty subset: random-guess accuracy 1/num_classes;
///   - training failure (e.g. one class only and the model rejects it):
///     accuracy of predicting the subset's majority label on the validation
///     set.
class ModelAccuracyUtility : public UtilityFunction {
 public:
  ModelAccuracyUtility(ClassifierFactory factory, MlDataset train,
                       MlDataset validation,
                       UtilityFastPathOptions fast_path = {});

  double Evaluate(const std::vector<size_t>& subset) const override;
  size_t num_units() const override { return train_.size(); }

  /// Exact scan via the model's CoalitionScorerContext when available (KNN),
  /// else a warm-started scan via Classifier::FitIncremental when
  /// `allow_warm_start`, else nullptr.
  std::unique_ptr<PrefixScan> NewPrefixScan(
      bool allow_warm_start) const override;

  const MlDataset& train() const { return train_; }
  const MlDataset& validation() const { return validation_; }

  /// Total number of Evaluate calls so far (Monte-Carlo cost accounting).
  /// Cache hits and prefix-scan pushes count too: the number reflects how
  /// often the *game* was queried, not how often a model was trained, so it
  /// is identical with every fast path on or off.
  size_t num_evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

  /// The attached cache, or nullptr when fast_path.subset_cache is off.
  const SubsetCache* subset_cache() const { return cache_.get(); }

 private:
  class ExactScan;
  class WarmStartScan;

  /// Evaluate minus counting and caching.
  double EvaluateUncached(const std::vector<size_t>& subset) const;

  /// Majority-label fallback accuracy from coalition label counts.
  double MajorityAccuracy(const std::vector<int>& coalition_labels) const;

  ClassifierFactory factory_;
  MlDataset train_;
  MlDataset validation_;
  int num_classes_;
  UtilityFastPathOptions fast_path_;
  std::unique_ptr<SubsetCache> cache_;  ///< Internally synchronized.
  /// Recycles scorer arenas across permutation scans (one arena per live
  /// scan). Mutable: NewPrefixScan is const and runs concurrently; the pool
  /// is internally synchronized.
  mutable ArenaPool arena_pool_;
  /// Shared exact-scorer precomputation, built lazily on the first
  /// NewPrefixScan (it is useless — and not free — for plain Evaluate users).
  mutable std::once_flag scorer_context_once_;
  mutable std::shared_ptr<const CoalitionScorerContext> scorer_context_;
  /// Atomic: Evaluate runs concurrently under the parallel estimators.
  mutable std::atomic<size_t> evaluations_{0};
};

}  // namespace nde

#endif  // NDE_IMPORTANCE_UTILITY_H_
