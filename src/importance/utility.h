#ifndef NDE_IMPORTANCE_UTILITY_H_
#define NDE_IMPORTANCE_UTILITY_H_

#include <atomic>
#include <memory>
#include <vector>

#include "ml/dataset.h"
#include "ml/metrics.h"
#include "ml/model.h"

namespace nde {

/// A coalition utility v(S) over subsets of training units, the object all
/// game-theoretic importance methods (LOO, Shapley, Banzhaf, Beta-Shapley)
/// are defined on.
///
/// Subsets are given as sorted, unique indices into the training set.
///
/// Thread-safety contract: the parallel estimators call Evaluate concurrently
/// from many worker threads, so implementations must keep Evaluate free of
/// unsynchronized mutable state (counters go in atomics, as
/// ModelAccuracyUtility does).
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// Value of the coalition `subset`.
  virtual double Evaluate(const std::vector<size_t>& subset) const = 0;

  /// Number of training units (players).
  virtual size_t num_units() const = 0;

  /// v(N): utility of the full training set.
  double FullUtility() const;

  /// v(empty set).
  double EmptyUtility() const { return Evaluate({}); }
};

/// The standard data-valuation utility: validation accuracy of a model
/// retrained on the subset.
///
/// Conventions for degenerate coalitions:
///   - empty subset: random-guess accuracy 1/num_classes;
///   - training failure (e.g. one class only and the model rejects it):
///     accuracy of predicting the subset's majority label on the validation
///     set.
class ModelAccuracyUtility : public UtilityFunction {
 public:
  ModelAccuracyUtility(ClassifierFactory factory, MlDataset train,
                       MlDataset validation);

  double Evaluate(const std::vector<size_t>& subset) const override;
  size_t num_units() const override { return train_.size(); }

  const MlDataset& train() const { return train_; }
  const MlDataset& validation() const { return validation_; }

  /// Total number of Evaluate calls so far (Monte-Carlo cost accounting).
  size_t num_evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

 private:
  ClassifierFactory factory_;
  MlDataset train_;
  MlDataset validation_;
  int num_classes_;
  /// Atomic: Evaluate runs concurrently under the parallel estimators.
  mutable std::atomic<size_t> evaluations_{0};
};

}  // namespace nde

#endif  // NDE_IMPORTANCE_UTILITY_H_
