#ifndef NDE_IMPORTANCE_GROUPED_H_
#define NDE_IMPORTANCE_GROUPED_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "importance/utility.h"

namespace nde {

/// Group-level data importance: the players of the cooperative game are
/// *groups* of training rows (data providers, ingestion batches, source
/// files) instead of individual tuples. Several debugging techniques assess
/// the impact of removing groups of points (Hammoudeh & Lowd 2024, §2.4 of
/// the tutorial), and group granularity is also what data markets price.
///
/// `GroupedUtility` adapts any row-level utility: a coalition of groups
/// evaluates the base utility on the union of their rows. Plug the result
/// into any estimator in game_values.h (exact Shapley for few groups,
/// TMC/Banzhaf for many).
class GroupedUtility : public UtilityFunction {
 public:
  /// `group_of[i]` is the group id of training row i; ids must be dense
  /// 0..num_groups-1. `base` must outlive this object.
  GroupedUtility(const UtilityFunction* base, std::vector<size_t> group_of);

  /// Factory validating the group assignment (size match, dense ids).
  static Result<GroupedUtility> Create(const UtilityFunction* base,
                                       std::vector<size_t> group_of);

  double Evaluate(const std::vector<size_t>& group_subset) const override;
  size_t num_units() const override { return num_groups_; }

  /// Rows in group `g`.
  const std::vector<size_t>& GroupRows(size_t g) const {
    NDE_CHECK_LT(g, num_groups_);
    return rows_by_group_[g];
  }

 private:
  const UtilityFunction* base_;
  size_t num_groups_;
  std::vector<std::vector<size_t>> rows_by_group_;
};

/// Convenience: exact group Shapley values (for <= ~15 groups) of a model
/// accuracy game over `train`/`validation` with groups `group_of`.
Result<std::vector<double>> GroupShapleyValues(const ClassifierFactory& factory,
                                               const MlDataset& train,
                                               const MlDataset& validation,
                                               const std::vector<size_t>& group_of);

}  // namespace nde

#endif  // NDE_IMPORTANCE_GROUPED_H_
