#ifndef NDE_IMPORTANCE_INFLUENCE_H_
#define NDE_IMPORTANCE_INFLUENCE_H_

#include <vector>

#include "common/result.h"
#include "ml/dataset.h"

namespace nde {

/// Options for influence-function computation.
struct InfluenceOptions {
  double l2 = 1e-3;          ///< L2 regularization of the logistic model
  size_t newton_iterations = 25;
  bool standardize = true;   ///< z-score features before fitting
};

/// Gradient-based data importance via influence functions (Koh & Liang
/// 2017) for a binary L2-regularized logistic regression fitted by Newton's
/// method.
///
/// For each training point z the returned value approximates the *increase*
/// in mean validation loss caused by removing z:
///   phi_i ≈ (1/n) * g_val^T H^{-1} grad L(z_i),
/// so positive values mark helpful points and negative values harmful ones —
/// the same sign convention as the Shapley-style scores, making the methods
/// directly comparable in ranking benchmarks.
///
/// Requires binary labels {0, 1}; returns InvalidArgument otherwise.
Result<std::vector<double>> InfluenceOnValidationLoss(
    const MlDataset& train, const MlDataset& validation,
    const InfluenceOptions& options = {});

/// Brute-force counterpart used to validate the first-order approximation:
/// actually retrains without each point and reports the exact change in mean
/// validation log-loss. O(n) Newton fits; for tests and small data only.
Result<std::vector<double>> ExactRemovalLossChange(
    const MlDataset& train, const MlDataset& validation,
    const InfluenceOptions& options = {});

}  // namespace nde

#endif  // NDE_IMPORTANCE_INFLUENCE_H_
