#ifndef NDE_IMPORTANCE_GAME_VALUES_H_
#define NDE_IMPORTANCE_GAME_VALUES_H_

#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/rng.h"
#include "importance/estimator_options.h"
#include "importance/utility.h"

namespace nde {

/// Every Monte-Carlo estimator in this header follows one contract:
///  - options embed EstimatorOptions (seed, num_threads, convergence
///    tolerance);
///  - utility evaluations fan out over ParallelFor with per-task Rng streams
///    from SeedSequence, and partial results reduce in fixed task order, so a
///    fixed seed yields bit-identical values for any num_threads;
///  - bad input (zero units, zero sampling budget) returns
///    Status::InvalidArgument instead of aborting.

/// Result of a Monte-Carlo importance estimator.
struct ImportanceEstimate {
  std::vector<double> values;
  /// Per-unit standard error of the Monte-Carlo mean (0 when not estimable).
  std::vector<double> std_errors;
  size_t utility_evaluations = 0;
  /// Worker threads the estimator actually fanned out over.
  size_t num_threads_used = 1;
  /// True when utility evaluation failed mid-run and the estimate covers only
  /// the waves completed before the failure. Values/std_errors are exactly
  /// what a clean run with that smaller budget would produce (failed waves
  /// are discarded whole, so determinism survives the abort). When no wave
  /// completed at all, the estimator returns `abort_cause` as its Status
  /// instead of a partial estimate.
  bool aborted_early = false;
  /// The first failure that stopped sampling (OK when !aborted_early).
  Status abort_cause;
};

/// Deprecated pre-parallel name; remove after one release.
using MonteCarloEstimate [[deprecated("use ImportanceEstimate")]] =
    ImportanceEstimate;

/// --- Leave-one-out -----------------------------------------------------------

/// LOO importance: phi_i = v(N) - v(N \ {i}). The simplest importance score;
/// O(n) utility evaluations, one per unit, evaluated in parallel. LOO draws no
/// randomness, so results are identical for any (seed, num_threads).
/// Returns InvalidArgument when the utility has zero units.
Result<std::vector<double>> LeaveOneOutValues(
    const UtilityFunction& utility, const EstimatorOptions& options = {});

/// --- Truncated Monte-Carlo Shapley (Ghorbani & Zou 2019) --------------------

struct TmcShapleyOptions : EstimatorOptions {
  size_t num_permutations = 100;
  /// Truncation: once |v(prefix) - v(N)| falls below this tolerance, the
  /// remaining marginal contributions of the permutation are taken as zero.
  /// Set to 0 to disable truncation.
  double truncation_tolerance = 0.01;
};

/// Permutation-sampling Shapley estimator with truncation. Unbiased for
/// truncation_tolerance == 0. Permutations are independent tasks (one Rng
/// stream per permutation index); with convergence_tolerance > 0, sampling
/// stops at the first 32-permutation wave where every std error is within
/// tolerance. Returns InvalidArgument for zero units or zero permutations.
Result<ImportanceEstimate> TmcShapleyValues(const UtilityFunction& utility,
                                            const TmcShapleyOptions& options);

/// Exact Shapley values by full subset enumeration; exponential, only for
/// n <= ~20. Used as the ground truth in tests. Returns InvalidArgument for
/// larger n.
Result<std::vector<double>> ExactShapleyValues(const UtilityFunction& utility,
                                               size_t max_units = 20);

/// --- Banzhaf values (Wang & Jia 2023) ----------------------------------------

struct BanzhafOptions : EstimatorOptions {
  size_t num_samples = 500;  ///< random subsets drawn
};

/// Maximum-sample-reuse (MSR) Banzhaf estimator: every sampled subset updates
/// the estimate of *all* units (phi_i = mean[v(S) | i in S] - mean[v(S) |
/// i not in S]). Samples run as 16-sample chunks (one Rng stream per sample
/// index); with convergence_tolerance > 0, sampling stops at the first
/// 128-sample wave where every std error is within tolerance. Returns
/// InvalidArgument for zero units or zero samples.
Result<ImportanceEstimate> BanzhafValues(const UtilityFunction& utility,
                                         const BanzhafOptions& options);

/// Exact Banzhaf values by subset enumeration (n <= ~20).
Result<std::vector<double>> ExactBanzhafValues(const UtilityFunction& utility,
                                               size_t max_units = 20);

/// --- Beta Shapley (Kwon & Zou 2022) ------------------------------------------

struct BetaShapleyOptions : EstimatorOptions {
  double alpha = 1.0;  ///< Beta(alpha, beta); (1,1) recovers Shapley
  double beta = 1.0;
  size_t samples_per_unit = 64;
};

/// Beta(alpha, beta)-Shapley semivalue estimated by stratified cardinality
/// sampling: for each unit, sample a coalition size from the Beta-induced
/// cardinality distribution, then a uniform coalition of that size, and
/// average the marginal contributions. Beta(1, 1) is an unbiased Shapley
/// estimator; larger alpha emphasizes small coalitions (the noise-reduced
/// regime recommended by Kwon & Zou, e.g. Beta(16, 1)), larger beta
/// emphasizes large coalitions. Units are independent tasks (one Rng stream
/// per unit); with convergence_tolerance > 0, each unit stops independently
/// once its std error is within tolerance (after at least 8 samples). Returns
/// InvalidArgument for zero units or zero samples_per_unit.
Result<ImportanceEstimate> BetaShapleyValues(const UtilityFunction& utility,
                                             const BetaShapleyOptions& options);

/// The Beta-induced distribution over coalition sizes j in {0, ..., n-1}
/// (probability the coalition S, excluding the target unit, has size j).
/// Exposed for tests: Beta(1,1) must be uniform.
std::vector<double> BetaShapleyCardinalityWeights(size_t n, double alpha,
                                                  double beta);

}  // namespace nde

#endif  // NDE_IMPORTANCE_GAME_VALUES_H_
