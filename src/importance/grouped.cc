#include "importance/grouped.h"

#include <algorithm>

#include "common/string_util.h"
#include "importance/game_values.h"

namespace nde {

GroupedUtility::GroupedUtility(const UtilityFunction* base,
                               std::vector<size_t> group_of)
    : base_(base) {
  NDE_CHECK(base != nullptr);
  NDE_CHECK_EQ(group_of.size(), base->num_units());
  num_groups_ = 0;
  for (size_t g : group_of) num_groups_ = std::max(num_groups_, g + 1);
  rows_by_group_.assign(num_groups_, {});
  for (size_t i = 0; i < group_of.size(); ++i) {
    rows_by_group_[group_of[i]].push_back(i);
  }
}

Result<GroupedUtility> GroupedUtility::Create(const UtilityFunction* base,
                                              std::vector<size_t> group_of) {
  if (base == nullptr) {
    return Status::InvalidArgument("base utility must be non-null");
  }
  if (group_of.size() != base->num_units()) {
    return Status::InvalidArgument(
        StrFormat("group assignment covers %zu rows, utility has %zu",
                  group_of.size(), base->num_units()));
  }
  size_t num_groups = 0;
  for (size_t g : group_of) num_groups = std::max(num_groups, g + 1);
  std::vector<bool> seen(num_groups, false);
  for (size_t g : group_of) seen[g] = true;
  for (size_t g = 0; g < num_groups; ++g) {
    if (!seen[g]) {
      return Status::InvalidArgument(
          StrFormat("group ids must be dense; %zu is unused", g));
    }
  }
  return GroupedUtility(base, std::move(group_of));
}

double GroupedUtility::Evaluate(const std::vector<size_t>& group_subset) const {
  std::vector<size_t> rows;
  for (size_t g : group_subset) {
    NDE_CHECK_LT(g, num_groups_);
    rows.insert(rows.end(), rows_by_group_[g].begin(),
                rows_by_group_[g].end());
  }
  std::sort(rows.begin(), rows.end());
  return base_->Evaluate(rows);
}

Result<std::vector<double>> GroupShapleyValues(
    const ClassifierFactory& factory, const MlDataset& train,
    const MlDataset& validation, const std::vector<size_t>& group_of) {
  ModelAccuracyUtility base(factory, train, validation);
  NDE_ASSIGN_OR_RETURN(GroupedUtility grouped,
                       GroupedUtility::Create(&base, group_of));
  return ExactShapleyValues(grouped, /*max_units=*/15);
}

}  // namespace nde
