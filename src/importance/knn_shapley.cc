#include "importance/knn_shapley.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>

#include "common/parallel.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace nde {

namespace {

/// Training indices sorted by squared distance to `query` (ties by index).
std::vector<size_t> DistanceOrder(const Matrix& train_features,
                                  std::span<const double> query) {
  size_t n = train_features.rows();
  std::vector<double> dist(n);
  for (size_t i = 0; i < n; ++i) {
    const double* row = train_features.RowPtr(i);
    double acc = 0.0;
    for (size_t c = 0; c < train_features.cols(); ++c) {
      double diff = row[c] - query[c];
      acc += diff * diff;
    }
    dist[i] = acc;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&dist](size_t a, size_t b) {
    if (dist[a] != dist[b]) return dist[a] < dist[b];
    return a < b;
  });
  return order;
}

}  // namespace

std::vector<double> KnnShapleyValues(const MlDataset& train,
                                     const MlDataset& validation, size_t k,
                                     const EstimatorOptions& options) {
  NDE_CHECK_GE(k, 1u);
  NDE_CHECK_GT(train.size(), 0u);
  NDE_CHECK_GT(validation.size(), 0u);
  NDE_CHECK_EQ(train.features.cols(), validation.features.cols());
  size_t n = train.size();
  double kd = static_cast<double>(k);

  // Validation points are independent; process them as fixed 8-point chunks
  // with one partial sum per chunk, folded in chunk order below, so the
  // result is bit-identical for any thread count. Chunks run in fixed
  // 8-chunk waves purely so progress can be reported at deterministic
  // boundaries; the per-chunk work is unchanged.
  constexpr size_t kChunkPoints = 8;
  constexpr size_t kWaveChunks = 8;
  size_t num_chunks = (validation.size() + kChunkPoints - 1) / kChunkPoints;
  std::vector<std::vector<double>> partials(num_chunks);
  auto run_chunk = [&](size_t chunk) {
        std::vector<double>& partial = partials[chunk];
        partial.assign(n, 0.0);
        std::vector<double> s(n, 0.0);
        size_t begin = chunk * kChunkPoints;
        size_t end = std::min(begin + kChunkPoints, validation.size());
        for (size_t v = begin; v < end; ++v) {
          std::vector<size_t> order =
              DistanceOrder(train.features, validation.features.RowSpan(v));
          int y = validation.labels[v];
          // Recurrence from Jia et al. (2019), Theorem 1. Positions are
          // 1-indexed in the paper; `pos` below is 0-indexed.
          size_t farthest = order[n - 1];
          s[farthest] = (train.labels[farthest] == y ? 1.0 : 0.0) /
                        static_cast<double>(n);
          for (size_t pos = n - 1; pos-- > 0;) {
            size_t i = order[pos];
            size_t next = order[pos + 1];
            double indicator_i = train.labels[i] == y ? 1.0 : 0.0;
            double indicator_next = train.labels[next] == y ? 1.0 : 0.0;
            double rank = static_cast<double>(pos + 1);  // 1-indexed position.
            s[i] = s[next] + (indicator_i - indicator_next) / kd *
                                 std::min(kd, rank) / rank;
          }
          for (size_t i = 0; i < n; ++i) partial[i] += s[i];
        }
  };
  for (size_t wave_begin = 0; wave_begin < num_chunks;
       wave_begin += kWaveChunks) {
    size_t wave_end = std::min(wave_begin + kWaveChunks, num_chunks);
    int64_t wave_start_us =
        telemetry::Enabled() ? telemetry::NowMicros() : 0;
    ParallelFor(wave_begin, wave_end, run_chunk, options.num_threads,
                "knn_shapley");
    // Wave latency, attributed to the owning job when one is active — purely
    // observational, like the progress callback below.
    if (telemetry::Enabled()) {
      telemetry::MetricsRegistry::Global()
          .GetHistogramWithLabels("estimator.wave_ms",
                                  telemetry::CurrentJobLabels())
          .Record(static_cast<double>(telemetry::NowMicros() -
                                      wave_start_us) /
                  1000.0);
    }
    if (options.progress) {
      ProgressUpdate update;
      update.phase = "knn_shapley";
      update.completed = std::min(wave_end * kChunkPoints, validation.size());
      update.total = validation.size();
      // Closed-form estimator: no utility evaluations, no error estimate.
      options.progress(update);
    }
  }

  std::vector<double> values(n, 0.0);
  for (const std::vector<double>& partial : partials) {
    for (size_t i = 0; i < n; ++i) values[i] += partial[i];
  }
  double inv_m = 1.0 / static_cast<double>(validation.size());
  for (double& value : values) value *= inv_m;
  return values;
}

SoftKnnUtility::SoftKnnUtility(MlDataset train, MlDataset validation, size_t k)
    : train_(std::move(train)), validation_(std::move(validation)), k_(k) {
  NDE_CHECK_GE(k, 1u);
  distance_order_.reserve(validation_.size());
  for (size_t v = 0; v < validation_.size(); ++v) {
    distance_order_.push_back(
        DistanceOrder(train_.features, validation_.features.RowSpan(v)));
  }
}

namespace {

/// Reusable membership marks: stamp[i] == epoch says i is in the current
/// subset, and bumping the epoch invalidates every mark from the previous
/// call without clearing (or reallocating) the vector. One instance per
/// thread keeps Evaluate allocation-free and safe under the parallel
/// estimators, which call it concurrently.
struct EpochMembership {
  std::vector<uint64_t> stamp;
  uint64_t epoch = 0;
};

}  // namespace

double SoftKnnUtility::Evaluate(const std::vector<size_t>& subset) const {
  if (subset.empty() || validation_.size() == 0) return 0.0;
  static thread_local EpochMembership members;
  if (members.stamp.size() < train_.size()) {
    members.stamp.assign(train_.size(), 0);
    members.epoch = 0;
  }
  uint64_t epoch = ++members.epoch;
  for (size_t i : subset) members.stamp[i] = epoch;
  double total = 0.0;
  for (size_t v = 0; v < validation_.size(); ++v) {
    int y = validation_.labels[v];
    size_t taken = 0;
    double hits = 0.0;
    for (size_t idx : distance_order_[v]) {
      if (members.stamp[idx] != epoch) continue;
      if (train_.labels[idx] == y) hits += 1.0;
      if (++taken >= k_) break;
    }
    total += hits / static_cast<double>(k_);
  }
  return total / static_cast<double>(validation_.size());
}

}  // namespace nde
