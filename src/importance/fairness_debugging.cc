#include "importance/fairness_debugging.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "ml/metrics.h"

namespace nde {

std::string FairnessPattern::ToString() const {
  return StrFormat("[%s] support=%zu d_fair=%+.4f d_acc=%+.4f",
                   JoinStrings(conditions, " AND ").c_str(), support,
                   fairness_delta, accuracy_delta);
}

namespace {

/// One atomic condition: column index + category value, with its row set.
struct Atom {
  std::string description;
  std::vector<size_t> rows;  // sorted
};

std::vector<size_t> IntersectSorted(const std::vector<size_t>& a,
                                    const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

struct ModelScores {
  double fairness = 0.0;
  double accuracy = 0.0;
};

Result<ModelScores> ScoreWithout(const ClassifierFactory& factory,
                                 const MlDataset& train,
                                 const std::vector<size_t>& removed,
                                 const MlDataset& validation,
                                 const std::vector<int>& validation_groups,
                                 int num_classes) {
  MlDataset reduced = removed.empty() ? train : train.Without(removed);
  if (reduced.size() == 0) {
    return Status::InvalidArgument("pattern removes every training row");
  }
  std::unique_ptr<Classifier> model = factory();
  NDE_RETURN_IF_ERROR(model->FitWithClasses(reduced, num_classes));
  std::vector<int> predicted = model->Predict(validation.features);
  ModelScores scores;
  scores.accuracy = Accuracy(validation.labels, predicted);
  scores.fairness =
      EqualizedOddsDifference(validation.labels, predicted, validation_groups);
  return scores;
}

}  // namespace

Result<std::vector<FairnessPattern>> ExplainFairness(
    const ClassifierFactory& factory, const MlDataset& train,
    const Table& train_attributes, const MlDataset& validation,
    const std::vector<int>& validation_groups, const GopherOptions& options) {
  NDE_RETURN_IF_ERROR(train.Validate());
  if (train_attributes.num_rows() != train.size()) {
    return Status::InvalidArgument(
        StrFormat("attribute rows %zu != train rows %zu",
                  train_attributes.num_rows(), train.size()));
  }
  if (validation_groups.size() != validation.size()) {
    return Status::InvalidArgument("validation_groups size mismatch");
  }
  if (options.max_conditions < 1 || options.max_conditions > 2) {
    return Status::InvalidArgument("max_conditions must be 1 or 2");
  }
  int num_classes = std::max(train.NumClasses(), validation.NumClasses());

  // Atoms: every (categorical column, value) pair under the cardinality cap.
  std::vector<Atom> atoms;
  for (size_t c = 0; c < train_attributes.num_columns(); ++c) {
    const Field& field = train_attributes.schema().field(c);
    if (field.type == DataType::kDouble) continue;
    std::unordered_map<Value, std::vector<size_t>, ValueHash> groups;
    for (size_t r = 0; r < train_attributes.num_rows(); ++r) {
      const Value& v = train_attributes.At(r, c);
      if (v.is_null()) continue;
      groups[v].push_back(r);
    }
    if (groups.size() > options.max_column_cardinality) continue;
    for (auto& [value, rows] : groups) {
      if (rows.size() < options.min_support) continue;
      atoms.push_back(Atom{field.name + "=" + value.ToString(),
                           std::move(rows)});
    }
  }

  NDE_ASSIGN_OR_RETURN(ModelScores baseline,
                       ScoreWithout(factory, train, {}, validation,
                                    validation_groups, num_classes));

  std::vector<FairnessPattern> patterns;
  auto evaluate = [&](std::vector<std::string> conditions,
                      const std::vector<size_t>& rows) -> Status {
    if (rows.size() < options.min_support || rows.size() >= train.size()) {
      return Status::OK();
    }
    Result<ModelScores> scores = ScoreWithout(
        factory, train, rows, validation, validation_groups, num_classes);
    if (!scores.ok()) return Status::OK();  // Degenerate removal: skip.
    FairnessPattern pattern;
    pattern.conditions = std::move(conditions);
    pattern.support = rows.size();
    pattern.fairness_delta = baseline.fairness - scores->fairness;
    pattern.accuracy_delta = scores->accuracy - baseline.accuracy;
    patterns.push_back(std::move(pattern));
    return Status::OK();
  };

  for (size_t a = 0; a < atoms.size(); ++a) {
    NDE_RETURN_IF_ERROR(evaluate({atoms[a].description}, atoms[a].rows));
    if (options.max_conditions < 2) continue;
    for (size_t b = a + 1; b < atoms.size(); ++b) {
      std::vector<size_t> rows = IntersectSorted(atoms[a].rows, atoms[b].rows);
      // Skip pairs that add nothing over either atom alone.
      if (rows.size() == atoms[a].rows.size() ||
          rows.size() == atoms[b].rows.size()) {
        continue;
      }
      NDE_RETURN_IF_ERROR(
          evaluate({atoms[a].description, atoms[b].description}, rows));
    }
  }

  std::sort(patterns.begin(), patterns.end(),
            [](const FairnessPattern& x, const FairnessPattern& y) {
              if (x.fairness_delta != y.fairness_delta) {
                return x.fairness_delta > y.fairness_delta;
              }
              return x.support < y.support;
            });
  if (patterns.size() > options.top_k) patterns.resize(options.top_k);
  return patterns;
}

}  // namespace nde
