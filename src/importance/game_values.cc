#include "importance/game_values.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"
#include "telemetry/telemetry.h"

namespace nde {

namespace {

/// Sorted copy helper: utilities accept any order, but we normalize anyway
/// so memoizing utilities can key on the subset directly.
std::vector<size_t> Sorted(std::vector<size_t> subset) {
  std::sort(subset.begin(), subset.end());
  return subset;
}

double LogBeta(double a, double b) {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

double LogChoose(size_t n, size_t k) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

/// Evaluates v over every subset of {0..n-1}; 2^n evaluations.
std::vector<double> EnumerateAllSubsets(const UtilityFunction& utility) {
  size_t n = utility.num_units();
  std::vector<double> values(size_t{1} << n);
  for (size_t mask = 0; mask < values.size(); ++mask) {
    std::vector<size_t> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) subset.push_back(i);
    }
    values[mask] = utility.Evaluate(subset);
  }
  return values;
}

}  // namespace

std::vector<double> LeaveOneOutValues(const UtilityFunction& utility) {
  size_t n = utility.num_units();
  double full = utility.FullUtility();
  std::vector<double> values(n);
  std::vector<size_t> subset(n - 1);
  for (size_t i = 0; i < n; ++i) {
    subset.clear();
    for (size_t j = 0; j < n; ++j) {
      if (j != i) subset.push_back(j);
    }
    values[i] = full - utility.Evaluate(subset);
  }
  return values;
}

MonteCarloEstimate TmcShapleyValues(const UtilityFunction& utility,
                                    const TmcShapleyOptions& options) {
  size_t n = utility.num_units();
  NDE_CHECK_GT(n, 0u);
  NDE_TRACE_SPAN_VAR(span, "TmcShapleyValues", "importance");
  Rng rng(options.seed);
  std::vector<double> sum(n, 0.0);
  std::vector<double> sum_sq(n, 0.0);
  double empty_utility = utility.EmptyUtility();
  double full_utility = utility.FullUtility();
  size_t evaluations = 2;

  for (size_t t = 0; t < options.num_permutations; ++t) {
    // One complete-event per permutation: the trace shows where sampling
    // time goes and how hard truncation is biting, iteration by iteration.
    NDE_TRACE_SPAN_VAR(perm_span, "tmc_permutation", "importance");
    size_t evaluations_before = evaluations;
    std::vector<size_t> perm = rng.Permutation(n);
    std::vector<size_t> prefix;
    prefix.reserve(n);
    double previous = empty_utility;
    bool truncated = false;
    for (size_t pos = 0; pos < n; ++pos) {
      size_t unit = perm[pos];
      double marginal = 0.0;
      if (!truncated) {
        if (options.truncation_tolerance > 0.0 &&
            std::fabs(full_utility - previous) < options.truncation_tolerance) {
          truncated = true;  // Remaining marginals are treated as zero.
          NDE_METRIC_COUNT("shapley.truncation_hits", 1);
          NDE_SPAN_ARG(perm_span, "truncated_at", static_cast<int64_t>(pos));
        } else {
          prefix.push_back(unit);
          double current = utility.Evaluate(Sorted(prefix));
          ++evaluations;
          marginal = current - previous;
          previous = current;
        }
      }
      sum[unit] += marginal;
      sum_sq[unit] += marginal * marginal;
    }
    NDE_SPAN_ARG(perm_span, "permutation", static_cast<int64_t>(t));
    NDE_SPAN_ARG(perm_span, "evaluations",
                 static_cast<int64_t>(evaluations - evaluations_before));
  }
  NDE_METRIC_COUNT("shapley.permutations", options.num_permutations);
  NDE_METRIC_COUNT("shapley.utility_evaluations", evaluations);
  NDE_SPAN_ARG(span, "units", static_cast<int64_t>(n));
  NDE_SPAN_ARG(span, "evaluations", static_cast<int64_t>(evaluations));

  MonteCarloEstimate estimate;
  estimate.values.resize(n);
  estimate.std_errors.resize(n);
  double m = static_cast<double>(options.num_permutations);
  for (size_t i = 0; i < n; ++i) {
    double mean = sum[i] / m;
    estimate.values[i] = mean;
    if (options.num_permutations > 1) {
      double variance = (sum_sq[i] / m - mean * mean) * m / (m - 1.0);
      estimate.std_errors[i] = std::sqrt(std::max(variance, 0.0) / m);
    }
  }
  estimate.utility_evaluations = evaluations;
  NDE_METRIC_GAUGE_SET(
      "shapley.max_std_error",
      estimate.std_errors.empty()
          ? 0.0
          : *std::max_element(estimate.std_errors.begin(),
                              estimate.std_errors.end()));
  return estimate;
}

Result<std::vector<double>> ExactShapleyValues(const UtilityFunction& utility,
                                               size_t max_units) {
  size_t n = utility.num_units();
  if (n > max_units || n > 24) {
    return Status::InvalidArgument(
        StrFormat("exact Shapley is exponential; n=%zu exceeds cap %zu", n,
                  std::min(max_units, size_t{24})));
  }
  std::vector<double> subset_values = EnumerateAllSubsets(utility);
  // Precompute |S|!(n-|S|-1)!/n! per cardinality.
  std::vector<double> weight(n);
  for (size_t s = 0; s < n; ++s) {
    weight[s] = std::exp(std::lgamma(static_cast<double>(s) + 1.0) +
                         std::lgamma(static_cast<double>(n - s)) -
                         std::lgamma(static_cast<double>(n) + 1.0));
  }
  std::vector<double> values(n, 0.0);
  size_t full = size_t{1} << n;
  for (size_t mask = 0; mask < full; ++mask) {
    size_t cardinality = static_cast<size_t>(__builtin_popcountll(mask));
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) continue;
      double marginal =
          subset_values[mask | (size_t{1} << i)] - subset_values[mask];
      values[i] += weight[cardinality] * marginal;
    }
  }
  return values;
}

MonteCarloEstimate BanzhafValues(const UtilityFunction& utility,
                                 const BanzhafOptions& options) {
  size_t n = utility.num_units();
  NDE_CHECK_GT(n, 0u);
  NDE_TRACE_SPAN_VAR(span, "BanzhafValues", "importance");
  Rng rng(options.seed);
  // MSR: every sample updates every unit's in-mean or out-mean.
  std::vector<double> in_sum(n, 0.0), in_sq(n, 0.0);
  std::vector<double> out_sum(n, 0.0), out_sq(n, 0.0);
  std::vector<size_t> in_count(n, 0), out_count(n, 0);

  // Samples are traced in batches so a large num_samples does not flood the
  // bounded trace buffer with per-sample events.
  constexpr size_t kTraceBatch = 64;
  std::vector<size_t> subset;
  std::vector<bool> member(n);
  for (size_t batch = 0; batch < options.num_samples; batch += kTraceBatch) {
    size_t batch_end = std::min(batch + kTraceBatch, options.num_samples);
    NDE_TRACE_SPAN_VAR(batch_span, "banzhaf_sample_batch", "importance");
    NDE_SPAN_ARG(batch_span, "samples",
                 static_cast<int64_t>(batch_end - batch));
    for (size_t t = batch; t < batch_end; ++t) {
      subset.clear();
      for (size_t i = 0; i < n; ++i) {
        member[i] = rng.NextBernoulli(0.5);
        if (member[i]) subset.push_back(i);
      }
      double value = utility.Evaluate(subset);
      for (size_t i = 0; i < n; ++i) {
        if (member[i]) {
          in_sum[i] += value;
          in_sq[i] += value * value;
          ++in_count[i];
        } else {
          out_sum[i] += value;
          out_sq[i] += value * value;
          ++out_count[i];
        }
      }
    }
  }
  NDE_METRIC_COUNT("banzhaf.samples", options.num_samples);

  MonteCarloEstimate estimate;
  estimate.values.resize(n, 0.0);
  estimate.std_errors.resize(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (in_count[i] == 0 || out_count[i] == 0) continue;
    double in_mean = in_sum[i] / static_cast<double>(in_count[i]);
    double out_mean = out_sum[i] / static_cast<double>(out_count[i]);
    estimate.values[i] = in_mean - out_mean;
    auto mean_var = [](double sum, double sq, size_t count) {
      if (count < 2) return 0.0;
      double m = sum / static_cast<double>(count);
      double var = (sq / static_cast<double>(count) - m * m) *
                   static_cast<double>(count) / static_cast<double>(count - 1);
      return std::max(var, 0.0) / static_cast<double>(count);
    };
    estimate.std_errors[i] =
        std::sqrt(mean_var(in_sum[i], in_sq[i], in_count[i]) +
                  mean_var(out_sum[i], out_sq[i], out_count[i]));
  }
  estimate.utility_evaluations = options.num_samples;
  return estimate;
}

Result<std::vector<double>> ExactBanzhafValues(const UtilityFunction& utility,
                                               size_t max_units) {
  size_t n = utility.num_units();
  if (n > max_units || n > 24) {
    return Status::InvalidArgument(
        StrFormat("exact Banzhaf is exponential; n=%zu exceeds cap %zu", n,
                  std::min(max_units, size_t{24})));
  }
  std::vector<double> subset_values = EnumerateAllSubsets(utility);
  std::vector<double> values(n, 0.0);
  size_t full = size_t{1} << n;
  double scale = 1.0 / static_cast<double>(size_t{1} << (n - 1));
  for (size_t mask = 0; mask < full; ++mask) {
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) continue;
      values[i] +=
          (subset_values[mask | (size_t{1} << i)] - subset_values[mask]) *
          scale;
    }
  }
  return values;
}

std::vector<double> BetaShapleyCardinalityWeights(size_t n, double alpha,
                                                  double beta) {
  NDE_CHECK_GT(n, 0u);
  NDE_CHECK_GT(alpha, 0.0);
  NDE_CHECK_GT(beta, 0.0);
  // P(|S| = j) proportional to C(n-1, j) * B(j + beta, n - 1 - j + alpha),
  // which for (alpha, beta) = (1, 1) is the uniform Shapley distribution.
  std::vector<double> log_weights(n);
  double max_log = -1e300;
  for (size_t j = 0; j < n; ++j) {
    log_weights[j] =
        LogChoose(n - 1, j) + LogBeta(static_cast<double>(j) + beta,
                                      static_cast<double>(n - 1 - j) + alpha);
    max_log = std::max(max_log, log_weights[j]);
  }
  std::vector<double> weights(n);
  double total = 0.0;
  for (size_t j = 0; j < n; ++j) {
    weights[j] = std::exp(log_weights[j] - max_log);
    total += weights[j];
  }
  for (double& w : weights) w /= total;
  return weights;
}

MonteCarloEstimate BetaShapleyValues(const UtilityFunction& utility,
                                     const BetaShapleyOptions& options) {
  size_t n = utility.num_units();
  NDE_CHECK_GT(n, 0u);
  NDE_TRACE_SPAN_VAR(span, "BetaShapleyValues", "importance");
  Rng rng(options.seed);
  std::vector<double> cardinality_weights =
      BetaShapleyCardinalityWeights(n, options.alpha, options.beta);

  MonteCarloEstimate estimate;
  estimate.values.resize(n, 0.0);
  estimate.std_errors.resize(n, 0.0);
  size_t evaluations = 0;

  std::vector<size_t> others(n - 1);
  for (size_t i = 0; i < n; ++i) {
    NDE_TRACE_SPAN_VAR(unit_span, "beta_shapley_unit", "importance");
    NDE_SPAN_ARG(unit_span, "unit", static_cast<int64_t>(i));
    others.clear();
    for (size_t j = 0; j < n; ++j) {
      if (j != i) others.push_back(j);
    }
    double sum = 0.0;
    double sum_sq = 0.0;
    for (size_t s = 0; s < options.samples_per_unit; ++s) {
      size_t cardinality = rng.NextCategorical(cardinality_weights);
      std::vector<size_t> picks =
          rng.SampleWithoutReplacement(others.size(), cardinality);
      std::vector<size_t> subset;
      subset.reserve(cardinality + 1);
      for (size_t p : picks) subset.push_back(others[p]);
      double without = utility.Evaluate(Sorted(subset));
      subset.push_back(i);
      double with = utility.Evaluate(Sorted(subset));
      evaluations += 2;
      double marginal = with - without;
      sum += marginal;
      sum_sq += marginal * marginal;
    }
    double m = static_cast<double>(options.samples_per_unit);
    double mean = sum / m;
    estimate.values[i] = mean;
    if (options.samples_per_unit > 1) {
      double variance = (sum_sq / m - mean * mean) * m / (m - 1.0);
      estimate.std_errors[i] = std::sqrt(std::max(variance, 0.0) / m);
    }
    NDE_SPAN_ARG(unit_span, "std_error", estimate.std_errors[i]);
  }
  estimate.utility_evaluations = evaluations;
  NDE_METRIC_COUNT("beta_shapley.utility_evaluations", evaluations);
  return estimate;
}

}  // namespace nde
